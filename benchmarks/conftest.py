"""Benchmark-suite configuration.

Each ``benchmarks/test_*.py`` wraps one experiment module from
``repro.experiments`` in a pytest-benchmark target, prints the reproduced
table, and asserts the paper's qualitative shape (who wins, by roughly
what factor, where crossovers fall).  Parameters are scaled down from the
headline runs so the whole suite finishes in minutes; run the experiment
modules directly (``python -m repro.experiments.fig10``) for full scale.
"""

from __future__ import annotations

import pytest


def report(result) -> None:
    """Print an ExperimentResult so `pytest -s` shows the regenerated rows."""
    print()
    print(result)
