"""Perf-suite configuration.

``benchmarks/perf`` times the substrate itself -- the event loop, the
dispatch simulation, one headline cluster run -- via pytest-benchmark,
where ``benchmarks/test_*`` time whole experiments.  Run with::

    PYTHONPATH=src python -m pytest benchmarks/perf -q \
        --benchmark-json=BENCH_pytest.json

``python -m repro bench`` produces the same measurements tool-free and
writes the project's ``BENCH_simulator.json`` baseline.
"""
