"""Perf: the three hot paths under pytest-benchmark.

These wrap the same workloads as ``python -m repro bench`` (see
``repro.experiments.bench``) so the statistical pytest-benchmark runs and
the JSON baseline measure identical code.  Sizes are the quick-mode ones:
the point here is min/mean/stddev per path, not a long soak.
"""

import random

from repro.core.drop import EarlyDropPolicy, simulate_dispatch
from repro.experiments.bench import _dispatch_profile
from repro.simulation.simulator import Simulator
from repro.workloads.arrivals import poisson_arrivals

EVENTS = 50_000
DISPATCH_MS = 20_000.0
CLUSTER_MS = 4_000.0


def test_simulator_event_loop(benchmark):
    """Deep-heap drain: heap ordering + slotted events + the run loop."""
    times = [random.Random(0).random() for _ in range(EVENTS)]

    def drain() -> int:
        sim = Simulator()
        for t in times:
            sim.schedule(t * 1000.0, lambda: None)
        sim.run()
        return sim.events_processed

    processed = benchmark(drain)
    assert processed == EVENTS


def test_simulate_dispatch_overload(benchmark):
    """Single-GPU dispatch at 1.8x the sustainable rate (long queues)."""
    arrivals = poisson_arrivals(900.0, DISPATCH_MS, seed=3)
    profile = _dispatch_profile()

    stats = benchmark(
        lambda: simulate_dispatch(arrivals, profile, 100.0,
                                  EarlyDropPolicy(25))
    )
    assert stats.total == len(arrivals)
    assert stats.served_ok > 0


def test_cluster_headline(benchmark):
    """One full cluster run: the all-apps mix on a planned deployment."""
    from repro.experiments.bench import _make_cluster

    def run():
        return _make_cluster(800.0, seed=0).run(
            CLUSTER_MS, warmup_ms=CLUSTER_MS / 10
        )

    result = benchmark.pedantic(run, rounds=3, iterations=1)
    assert result.good_rate > 0.9
