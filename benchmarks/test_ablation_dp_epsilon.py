"""Ablation bench: DP budget granularity epsilon (section 6.2).

The latency-split DP discretizes the budget into L/epsilon segments and
is quadratic in that count.  This ablation sweeps epsilon and checks that
finer grids never produce worse splits and that the cost grows
super-linearly as the grid refines.
"""

import time

from conftest import report

from repro.core.profile import LinearProfile
from repro.core.query import Query, QueryStage, plan_query
from repro.experiments.common import ExperimentResult


def _query() -> Query:
    ssd = LinearProfile(name="ssd", alpha=8.0, beta=12.0, max_batch=64)
    rec = LinearProfile(name="rec", alpha=1.0, beta=8.0, max_batch=128)
    root = QueryStage("ssd", ssd)
    root.add_child(QueryStage("rec", rec, gamma=2.0))
    return Query("q", root, slo_ms=400.0)


def run_epsilon_ablation(epsilons=(50.0, 20.0, 10.0, 5.0, 2.0)):
    query = _query()
    result = ExperimentResult(
        name="Ablation: DP epsilon granularity",
        columns=["epsilon_ms", "total_gpus", "solve_ms"],
    )
    for eps in epsilons:
        t0 = time.perf_counter()
        split = plan_query(query, rate_rps=500.0, epsilon_ms=eps)
        elapsed = (time.perf_counter() - t0) * 1000.0
        result.add(eps, round(split.total_gpus, 4), round(elapsed, 2))
    return result


def test_ablation_dp_epsilon(benchmark):
    result = benchmark(run_epsilon_ablation)
    report(result)

    gpus = result.column("total_gpus")
    # Refining the grid never needs more GPUs.
    assert all(b <= a + 1e-9 for a, b in zip(gpus, gpus[1:]))
    # And the fine grid costs measurably more time than the coarse one.
    times = result.column("solve_ms")
    assert times[-1] > times[0]
