"""Ablation bench: early-drop sliding-window length (DESIGN.md section 5).

Nexus sets the early-drop window to the batch size the global scheduler
chose.  This ablation fixes the workload (the Figure 9 setup at alpha=1)
and sweeps the window: too-small windows under-batch (lazy-drop-like
inefficiency), far-too-large windows over-drop; the scheduler's choice
sits on the efficient plateau.
"""

from conftest import report

from repro.core.drop import EarlyDropPolicy, simulate_dispatch
from repro.experiments.common import ExperimentResult
from repro.experiments.fig5 import SLO_MS, fig5_profile
from repro.workloads.arrivals import poisson_arrivals


def run_window_ablation(windows=(1, 4, 12, 25, 50), rate=450.0,
                        duration_ms=40_000.0):
    prof = fig5_profile(1.0)
    scheduler_choice = prof.max_batch_under_slo(SLO_MS)  # = 25
    arrivals = poisson_arrivals(rate, duration_ms, seed=11)
    result = ExperimentResult(
        name="Ablation: early-drop window length",
        columns=["window", "bad_rate", "mean_batch", "goodput_rps"],
        notes=f"scheduler would pick window={scheduler_choice}",
    )
    for window in windows:
        stats = simulate_dispatch(
            arrivals, prof, SLO_MS, EarlyDropPolicy(target_batch=window)
        )
        result.add(window, round(stats.bad_rate, 4),
                   round(stats.mean_batch, 1),
                   round(stats.goodput_rps, 1))
    return result


def test_ablation_drop_window(benchmark):
    result = benchmark(run_window_ablation)
    report(result)

    by_w = {r[0]: r for r in result.rows}
    # A window of 1 degenerates to tiny batches and a high bad rate.
    assert by_w[1][1] > by_w[25][1]
    # The scheduler's choice (25) is on the efficient plateau: within a
    # few percent of the best observed goodput.
    best = max(r[3] for r in result.rows)
    assert by_w[25][3] >= 0.93 * best
