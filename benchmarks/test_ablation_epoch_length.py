"""Ablation bench: epoch length (DESIGN.md section 5).

The paper uses 30-60 s epochs with a 10 s minimum period.  Shorter epochs
react faster to workload steps but reconfigure more often; this ablation
steps the offered rate x3 mid-run and measures the bad rate during the
transition window for several epoch lengths.
"""

from conftest import report

from repro.cluster.nexus import ClusterConfig, NexusCluster
from repro.experiments.common import ExperimentResult
from repro.workloads.apps import traffic_query

STEP_MS = 40_000.0
DURATION_MS = 100_000.0


def run_epoch_ablation(epochs_ms=(10_000.0, 20_000.0, 40_000.0)):
    result = ExperimentResult(
        name="Ablation: epoch length vs adaptation",
        columns=["epoch_s", "epochs_run", "transition_bad",
                 "steady_bad"],
        notes="offered rate steps x3 at t=40 s",
    )
    for epoch_ms in epochs_ms:
        config = ClusterConfig(
            device="gtx1080ti", max_gpus=32, dynamic=True,
            expand_to_cluster=False, epoch_ms=epoch_ms, seed=5,
        )
        cluster = NexusCluster(config)
        cluster.add_query(
            traffic_query(config.device), rate_rps=60.0,
            rate_fn=lambda t: 60.0 if t < STEP_MS else 180.0,
        )
        res = cluster.run(DURATION_MS)
        recs = res.query_metrics.records
        transition = [r for r in recs
                      if STEP_MS <= r.arrival_ms < STEP_MS + 2 * epoch_ms]
        steady = [r for r in recs
                  if r.arrival_ms >= STEP_MS + 2 * epoch_ms]
        t_bad = sum(1 for r in transition if not r.ok) / max(len(transition), 1)
        s_bad = sum(1 for r in steady if not r.ok) / max(len(steady), 1)
        result.add(epoch_ms / 1000.0, res.epochs, round(t_bad, 4),
                   round(s_bad, 4))
    return result


def test_ablation_epoch_length(benchmark):
    result = benchmark.pedantic(run_epoch_ablation, rounds=1, iterations=1)
    report(result)

    rows = {r[0]: r for r in result.rows}
    # More epochs fire with shorter periods.
    assert rows[10.0][1] > rows[40.0][1]
    # After adaptation, every configuration serves well.
    for r in result.rows:
        assert r[3] < 0.05, r
