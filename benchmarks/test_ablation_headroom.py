"""Ablation bench: planning headroom and SLO margin (DESIGN.md section 5).

Nexus plans capacity for (1 + headroom) x the offered rate and packs
sessions against (1 - margin) x their SLO.  Zero slack balances the
deployment on a knife edge -- every worst-case bound met with equality --
so runtime jitter shows up directly as SLO misses.  This ablation
measures goodput at a fixed offered rate as slack varies.
"""

from conftest import report

from repro.cluster.nexus import ClusterConfig, NexusCluster
from repro.experiments.common import ExperimentResult
from repro.workloads.apps import traffic_query


def run_headroom_ablation(rate: float = 400.0, duration_ms: float = 8_000.0):
    result = ExperimentResult(
        name="Ablation: planning headroom / SLO margin",
        columns=["headroom", "slo_margin", "good_rate", "gpus"],
    )
    for headroom, margin in ((0.0, 0.0), (0.0, 0.1), (0.15, 0.0),
                             (0.15, 0.1), (0.3, 0.2)):
        config = ClusterConfig(
            device="gtx1080ti", max_gpus=16,
            plan_headroom=headroom, slo_margin=margin,
            expand_to_cluster=False,
        )
        cluster = NexusCluster(config)
        cluster.add_query(traffic_query(config.device), rate_rps=rate)
        res = cluster.run(duration_ms, warmup_ms=duration_ms / 5)
        result.add(headroom, margin, round(res.good_rate, 4), res.gpus_used)
    return result


def test_ablation_headroom(benchmark):
    result = benchmark(run_headroom_ablation)
    report(result)

    by_cfg = {(r[0], r[1]): r[2] for r in result.rows}
    # More slack never hurts goodput materially...
    assert by_cfg[(0.15, 0.1)] >= by_cfg[(0.0, 0.0)] - 0.01
    # ...and the fully-slacked configuration serves essentially everything.
    assert by_cfg[(0.3, 0.2)] > 0.97
