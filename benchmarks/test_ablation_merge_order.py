"""Ablation bench: duty-cycle merge policy in ScheduleResidue.

DESIGN.md section 5: Algorithm 1 sorts residues by occupancy and merges
best-fit.  This ablation compares best-fit vs first-fit vs worst-fit on
random residual workloads: best-fit should use no more GPUs than
worst-fit on average, and all policies must produce valid plans.
"""

import numpy as np
from conftest import report

from repro.core.squishy import schedule_residue
from repro.experiments.common import ExperimentResult
from repro.experiments.ilp_gap import random_instance


def run_merge_ablation(trials: int = 20, n: int = 10, seed: int = 3):
    rng = np.random.default_rng(seed)
    totals = {"best_fit": 0, "first_fit": 0, "worst_fit": 0}
    for _ in range(trials):
        loads = random_instance(n, rng)
        for order in totals:
            nodes, infeasible = schedule_residue(loads, merge_order=order)
            assert not infeasible
            for node in nodes:
                assert not node.validate()
            totals[order] += len(nodes)
    result = ExperimentResult(
        name="Ablation: residual merge policy",
        columns=["policy", "total_gpus"],
    )
    for order, total in totals.items():
        result.add(order, total)
    return result


def test_ablation_merge_order(benchmark):
    result = benchmark(run_merge_ablation)
    report(result)

    gpus = dict(result.rows)
    assert gpus["best_fit"] <= gpus["worst_fit"]
    assert gpus["best_fit"] <= gpus["first_fit"] * 1.1
