"""Bench: Figure 10 -- game analysis case study (scaled down)."""

from conftest import report

from repro.experiments import fig10


def test_fig10_game_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: fig10.run(duration_ms=6_000.0, iterations=7),
        rounds=1, iterations=1,
    )
    report(result)

    rps = {r[0]: r[1] for r in result.rows}
    # Paper: Nexus 9.4x Clipper / 12.7x TF (ours ~3.4x/6x -- our icon-only
    # baselines are stronger); OL dominates the ablation (tight SLO +
    # small models); -PB costs ~1.7x; -SS and -ED are small.
    assert rps["nexus"] > 1.8 * rps["tf_serving"]
    assert rps["nexus"] > 3 * rps["clipper"]
    assert rps["nexus"] > 3 * rps["-OL"]
    assert rps["nexus"] > 1.15 * rps["-PB"]
    assert rps["-OL"] < min(rps["-PB"], rps["-SS"], rps["-ED"])
    # -ED's hit varies with measurement-window length (lazy drop's spiral
    # bites harder in short windows): accept anywhere in the paper-to-ours
    # band below full Nexus.
    assert 0.45 * rps["nexus"] <= rps["-ED"] <= 1.05 * rps["nexus"]
    assert rps["-SS"] > 0.7 * rps["nexus"]
