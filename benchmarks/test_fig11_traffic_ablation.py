"""Bench: Figure 11 -- traffic analysis case study (scaled down)."""

from conftest import report

from repro.experiments import fig11


def test_fig11_traffic_ablation(benchmark):
    result = benchmark.pedantic(
        lambda: fig11.run(duration_ms=8_000.0, iterations=7),
        rounds=1, iterations=1,
    )
    report(result)

    rps = {r[0]: r[1] for r in result.rows}
    # Paper: Nexus 1.8-2.4x the baselines.  Ours: ~2.0x TF, ~2.4x Clipper.
    assert rps["nexus"] > 1.5 * rps["tf_serving"]
    assert rps["nexus"] > 1.5 * rps["clipper"]
    # In our reproduction the non-OL ablations sit within the search's
    # resolution of full Nexus on this workload (see EXPERIMENTS.md);
    # assert they are in a tight band rather than strictly ordered.
    for abl in ("-QA", "-ED"):
        assert rps[abl] >= 0.7 * rps["nexus"], abl
        assert rps[abl] <= 1.3 * rps["nexus"], abl
    # -SS lands near the paper's own ratio (337/534 = 0.63x).
    assert 0.45 * rps["nexus"] <= rps["-SS"] <= 1.3 * rps["nexus"]
    # -OL is the clear loser, but its hit (ours ~2.4x) is far smaller
    # than the game study's ~7x -- the paper's tight-SLO/small-model vs
    # loose-SLO/large-model contrast.
    assert rps["-OL"] < 0.6 * rps["nexus"]
    assert rps["-OL"] > rps["nexus"] / 6
