"""Bench: Figure 12 -- rush vs non-rush hour traffic throughput."""

from conftest import report

from repro.experiments import fig12


def test_fig12_diurnal(benchmark):
    result = benchmark.pedantic(
        lambda: fig12.run(duration_ms=8_000.0, iterations=7,
                          systems=["tf_serving", "nexus-QA", "nexus"]),
        rounds=1, iterations=1,
    )
    report(result)

    cell = {(r[0], r[1]): r[2] for r in result.rows}
    # Rush hour (higher fan-out) cuts everyone's throughput...
    for system in ("tf_serving", "nexus-QA", "nexus"):
        assert cell[(system, "rush")] < cell[(system, "non-rush")]
    # ...but Nexus keeps a significant lead in both periods.
    for period in ("non-rush", "rush"):
        assert cell[("nexus", period)] > 1.2 * cell[("tf_serving", period)]
    # QA's relative benefit shrinks at rush hour (oversubscription).
    qa_gain_calm = cell[("nexus", "non-rush")] / cell[("nexus-QA", "non-rush")]
    qa_gain_rush = cell[("nexus", "rush")] / cell[("nexus-QA", "rush")]
    assert qa_gain_calm >= qa_gain_rush * 0.9
