"""Bench: Figure 13 -- large-scale deployment timeline (scaled down).

The headline run uses 100 GPUs over 1000 s; here a 40-GPU / 300 s window
with the same workload step exercises the full control loop: surge
detection, GPU allocation, and deallocation after the surge subsides.
"""

from conftest import report

from repro.experiments import fig13


def test_fig13_large_scale(benchmark):
    def run():
        return fig13.run(
            duration_ms=300_000.0,
            window_ms=10_000.0,
            gpus=40,
            base_total_rps=350.0,
            num_games=3,
        )

    table, out = benchmark.pedantic(run, rounds=1, iterations=1)
    report(table)

    # The workload steps up inside the window (step at t=326s is beyond
    # this scaled run; use the wobble-free pre-surge baseline instead).
    assert out.epochs >= 5
    # GPUs were allocated and the system tracked the load.
    assert max(out.gpus.values) >= 1
    # Request-level SLO violations stay low overall (paper: 0.27%).
    assert out.overall_bad_rate < 0.10


def test_fig13_surge_adaptation(benchmark):
    """A run long enough to contain the surge: GPU count must rise with
    the workload step and fall after it subsides."""

    def run():
        return fig13.run(
            duration_ms=700_000.0,
            window_ms=20_000.0,
            gpus=45,
            base_total_rps=280.0,
            num_games=2,
        )

    table, out = benchmark.pedantic(run, rounds=1, iterations=1)

    def mean(vals):
        return sum(vals) / max(len(vals), 1)

    gpus = out.gpus.points()
    before = [v for t, v in gpus if t < 300_000.0]
    during = [v for t, v in gpus if 400_000.0 <= t < 640_000.0]
    assert mean(during) > mean(before)
    workload = out.workload.points()
    w_before = [v for t, v in workload if 100_000.0 <= t < 300_000.0]
    w_during = [v for t, v in workload if 400_000.0 <= t < 640_000.0]
    assert mean(w_during) > 1.5 * mean(w_before)
