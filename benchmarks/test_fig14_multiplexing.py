"""Bench: Figure 14 -- GPU multiplexing on one GPU (scaled down)."""

from conftest import report

from repro.experiments import fig14


def test_fig14_multiplexing(benchmark):
    result = benchmark.pedantic(
        lambda: fig14.run(duration_ms=8_000.0, iterations=7,
                          model_counts=(2, 4), slos=(50.0, 200.0)),
        rounds=1, iterations=1,
    )
    report(result)

    cell = {(r[0], r[1], r[2]): r[3] for r in result.rows}
    for n in (2, 4):
        nexus = cell[("a:models", n, "nexus")]
        # Paper: Nexus 1.4-2.1x TF Serving, 1.9-9.8x Clipper per GPU.
        assert nexus >= cell[("a:models", n, "tf_serving")]
        assert nexus > 1.2 * cell[("a:models", n, "clipper")]
        # Nexus-parallel sits at or below full Nexus (it still interferes).
        assert nexus >= cell[("a:models", n, "nexus_parallel")] * 0.95
    # Looser SLOs help everyone; Nexus-parallel narrows the gap with slack
    # (paper: "greater scheduling slack gives Nexus-parallel higher
    # throughput").
    for system in ("nexus", "nexus_parallel", "tf_serving"):
        assert cell[("b:slo_ms", 200.0, system)] >= cell[("b:slo_ms", 50.0, system)]
