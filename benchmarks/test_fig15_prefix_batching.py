"""Bench: Figure 15 -- prefix batching throughput and memory."""

from conftest import report

from repro.experiments import fig15


def test_fig15_prefix_batching(benchmark):
    result = benchmark(fig15.run)
    report(result)

    by_k = {r[0]: r for r in result.rows}
    # Throughput: prefix batching's advantage grows with variant count,
    # reaching ~2x at 10 variants (paper: "up to 110% higher").
    assert by_k[10][3] > 1.8
    assert by_k[10][3] > by_k[4][3]
    # Without PB, aggregate throughput decays as variants multiply.
    assert by_k[10][1] < by_k[2][1]
    # With PB it holds steady.
    assert by_k[10][2] >= by_k[2][2] * 0.95

    # Memory: full variants grow linearly; 1-FC suffixes stay near-flat;
    # deeper suffixes grow faster than 1-FC but far below full copies.
    assert by_k[10][4] > 4.5 * by_k[2][4]
    assert by_k[10][5] < by_k[2][5] * 2.0
    assert by_k[10][7] > by_k[10][5]
    assert by_k[10][7] < by_k[10][4] / 2
