"""Bench: Figure 16 -- squishy vs batch-oblivious scheduling (scaled)."""

from conftest import report

from repro.experiments import fig16


def test_fig16_squishy_sensitivity(benchmark):
    scenarios = ("mix_slos_inception", "mix_rates_inception",
                 "mix_models_slos")
    result = benchmark.pedantic(
        lambda: fig16.run(duration_ms=6_000.0, iterations=7,
                          scenarios=scenarios),
        rounds=1, iterations=1,
    )
    report(result)

    rel = {r[0]: r[3] for r in result.rows}
    # Paper: squishy scheduling beats the baseline on every mix.  At the
    # bench's scaled-down search resolution individual mixes can dip a
    # probe below parity; the headline runs (EXPERIMENTS.md) win all five.
    for scenario in scenarios:
        assert rel[scenario] >= 0.93, scenario
    mean_rel = sum(rel.values()) / len(rel)
    assert mean_rel >= 1.0
    # The win exists somewhere with meaningful margin (paper: 11-64%).
    assert max(rel.values()) > 1.05
