"""Bench: Figure 17 -- query analysis vs even split (scaled down)."""

from conftest import report

from repro.experiments import fig17


def test_fig17_query_analysis(benchmark):
    result = benchmark.pedantic(
        lambda: fig17.run(duration_ms=8_000.0, iterations=9,
                          slos=(300.0, 500.0), gammas=(0.1, 10.0)),
        rounds=1, iterations=1,
    )
    report(result)

    # Paper: QA gives 13-55% higher throughput.  Our profiles give QA a
    # smaller (but real) edge -- see EXPERIMENTS.md; cells within search
    # resolution can tie or flip slightly.
    gains = {(r[0], r[1]): r[4] for r in result.rows}
    for key, gain in gains.items():
        assert gain >= 0.88, key  # never meaningfully worse
    mean_gain = sum(gains.values()) / len(gains)
    assert mean_gain >= 0.99
    assert max(gains.values()) > 1.02  # better somewhere
