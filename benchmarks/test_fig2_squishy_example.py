"""Bench: Table 2 / Figure 2 -- the squishy-packing worked example."""

from conftest import report

from repro.experiments import fig2


def test_fig2_squishy_example(benchmark):
    result = benchmark(fig2.run)
    report(result)

    saturate = {r[1]: r for r in result.rows if r[0] == "saturate"}
    # Paper: peak throughputs 160 / 128 / 128 req/s at batch 16.
    assert saturate["A"][6] == 160.0
    assert saturate["B"][6] == 128.0
    assert saturate["C"][6] == 128.0
    assert all(saturate[m][3] == 16 for m in "ABC")

    residual = [r for r in result.rows if r[0] == "residual"]
    # Two GPUs; A+B co-located in a 125 ms duty cycle, C alone.
    assert len(residual) == 2
    shared = next(r for r in residual if "+" in r[2])
    assert shared[2] == "A+B"
    assert shared[3] == "8+4"
    assert shared[4] == 125.0
    solo = next(r for r in residual if "+" not in r[2])
    assert solo[2] == "C"
