"""Bench: Figures 3-4 -- latency-split average throughput vs gamma."""

import pytest
from conftest import report

from repro.experiments import fig4


def test_fig4_latency_split(benchmark):
    result = benchmark(fig4.run)
    report(result)

    # Closed-form rows must match the paper's Figure 4 cells exactly.
    for row in result.rows:
        bx, by, gamma, avg, paper = row
        if paper == "DP-chosen":
            continue
        assert avg == pytest.approx(paper, rel=0.005), (bx, by, gamma)

    # The DP must pick the winning plan for each gamma: the X-heavy split
    # at gamma=0.1, the Y-heavy split at gamma=10 (no universal best).
    dp = {row[2]: (row[0], row[1]) for row in result.rows
          if row[4] == "DP-chosen"}
    assert dp[0.1] == (60, 40)
    assert dp[10.0] == (40, 60)
