"""Bench: Figure 5 -- lazy dropping bad rate vs alpha."""

from conftest import report

from repro.experiments import fig5


def test_fig5_lazy_drop(benchmark):
    result = benchmark(lambda: fig5.run(duration_ms=30_000.0))
    report(result)

    poisson = {r[0]: r[3] for r in result.rows if r[2] == "poisson"}
    uniform = {r[0]: r[3] for r in result.rows if r[2] == "uniform"}
    # Paper's shape: Poisson bad rate is tens of percent at alpha=1.0 and
    # near zero at 1.8; uniform stays near zero throughout.
    assert poisson[1.0] > 0.10
    assert poisson[1.8] < 0.05
    assert poisson[1.0] > 5 * poisson[1.8]
    assert all(v < 0.02 for v in uniform.values())
