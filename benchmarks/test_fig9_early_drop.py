"""Bench: Figure 9 -- max goodput, lazy vs early drop."""

from conftest import report

from repro.experiments import fig9


def test_fig9_early_drop(benchmark):
    result = benchmark(lambda: fig9.run(duration_ms=20_000.0, iterations=8))
    report(result)

    for alpha, lazy, early, optimal, gain in result.rows:
        # Early drop never loses to lazy, and neither exceeds optimal.
        assert early >= lazy
        assert early <= optimal * 1.02
    # Paper: the early-drop advantage is largest at small alpha (high
    # fixed cost), up to ~25%.
    gains = {r[0]: r[4] for r in result.rows}
    assert gains[1.0] > 1.10
    assert gains[1.0] > gains[1.8]
