"""Bench: greedy squishy packing vs the exact optimum (Appendix A)."""

from conftest import report

from repro.experiments import ilp_gap


def test_ilp_gap(benchmark):
    result = benchmark(lambda: ilp_gap.run(sizes=(4, 6, 8), trials=8))
    report(result)

    for n, trials, mean_exact, mean_greedy, mean_gap, worst_gap in result.rows:
        # Greedy never beats exact, and stays within 1.5x on average
        # (empirically it is nearly always optimal on these instances).
        assert mean_gap >= 1.0
        assert mean_gap <= 1.5
        assert worst_gap <= 2.0
