"""Bench: Table 1 -- device latencies and $ per 1000 invocations."""

from conftest import report

from repro.experiments import table1


def test_table1_device_costs(benchmark):
    result = benchmark(table1.run)
    report(result)

    rows = {r[0]: r for r in result.rows}
    # CPU latencies are orders of magnitude above GPU, and ordered by size.
    cpu = [rows[m][1] for m in table1.MODELS]
    gpu = [rows[m][2] for m in table1.MODELS]
    assert cpu == sorted(cpu)
    assert all(c > 10 * g for c, g in zip(cpu[2:], gpu[2:]))
    # Accelerator cost advantage: CPU >> TPU >= GPU per invocation.
    for m in ("resnet50", "inception_v4", "darknet53"):
        _, _, _, cpu_cost, tpu_cost, gpu_cost = rows[m]
        assert cpu_cost > 5 * tpu_cost > 0
        assert tpu_cost >= gpu_cost
