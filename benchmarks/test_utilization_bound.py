"""Bench: section 7.4 -- utilization vs the theoretical lower bound."""

from conftest import report

from repro.experiments import utilization


def test_utilization_bound(benchmark):
    result = benchmark(lambda: utilization.run(duration_ms=20_000.0))
    report(result)

    rows = {r[0]: r[1] for r in result.rows}
    # Paper: 84% of the aggressive theoretical lower bound, bad rate < 1%.
    assert rows["efficiency"] > 0.6
    assert rows["efficiency"] <= 1.0
    assert rows["request_bad_rate"] < 0.02
    assert rows["gpus_used"] >= rows["lower_bound_gpus"]
