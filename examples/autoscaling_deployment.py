#!/usr/bin/env python3
"""Multi-application deployment with epoch-based autoscaling.

Reproduces the flavor of the paper's section 7.4 / Figure 13 study: all
seven applications (game, traffic, dance, bb, bike, amber, logo) share a
cluster under Poisson arrivals; at t=60 s the offered load surges 2.2x
and subsides at t=150 s.  The global scheduler re-plans every 15 s from
observed workload statistics, growing and shrinking the GPU allocation.

Run:  python examples/autoscaling_deployment.py
"""

from repro import ClusterConfig, NexusCluster
from repro.workloads import all_apps
from repro.workloads.traces import step_rate

DURATION_MS = 240_000.0
BASE_TOTAL_RPS = 600.0


def main() -> None:
    config = ClusterConfig(
        device="gtx1080ti",
        max_gpus=40,
        dynamic=True,                 # re-plan every epoch
        expand_to_cluster=False,      # release idle GPUs
        epoch_ms=15_000.0,
        seed=1,
    )
    cluster = NexusCluster(config)
    queries = all_apps(config.device, num_games=3)
    per_app = BASE_TOTAL_RPS / len(queries)
    for query in queries:
        cluster.add_query(
            query,
            rate_rps=per_app,
            arrival="poisson",
            rate_fn=lambda t, r=per_app: step_rate(
                r, t, surge_start_ms=60_000.0, surge_end_ms=150_000.0
            ),
        )

    print(f"{len(queries)} applications, base load {BASE_TOTAL_RPS:.0f} q/s, "
          f"surge x2.2 during t=[60s, 150s), epoch 15 s")
    result = cluster.run(DURATION_MS)

    workload = result.query_metrics.workload_series(10_000.0, DURATION_MS)
    gpus = result.invocation_metrics.gpu_count_series(10_000.0, DURATION_MS)
    bad = result.query_metrics.bad_rate_series(10_000.0, DURATION_MS)

    print(f"\n{'t(s)':>5} {'load q/s':>9} {'GPUs':>5} {'bad%':>6}   load")
    peak = max(workload.values) or 1.0
    for (t, w), g, b in zip(workload.points(), gpus.values, bad.values):
        bar = "#" * int(30 * w / peak)
        print(f"{t/1000:5.0f} {w:9.1f} {g:5.0f} {b*100:6.2f}   {bar}")

    print(f"\nepochs run: {result.epochs}")
    print(f"overall request bad rate: "
          f"{result.invocation_metrics.bad_rate:.2%} (paper: 0.27%)")


if __name__ == "__main__":
    main()
