#!/usr/bin/env python3
"""Batch analytics: deferred execution instead of dropping.

Section 2 distinguishes "live" applications (tens to hundreds of
milliseconds) from "batch" applications (results due within hours), and
section 5 notes Nexus "could ... simply delay the execution of requests
that miss their deadlines to a later time and at a lower priority."

This example runs the same overloaded burst through one GPU twice:

- live mode: early-drop admission control sheds the excess;
- batch mode (``defer_missed=True``): the excess is parked on a deferred
  queue and served when the GPU would otherwise idle -- everything
  completes, some of it late, and fresh live traffic is never starved.

Run:  python examples/batch_analytics.py
"""

from repro.cluster.backend import Backend, BackendSession
from repro.cluster.messages import Request
from repro.core.profile import LinearProfile
from repro.metrics import MetricsCollector
from repro.simulation.simulator import Simulator
from repro.workloads.arrivals import poisson_arrivals


def run(defer: bool) -> MetricsCollector:
    sim = Simulator()
    collector = MetricsCollector()
    backend = Backend(sim, collector=collector, defer_missed=defer)
    profile = LinearProfile(name="indexer", alpha=1.0, beta=20.0,
                            max_batch=32)
    backend.set_schedule([BackendSession(
        session_id="indexer", profile=profile, slo_ms=150.0,
        target_batch=24, duty_cycle_ms=0.0,
    )])

    # A 3x-overload burst for 5 s, then calm traffic for 15 s.
    burst = poisson_arrivals(2_000.0, 5_000.0, seed=7)
    calm = [5_000.0 + t for t in poisson_arrivals(300.0, 15_000.0, seed=8)]
    for t in burst + calm:
        sim.schedule_at(t, lambda t=t: backend.enqueue(Request(
            session_id="indexer", arrival_ms=t, deadline_ms=t + 150.0)))
    sim.run()
    return collector


def main() -> None:
    for label, defer in (("live (early drop)", False),
                         ("batch (deferred)", True)):
        c = run(defer)
        print(f"{label:18s}: {c.total} requests -> "
              f"{c.ok_count} on time, {c.late_count} late, "
              f"{c.dropped_count} dropped "
              f"(answered {100 * (1 - c.dropped_count / c.total):.1f}%)")

    print("\nbatch mode answers every request; live mode protects the SLO\n"
          "by shedding -- the same engine, one flag apart.")


if __name__ == "__main__":
    main()
