#!/usr/bin/env python3
"""Capacity planning with batching profiles and the squishy packer.

A what-if tool built directly on the scheduling core (no simulation):
given a set of model sessions -- each a (model, latency SLO, request
rate) triple -- how many GPUs does the workload need, how does the count
move with the SLO, and how far is the greedy packer from the provable
optimum?

Run:  python examples/capacity_planning.py
"""

from repro.core import Session, SessionLoad, exact_min_gpus, squishy_bin_packing
from repro.core.profile import EffectiveProfile
from repro.models import profile


def load(model_id: str, slo_ms: float, rate_rps: float,
         device: str = "gtx1080ti") -> SessionLoad:
    prof = EffectiveProfile(base=profile(model_id, device), overlap=True)
    return SessionLoad(Session(model_id, slo_ms), rate_rps, prof)


def main() -> None:
    # A realistic mixed fleet: two detectors, three recognizers.
    workload = [
        load("ssd_vgg", 300.0, 180.0),
        load("resnet50", 100.0, 420.0),
        load("googlenet", 150.0, 250.0),
        load("mobilenet_v1", 80.0, 600.0),
        load("inception_v3", 200.0, 90.0),
    ]

    plan = squishy_bin_packing(workload)
    print(f"workload needs {plan.num_gpus} GPUs:")
    for i, gpu in enumerate(plan.gpus):
        kind = "saturated" if gpu.saturated else "shared"
        members = ", ".join(
            f"{a.session_id}(b={a.batch})" for a in gpu.allocations
        )
        print(f"  gpu{i} [{kind:9s}] occ={gpu.occupancy:4.0%}  {members}")

    # SLO sensitivity: halving every SLO forces smaller batches.
    tight = [
        SessionLoad(
            Session(l.session.model_id, l.slo_ms / 2), l.rate_rps, l.profile
        )
        for l in workload
    ]
    tight_plan = squishy_bin_packing(tight)
    print(f"\nhalving every SLO: {plan.num_gpus} -> {tight_plan.num_gpus} GPUs")

    # Optimality check on the residual (shared) portion via the exact
    # solver -- the role CPLEX plays in the paper's section 6.1.
    residual = [l for l in workload
                if l.rate_rps < l.peak_throughput()]
    if residual:
        exact = exact_min_gpus(residual)
        greedy = squishy_bin_packing(residual)
        print(f"\nresidual sessions: greedy {greedy.num_gpus} GPUs, "
              f"exact optimum {exact.num_gpus} GPUs")


if __name__ == "__main__":
    main()
