#!/usr/bin/env python3
"""Game-stream analysis: prefix batching across specialized models.

The paper's section 7.3.1 case study: 20 live game streams, each frame
needing six digit recognitions (a LeNet specialized to the game's font)
and one icon recognition (a last-layer-specialized ResNet-50), all within
a tight 50 ms SLO.  Per-game request rates follow Zipf-0.9.

The interesting system behavior: the 20 ResNet variants share everything
except their re-trained classifier, so Nexus fuses them into ONE
prefix-batched pseudo-model and batches all games' icon crops through the
shared trunk together -- compare the GPU count and goodput with prefix
batching on vs off.

Run:  python examples/game_streaming.py
"""

from repro import ClusterConfig, NexusCluster
from repro.workloads import game_queries
from repro.workloads.arrivals import zipf_rates

TOTAL_RATE = 1200.0
NUM_GAMES = 20
GPUS = 16


def deploy(prefix_batching: bool) -> None:
    config = ClusterConfig(
        device="gtx1080ti", max_gpus=GPUS,
        prefix_batching=prefix_batching,
        expand_to_cluster=False,  # report true GPU demand
    )
    cluster = NexusCluster(config)
    queries = game_queries(config.device, num_games=NUM_GAMES, slo_ms=50.0)
    for query, rate in zip(queries, zipf_rates(TOTAL_RATE, NUM_GAMES)):
        cluster.add_query(query, rate_rps=rate)

    plan = cluster.plan()
    label = "with prefix batching" if prefix_batching else "without"
    print(f"\n=== {label} ===")
    print(f"sessions after fusion: "
          f"{len({a.session_id for g in plan.gpus for a in g.allocations})}")
    print(f"GPUs needed: {plan.num_gpus}")
    mem = sum(g.memory_bytes() for g in plan.gpus) / 1e9
    print(f"total resident model memory: {mem:.1f} GB")

    result = cluster.run(duration_ms=15_000.0, warmup_ms=2_000.0)
    print(f"good rate at {TOTAL_RATE:.0f} q/s: {result.good_rate:.2%}")


def main() -> None:
    print(f"{NUM_GAMES} game streams, {TOTAL_RATE:.0f} q/s total, "
          f"SLO 50 ms, up to {GPUS} GPUs")
    deploy(prefix_batching=True)
    deploy(prefix_batching=False)


if __name__ == "__main__":
    main()
