#!/usr/bin/env python3
"""GPU timeline: watch the duty-cycle scheduler multiplex one GPU.

Builds a single backend hosting three sessions with different SLOs —
the section 4.1 situation — enables execution tracing, pushes traffic
through it, and renders the resulting Gantt strip. You can see the
round-robin duty cycle, batch sizes holding to plan, and idle slack.

Run:  python examples/gpu_timeline.py
"""

from repro.cluster.backend import Backend, BackendSession
from repro.cluster.messages import Request
from repro.core import Session, SessionLoad, squishy_bin_packing
from repro.core.profile import LinearProfile
from repro.metrics import MetricsCollector, render_gantt
from repro.simulation.simulator import Simulator
from repro.workloads.arrivals import uniform_arrivals


def main() -> None:
    # Three sessions in the spirit of Table 2.
    profiles = {
        "modelA": LinearProfile(name="modelA", alpha=3.0, beta=26.0, max_batch=64),
        "modelB": LinearProfile(name="modelB", alpha=5.0, beta=30.0, max_batch=64),
        "modelC": LinearProfile(name="modelC", alpha=4.0, beta=44.0, max_batch=64),
    }
    loads = [
        SessionLoad(Session("modelA", 200.0), 64.0, profiles["modelA"]),
        SessionLoad(Session("modelB", 250.0), 32.0, profiles["modelB"]),
        SessionLoad(Session("modelC", 250.0), 32.0, profiles["modelC"]),
    ]
    plan = squishy_bin_packing(loads)
    print(f"squishy packing chose {plan.num_gpus} GPU(s):")
    for i, gpu in enumerate(plan.gpus):
        print(f"  gpu{i}: duty {gpu.duty_cycle_ms:.0f} ms, "
              f"occupancy {gpu.occupancy:.0%}: "
              + ", ".join(f"{a.session_id} b={a.batch}"
                          for a in gpu.allocations))

    # Deploy the first GPU's schedule on a traced backend and drive it.
    sim = Simulator()
    collector = MetricsCollector()
    backend = Backend(sim, collector=collector)
    backend.trace_enabled = True
    gpu0 = plan.gpus[0]
    backend.set_schedule([
        BackendSession(
            session_id=a.session_id,
            profile=a.load.profile,
            slo_ms=a.load.slo_ms,
            target_batch=a.batch,
            duty_cycle_ms=gpu0.duty_cycle_ms,
        )
        for a in gpu0.allocations
    ])

    horizon = 1_500.0
    for alloc in gpu0.allocations:
        for t in uniform_arrivals(alloc.load.rate_rps, horizon, seed=1):
            sim.schedule_at(t, lambda t=t, sid=alloc.session_id:
                            backend.enqueue(Request(
                                session_id=sid, arrival_ms=t,
                                deadline_ms=t + alloc.load.slo_ms)))
    sim.run()

    print(f"\n{collector.total} requests, "
          f"{collector.good_rate:.1%} within SLO, "
          f"GPU busy {backend.utilization(horizon):.0%}\n")
    print(render_gantt(backend.trace, start_ms=0.0, end_ms=horizon,
                       width=100))


if __name__ == "__main__":
    main()
