#!/usr/bin/env python3
"""Quickstart: serve one DNN application on a simulated GPU cluster.

Builds the paper's traffic-analysis query (SSD object detection feeding
car and face recognizers -- Figure 8), deploys it on 8 simulated GTX
1080Ti GPUs with full Nexus (squishy bin packing, query analysis, prefix
batching, early drop, CPU/GPU overlap), offers 200 queries/second for 20
virtual seconds, and reports what happened.

Run:  python examples/quickstart.py
"""

from repro import ClusterConfig, NexusCluster
from repro.workloads import traffic_query


def main() -> None:
    # 1. Configure the cluster: device model, size, and feature flags
    #    (all Nexus features are on by default).
    config = ClusterConfig(device="gtx1080ti", max_gpus=8)
    cluster = NexusCluster(config)

    # 2. Declare the application: a dataflow query with one whole-query
    #    latency SLO (400 ms).  Nexus splits the SLO across stages itself.
    query = traffic_query(config.device, slo_ms=400.0)
    cluster.add_query(query, rate_rps=200.0)

    # 3. Inspect the plan before running: which sessions, which GPUs,
    #    what batch sizes.
    plan = cluster.plan()
    print(f"planned {plan.num_gpus} GPUs for 200 q/s:")
    for i, gpu in enumerate(plan.gpus):
        allocs = ", ".join(
            f"{a.session_id} (batch {a.batch}, {a.exec_ms:.0f} ms)"
            for a in gpu.allocations
        )
        print(f"  gpu{i}: duty {gpu.duty_cycle_ms:.0f} ms, "
              f"occupancy {gpu.occupancy:.0%} -> {allocs}")
    print("latency split:", {
        stage: f"{budget:.0f} ms"
        for stage, budget in cluster._splits[query.name].items()
    })

    # 4. Serve traffic for 20 virtual seconds (2 s warmup excluded).
    result = cluster.run(duration_ms=20_000.0, warmup_ms=2_000.0)

    # 5. Report.
    print(f"\nserved {result.query_metrics.total} queries")
    print(f"good rate (within 400 ms SLO): {result.good_rate:.2%}")
    print(f"p50 latency: {result.query_metrics.latency_percentile(50):.0f} ms")
    print(f"p99 latency: {result.query_metrics.latency_percentile(99):.0f} ms")
    print(f"GPUs used: {result.gpus_used}")


if __name__ == "__main__":
    main()
