#!/usr/bin/env python3
"""Trace inspection: query the structured event stream programmatically.

Runs the squishy-packed multi-session backend from the gpu_timeline
example with a recording tracer attached, then answers questions the
Gantt strip can only hint at:

- how often each batch size actually executed (vs the planned target),
- where every lost request went (drop-reason taxonomy),
- the worst duty-cycle latency each session observed, checked against
  the squishy worst-case bound duty + l(b) from section 4.1.

Everything here also works on a full ``NexusCluster`` run — pass
``trace=True`` to ``run()`` and feed ``result.trace`` to the same
helpers (see docs/observability.md).

Run:  python examples/trace_inspection.py
"""

from repro.cluster.backend import Backend, BackendSession
from repro.cluster.messages import Request
from repro.core import Session, SessionLoad, squishy_bin_packing
from repro.metrics import MetricsCollector
from repro.models.profiler import profile
from repro.observability import (
    BATCH_EXECUTED,
    REQUEST_COMPLETED,
    MetricsSink,
    TraceBuffer,
    Tracer,
    batch_size_histogram,
    drop_reasons,
    gpu_busy_ms,
    session_cycle_stats,
)
from repro.simulation.simulator import Simulator
from repro.workloads.arrivals import uniform_arrivals


def main() -> None:
    device = "gtx1080ti"
    loads = [
        SessionLoad(Session("googlenet", 200.0), 120.0,
                    profile("googlenet", device)),
        SessionLoad(Session("resnet50", 250.0), 60.0,
                    profile("resnet50", device)),
        SessionLoad(Session("mobilenet_v1", 150.0), 90.0,
                    profile("mobilenet_v1", device)),
    ]
    plan = squishy_bin_packing(loads)
    gpu0 = plan.gpus[0]
    print(f"squishy packed {len(loads)} sessions onto {plan.num_gpus} "
          f"GPU(s); inspecting gpu0 (duty {gpu0.duty_cycle_ms:.1f} ms)")

    # A tracer with two sinks: the metrics collector (aggregates) and a
    # buffer recording every structured event (the raw stream).
    sim = Simulator()
    collector = MetricsCollector()
    buffer = TraceBuffer()
    backend = Backend(sim, collector=collector,
                      tracer=Tracer([MetricsSink(invocation=collector),
                                     buffer]))
    specs = {}
    for a in gpu0.allocations:
        specs[a.session_id] = BackendSession(
            session_id=a.session_id,
            profile=a.load.profile,
            slo_ms=a.load.slo_ms,
            target_batch=a.batch,
            duty_cycle_ms=gpu0.duty_cycle_ms,
        )
    backend.set_schedule(list(specs.values()))

    horizon = 4_000.0
    for a in gpu0.allocations:
        for t in uniform_arrivals(a.load.rate_rps, horizon, seed=1):
            sim.schedule_at(t, lambda t=t, sid=a.session_id, slo=a.load.slo_ms:
                            backend.enqueue(Request(
                                session_id=sid, arrival_ms=t,
                                deadline_ms=t + slo)))
    sim.run()

    print(f"\ncaptured {len(buffer.events)} events "
          f"({len(buffer.by_kind(REQUEST_COMPLETED))} completions, "
          f"{len(buffer.by_kind(BATCH_EXECUTED))} batches)")
    busy = gpu_busy_ms(buffer.events)
    print(f"GPU busy: {busy[0]:.0f} ms of {horizon:.0f} ms "
          f"({busy[0] / horizon:.0%} occupancy)")

    print("\nbatch-size histogram (executions per batch size):")
    for size, count in sorted(batch_size_histogram(buffer.events).items()):
        print(f"  b={size:<3} {'#' * count} {count}")

    reasons = drop_reasons(buffer.events)
    print(f"\ndrops by reason: {reasons or 'none'}")

    # Section 4.1's worst case: a request waits at most one duty cycle
    # and then executes in l(b), so squishy plans duty + l(b) <= SLO.
    # Check both views: the realized cycle stats (how tightly the
    # schedule ran) and the hard per-request guarantee (latency <= SLO).
    print("\nduty-cycle tightness (realized vs planned "
          f"duty {gpu0.duty_cycle_ms:.1f} ms) and the squishy bound:")
    worst_latency: dict[str, float] = {}
    for ev in buffer.by_kind(REQUEST_COMPLETED):
        if ev.ok:
            worst_latency[ev.session_id] = max(
                worst_latency.get(ev.session_id, 0.0),
                ev.ts_ms - ev.arrival_ms)
    stats = session_cycle_stats(buffer.events)
    for (gpu, sid), s in sorted(stats.items()):
        spec = specs[sid]
        bound = spec.duty_cycle_ms + spec.profile.latency(spec.target_batch)
        lat = worst_latency.get(sid, 0.0)
        verdict = "ok" if lat <= spec.slo_ms else "SLO MISS"
        print(f"  gpu{gpu} {sid:<20} realized cycle "
              f"{s['max_start_gap_ms']:6.1f} ms  "
              f"bound duty+l(b) {bound:6.1f} ms  "
              f"worst latency {lat:6.1f} ms / SLO {spec.slo_ms:.0f} ms "
              f"[{verdict}]")
    assert all(worst_latency.get(sid, 0.0) <= specs[sid].slo_ms
               for sid in specs), "a served request missed its SLO"
    print("\nevery served request finished within its SLO -- the "
          "duty-cycle schedule kept the squishy promise.")


if __name__ == "__main__":
    main()
