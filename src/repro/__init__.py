"""repro: a Python reproduction of Nexus (SOSP 2019).

Nexus is a GPU cluster engine for serving DNN-based video analysis under
latency SLOs.  This package reimplements the full system -- squishy bin
packing, complex query scheduling, prefix batching, batch-aware dispatch
-- on top of an analytic GPU cost model and a discrete-event cluster
simulator (see DESIGN.md for the substitution map).

Quickstart::

    from repro import NexusCluster, ClusterConfig
    from repro.workloads import traffic_query

    cluster = NexusCluster(ClusterConfig(device="gtx1080ti", max_gpus=16))
    cluster.add_query(traffic_query("gtx1080ti"), rate_rps=100)
    result = cluster.run(duration_ms=20_000, warmup_ms=2_000)
    print(result.good_rate, result.gpus_used)
"""

from .cluster import (
    AppSpec,
    ClusterConfig,
    ClusterResult,
    NexusCluster,
    find_max_rate,
)
from .core import (
    BatchingProfile,
    EarlyDropPolicy,
    LatencySplit,
    LazyDropPolicy,
    LinearProfile,
    Query,
    QueryStage,
    Session,
    SessionLoad,
    TabulatedProfile,
    even_split,
    plan_query,
    squishy_bin_packing,
)
from .models import get_device, get_model, profile, profile_model
from .observability import TraceBuffer, TraceEvent, Tracer, capture_trace

__version__ = "1.0.0"

__all__ = [
    "AppSpec",
    "ClusterConfig",
    "ClusterResult",
    "NexusCluster",
    "find_max_rate",
    "BatchingProfile",
    "EarlyDropPolicy",
    "LatencySplit",
    "LazyDropPolicy",
    "LinearProfile",
    "Query",
    "QueryStage",
    "Session",
    "SessionLoad",
    "TabulatedProfile",
    "even_split",
    "plan_query",
    "squishy_bin_packing",
    "get_device",
    "get_model",
    "profile",
    "profile_model",
    "TraceBuffer",
    "TraceEvent",
    "Tracer",
    "capture_trace",
    "__version__",
]
