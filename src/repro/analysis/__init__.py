"""Static analysis for the cluster engine: nexuslint + plan validation.

Two runtime-free checkers guard the repo's correctness contracts:

- :mod:`repro.analysis.lint` (``python -m repro lint``) — an AST lint
  pass rejecting determinism hazards (wall-clock reads, unseeded RNGs,
  set-ordered iteration), unit-discipline hazards (float ``==``, mixed
  ``_ms``/``_us``/``_s`` arithmetic), and untraced request-state
  mutations in the planning and lifecycle paths.  Directory runs add
  the whole-program pass: :mod:`repro.analysis.callgraph` builds a
  project-wide symbol table + call graph and
  :mod:`repro.analysis.asynclint` runs flow-aware asyncio-hazard rules
  (blocking calls reachable from coroutines, state read-modify-written
  across an ``await``, unawaited coroutines, orphaned tasks, CPU-bound
  serving handlers) over it, gated by a ``.nexuslint-baseline.json``
  ratchet.
- :mod:`repro.analysis.plan_check` — Algorithm-1 invariant validation on
  any :class:`~repro.core.squishy.SchedulePlan` (SLO headroom, duty-cycle
  occupancy, GPU memory, session double-assignment, node-id uniqueness),
  wired as an assertion layer into the epoch scheduler, the backend
  pool, and the experiments.

See docs/static-analysis.md for the rule reference and suppression
syntax.
"""

from .asynclint import RULES as ASYNC_RULES
from .asynclint import analyze_graph
from .callgraph import (
    CallGraph,
    build_call_graph,
    build_call_graph_from_paths,
    module_name_for,
)
from .lint import RULES, Finding, all_rules, lint_paths, lint_source
from .plan_check import (
    PlanCheckError,
    PlanViolation,
    assert_valid_plan,
    check_gpu_plan,
    check_plan,
    plans_checked,
)

__all__ = [
    "Finding",
    "RULES",
    "ASYNC_RULES",
    "all_rules",
    "analyze_graph",
    "CallGraph",
    "build_call_graph",
    "build_call_graph_from_paths",
    "module_name_for",
    "lint_source",
    "lint_paths",
    "PlanViolation",
    "PlanCheckError",
    "check_gpu_plan",
    "check_plan",
    "assert_valid_plan",
    "plans_checked",
]
