"""Static analysis for the cluster engine: nexuslint + plan validation.

Two runtime-free checkers guard the repo's correctness contracts:

- :mod:`repro.analysis.lint` (``python -m repro lint``) — an AST lint
  pass rejecting determinism hazards (wall-clock reads, unseeded RNGs,
  set-ordered iteration), unit-discipline hazards (float ``==``, mixed
  ``_ms``/``_us``/``_s`` arithmetic), and untraced request-state
  mutations in the planning and lifecycle paths.
- :mod:`repro.analysis.plan_check` — Algorithm-1 invariant validation on
  any :class:`~repro.core.squishy.SchedulePlan` (SLO headroom, duty-cycle
  occupancy, GPU memory, session double-assignment, node-id uniqueness),
  wired as an assertion layer into the epoch scheduler, the backend
  pool, and the experiments.

See docs/static-analysis.md for the rule reference and suppression
syntax.
"""

from .lint import RULES, Finding, lint_paths, lint_source
from .plan_check import (
    PlanCheckError,
    PlanViolation,
    assert_valid_plan,
    check_gpu_plan,
    check_plan,
    plans_checked,
)

__all__ = [
    "Finding",
    "RULES",
    "lint_source",
    "lint_paths",
    "PlanViolation",
    "PlanCheckError",
    "check_gpu_plan",
    "check_plan",
    "assert_valid_plan",
    "plans_checked",
]
