"""Flow-aware asyncio-hazard rules over the whole-program call graph.

The serving plane (PR 7) moved the planner and dispatch state onto a
real event loop.  That changes the failure modes: one blocking call in a
coroutine stalls every in-flight request on the shared core, and every
``await`` is a preemption point where another coroutine can see —
or clobber — half-updated ``self`` state.  These hazards are invisible
to the per-file syntactic pass because they live in *reachability*
(a handler three calls away from ``time.sleep``) and in *ordering*
(a read before an ``await``, the dependent write after it).

Rules (all report through the shared :class:`~repro.analysis.lint.Finding`
type and obey the same ``# nexuslint: disable=`` suppressions):

- ``blocking-call-in-async``      a coroutine transitively reaches a
  blocking primitive (``time.sleep``, blocking socket/subprocess/file
  I/O, or a simulator run loop like ``run_until``/``advance_to``)
  through resolved project calls.  The finding is anchored at the call
  site inside the coroutine that starts the blocking chain, and the
  message spells out the chain.
- ``interleaved-state-mutation``  the asyncio race detector: a
  ``self.<attr>`` read before an ``await`` feeding a write after it.
  The value written was computed from a snapshot another coroutine may
  have invalidated during the suspension.  Re-reading after the await
  (``self.x = self.x + 1``) or publishing the write before awaiting
  both pass.
- ``unawaited-coroutine``         a call that provably returns a
  coroutine (project ``async def`` or a known asyncio factory) whose
  result is discarded — the body never runs.
- ``orphan-task``                 ``create_task``/``ensure_future``
  whose returned handle is dropped: the task is garbage-collectable
  mid-flight and its exceptions vanish.  Retaining the handle (or
  chaining ``add_done_callback``) passes.
- ``cpu-bound-handler``           ``serving/`` request handlers
  (``_h_*`` / ``handle*`` by the repo's route-handler convention) that
  loop unboundedly over request collections on the event loop.

Like the call graph itself, every rule is an under-approximation:
hazards are reported only along edges the resolver can prove, so a
finding is worth reading, never noise to waive wholesale.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable

from .callgraph import CallGraph, CallSite, FunctionNode
from .lint import Finding

__all__ = ["RULES", "analyze_graph"]

#: rule slug -> one-line description (merged into the CLI registry).
RULES: dict[str, str] = {
    "blocking-call-in-async":
        "coroutine transitively reaches a blocking call; it stalls the "
        "event loop — move it off-loop or use the async equivalent",
    "interleaved-state-mutation":
        "self.* read before an await and written after it; another "
        "coroutine may update it during the suspension",
    "unawaited-coroutine":
        "coroutine call result discarded; the body never runs",
    "orphan-task":
        "create_task/ensure_future handle dropped; exceptions are lost "
        "— retain the task and add a done-callback",
    "cpu-bound-handler":
        "serving handler loops unboundedly over a request collection "
        "on the event loop; bound the scan or defer it",
}

#: canonical external callables that block the calling thread.
_BLOCKING_EXTERNAL = frozenset({
    "time.sleep",
    "socket.create_connection", "socket.getaddrinfo",
    "socket.gethostbyname",
    "subprocess.run", "subprocess.call", "subprocess.check_call",
    "subprocess.check_output", "subprocess.Popen",
    "urllib.request.urlopen",
    "requests.get", "requests.post", "requests.put", "requests.request",
    "open", "input",
})

#: terminal attribute names that block when the receiver is unresolved:
#: pathlib-style synchronous file I/O and the simulator run loops
#: (``ManualEventSource.run_until`` / ``advance_to`` spin virtual time to
#: completion — called from a coroutine they freeze the wall-clock loop).
#: ``drain`` is deliberately absent: ``StreamWriter.drain()`` is awaitable.
_BLOCKING_TERMINALS = frozenset({
    "read_text", "write_text", "read_bytes", "write_bytes",
    "run_until", "advance_to",
})

#: external factories that return coroutines (for unawaited detection).
_KNOWN_COROUTINES = frozenset({
    "asyncio.sleep", "asyncio.gather", "asyncio.wait", "asyncio.wait_for",
    "asyncio.open_connection", "asyncio.start_server", "asyncio.to_thread",
})

#: terminal names that spawn tasks whose handle must be retained.
_TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})

#: serving-handler naming convention (HTTP route handlers and friends).
_HANDLER_PREFIXES = ("_h_", "handle")

#: iterable-name fragments that mark request-scaled collections.
_REQUESTY_FRAGMENTS = (
    "request", "pending", "queue", "backlog", "inflight", "conn",
)

#: BFS depth cap for blocking-chain searches (paranoia, not policy).
_CHAIN_DEPTH_CAP = 24


def analyze_graph(graph: CallGraph) -> list[Finding]:
    """Run every async-hazard rule; returns raw (unsuppressed) findings."""
    findings: list[Finding] = []
    ordered = sorted(
        graph.functions.values(),
        key=lambda f: (f.path, f.lineno, f.col),
    )
    for fn in ordered:
        if fn.is_async:
            findings.extend(_check_blocking(fn, graph))
            findings.extend(_check_interleaved(fn))
        findings.extend(_check_unawaited(fn, graph))
        findings.extend(_check_orphan_task(fn))
        if _in_serving(fn.rel_path) and _is_handler(fn):
            findings.extend(_check_cpu_bound(fn))
    return findings


def _in_serving(rel_path: Path) -> bool:
    return "serving" in rel_path.parts[:-1]


def _is_handler(fn: FunctionNode) -> bool:
    return fn.name.startswith(_HANDLER_PREFIXES)


def _finding(fn: FunctionNode, node_line: int, node_col: int,
             rule: str, message: str) -> Finding:
    return Finding(
        path=fn.path, line=node_line, col=node_col,
        rule=rule, message=message,
    )


# ----------------------------------------------------- blocking-call-in-async


def _direct_blocking(site: CallSite) -> str | None:
    """The blocking primitive this call site hits directly, if any."""
    if site.awaited:
        return None
    if site.external is not None and site.external in _BLOCKING_EXTERNAL:
        return site.external
    if (
        site.resolved is None
        and site.raw is not None
        and "." in site.raw
        and site.terminal in _BLOCKING_TERMINALS
    ):
        return site.raw
    return None


def _check_blocking(fn: FunctionNode, graph: CallGraph) -> list[Finding]:
    """BFS from the coroutine over resolved project edges; report the
    shortest chain that reaches a blocking primitive."""
    # Direct hit: anchor at the blocking call itself.
    for site in fn.calls:
        primitive = _direct_blocking(site)
        if primitive is not None:
            return [_finding(
                fn, site.lineno, site.col, "blocking-call-in-async",
                f"coroutine {fn.name}() calls {primitive}(), which blocks "
                f"the event loop; use the async equivalent or move it "
                f"off-loop",
            )]
    # Transitive: anchor at the first edge of the chain inside fn.
    seen: set[str] = {fn.qualname}
    queue: list[tuple[str, CallSite, tuple[str, ...]]] = []
    for site in fn.calls:
        if site.resolved is not None and site.resolved not in seen:
            seen.add(site.resolved)
            queue.append((site.resolved, site, (fn.name,)))
    depth = 0
    while queue and depth < _CHAIN_DEPTH_CAP:
        depth += 1
        next_queue: list[tuple[str, CallSite, tuple[str, ...]]] = []
        for qualname, anchor, path_names in queue:
            callee = graph.functions.get(qualname)
            if callee is None:
                continue
            chain = path_names + (callee.name,)
            for site in callee.calls:
                primitive = _direct_blocking(site)
                if primitive is not None:
                    arrow = " -> ".join(chain)
                    return [_finding(
                        fn, anchor.lineno, anchor.col,
                        "blocking-call-in-async",
                        f"coroutine {fn.name}() reaches blocking "
                        f"{primitive}() via {arrow}; it stalls the event "
                        f"loop for every in-flight request",
                    )]
            for site in callee.calls:
                if site.resolved is not None and site.resolved not in seen:
                    seen.add(site.resolved)
                    next_queue.append((site.resolved, anchor, chain))
        queue = next_queue
    return []


# ------------------------------------------------- interleaved-state-mutation


def _is_self_attr(node: ast.expr) -> str | None:
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _mutation_events(
    fn_node: ast.AsyncFunctionDef,
) -> list[tuple[str, str | None, ast.AST]]:
    """Linearize the body into ``read``/``write``/``await`` events on
    ``self.*`` attributes, in evaluation order (value before store)."""
    events: list[tuple[str, str | None, ast.AST]] = []

    def expr(node: ast.expr) -> None:
        if isinstance(node, ast.Await):
            expr(node.value)
            events.append(("await", None, node))
            return
        attr = _is_self_attr(node)
        if attr is not None:
            if isinstance(node.ctx, ast.Load):
                events.append(("read", attr, node))
            elif isinstance(node.ctx, ast.Store):
                events.append(("write", attr, node))
            return
        if isinstance(node, ast.Lambda):
            return  # deferred body: nothing happens at definition time
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                expr(child)
            elif isinstance(child, ast.comprehension):
                expr(child.iter)
                for cond in child.ifs:
                    expr(cond)
            elif isinstance(child, ast.keyword):
                expr(child.value)

    def stmt(node: ast.stmt) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # separate execution contexts
        if isinstance(node, ast.Assign):
            expr(node.value)
            for target in node.targets:
                expr(target)
            return
        if isinstance(node, ast.AnnAssign):
            if node.value is not None:
                expr(node.value)
            expr(node.target)
            return
        if isinstance(node, ast.AugAssign):
            # x += v re-reads at the store, so the read is only stale if
            # the *value* expression awaits in between.
            attr = _is_self_attr(node.target)
            if attr is not None:
                events.append(("read", attr, node.target))
            else:
                expr(node.target)
            expr(node.value)
            if attr is not None:
                events.append(("write", attr, node.target))
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                stmt(child)
            elif isinstance(child, ast.expr):
                expr(child)
            elif isinstance(child, ast.excepthandler):
                for sub in child.body:
                    stmt(sub)
            elif isinstance(child, ast.withitem):
                expr(child.context_expr)
                if child.optional_vars is not None:
                    expr(child.optional_vars)

    for body_stmt in fn_node.body:
        stmt(body_stmt)
    return events


def _check_interleaved(fn: FunctionNode) -> list[Finding]:
    """Flag writes to ``self.<attr>`` whose value was derived from a read
    on the other side of an ``await``."""
    assert isinstance(fn.node, ast.AsyncFunctionDef)
    findings: list[Finding] = []
    fresh: set[str] = set()   # attrs read since the last await
    stale: set[str] = set()   # attrs read before some await, not re-read
    flagged: set[str] = set()
    for kind, attr, node in _mutation_events(fn.node):
        if kind == "read":
            assert attr is not None
            fresh.add(attr)
            stale.discard(attr)
        elif kind == "await":
            stale |= fresh
            fresh.clear()
        else:  # write
            assert attr is not None
            if attr in stale and attr not in flagged:
                flagged.add(attr)
                findings.append(_finding(
                    fn, getattr(node, "lineno", fn.lineno),
                    getattr(node, "col_offset", 0) + 1,
                    "interleaved-state-mutation",
                    f"self.{attr} is read before an await and written "
                    f"after it in {fn.name}(); a concurrent coroutine can "
                    f"update it during the suspension — re-read it after "
                    f"awaiting, or publish the write first",
                ))
            stale.discard(attr)
            fresh.discard(attr)
    return findings


# ----------------------------------------------------------- unawaited + orphan


def _check_unawaited(fn: FunctionNode, graph: CallGraph) -> list[Finding]:
    findings: list[Finding] = []
    for site in fn.calls:
        if not site.discarded or site.awaited:
            continue
        target_async = (
            site.resolved is not None
            and site.resolved in graph.functions
            and graph.functions[site.resolved].is_async
        )
        known = site.external in _KNOWN_COROUTINES
        if target_async or known:
            name = site.raw or site.terminal or "<coroutine>"
            findings.append(_finding(
                fn, site.lineno, site.col, "unawaited-coroutine",
                f"{name}() returns a coroutine that is never awaited; "
                f"its body never runs",
            ))
    return findings


def _check_orphan_task(fn: FunctionNode) -> list[Finding]:
    findings: list[Finding] = []
    for site in fn.calls:
        if site.discarded and site.terminal in _TASK_SPAWNERS:
            findings.append(_finding(
                fn, site.lineno, site.col, "orphan-task",
                f"{site.raw or site.terminal}() task handle is dropped; "
                f"the task can be collected mid-flight and its exception "
                f"is lost — retain it and add a done-callback",
            ))
    return findings


# ----------------------------------------------------------- cpu-bound-handler


def _loop_iter_is_requesty(iter_node: ast.expr) -> bool:
    """An unbounded iteration over a request-scaled collection?"""
    node = iter_node
    # Slices and islice() bound the scan; list()/sorted()/values() etc.
    # are pass-throughs that keep it unbounded.
    while isinstance(node, ast.Call):
        name = (
            node.func.attr if isinstance(node.func, ast.Attribute)
            else node.func.id if isinstance(node.func, ast.Name)
            else None
        )
        if name == "islice":
            return False
        if not node.args:
            node = node.func  # x.values() -> inspect the receiver chain
            break
        node = node.args[0]
    if isinstance(node, ast.Subscript) and isinstance(node.slice, ast.Slice):
        return False
    terminals: list[str] = []
    for child in ast.walk(node):
        if isinstance(child, ast.Attribute):
            terminals.append(child.attr.lower())
        elif isinstance(child, ast.Name):
            terminals.append(child.id.lower())
    return any(
        frag in name for name in terminals for frag in _REQUESTY_FRAGMENTS
    )


def _check_cpu_bound(fn: FunctionNode) -> list[Finding]:
    """Unbounded loops over request collections inside serving handlers
    (including their deferred closures — those run on the loop too)."""
    findings: list[Finding] = []
    for node in ast.walk(fn.node):
        if isinstance(node, ast.For) and _loop_iter_is_requesty(node.iter):
            findings.append(_finding(
                fn, node.lineno, node.col_offset + 1, "cpu-bound-handler",
                f"handler {fn.name}() iterates an unbounded request "
                f"collection on the event loop; bound the scan (slice / "
                f"islice) or defer it to the epoch loop",
            ))
        elif isinstance(node, ast.While):
            test = node.test
            infinite = (
                isinstance(test, ast.Constant) and test.value is True
            )
            if infinite and not any(
                isinstance(sub, (ast.Break, ast.Await, ast.Return))
                for sub in ast.walk(node)
            ):
                findings.append(_finding(
                    fn, node.lineno, node.col_offset + 1,
                    "cpu-bound-handler",
                    f"handler {fn.name}() spins in a while-True loop with "
                    f"no await/break; nothing else runs on the loop",
                ))
    return findings


def rules_for(requested: Iterable[str] | None) -> frozenset[str]:
    """The subset of async rules in a requested rule set (None = all)."""
    if requested is None:
        return frozenset(RULES)
    return frozenset(RULES) & frozenset(requested)
