"""Project-wide symbol table and call graph for whole-program analysis.

nexuslint's original rules are per-file and syntactic; the async-hazard
rules (:mod:`repro.analysis.asynclint`) need to know what a call *means*:
whether ``await self._http.serve(...)`` lands on a coroutine, whether a
helper transitively reaches ``time.sleep``, which method a ``self.x()``
dispatch lands in.  This module builds that picture without importing
any analyzed code:

- every module is parsed once and contributes its functions, classes
  (with base-class layout) and import bindings to a symbol table;
- call sites are resolved interprocedurally: bare names through the
  lexical scope chain and imports, ``self.x()`` through the class layout
  (walking project-local bases), ``mod.fn()`` through import aliases
  (including relative and function-local imports, which this codebase
  uses pervasively to break cycles), plus one level of constructor-typed
  bindings: ``self._http = HttpServer(...)`` makes ``self._http.serve()``
  resolve to ``HttpServer.serve``, and likewise for locals
  (``server = NexusServer(cfg); server.start()``);
- unresolvable calls keep their raw dotted text and terminal name, so
  heuristic rules can still reason about them.

The graph is deliberately an under-approximation: an edge is recorded
only when the target is provably a project symbol.  That is the right
bias for lint rules, which must not hallucinate hazards across dynamic
dispatch they cannot see.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

__all__ = [
    "CallSite",
    "FunctionNode",
    "ClassInfo",
    "ModuleInfo",
    "CallGraph",
    "build_call_graph",
    "build_call_graph_from_paths",
    "module_name_for",
]

#: recursion guard for base-class walks (layout cycles are user error).
_MRO_DEPTH_CAP = 16


def module_name_for(path: Path, root: Path | None = None) -> str:
    """Dotted module name for a source file.

    Walks up through ``__init__.py``-bearing package directories (the
    normal case for the installed ``repro`` package).  For bare trees
    with no package markers (lint fixtures), falls back to the path
    relative to ``root`` so ``serving/mod.py`` and ``core/mod.py`` get
    distinct names.
    """
    resolved = path.resolve()
    packages: list[str] = []
    parent = resolved.parent
    while (parent / "__init__.py").exists():
        packages.append(parent.name)
        parent = parent.parent
    if packages:
        parts = list(reversed(packages))
        if resolved.stem != "__init__":
            parts.append(resolved.stem)
        return ".".join(parts)
    if root is not None:
        try:
            rel = resolved.relative_to(Path(root).resolve())
        except ValueError:
            pass
        else:
            parts = list(rel.parts[:-1])
            if rel.stem != "__init__":
                parts.append(rel.stem)
            if parts:
                return ".".join(parts)
    return resolved.stem


@dataclass
class CallSite:
    """One call expression, with whatever resolution succeeded."""

    raw: str | None        #: dotted source text (``"self.deploy"``), if any
    terminal: str | None   #: rightmost identifier (``"deploy"``)
    lineno: int
    col: int
    awaited: bool          #: the call is directly under an ``await``
    discarded: bool        #: the value is dropped (bare expression stmt)
    resolved: str | None = None   #: project function qualname, if resolved
    external: str | None = None   #: canonical external name (``time.sleep``)


@dataclass
class FunctionNode:
    """One function/method/nested def in the project."""

    qualname: str
    module: str
    path: str
    rel_path: Path
    name: str
    lineno: int
    col: int
    is_async: bool
    class_qualname: str | None
    node: ast.FunctionDef | ast.AsyncFunctionDef
    calls: list[CallSite] = field(default_factory=list)
    #: directly nested defs: name -> qualname (lexical scope chain).
    local_defs: dict[str, str] = field(default_factory=dict)
    #: constructor-typed locals: name -> raw class ref (resolved later).
    local_types: dict[str, str] = field(default_factory=dict)
    parent: str | None = None  #: enclosing function qualname, if nested


@dataclass
class ClassInfo:
    """One class: methods, raw base refs, constructor-typed attributes."""

    qualname: str
    module: str
    name: str
    bases: list[str] = field(default_factory=list)
    methods: dict[str, str] = field(default_factory=dict)
    #: ``self.attr = ClassName(...)`` bindings: attr -> raw class ref.
    attr_types: dict[str, str] = field(default_factory=dict)
    #: attr_types after resolution: attr -> class qualname.
    resolved_attr_types: dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One module's top-level symbol table."""

    name: str
    path: str
    is_package: bool
    #: local binding -> canonical dotted target (import table; bindings
    #: from function-local imports are merged in deliberately).
    imports: dict[str, str] = field(default_factory=dict)
    functions: dict[str, str] = field(default_factory=dict)
    classes: dict[str, str] = field(default_factory=dict)


class CallGraph:
    """The resolved whole-program call graph."""

    def __init__(self) -> None:
        self.modules: dict[str, ModuleInfo] = {}
        self.functions: dict[str, FunctionNode] = {}
        self.classes: dict[str, ClassInfo] = {}

    # ---------------------------------------------------------- queries

    def functions_in(self, path: str) -> list[FunctionNode]:
        return sorted(
            (f for f in self.functions.values() if f.path == path),
            key=lambda f: (f.lineno, f.col),
        )

    def resolved_callees(self, qualname: str) -> list[str]:
        """Project functions this function calls (resolved edges only)."""
        fn = self.functions.get(qualname)
        if fn is None:
            return []
        seen: set[str] = set()
        out: list[str] = []
        for site in fn.calls:
            if site.resolved is not None and site.resolved not in seen:
                seen.add(site.resolved)
                out.append(site.resolved)
        return out

    def lookup_method(
        self, class_qualname: str, name: str, _depth: int = 0
    ) -> str | None:
        """Resolve a method through the class and its project bases."""
        if _depth > _MRO_DEPTH_CAP:
            return None
        ci = self.classes.get(class_qualname)
        if ci is None:
            return None
        hit = ci.methods.get(name)
        if hit is not None:
            return hit
        for base_raw in ci.bases:
            base_q = self._resolve_class_ref(ci.module, base_raw)
            if base_q is not None:
                hit = self.lookup_method(base_q, name, _depth + 1)
                if hit is not None:
                    return hit
        return None

    def attr_type(self, class_qualname: str, attr: str) -> str | None:
        """The constructor-typed class of ``self.<attr>``, walking bases."""
        seen: set[str] = set()
        q: str | None = class_qualname
        while q is not None and q not in seen:
            seen.add(q)
            ci = self.classes.get(q)
            if ci is None:
                return None
            hit = ci.resolved_attr_types.get(attr)
            if hit is not None:
                return hit
            q = None
            for base_raw in ci.bases:
                base_q = self._resolve_class_ref(ci.module, base_raw)
                if base_q is not None:
                    q = base_q
                    break
        return None

    # ------------------------------------------------------- resolution

    def _resolve_class_ref(self, module_name: str, raw: str) -> str | None:
        """A raw class reference (``Base``, ``mod.Base``) -> qualname."""
        mod = self.modules.get(module_name)
        if mod is None:
            return None
        parts = raw.split(".")
        if len(parts) == 1:
            hit = mod.classes.get(parts[0])
            if hit is not None:
                return hit
            canonical = mod.imports.get(parts[0])
        else:
            head = mod.imports.get(parts[0])
            canonical = (
                head + "." + ".".join(parts[1:]) if head is not None else None
            )
        if canonical is None:
            return None
        kind, target = self._canonical_lookup(canonical)
        return target if kind == "class" else None

    def _canonical_lookup(
        self, dotted: str
    ) -> tuple[str | None, str | None]:
        """Map a canonical dotted name onto a project symbol.

        Returns ``("func", qualname)``, ``("class", qualname)``, or
        ``(None, None)`` when no project module prefix matches.
        """
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            mod = self.modules.get(".".join(parts[:cut]))
            if mod is None:
                continue
            rest = parts[cut:]
            if len(rest) == 1:
                fn = mod.functions.get(rest[0])
                if fn is not None:
                    return "func", fn
                cls = mod.classes.get(rest[0])
                if cls is not None:
                    return "class", cls
            elif len(rest) == 2:
                cls = mod.classes.get(rest[0])
                if cls is not None:
                    hit = self.lookup_method(cls, rest[1])
                    if hit is not None:
                        return "func", hit
            return None, None
        return None, None

    def _resolve_site(self, fn: FunctionNode, site: CallSite) -> None:
        raw = site.raw
        if raw is None:
            return
        parts = raw.split(".")
        # self.m() / cls.m() dispatch through the class layout.
        if parts[0] in ("self", "cls") and fn.class_qualname is not None:
            if len(parts) == 2:
                site.resolved = self.lookup_method(fn.class_qualname, parts[1])
            elif len(parts) == 3:
                owner = self.attr_type(fn.class_qualname, parts[1])
                if owner is not None:
                    site.resolved = self.lookup_method(owner, parts[2])
            return
        mod = self.modules.get(fn.module)
        if mod is None:
            return
        if len(parts) == 1:
            name = parts[0]
            # Lexical scope chain: nested defs of this and enclosing fns.
            walk: FunctionNode | None = fn
            while walk is not None:
                hit = walk.local_defs.get(name)
                if hit is not None:
                    site.resolved = hit
                    return
                walk = (
                    self.functions.get(walk.parent)
                    if walk.parent is not None else None
                )
            hit = mod.functions.get(name)
            if hit is not None:
                site.resolved = hit
                return
            cls = mod.classes.get(name)
            if cls is not None:  # constructor: propagate through __init__
                site.resolved = self.lookup_method(cls, "__init__")
                return
            canonical = mod.imports.get(name)
            if canonical is None:
                site.external = name  # builtin (open, print, ...)
                return
            self._bind_canonical(site, canonical)
            return
        # Constructor-typed local: server = NexusServer(...); server.m().
        if len(parts) == 2:
            walk = fn
            while walk is not None:
                owner_raw = walk.local_types.get(parts[0])
                if owner_raw is not None:
                    owner = self._resolve_class_ref(fn.module, owner_raw)
                    if owner is not None:
                        site.resolved = self.lookup_method(owner, parts[1])
                    return
                walk = (
                    self.functions.get(walk.parent)
                    if walk.parent is not None else None
                )
        # ClassName.method(...) on a module-local class.
        if len(parts) == 2 and parts[0] in mod.classes:
            site.resolved = self.lookup_method(mod.classes[parts[0]], parts[1])
            return
        head = mod.imports.get(parts[0])
        if head is None:
            return  # parameter / unknown object: raw + terminal only
        self._bind_canonical(site, head + "." + ".".join(parts[1:]))

    def _bind_canonical(self, site: CallSite, canonical: str) -> None:
        kind, target = self._canonical_lookup(canonical)
        if kind == "func":
            site.resolved = target
        elif kind == "class":
            assert target is not None
            site.resolved = self.lookup_method(target, "__init__")
        else:
            site.external = canonical


# ------------------------------------------------------------ collection


def _dotted_text(node: ast.expr) -> str | None:
    """``a.b.c`` (names/attributes only) -> ``"a.b.c"``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminal_text(node: ast.expr) -> str | None:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _collect_imports(module: ModuleInfo, tree: ast.Module) -> None:
    """Merge every import binding in the file (any scope) into one table.

    Function-local imports are how this codebase breaks package cycles,
    so scoping the table per-function would blind the resolver exactly
    where it matters; cross-scope collisions of the same name bound to
    different modules are vanishingly rare in practice.
    """
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    module.imports[alias.asname] = alias.name
                else:
                    top = alias.name.split(".", 1)[0]
                    module.imports.setdefault(top, top)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                parts = module.name.split(".")
                if not module.is_package:
                    parts = parts[:-1]
                if node.level > 1:
                    parts = parts[:len(parts) - (node.level - 1)]
                base = ".".join(parts)
                if node.module:
                    base = f"{base}.{node.module}" if base else node.module
            for alias in node.names:
                if alias.name == "*":
                    continue
                target = f"{base}.{alias.name}" if base else alias.name
                module.imports[alias.asname or alias.name] = target


_CTOR_NAME_OK = str.isidentifier


def _ctor_class_ref(value: ast.expr) -> str | None:
    """``ClassName(...)`` / ``mod.ClassName(...)`` -> raw class ref.

    Only conventionally-capitalized terminals count as constructors, so
    ``x = helper()`` never poisons the local type table.
    """
    if not isinstance(value, ast.Call):
        return None
    raw = _dotted_text(value.func)
    if raw is None:
        return None
    terminal = raw.rsplit(".", 1)[-1]
    if not terminal[:1].isupper():
        return None
    return raw


class _FunctionWalker:
    """Extract call sites + typed locals from one function body.

    Nested def/class subtrees are skipped — they are collected as their
    own graph nodes.
    """

    def __init__(self, fn: FunctionNode) -> None:
        self.fn = fn

    def walk_body(self, body: Sequence[ast.stmt]) -> None:
        for stmt in body:
            self._stmt(stmt)

    def _stmt(self, node: ast.stmt) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return
        if isinstance(node, ast.Assign):
            ref = _ctor_class_ref(node.value)
            if ref is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.fn.local_types[target.id] = ref
        if isinstance(node, ast.Expr):
            self._expr(node.value, discarded=True)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.stmt):
                self._stmt(child)
            elif isinstance(child, ast.expr):
                self._expr(child, discarded=False)
            elif isinstance(
                child, (ast.excepthandler, ast.withitem, ast.keyword)
            ):
                for sub in ast.iter_child_nodes(child):
                    if isinstance(sub, ast.stmt):
                        self._stmt(sub)
                    elif isinstance(sub, ast.expr):
                        self._expr(sub, discarded=False)

    def _expr(self, node: ast.expr, discarded: bool,
              awaited: bool = False) -> None:
        if isinstance(node, ast.Await):
            self._expr(node.value, discarded=False, awaited=True)
            return
        if isinstance(node, (ast.Lambda,)):
            return  # deferred body: calls do not happen here
        if isinstance(node, ast.Call):
            raw = _dotted_text(node.func)
            self.fn.calls.append(CallSite(
                raw=raw,
                terminal=_terminal_text(node.func),
                lineno=node.lineno,
                col=node.col_offset + 1,
                awaited=awaited,
                discarded=discarded,
            ))
            # Arguments and nested func expressions evaluate normally.
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._expr(child, discarded=False)
                elif isinstance(child, ast.keyword):
                    self._expr(child.value, discarded=False)
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._expr(child, discarded=False)
            elif isinstance(child, ast.comprehension):
                self._expr(child.iter, discarded=False)
                for cond in child.ifs:
                    self._expr(cond, discarded=False)


def _collect_scope(
    graph: CallGraph,
    module: ModuleInfo,
    body: Sequence[ast.stmt],
    path: str,
    rel_path: Path,
    qual_prefix: str,
    class_info: ClassInfo | None,
    parent_fn: FunctionNode | None,
) -> None:
    for stmt in body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{qual_prefix}.{stmt.name}"
            fn = FunctionNode(
                qualname=qualname,
                module=module.name,
                path=path,
                rel_path=rel_path,
                name=stmt.name,
                lineno=stmt.lineno,
                col=stmt.col_offset + 1,
                is_async=isinstance(stmt, ast.AsyncFunctionDef),
                class_qualname=(
                    class_info.qualname if class_info is not None else None
                ),
                node=stmt,
                parent=parent_fn.qualname if parent_fn is not None else None,
            )
            graph.functions[qualname] = fn
            if class_info is not None:
                class_info.methods[stmt.name] = qualname
                _collect_attr_types(class_info, stmt)
            elif parent_fn is not None:
                parent_fn.local_defs[stmt.name] = qualname
            else:
                module.functions[stmt.name] = qualname
            _FunctionWalker(fn).walk_body(stmt.body)
            _collect_scope(
                graph, module, stmt.body, path, rel_path,
                qual_prefix=qualname, class_info=None, parent_fn=fn,
            )
        elif isinstance(stmt, ast.ClassDef):
            qualname = f"{qual_prefix}.{stmt.name}"
            ci = ClassInfo(
                qualname=qualname,
                module=module.name,
                name=stmt.name,
                bases=[
                    ref for ref in
                    (_dotted_text(base) for base in stmt.bases)
                    if ref is not None
                ],
            )
            graph.classes[qualname] = ci
            if class_info is None and parent_fn is None:
                module.classes[stmt.name] = qualname
            _collect_scope(
                graph, module, stmt.body, path, rel_path,
                qual_prefix=qualname, class_info=ci, parent_fn=None,
            )
        elif isinstance(stmt, (ast.If, ast.Try, ast.With, ast.For,
                               ast.While)):
            # Conditional/guarded defs still belong to this scope.
            for sub_body in (
                getattr(stmt, "body", []),
                getattr(stmt, "orelse", []),
                getattr(stmt, "finalbody", []),
            ):
                _collect_scope(
                    graph, module, sub_body, path, rel_path,
                    qual_prefix=qual_prefix, class_info=class_info,
                    parent_fn=parent_fn,
                )
            for handler in getattr(stmt, "handlers", []):
                _collect_scope(
                    graph, module, handler.body, path, rel_path,
                    qual_prefix=qual_prefix, class_info=class_info,
                    parent_fn=parent_fn,
                )


def _collect_attr_types(
    class_info: ClassInfo, method: ast.FunctionDef | ast.AsyncFunctionDef
) -> None:
    """Record ``self.attr = ClassName(...)`` constructor bindings."""
    for node in ast.walk(method):
        if not isinstance(node, ast.Assign):
            continue
        ref = _ctor_class_ref(node.value)
        if ref is None:
            continue
        for target in node.targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                class_info.attr_types.setdefault(target.attr, ref)


# --------------------------------------------------------------- building


def build_call_graph(
    units: Iterable[tuple[Path, Path, str, ast.Module]],
) -> CallGraph:
    """Build the graph from pre-parsed ``(path, rel_path, module, tree)``
    units (the lint driver parses each file exactly once and shares the
    trees between the syntactic and whole-program passes)."""
    graph = CallGraph()
    collected: list[tuple[ModuleInfo, ast.Module, Path, Path]] = []
    for path, rel_path, module_name, tree in units:
        module = ModuleInfo(
            name=module_name,
            path=str(path),
            is_package=path.name == "__init__.py",
        )
        graph.modules[module_name] = module
        collected.append((module, tree, path, rel_path))
    for module, tree, path, rel_path in collected:
        _collect_imports(module, tree)
        _collect_scope(
            graph, module, tree.body, str(path), rel_path,
            qual_prefix=module.name, class_info=None, parent_fn=None,
        )
    # Resolution passes: attribute types first (method resolution of
    # ``self.attr.m()`` depends on them), then every call site.
    for ci in graph.classes.values():
        for attr, raw in ci.attr_types.items():
            owner = graph._resolve_class_ref(ci.module, raw)
            if owner is not None:
                ci.resolved_attr_types[attr] = owner
    for fn in graph.functions.values():
        for site in fn.calls:
            graph._resolve_site(fn, site)
    return graph


def build_call_graph_from_paths(
    paths: Sequence[Path], root: Path | None = None,
) -> CallGraph:
    """Convenience builder: parse ``.py`` files under ``paths`` and build
    the graph (tests and ad-hoc callers; the lint driver shares parses)."""
    units = []
    for target in paths:
        target_root = root if root is not None else (
            target if target.is_dir() else target.parent
        )
        files = (
            sorted(target.rglob("*.py")) if target.is_dir() else [target]
        )
        for file in files:
            source = file.read_text(encoding="utf-8")
            tree = ast.parse(source, filename=str(file))
            try:
                rel = file.relative_to(target_root)
            except ValueError:
                rel = Path(file.name)
            units.append(
                (file, rel, module_name_for(file, root=target_root), tree)
            )
    return build_call_graph(units)
