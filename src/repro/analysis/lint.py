"""nexuslint: project-specific static analysis for the cluster engine.

An AST-based lint pass encoding the repo's correctness contracts — the
hazards that surface as silent SLO misses or nondeterministic plans, not
as crashes, and that no generic linter knows to look for:

Determinism (planning paths only: ``core/``, ``cluster/``,
``simulation/`` — the code whose outputs must be bit-identical across
runs for seeded fault plans and plan diffing to work):

- ``wall-clock``          calls to ``time.time()`` / ``datetime.now()``
                          etc.; virtual time comes from the simulator.
- ``unseeded-random``     module-level ``random.*`` / legacy
                          ``np.random.*`` globals and ``default_rng()``
                          without a seed.
- ``unordered-iteration`` ``for``-loops and comprehensions over ``set``
                          displays, ``set()``/``frozenset()`` calls, or
                          dict-view set algebra (``a.keys() | b.keys()``):
                          Python sets hash-order their elements, so plan
                          construction driven by such iteration is
                          order-dependent.

Sizing discipline (planning paths only, same scope as determinism):

- ``raw-gpu-count-literal`` a bare integer literal compared against a
                          GPU-count quantity (``num_gpus < 64``), or
                          capping a search loop whose condition also
                          tests one (``... and hi < 64``): cluster sizes
                          are configuration (``max_gpus``, the fleet
                          inventory), never constants baked into
                          planning code.

Unit discipline (everywhere):

- ``float-equality``      ``==``/``!=`` against float literals or between
                          unit-suffixed quantities; use
                          :mod:`repro.core.floatcmp`.
- ``mixed-units``         ``+``/``-``/comparisons between operands whose
                          suffixes disagree (``_ms`` vs ``_us`` vs ``_s``
                          vs ``_rps``); multiplication/division are
                          conversions and stay legal.

Unit discipline (``serving/`` and ``cluster/`` only -- the code that
runs under both virtual and wall clocks):

- ``raw-time-literal``    a bare numeric literal combined with a
                          time-suffixed quantity (``deadline_ms + 50``),
                          compared against one (``elapsed_ms > 5000``),
                          passed to a scheduling call
                          (``sim.schedule(50, fn)``), or used as a unit
                          conversion factor (``span_ms / 1000.0``).
                          Name the quantity (a ``*_ms`` constant) or use
                          ``repro.runtime.clock.MS_PER_S``; literals
                          below ``1e-3`` are treated as float-jitter
                          epsilons and stay legal.

Shard isolation (``simulation/`` only -- the partitioned engine, where
byte-identical equivalence with the monolithic run depends on every
cross-shard effect flowing through the window protocol):

- ``cross-shard-direct-mutation``  an attribute write whose base chain
                          dereferences a shard handle (``shard``,
                          ``*_shard``, ``shards[...]``): state owned by
                          a shard may only change through the shard's
                          own methods or a posted ``ShardMessage``
                          delivered at a window boundary -- a direct
                          write lands at an uncontrolled point of the
                          shard's timeline and silently breaks the
                          determinism argument.

Observability contract (``cluster/`` only):

- ``untraced-mutation``   a function that mutates request state (assigns
                          request attributes or fires ``on_drop`` /
                          ``on_complete`` callbacks) must emit a
                          ``TraceEvent`` on some path — directly via a
                          tracer, or by delegating to a ``_record_*`` /
                          ``_finish_*`` / ``_final_*`` helper.  The
                          ``on_fail`` path is exempt by design: retryable
                          losses are traced at the frontend when the
                          retry or terminal drop happens, keeping exactly
                          one outcome event per logical request.

Performance contract (``core/`` only):

- ``unmemoized-profile-scan``  ``for``-loops over ``range(...max_batch...)``
                          whose body calls ``.latency()`` per batch size:
                          an O(max_batch) scan on the planning hot path.
                          Bisect the precomputed lookup tables instead
                          (``profile.max_batch_with_latency`` /
                          ``max_batch_residual`` or ``profile.tables()``).
- ``sim-in-planner-inner-loop``  (``core/epoch.py`` and ``core/squishy.py``
                          only) direct simulator invocations --
                          ``simulate_*()`` calls or ``*Simulator``
                          construction -- inside the planner's inner
                          loop.  Capacity questions route through
                          :func:`repro.core.queueing.capacity_answer`,
                          which consults the O(1) analytic oracle and
                          owns the documented fallback-to-simulation
                          policy; an inline simulator turns every
                          capacity probe into an event-loop run.

Whole-program pass (``analysis/callgraph.py`` + ``analysis/asynclint.py``):
on top of the per-file rules, :func:`lint_paths` builds a project-wide
call graph and runs the flow-aware asyncio-hazard rules
(``blocking-call-in-async``, ``interleaved-state-mutation``,
``unawaited-coroutine``, ``orphan-task``, ``cpu-bound-handler``) — see
:mod:`repro.analysis.asynclint` for their semantics.

Suppression: append ``# nexuslint: disable=<rule>[,<rule>...]`` to the
offending line, or ``# nexuslint: disable-file=<rule>`` anywhere in the
file for a file-wide waiver.  ``disable=all`` waives every rule.
Directives are themselves checked (``invalid-suppression``): naming an
unknown rule slug, or a line suppression that suppresses nothing, is a
finding — stale waivers cannot silently rot.

Baseline ratchet: ``--baseline .nexuslint-baseline.json`` waives exactly
the findings recorded in the file (matched on relative path + rule +
line), so new rules land enforced-at-zero-*new*-findings; stale entries
are reported so the baseline only ever shrinks.  ``--write-baseline``
regenerates it.

Run via ``python -m repro lint [paths...]`` (defaults to the installed
``repro`` package) — exit status 0 when clean, 1 with findings, 2 on
unreadable/unparsable inputs.  ``--format github`` emits workflow
annotations; ``--json-out`` writes a machine-readable findings artifact.
"""

from __future__ import annotations

import argparse
import ast
import io
import json
import sys
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from .callgraph import build_call_graph, module_name_for

__all__ = [
    "Finding",
    "RULES",
    "all_rules",
    "lint_source",
    "lint_file",
    "lint_paths",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
    "main",
]

# --------------------------------------------------------------- rule table

#: rule slug -> one-line description (the authoritative rule registry).
RULES: dict[str, str] = {
    "wall-clock": "wall-clock reads in planning paths; use simulator time",
    "unseeded-random": "global/unseeded RNG in planning paths; seed an rng",
    "unordered-iteration": "iteration over a set in planning paths; sort it",
    "float-equality": "== / != on float quantities; use repro.core.floatcmp",
    "mixed-units": "adding/comparing operands with different unit suffixes",
    "untraced-mutation": "request-state mutation without a TraceEvent emit",
    "unmemoized-profile-scan":
        "linear profile.latency() scan over batch sizes; use the "
        "precomputed profile.tables() lookups",
    "sim-in-planner-inner-loop":
        "direct simulator call in the planner's capacity path; route "
        "through repro.core.queueing.capacity_answer",
    "raw-time-literal":
        "bare numeric time literal in serving/cluster code; name it "
        "(a *_ms constant) or use repro.runtime.clock.MS_PER_S",
    "raw-gpu-count-literal":
        "bare integer literal bounding a GPU-count quantity in planning "
        "code; derive the bound from max_gpus / the fleet inventory",
    "cross-shard-direct-mutation":
        "direct attribute write through a shard handle; cross-shard "
        "effects must go through shard methods or posted messages",
    "invalid-suppression":
        "nexuslint directive naming an unknown rule, or a line "
        "suppression that suppresses nothing",
}


def all_rules() -> dict[str, str]:
    """The merged rule registry: per-file syntactic rules plus the
    whole-program async-hazard rules."""
    from .asynclint import RULES as ASYNC_RULES

    return {**RULES, **ASYNC_RULES}

#: path components that mark deterministic planning code.
_PLANNING_PARTS = frozenset({"core", "cluster", "simulation"})
#: path components whose code owns request lifecycle state.
_LIFECYCLE_PARTS = frozenset({"cluster"})
#: path components where batch-size scans must go through the
#: precomputed lookup tables (the planning hot path).
_PROFILE_SCAN_PARTS = frozenset({"core"})
#: planner inner-loop files (under ``core/``) where capacity questions
#: must route through the queueing oracle, never a direct simulator.
_PLANNER_LOOP_FILES = frozenset({"epoch.py", "squishy.py"})
#: path components where raw numeric time literals are banned (the code
#: that runs under both the simulator and wall clocks, where an unnamed
#: ``50`` can silently be ms in one driver and s in another).
_TIME_LITERAL_PARTS = frozenset({"serving", "cluster"})
#: path components where shard-owned state is write-protected (the
#: partitioned engine whose equivalence proof needs every cross-shard
#: effect to flow through the window protocol).
_SHARD_PARTS = frozenset({"simulation"})
#: identifier names that mark an expression as a shard handle.
_SHARD_HANDLE_NAMES = frozenset({"shard", "shards"})

# wall-clock: dotted callables that read host time.
_CLOCK_CALLS = frozenset({
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.date.today", "date.today",
})

# unseeded-random: module-level convenience functions backed by a hidden
# process-global RNG (stdlib and numpy legacy).
_GLOBAL_RANDOM_FNS = frozenset({
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "random_sample", "rand", "randn", "normal", "poisson",
    "exponential", "permutation",
})

# mixed-units: recognized quantity suffixes.  Time suffixes are mutually
# incompatible under +/-/comparison; ``rps`` is incompatible with all of
# them.
_UNIT_SUFFIXES = frozenset({"ns", "us", "ms", "s", "rps"})

# raw-time-literal: suffixes that mark a *time* quantity, the calls whose
# numeric arguments are delays/instants, the conversion factors that must
# be spelled MS_PER_S, and the magnitude floor below which a literal is
# treated as a float-comparison epsilon.
_TIME_SUFFIXES = frozenset({"ns", "us", "ms", "s"})
_SCHEDULING_CALLS = frozenset({
    "schedule", "schedule_at", "schedule_after",
    "call_later", "call_at", "sleep",
})
_CONVERSION_LITERALS = frozenset({1e3, 1e-3, 1e6, 1e-6, 6e4})
_EPSILON_FLOOR = 1e-3

# raw-gpu-count-literal: literals below this are legal degenerate checks
# (``num_gpus <= 0``, ``num_gpus > 1``); at or above it they encode a
# cluster size.
_GPU_LITERAL_FLOOR = 2

# float-equality: name fragments marking latency/rate quantities.
_QUANTITY_FRAGMENTS = (
    "latency", "rate", "slo", "duty", "occupancy", "goodput",
    "throughput", "deadline", "budget",
)

# untraced-mutation: parameter names treated as request handles, the
# outcome callbacks that require a trace, and the helper-name prefixes
# that count as emitting one.
_REQUEST_NAMES = frozenset({"request", "req"})
_OUTCOME_CALLBACKS = frozenset({"on_drop", "on_complete"})
_TRACING_HELPER_PREFIXES = ("_record_", "_finish_", "_final_")


@dataclass(frozen=True)
class Finding:
    """One lint violation, pointing at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: [{self.rule}] {self.message}"

    def as_dict(self) -> dict[str, object]:
        return {
            "path": self.path, "line": self.line, "col": self.col,
            "rule": self.rule, "message": self.message,
        }


# ------------------------------------------------------------- suppressions


@dataclass(frozen=True)
class _Directive:
    """One ``# nexuslint:`` comment, with its location and form."""

    lineno: int
    file_wide: bool
    rules: frozenset[str]


def _parse_suppressions(source: str) -> list[_Directive]:
    """Extract every ``# nexuslint:`` directive with its location.

    Only genuine comment tokens count — the marker appearing inside a
    string or docstring (this module documents the syntax, after all) is
    not a directive."""
    marker = "# nexuslint:"
    directives: list[_Directive] = []
    if "nexuslint" not in source:
        return directives
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            idx = tok.string.find(marker)
            if idx < 0:
                continue
            directive = tok.string[idx + len(marker):].strip()
            for form, file_wide in (
                ("disable-file=", True), ("disable=", False)
            ):
                if not directive.startswith(form):
                    continue
                rules = frozenset(
                    r.strip() for r in directive[len(form):].split(",")
                    if r.strip()
                )
                directives.append(
                    _Directive(tok.start[0], file_wide, rules)
                )
                break
    except tokenize.TokenError:
        pass  # unparsable tail: ast.parse will report it properly
    return directives


def _suppression_tables(
    directives: list[_Directive],
) -> tuple[dict[int, frozenset[str]], frozenset[str]]:
    """Directives -> (per-line rules, file-wide rules) lookup tables."""
    per_line: dict[int, frozenset[str]] = {}
    file_wide: set[str] = set()
    for d in directives:
        if d.file_wide:
            file_wide.update(d.rules)
        else:
            per_line[d.lineno] = per_line.get(d.lineno, frozenset()) | d.rules
    return per_line, frozenset(file_wide)


def _invalid_suppression_findings(
    path: str,
    directives: list[_Directive],
    raw_rules_by_line: dict[int, set[str]],
    check_unused: bool,
) -> list[Finding]:
    """The ``invalid-suppression`` rule: unknown slugs in any directive,
    and line suppressions that waive nothing.

    Unused-ness is only judged when ``check_unused`` is set — it needs
    the *raw* findings of every pass (syntactic and whole-program), so
    the per-file entry point leaves it to the project driver.
    """
    known = set(all_rules()) | {"all"}
    findings: list[Finding] = []
    for d in directives:
        unknown = sorted(d.rules - known)
        for slug in unknown:
            findings.append(Finding(
                path=path, line=d.lineno, col=1, rule="invalid-suppression",
                message=(
                    f"unknown rule {slug!r} in nexuslint directive; see "
                    f"--list-rules for valid slugs"
                ),
            ))
        if not check_unused or d.file_wide:
            continue
        valid = d.rules & known
        if not valid:
            continue  # fully unknown: already reported above
        at_line = raw_rules_by_line.get(d.lineno, set())
        used = bool(at_line) if "all" in valid else bool(valid & at_line)
        if not used:
            findings.append(Finding(
                path=path, line=d.lineno, col=1, rule="invalid-suppression",
                message=(
                    f"suppression of {', '.join(sorted(valid))} matches no "
                    f"finding on this line; remove the stale waiver"
                ),
            ))
    return findings


def _suppressed(rule: str, line: int,
                per_line: dict[int, frozenset[str]],
                file_wide: frozenset[str]) -> bool:
    if "all" in file_wide or rule in file_wide:
        return True
    at_line = per_line.get(line, frozenset())
    return "all" in at_line or rule in at_line


# ------------------------------------------------------------- AST helpers


def _dotted_name(node: ast.expr) -> str | None:
    """``a.b.c`` -> ``"a.b.c"``; None for non-name chains."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _terminal_name(node: ast.expr) -> str | None:
    """The rightmost identifier of a name/attribute/call expression."""
    if isinstance(node, ast.Call):
        return _terminal_name(node.func)
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _unit_suffix(node: ast.expr) -> str | None:
    """The unit suffix of a name-like operand (``exec_ms`` -> ``"ms"``)."""
    name = _terminal_name(node)
    if name is None or "_" not in name:
        return None
    suffix = name.rsplit("_", 1)[-1]
    return suffix if suffix in _UNIT_SUFFIXES else None


def _is_float_literal(node: ast.expr) -> bool:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return isinstance(node, ast.Constant) and isinstance(node.value, float)


def _numeric_literal(node: ast.expr) -> float | None:
    """The value of a (possibly sign-wrapped) int/float literal, else None."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    if (
        isinstance(node, ast.Constant)
        and isinstance(node.value, (int, float))
        and not isinstance(node.value, bool)
    ):
        return float(node.value)
    return None


def _bare_time_literal(node: ast.expr) -> bool:
    """A numeric literal big enough to be a duration, not an epsilon."""
    value = _numeric_literal(node)
    return value is not None and abs(value) >= _EPSILON_FLOOR


def _time_suffix(node: ast.expr) -> str | None:
    suffix = _unit_suffix(node)
    return suffix if suffix in _TIME_SUFFIXES else None


def _is_quantity_name(node: ast.expr) -> bool:
    name = _terminal_name(node)
    if name is None:
        return False
    lowered = name.lower()
    if _unit_suffix(node) is not None:
        return True
    return any(frag in lowered for frag in _QUANTITY_FRAGMENTS)


def _iter_target(node: ast.expr) -> ast.expr:
    """Unwrap pass-through wrappers around an iterable expression."""
    while (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"enumerate", "reversed", "iter"}
        and node.args
    ):
        node = node.args[0]
    return node


def _is_unordered_iterable(node: ast.expr) -> bool:
    node = _iter_target(node)
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return any(
            _is_dict_view_or_set(side) for side in (node.left, node.right)
        )
    return False


def _mentions_max_batch(node: ast.expr) -> bool:
    """True when any name in the expression is (or ends in) max_batch."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id == "max_batch":
            return True
        if isinstance(child, ast.Attribute) and child.attr == "max_batch":
            return True
    return False


def _mentions_gpus(node: ast.expr) -> bool:
    """True when any name in the expression denotes a GPU count."""
    for child in ast.walk(node):
        name: str | None = None
        if isinstance(child, ast.Name):
            name = child.id
        elif isinstance(child, ast.Attribute):
            name = child.attr
        if name is not None and name.lower().endswith("gpus"):
            return True
    return False


def _bare_gpu_count_literal(node: ast.expr) -> bool:
    """An int literal big enough to encode a cluster size."""
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, (ast.USub, ast.UAdd)):
        node = node.operand
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, int)
        and not isinstance(node.value, bool)
        and node.value >= _GPU_LITERAL_FLOOR
    )


def _shard_handle_in_chain(node: ast.expr) -> str | None:
    """The shard-handle name an attribute-write base chain dereferences.

    Walks the base expression of an attribute write (``shard.sim`` in
    ``shard.sim.x = 1``, ``self.shards[i]`` in ``self.shards[i].y = 2``)
    and returns the first identifier that names a shard handle --
    ``shard``, ``*_shard``, or the ``shards`` collection -- or ``None``
    when the chain never crosses a shard boundary (plain ``self.x``
    writes inside the shard's own methods).
    """
    cur = node
    while True:
        if isinstance(cur, ast.Attribute):
            name = cur.attr
        elif isinstance(cur, ast.Name):
            name = cur.id
        elif isinstance(cur, (ast.Subscript, ast.Call)):
            cur = cur.value if isinstance(cur, ast.Subscript) else cur.func
            continue
        else:
            return None
        if name in _SHARD_HANDLE_NAMES or name.endswith("_shard"):
            return name
        if isinstance(cur, ast.Name):
            return None
        cur = cur.value


def _is_dict_view_or_set(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in {"set", "frozenset"}:
            return True
        if isinstance(node.func, ast.Attribute) and node.func.attr in {"keys", "items"}:
            return True
    return False


# ------------------------------------------------------------- the visitor


class _Linter(ast.NodeVisitor):
    """Single-pass visitor evaluating every applicable rule."""

    def __init__(self, path: str, planning: bool, lifecycle: bool,
                 profile_scan: bool = False, planner_loop: bool = False,
                 time_literals: bool = False, shard_scope: bool = False):
        self.path = path
        self.planning = planning
        self.lifecycle = lifecycle
        self.profile_scan = profile_scan
        self.planner_loop = planner_loop
        self.time_literals = time_literals
        self.shard_scope = shard_scope
        self.findings: list[Finding] = []

    # ------------------------------------------------------------ plumbing

    def _report(self, node: ast.AST, rule: str, message: str) -> None:
        self.findings.append(Finding(
            path=self.path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0) + 1,
            rule=rule,
            message=message,
        ))

    # --------------------------------------------------------- determinism

    def visit_Call(self, node: ast.Call) -> None:
        if self.planning:
            self._check_wall_clock(node)
            self._check_unseeded_random(node)
        if self.planner_loop:
            self._check_sim_in_planner(node)
        if self.time_literals:
            self._check_scheduling_literal(node)
        self.generic_visit(node)

    def _check_scheduling_literal(self, node: ast.Call) -> None:
        name = _terminal_name(node.func)
        if name not in _SCHEDULING_CALLS:
            return
        for arg in node.args:
            if _bare_time_literal(arg):
                self._report(
                    arg, "raw-time-literal",
                    f"bare numeric delay passed to {name}(); name the "
                    f"duration (a *_ms constant) so its unit is explicit",
                )

    def _check_sim_in_planner(self, node: ast.Call) -> None:
        name = _terminal_name(node.func)
        if name is None:
            return
        if name.startswith("simulate") or name.endswith("Simulator"):
            self._report(
                node, "sim-in-planner-inner-loop",
                f"{name}() invoked in the planner's capacity path; route "
                f"capacity questions through "
                f"repro.core.queueing.capacity_answer (oracle + documented "
                f"fallback) instead of an inline simulator",
            )

    def _check_wall_clock(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is not None and dotted in _CLOCK_CALLS:
            self._report(
                node, "wall-clock",
                f"{dotted}() reads host wall-clock time; planning code must "
                f"use the simulator clock (sim.now)",
            )

    def _check_unseeded_random(self, node: ast.Call) -> None:
        dotted = _dotted_name(node.func)
        if dotted is None:
            return
        parts = dotted.split(".")
        # random.shuffle(...) / np.random.randint(...) style globals.
        if (
            len(parts) >= 2
            and parts[-1] in _GLOBAL_RANDOM_FNS
            and parts[-2] == "random"
        ):
            self._report(
                node, "unseeded-random",
                f"{dotted}() draws from the process-global RNG; construct a "
                f"seeded generator instead",
            )
            return
        # default_rng() / Random() with no (or an explicit None) seed.
        if parts[-1] in {"default_rng", "Random", "RandomState"}:
            seed_missing = not node.args and not any(
                kw.arg == "seed" for kw in node.keywords
            )
            seed_none = any(
                isinstance(arg, ast.Constant) and arg.value is None
                for arg in node.args[:1]
            ) or any(
                kw.arg == "seed"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value is None
                for kw in node.keywords
            )
            if seed_missing or seed_none:
                self._report(
                    node, "unseeded-random",
                    f"{dotted}() without a seed is entropy-seeded; pass an "
                    f"explicit seed",
                )

    # ------------------------------------------------------ shard isolation

    def visit_Assign(self, node: ast.Assign) -> None:
        if self.shard_scope:
            for target in node.targets:
                self._check_cross_shard_write(target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        if self.shard_scope:
            self._check_cross_shard_write(node.target)
        self.generic_visit(node)

    def _check_cross_shard_write(self, target: ast.expr) -> None:
        """A write like ``shard.sim.x = 1`` or ``self.shards[i].y = 2``
        mutates state a shard owns from outside its own methods."""
        if not isinstance(target, ast.Attribute):
            return
        handle = _shard_handle_in_chain(target.value)
        if handle is not None:
            self._report(
                target, "cross-shard-direct-mutation",
                f"attribute write through shard handle {handle!r} mutates "
                f"shard-owned state directly; call a shard method or post "
                f"a ShardMessage for delivery at a window boundary",
            )

    def visit_For(self, node: ast.For) -> None:
        if self.planning:
            self._check_unordered_iteration(node.iter)
        if self.profile_scan:
            self._check_profile_scan(node)
        self.generic_visit(node)

    def _check_profile_scan(self, node: ast.For) -> None:
        """``for b in range(..., max_batch...): ... .latency(b) ...`` is a
        linear scan the precomputed lookup tables replace."""
        it = _iter_target(node.iter)
        if not (
            isinstance(it, ast.Call)
            and isinstance(it.func, ast.Name)
            and it.func.id == "range"
        ):
            return
        if not any(_mentions_max_batch(arg) for arg in it.args):
            return
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Attribute)
                and child.func.attr == "latency"
            ):
                self._report(
                    node, "unmemoized-profile-scan",
                    "O(max_batch) latency() scan in planning code; bisect "
                    "the precomputed tables instead "
                    "(profile.max_batch_with_latency / max_batch_residual "
                    "or profile.tables())",
                )
                return

    def visit_comprehension(self, node: ast.comprehension) -> None:
        if self.planning:
            self._check_unordered_iteration(node.iter)
        self.generic_visit(node)

    def _check_unordered_iteration(self, iter_node: ast.expr) -> None:
        if _is_unordered_iterable(iter_node):
            self._report(
                iter_node, "unordered-iteration",
                "iterating a set hash-orders the elements; wrap in "
                "sorted(...) with a stable key",
            )

    # ------------------------------------------------------ unit discipline

    def visit_Compare(self, node: ast.Compare) -> None:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if isinstance(op, (ast.Eq, ast.NotEq)):
                self._check_float_equality(node, left, right)
            if isinstance(
                op, (ast.Eq, ast.NotEq, ast.Lt, ast.LtE, ast.Gt, ast.GtE)
            ):
                self._check_mixed_units(node, left, right)
                if self.time_literals:
                    self._check_time_literal_pair(node, left, right)
                if self.planning:
                    self._check_gpu_count_literal(node, left, right)
        self.generic_visit(node)

    def _check_gpu_count_literal(
        self, node: ast.AST, left: ast.expr, right: ast.expr
    ) -> None:
        """A GPU-count quantity compared against a bare integer literal."""
        for gpu_side, other in ((left, right), (right, left)):
            if _mentions_gpus(gpu_side) and _bare_gpu_count_literal(other):
                self._report(
                    node, "raw-gpu-count-literal",
                    "GPU-count quantity compared against a bare integer "
                    "literal; derive the bound from max_gpus or the fleet "
                    "inventory instead of baking in a cluster size",
                )
                return

    def visit_While(self, node: ast.While) -> None:
        if self.planning:
            self._check_gpu_search_cap(node.test)
        self.generic_visit(node)

    def _check_gpu_search_cap(self, test: ast.expr) -> None:
        """``while pack(hi).num_gpus <= max_gpus and hi < 64`` — the bare
        literal caps a cluster-size search independently of the cluster
        size, so the search silently stops scaling past it."""
        if not isinstance(test, ast.BoolOp):
            return
        if not any(_mentions_gpus(value) for value in test.values):
            return
        for value in test.values:
            if not isinstance(value, ast.Compare) or _mentions_gpus(value):
                continue
            operands = [value.left, *value.comparators]
            if any(_bare_gpu_count_literal(op) for op in operands):
                self._report(
                    value, "raw-gpu-count-literal",
                    "bare integer literal caps a search loop that tests a "
                    "GPU count; derive the cap from max_gpus or the fleet "
                    "inventory instead of baking in a cluster size",
                )
                return

    def _check_time_literal_pair(
        self, node: ast.AST, left: ast.expr, right: ast.expr
    ) -> None:
        """A time-suffixed quantity combined/compared with a bare literal."""
        for suffixed, other in ((left, right), (right, left)):
            if _time_suffix(suffixed) is not None and _bare_time_literal(other):
                self._report(
                    node, "raw-time-literal",
                    f"bare numeric literal against a _"
                    f"{_time_suffix(suffixed)} quantity; name it (a *_ms "
                    f"constant) so its unit is explicit",
                )
                return

    def _check_float_equality(
        self, node: ast.Compare, left: ast.expr, right: ast.expr
    ) -> None:
        literal = _is_float_literal(left) or _is_float_literal(right)
        quantities = _is_quantity_name(left) and _is_quantity_name(right)
        if literal or quantities:
            self._report(
                node, "float-equality",
                "exact == / != on float quantities is rounding-fragile; use "
                "repro.core.floatcmp (approx_eq / approx_zero)",
            )

    def visit_BinOp(self, node: ast.BinOp) -> None:
        if isinstance(node.op, (ast.Add, ast.Sub)):
            self._check_mixed_units(node, node.left, node.right)
            if self.time_literals:
                self._check_time_literal_pair(node, node.left, node.right)
        elif self.time_literals and isinstance(node.op, (ast.Mult, ast.Div)):
            self._check_conversion_literal(node)
        self.generic_visit(node)

    def _check_conversion_literal(self, node: ast.BinOp) -> None:
        """``span_ms / 1000.0``-style conversions must spell MS_PER_S."""
        for suffixed, other in (
            (node.left, node.right), (node.right, node.left)
        ):
            value = _numeric_literal(other)
            if (
                _time_suffix(suffixed) is not None
                and value is not None
                and abs(value) in _CONVERSION_LITERALS
            ):
                self._report(
                    node, "raw-time-literal",
                    "unit conversion by raw literal; use "
                    "repro.runtime.clock.MS_PER_S (or a named factor)",
                )
                return

    def _check_mixed_units(
        self, node: ast.AST, left: ast.expr, right: ast.expr
    ) -> None:
        lu, ru = _unit_suffix(left), _unit_suffix(right)
        if lu is not None and ru is not None and lu != ru:
            self._report(
                node, "mixed-units",
                f"operands carry different units (_{lu} vs _{ru}); convert "
                f"explicitly before combining",
            )

    # ------------------------------------------------ observability contract

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        if self.lifecycle:
            self._check_untraced_mutation(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        if self.lifecycle:
            self._check_untraced_mutation(node)
        self.generic_visit(node)

    def _check_untraced_mutation(
        self, node: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> None:
        mutates = False
        traces = False
        for child in ast.walk(node):
            # Nested function bodies are checked on their own visit.
            if child is not node and isinstance(
                child, (ast.FunctionDef, ast.AsyncFunctionDef)
            ):
                continue
            if isinstance(child, (ast.Assign, ast.AugAssign)):
                targets = (
                    child.targets if isinstance(child, ast.Assign)
                    else [child.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in _REQUEST_NAMES
                    ):
                        mutates = True
            if isinstance(child, ast.Call):
                callee = _terminal_name(child.func)
                if callee in _OUTCOME_CALLBACKS:
                    mutates = True
                if self._emits_trace(child):
                    traces = True
        if mutates and not traces:
            self._report(
                node, "untraced-mutation",
                f"{node.name}() mutates request state but emits no "
                f"TraceEvent; record the outcome via the tracer (or a "
                f"_record_*/_finish_*/_final_* helper)",
            )

    @staticmethod
    def _emits_trace(call: ast.Call) -> bool:
        func = call.func
        if isinstance(func, ast.Attribute):
            owner = _terminal_name(func.value)
            if owner is not None and "tracer" in owner:
                return True
            name = func.attr
        elif isinstance(func, ast.Name):
            name = func.id
        else:
            return False
        if name == "emit" or name.startswith("fast_"):
            return True
        return name.startswith(_TRACING_HELPER_PREFIXES)


# --------------------------------------------------------------- front end


def _scopes_for(rel_path: Path) -> tuple[bool, bool, bool, bool, bool, bool]:
    parts = set(rel_path.parts[:-1])
    return (
        bool(parts & _PLANNING_PARTS),
        bool(parts & _LIFECYCLE_PARTS),
        bool(parts & _PROFILE_SCAN_PARTS),
        "core" in parts and rel_path.name in _PLANNER_LOOP_FILES,
        bool(parts & _TIME_LITERAL_PARTS),
        bool(parts & _SHARD_PARTS),
    )


def lint_source(
    source: str,
    path: str = "<string>",
    rel_path: Path | None = None,
    rules: frozenset[str] | None = None,
) -> list[Finding]:
    """Lint one unit of Python source with the per-file syntactic rules;
    returns findings (never raises on rule matches, raises
    ``SyntaxError`` on unparsable input).  Unknown rule slugs in
    directives are reported here; unused-suppression detection needs the
    whole-program pass and lives in :func:`lint_paths`."""
    planning, lifecycle, profile_scan, planner_loop, time_literals, shard = (
        _scopes_for(rel_path or Path(path))
    )
    directives = _parse_suppressions(source)
    per_line, file_wide = _suppression_tables(directives)
    tree = ast.parse(source, filename=path)
    visitor = _Linter(path, planning=planning, lifecycle=lifecycle,
                      profile_scan=profile_scan, planner_loop=planner_loop,
                      time_literals=time_literals, shard_scope=shard)
    visitor.visit(tree)
    raw = visitor.findings + _invalid_suppression_findings(
        path, directives, raw_rules_by_line={}, check_unused=False,
    )
    findings = [
        f for f in raw
        if not _suppressed(f.rule, f.line, per_line, file_wide)
    ]
    if rules is not None:
        findings = [f for f in findings if f.rule in rules]
    return sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))


def lint_file(
    path: Path, root: Path | None = None,
    rules: frozenset[str] | None = None,
) -> list[Finding]:
    rel = path.relative_to(root) if root is not None else path
    source = path.read_text(encoding="utf-8")
    return lint_source(source, path=str(path), rel_path=rel, rules=rules)


def _iter_python_files(target: Path) -> Iterator[Path]:
    if target.is_file():
        yield target
        return
    yield from sorted(target.rglob("*.py"))


def lint_paths(
    paths: Sequence[Path],
    rules: frozenset[str] | None = None,
) -> tuple[list[Finding], list[str]]:
    """Run the full engine over files/trees: per-file syntactic rules,
    then the whole-program async-hazard pass over a shared call graph,
    then suppression filtering and directive validation.  Returns
    ``(findings, errors)`` where errors are unreadable or unparsable
    inputs.  Every file is parsed exactly once; both passes share the
    trees."""
    from .asynclint import analyze_graph

    errors: list[str] = []
    units: list[tuple[Path, Path, str, ast.Module, str]] = []
    for target in paths:
        # Directory targets scope rules by path parts relative to the
        # directory; lone files keep their absolute path so the enclosing
        # core/cluster/simulation component still selects the right rules.
        root = target if target.is_dir() else None
        for file in _iter_python_files(target):
            try:
                source = file.read_text(encoding="utf-8")
                tree = ast.parse(source, filename=str(file))
            except (OSError, SyntaxError) as exc:
                errors.append(f"{file}: {exc}")
                continue
            rel = file.relative_to(root) if root is not None else file
            units.append(
                (file, rel, module_name_for(file, root=root), tree, source)
            )

    # Pass 1: per-file syntactic rules (raw findings: suppressions are
    # applied after the merge so directive validation sees everything).
    raw_by_file: dict[str, list[Finding]] = {}
    for file, rel, _module, tree, _source in units:
        planning, lifecycle, profile_scan, planner_loop, time_literals, shard = (
            _scopes_for(rel)
        )
        visitor = _Linter(
            str(file), planning=planning, lifecycle=lifecycle,
            profile_scan=profile_scan, planner_loop=planner_loop,
            time_literals=time_literals, shard_scope=shard,
        )
        visitor.visit(tree)
        raw_by_file[str(file)] = visitor.findings

    # Pass 2: whole-program async-hazard rules over the shared trees.
    graph = build_call_graph(
        [(file, rel, module, tree) for file, rel, module, tree, _ in units]
    )
    for finding in analyze_graph(graph):
        raw_by_file.setdefault(finding.path, []).append(finding)

    # Merge, apply suppressions, validate directives.
    findings: list[Finding] = []
    for file, rel, _module, _tree, source in units:
        key = str(file)
        raw = raw_by_file.get(key, [])
        directives = _parse_suppressions(source)
        per_line, file_wide = _suppression_tables(directives)
        kept = [
            f for f in raw
            if not _suppressed(f.rule, f.line, per_line, file_wide)
        ]
        raw_rules_by_line: dict[int, set[str]] = {}
        for f in raw:
            raw_rules_by_line.setdefault(f.line, set()).add(f.rule)
        invalid = [
            f for f in _invalid_suppression_findings(
                key, directives, raw_rules_by_line, check_unused=True,
            )
            if not _suppressed(f.rule, f.line, per_line, file_wide)
        ]
        findings.extend(kept + invalid)

    if rules is not None:
        findings = [f for f in findings if f.rule in rules]
    findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
    return findings, errors


# ----------------------------------------------------------------- baseline


def load_baseline(path: Path) -> list[dict]:
    """The recorded findings of a ``.nexuslint-baseline.json`` ratchet."""
    data = json.loads(path.read_text(encoding="utf-8"))
    return list(data.get("findings", []))


def _baseline_key(
    path_str: str, rule: str, line: int, base_dir: Path,
) -> tuple[str, str, int]:
    """Baselines match on (path relative to the baseline file, rule,
    line) so the file is stable across checkouts."""
    p = Path(path_str)
    try:
        rel = p.resolve().relative_to(base_dir.resolve())
    except ValueError:
        rel = p
    return (rel.as_posix(), rule, line)


def apply_baseline(
    findings: list[Finding], entries: list[dict], base_dir: Path,
) -> tuple[list[Finding], int, list[tuple[str, str, int]]]:
    """Filter findings through the ratchet.  Returns ``(kept, waived,
    stale)``: findings not in the baseline, the count the baseline
    absorbed, and recorded entries that no longer fire (the ratchet
    should shrink by exactly those)."""
    allowed = {
        (str(e["path"]), str(e["rule"]), int(e["line"])) for e in entries
    }
    kept: list[Finding] = []
    matched: set[tuple[str, str, int]] = set()
    for f in findings:
        key = _baseline_key(f.path, f.rule, f.line, base_dir)
        if key in allowed:
            matched.add(key)
        else:
            kept.append(f)
    waived = len(findings) - len(kept)
    stale = sorted(allowed - matched)
    return kept, waived, stale


def write_baseline(findings: list[Finding], path: Path) -> None:
    """(Re)generate the ratchet from the current findings."""
    base_dir = path.resolve().parent
    entries = [
        {"path": p, "rule": r, "line": n}
        for p, r, n in sorted(
            _baseline_key(f.path, f.rule, f.line, base_dir)
            for f in findings
        )
    ]
    path.write_text(
        json.dumps({"version": 1, "findings": entries}, indent=2) + "\n",
        encoding="utf-8",
    )


def _default_target() -> Path:
    import repro

    return Path(repro.__file__).resolve().parent


def main(argv: Iterable[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="nexuslint: determinism / SLO-safety static analysis",
    )
    parser.add_argument(
        "paths", nargs="*", type=Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="R1,R2",
        help="comma-separated subset of rules to apply",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "github"), default="text",
        help="findings output format (github = workflow annotations)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule registry and exit",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help="ratchet file: recorded findings are waived, new ones fail",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="regenerate --baseline from the current findings and exit",
    )
    parser.add_argument(
        "--json-out", type=Path, default=None, metavar="FILE",
        help="also write a JSON findings artifact (post-baseline)",
    )
    args = parser.parse_args(list(argv) if argv is not None else None)

    registry = all_rules()
    if args.list_rules:
        for slug, description in registry.items():
            print(f"{slug:28s} {description}")
        return 0

    rules: frozenset[str] | None = None
    if args.rules:
        rules = frozenset(r.strip() for r in args.rules.split(",") if r.strip())
        unknown = rules - set(registry)
        if unknown:
            print(f"unknown rule(s): {', '.join(sorted(unknown))}",
                  file=sys.stderr)
            return 2

    if args.write_baseline and args.baseline is None:
        print("--write-baseline requires --baseline FILE", file=sys.stderr)
        return 2

    targets = list(args.paths) or [_default_target()]
    missing = [t for t in targets if not t.exists()]
    if missing:
        for t in missing:
            print(f"no such path: {t}", file=sys.stderr)
        return 2

    findings, errors = lint_paths(targets, rules=rules)
    for error in errors:
        print(error, file=sys.stderr)

    if args.write_baseline:
        assert args.baseline is not None
        write_baseline(findings, args.baseline)
        print(
            f"nexuslint: wrote {len(findings)} finding(s) to "
            f"{args.baseline}", file=sys.stderr,
        )
        return 2 if errors else 0

    waived = 0
    stale: list[tuple[str, str, int]] = []
    if args.baseline is not None:
        if args.baseline.exists():
            findings, waived, stale = apply_baseline(
                findings, load_baseline(args.baseline),
                args.baseline.resolve().parent,
            )
        else:
            print(f"nexuslint: baseline {args.baseline} not found; "
                  f"treating as empty", file=sys.stderr)

    if args.json_out is not None:
        args.json_out.write_text(json.dumps({
            "findings": [f.as_dict() for f in findings],
            "waived_by_baseline": waived,
            "stale_baseline": [
                {"path": p, "rule": r, "line": n} for p, r, n in stale
            ],
        }, indent=2) + "\n", encoding="utf-8")

    if args.format == "json":
        print(json.dumps([f.as_dict() for f in findings], indent=2))
    elif args.format == "github":
        for f in findings:
            print(
                f"::error file={f.path},line={f.line},col={f.col},"
                f"title=nexuslint {f.rule}::{f.message}"
            )
    else:
        for finding in findings:
            print(finding.render())

    for p, r, n in stale:
        print(
            f"nexuslint: stale baseline entry {p}:{n} [{r}] no longer "
            f"fires; shrink the baseline", file=sys.stderr,
        )
    if errors:
        return 2
    if findings:
        print(f"nexuslint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
