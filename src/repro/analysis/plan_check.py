"""Runtime-free validation of Algorithm-1 invariants on GPU plans.

The paper's squishy bin packing (section 6.1) is only correct when every
emitted :class:`~repro.core.squishy.GpuPlan` satisfies a small set of
invariants — ``duty_cycle + batch_latency <= SLO`` chief among them.  The
runtime tests exercise those invariants dynamically; this module checks
them *statically* on any plan object, with no simulator in the loop, so
schedulers, experiments, and the control plane can assert a plan is sound
before deploying or measuring it.

Checked invariants (one rule slug per class of violation):

- ``slo-headroom``       every allocation's worst-case latency fits its
                         SLO (Equation 2; saturated nodes use the
                         back-to-back ``2*l(B)`` bound, lone residual
                         nodes the gather-time bound).  Nodes sized under
                         p99 admission (``plan.slo_mode == "p99"``) are
                         checked against the queueing oracle instead:
                         dedicated single-session node, stable rate, and
                         p99 sojourn within the SLO -- re-asked of the
                         same capacity engine that sized the node.
- ``duty-overcommit``    the members' batch latencies fit inside the duty
                         cycle (residue-merge legality, Figure 7).
- ``memory-capacity``    resident model memory fits the GPU.
- ``double-assignment``  a session appears at most once per GPU (shards
                         spread across GPUs; one queue per session per
                         backend).
- ``batch-bounds``       batches are >= 1 and within the profile's
                         maximum.
- ``nonpositive-duty``   duty cycles are positive.
- ``duplicate-node-id``  plan nodes carry unique stable identities (churn
                         accounting diffs on ``node_id``).
- ``gpu-cap``            (opt-in) the plan fits a hard cluster size; with
                         a :class:`~repro.core.fleet.Fleet`, each class's
                         GPU count also fits that class's inventory.
- ``device-consistency`` (fleet only) every node is tagged with a known
                         fleet class and every allocation's load carries
                         the same class tag -- a load packed against one
                         class's profile must not land on another class's
                         GPU.  Memory capacity is then checked per class.

:func:`assert_valid_plan` is the assertion-layer entry point wired into
``EpochScheduler.update``, ``BackendPool.apply_plan``, and the
experiments; it raises :class:`PlanCheckError` carrying the violation
list.  Baseline schedulers (batch-oblivious) are latency-infeasible *by
design* and are deployed with validation off.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.fleet import Fleet
from ..core.floatcmp import approx_le
from ..core.queueing import capacity_answer
from ..core.squishy import GpuPlan, SchedulePlan

__all__ = [
    "PlanViolation",
    "PlanCheckError",
    "check_gpu_plan",
    "check_plan",
    "assert_valid_plan",
    "plans_checked",
]

#: process-wide count of plans validated (reported by the experiment
#: report so "every figure came from a validated plan" is observable).
_plans_checked: int = 0


def plans_checked() -> int:
    """How many plans this process has validated so far."""
    return _plans_checked


@dataclass(frozen=True)
class PlanViolation:
    """One invariant violation found in a plan."""

    rule: str
    message: str
    gpu_index: int | None = None
    session_id: str | None = None

    def render(self) -> str:
        where = "" if self.gpu_index is None else f"gpu{self.gpu_index}: "
        return f"[{self.rule}] {where}{self.message}"


class PlanCheckError(AssertionError):
    """A plan failed invariant validation."""

    def __init__(self, violations: list[PlanViolation], context: str = ""):
        self.violations = violations
        self.context = context
        header = f"invalid plan{f' ({context})' if context else ''}:"
        lines = [header] + [f"  {v.render()}" for v in violations]
        super().__init__("\n".join(lines))


def _worst_case_ms(plan: GpuPlan, alloc_index: int) -> float:
    """The allocation's worst-case latency under this plan's regime."""
    alloc = plan.allocations[alloc_index]
    if plan.saturated:
        # Back-to-back batches: a request just missing one batch waits
        # for the whole next one (section 6.1's 2*l(B) bound).
        return 2.0 * alloc.exec_ms
    wc = plan.duty_cycle_ms + alloc.exec_ms
    if len(plan.allocations) == 1:
        # A lone residual session dispatches as soon as its batch fills:
        # its first request waits the gather time, not the nominal duty.
        wc = min(wc, alloc.gather_wait_ms() + alloc.exec_ms)
    return wc


def _check_p99(
    plan: GpuPlan, in_bounds: list[int], gpu_index: int | None
) -> list[PlanViolation]:
    """p99-admission invariants: a dedicated node whose oracle-estimated
    tail meets the SLO (the probabilistic counterpart of ``slo-headroom``).

    The queueing model describes one session with the whole GPU, so a
    multi-session p99 node has no validated latency story at all.  The
    capacity question is re-asked of the same engine
    (``plan.capacity_mode``) that sized the node -- p99 admission sits at
    the estimate's boundary, where analytic and simulated answers
    legitimately differ by a few percent.
    """
    violations: list[PlanViolation] = []
    if len(plan.allocations) != 1:
        violations.append(PlanViolation(
            "slo-headroom",
            f"p99 node hosts {len(plan.allocations)} sessions; p99 "
            f"admission applies to dedicated nodes only",
            gpu_index=gpu_index,
        ))
    mode = getattr(plan, "capacity_mode", "analytic")
    for i in in_bounds:
        alloc = plan.allocations[i]
        sid = alloc.session_id
        est = capacity_answer(
            alloc.load.profile, alloc.load.rate_rps, batch_cap=alloc.batch,
            mode=mode,
        )
        if not est.stable:
            violations.append(PlanViolation(
                "slo-headroom",
                f"{sid}: rate {alloc.load.rate_rps:.3f} rps exceeds "
                f"sustainable {est.sustainable_rps:.3f} rps at cap "
                f"{alloc.batch}",
                gpu_index=gpu_index, session_id=sid,
            ))
        elif not approx_le(est.p99_ms, alloc.load.slo_ms):
            violations.append(PlanViolation(
                "slo-headroom",
                f"{sid}: p99 {est.p99_ms:.3f} ms exceeds SLO "
                f"{alloc.load.slo_ms:.3f} ms at cap {alloc.batch} "
                f"({est.source} estimate)",
                gpu_index=gpu_index, session_id=sid,
            ))
    return violations


def check_gpu_plan(
    plan: GpuPlan,
    memory_capacity: int | None = None,
    gpu_index: int | None = None,
) -> list[PlanViolation]:
    """Validate one GPU's schedule; returns violations (empty if sound)."""
    violations: list[PlanViolation] = []

    if plan.duty_cycle_ms <= 0:
        violations.append(PlanViolation(
            "nonpositive-duty",
            f"duty cycle {plan.duty_cycle_ms!r} ms must be positive",
            gpu_index=gpu_index,
        ))
        return violations  # downstream ratios are meaningless

    # Batch bounds come first: profiles refuse to report latency for an
    # out-of-range batch, so the latency-derived checks below can only run
    # over the in-bounds allocations.
    seen: dict[str, int] = {}
    in_bounds: list[int] = []
    for i, alloc in enumerate(plan.allocations):
        sid = alloc.session_id
        seen[sid] = seen.get(sid, 0) + 1

        if alloc.batch < 1:
            violations.append(PlanViolation(
                "batch-bounds", f"{sid}: batch {alloc.batch} < 1",
                gpu_index=gpu_index, session_id=sid,
            ))
            continue
        max_batch = getattr(alloc.load.profile, "max_batch", None)
        if max_batch is not None and alloc.batch > max_batch:
            violations.append(PlanViolation(
                "batch-bounds",
                f"{sid}: batch {alloc.batch} exceeds profile max "
                f"{max_batch}",
                gpu_index=gpu_index, session_id=sid,
            ))
            continue
        in_bounds.append(i)

    busy = sum(plan.allocations[i].exec_ms for i in in_bounds)
    if not approx_le(busy, plan.duty_cycle_ms):
        violations.append(PlanViolation(
            "duty-overcommit",
            f"batch latencies sum to {busy:.3f} ms, exceeding the "
            f"{plan.duty_cycle_ms:.3f} ms duty cycle",
            gpu_index=gpu_index,
        ))

    if getattr(plan, "slo_mode", "worst_case") == "p99":
        violations.extend(_check_p99(plan, in_bounds, gpu_index))
    else:
        for i in in_bounds:
            alloc = plan.allocations[i]
            sid = alloc.session_id
            wc = _worst_case_ms(plan, i)
            if not approx_le(wc, alloc.load.slo_ms):
                violations.append(PlanViolation(
                    "slo-headroom",
                    f"{sid}: worst-case {wc:.3f} ms exceeds SLO "
                    f"{alloc.load.slo_ms:.3f} ms (duty "
                    f"{plan.duty_cycle_ms:.3f} + exec {alloc.exec_ms:.3f})",
                    gpu_index=gpu_index, session_id=sid,
                ))

    for sid, count in seen.items():
        if count > 1:
            violations.append(PlanViolation(
                "double-assignment",
                f"{sid} assigned {count} times on one GPU (one queue per "
                f"session per backend)",
                gpu_index=gpu_index, session_id=sid,
            ))

    if memory_capacity is not None:
        used = plan.memory_bytes()
        if used > memory_capacity:
            violations.append(PlanViolation(
                "memory-capacity",
                f"resident memory {used} B exceeds GPU capacity "
                f"{memory_capacity} B",
                gpu_index=gpu_index,
            ))

    return violations


def _check_device_consistency(
    plan: GpuPlan, fleet: Fleet, gpu_index: int
) -> tuple[list[PlanViolation], int | None]:
    """Fleet invariants for one node: known class, matching load tags.

    Returns ``(violations, memory_capacity)`` where the capacity is the
    node's class capacity, or None when the class is unknown (the memory
    check is then meaningless).
    """
    violations: list[PlanViolation] = []
    if plan.device not in fleet.names:
        violations.append(PlanViolation(
            "device-consistency",
            f"node tagged {plan.device!r}, not a fleet class "
            f"{fleet.names}",
            gpu_index=gpu_index,
        ))
        return violations, None
    for alloc in plan.allocations:
        if alloc.device != plan.device:
            violations.append(PlanViolation(
                "device-consistency",
                f"{alloc.session_id}: load tagged {alloc.device!r} on a "
                f"{plan.device!r} GPU (profile/class mismatch)",
                gpu_index=gpu_index, session_id=alloc.session_id,
            ))
    return violations, fleet.memory_capacity(plan.device)


def check_plan(
    plan: SchedulePlan,
    memory_capacity: int | None = None,
    max_gpus: int | None = None,
    fleet: Fleet | None = None,
) -> list[PlanViolation]:
    """Validate a full cluster plan; returns violations (empty if sound).

    With ``fleet`` set, memory is bounded per class, every node must be
    consistently class-tagged (``device-consistency``), and each class's
    GPU count must fit its inventory (``gpu-cap`` per class).
    """
    global _plans_checked
    _plans_checked += 1

    violations: list[PlanViolation] = []
    node_ids: dict[int, int] = {}
    for i, gpu in enumerate(plan.gpus):
        gpu_memory = memory_capacity
        if fleet is not None:
            device_violations, class_memory = _check_device_consistency(
                gpu, fleet, i
            )
            violations.extend(device_violations)
            if class_memory is not None:
                gpu_memory = class_memory
        violations.extend(
            check_gpu_plan(gpu, memory_capacity=gpu_memory, gpu_index=i)
        )
        if gpu.node_id in node_ids:
            violations.append(PlanViolation(
                "duplicate-node-id",
                f"node_id {gpu.node_id} used by gpu{node_ids[gpu.node_id]} "
                f"and gpu{i}; stable identity must be unique",
                gpu_index=i,
            ))
        else:
            node_ids[gpu.node_id] = i

    if max_gpus is not None and plan.num_gpus > max_gpus:
        violations.append(PlanViolation(
            "gpu-cap",
            f"plan uses {plan.num_gpus} GPUs, exceeding the cluster cap "
            f"{max_gpus}",
        ))

    if fleet is not None:
        for name, used in plan.gpus_by_class().items():
            if name not in fleet.names:
                continue  # already a device-consistency violation
            cap = fleet.count(name)
            if cap is not None and used > cap:
                violations.append(PlanViolation(
                    "gpu-cap",
                    f"class {name!r} uses {used} GPUs, exceeding its "
                    f"inventory {cap}",
                ))

    return violations


def assert_valid_plan(
    plan: SchedulePlan,
    memory_capacity: int | None = None,
    max_gpus: int | None = None,
    fleet: Fleet | None = None,
    context: str = "",
) -> SchedulePlan:
    """Raise :class:`PlanCheckError` if the plan violates any invariant.

    Returns the plan unchanged so call sites can validate inline::

        pool.apply_plan(assert_valid_plan(plan, context="epoch"))
    """
    violations = check_plan(
        plan, memory_capacity=memory_capacity, max_gpus=max_gpus, fleet=fleet
    )
    if violations:
        raise PlanCheckError(violations, context=context)
    return plan
