"""Baseline systems: batch-oblivious scheduling, Clipper, TF Serving."""

from .batch_oblivious import batch_oblivious_plan
from .clipper import CLIPPER_INTERFERENCE, clipper_config
from .tf_serving import tf_serving_config

__all__ = [
    "batch_oblivious_plan",
    "CLIPPER_INTERFERENCE",
    "clipper_config",
    "tf_serving_config",
]
