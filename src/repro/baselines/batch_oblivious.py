"""Batch-oblivious scheduler: the external scheduler of section 7.2.

Clipper and TF Serving assume cluster scheduling is handled externally, so
the paper furnishes a baseline: "A batch-oblivious scheduler greedily
allocates to each model/SLO a share of the cluster proportional to its
request rate and inversely proportional to its maximum single-node
throughput."

Each session's cluster share is ``(rate / peak_throughput) / total`` of
the available GPUs.  Whole GPUs are dedicated; fractional leftovers are
co-located ("the oblivious scheduler may map multiple models onto a
Clipper GPU, in which case we launch one container per model").  The
crucial difference from squishy bin packing: co-location reasons about
*throughput shares* only, never about how co-residents' executions
interact with each other's latency SLOs -- that infeasibility is what
Figure 16 measures.
"""

from __future__ import annotations

import math

from ..core.session import SessionLoad
from ..core.squishy import Allocation, GpuPlan, SchedulePlan

__all__ = ["batch_oblivious_plan"]


def batch_oblivious_plan(
    loads: list[SessionLoad],
    num_gpus: int | None = None,
) -> SchedulePlan:
    """Allocate cluster shares proportional to ``rate / peak_throughput``.

    Args:
        loads: sessions with observed rates.
        num_gpus: cluster size to divide up; defaults to the minimum
            integral count covering the summed demand.

    Returns:
        A :class:`SchedulePlan`.  Co-located sessions get the batch size
        they would use *alone* on a GPU; latency interactions are ignored,
        so the plan may be latency-infeasible by design.
    """
    active = [l for l in loads if l.rate_rps > 0]
    infeasible: list[SessionLoad] = []

    shares: list[tuple[SessionLoad, float, int]] = []  # (load, demand_gpus, batch)
    for load in active:
        batch = load.profile.max_batch_under_slo(load.slo_ms)
        if batch == 0:
            infeasible.append(load)
            continue
        peak = load.profile.throughput(batch)
        shares.append((load, load.rate_rps / peak, batch))

    if not shares:
        return SchedulePlan(gpus=[], infeasible=infeasible)

    total_demand = sum(s for _, s, _ in shares)
    if num_gpus is None:
        num_gpus = max(1, math.ceil(total_demand))

    # Proportional share of the cluster for each session.
    scale = num_gpus / total_demand
    shares = [(load, demand * scale, batch) for load, demand, batch in shares]

    # Whole GPUs first, largest shares first; fractional leftovers are
    # first-fit co-located onto shared GPUs.
    shares.sort(key=lambda x: x[1], reverse=True)
    plans: list[GpuPlan] = []
    fractional: list[tuple[SessionLoad, float, int]] = []
    gpus_left = num_gpus
    for load, share, batch in shares:
        whole = min(int(share), gpus_left)
        per_share_rate = load.rate_rps / share if share > 0 else 0.0
        for _ in range(whole):
            plans.append(
                GpuPlan(
                    [Allocation(load.with_rate(per_share_rate), batch)],
                    duty_cycle_ms=load.profile.latency(batch),
                    saturated=True,
                )
            )
        gpus_left -= whole
        frac = share - whole
        if frac > 1e-9:
            fractional.append((load.with_rate(per_share_rate * frac), frac, batch))

    fractional.sort(key=lambda x: x[1], reverse=True)
    bins: list[tuple[float, list[tuple[SessionLoad, int]]]] = []
    for load, frac, batch in fractional:
        placed = False
        for i, (used, members) in enumerate(bins):
            if used + frac <= 1.0 + 1e-9:
                bins[i] = (used + frac, members + [(load, batch)])
                placed = True
                break
        if not placed and len(bins) < max(gpus_left, 1):
            bins.append((frac, [(load, batch)]))
            placed = True
        if not placed:
            # Cluster cap binds: pile onto the least-loaded shared GPU.
            i = min(range(len(bins)), key=lambda j: bins[j][0])
            used, members = bins[i]
            bins[i] = (used + frac, members + [(load, batch)])

    for used, members in bins:
        allocs = [Allocation(load, batch) for load, batch in members]
        duty = sum(a.exec_ms for a in allocs)
        plans.append(GpuPlan(allocs, duty_cycle_ms=max(duty, 1e-9)))

    return SchedulePlan(gpus=plans, infeasible=infeasible)
