"""Clipper-like baseline configuration (section 7.2).

Clipper [6] batches requests adaptively under a latency SLO but:

- assumes an *external* scheduler (we supply the batch-oblivious one);
- deploys each model in its own container; co-located containers issue
  kernels independently and the GPU interleaves them arbitrarily,
  inflating and destabilizing everyone's latency (section 6.3, "GPU
  multiplexing");
- uses *lazy dropping*: a request is dropped only once it has already
  missed its deadline, and batch size follows the oldest request's
  remaining budget (section 4.3);
- does not overlap CPU pre/post-processing with GPU execution at the
  granularity Nexus does.

All of that is expressed as a :class:`~repro.cluster.nexus.ClusterConfig`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # deferred: cluster.nexus imports this package
    from ..cluster.nexus import ClusterConfig

__all__ = ["clipper_config", "CLIPPER_INTERFERENCE"]

#: Latency inflation per extra co-located container.  Section 7.5 /
#: Figure 14 shows Clipper losing 1.9-9.8x to Nexus as co-located model
#: count grows; interleaved kernel execution roughly serializes the
#: co-residents while adding scheduling overhead.
CLIPPER_INTERFERENCE = 0.35


def clipper_config(device: str = "gtx1080ti",
                   max_gpus: int | None = None,
                   seed: int = 0) -> "ClusterConfig":
    """ClusterConfig reproducing Clipper's serving behaviour."""
    from ..cluster.nexus import ClusterConfig

    return ClusterConfig(
        device=device,
        max_gpus=max_gpus,
        scheduler="batch_oblivious",
        pacing="greedy",
        drop_policy="lazy",
        overlap=False,
        prefix_batching=False,
        query_analysis=False,
        interference_factor=CLIPPER_INTERFERENCE,
        paced=False,
        seed=seed,
    )
