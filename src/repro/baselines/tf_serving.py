"""TF-Serving-like baseline configuration (section 7.2).

TF Serving [25] "can be viewed as a variant of Clipper that does not
provide approximation and caching" -- and per section 7.5 it "runs models
in a round-robin fashion" on a shared GPU, so unlike Clipper it does not
suffer container interference.  It has no frontend load balancer and no
per-request latency SLO; the paper supplies a dispatcher and picks "the
maximum batch size for each model, so its SLO is not violated".

Expressed here: batch-oblivious external scheduler, round-robin (cycle)
execution without interference, no CPU/GPU overlap, lazy dropping (there
is no early admission control), no prefix batching or query analysis.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # deferred: cluster.nexus imports this package
    from ..cluster.nexus import ClusterConfig

__all__ = ["tf_serving_config"]


def tf_serving_config(device: str = "gtx1080ti",
                      max_gpus: int | None = None,
                      seed: int = 0) -> "ClusterConfig":
    """ClusterConfig reproducing TF Serving's serving behaviour."""
    from ..cluster.nexus import ClusterConfig

    return ClusterConfig(
        device=device,
        max_gpus=max_gpus,
        scheduler="batch_oblivious",
        pacing="cycle",
        drop_policy="lazy",
        overlap=False,
        prefix_batching=False,
        query_analysis=False,
        interference_factor=0.0,
        paced=False,
        seed=seed,
    )
