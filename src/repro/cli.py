"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``experiments``            list reproducible tables/figures
- ``run <experiment>``       regenerate one table/figure (``--quick`` for
                             scaled-down parameters)
- ``fault-recovery``         kill k of N backends mid-run; report goodput
                             dip depth, detection latency, time-to-recover
- ``oracle-validation``      compare the closed-form queueing oracle
                             against simulated ground truth across arrival
                             processes and load levels (docs/queueing.md)
- ``mixed-fleet``            heterogeneous fleets: cost-optimal mixed-class
                             placement vs homogeneous baselines
                             (docs/heterogeneous.md)
- ``models``                 show the model zoo with sizes and profiles
- ``profile <model>``        print a model's batching profile on a device
- ``plan``                   capacity-plan a workload of sessions given as
                             ``model:slo_ms:rate_rps`` triples
- ``lint``                   run nexuslint, the project's determinism /
                             SLO-safety static analysis (docs/static-analysis.md)
- ``bench``                  time the simulator/dispatch/cluster hot paths
                             and the parallel sweep runner; write the
                             measurements to ``BENCH_simulator.json``
- ``serve``                  run the live asyncio serving plane: an HTTP
                             frontend over the shared runtime core on
                             wall-clock epochs (docs/serving.md)
- ``loadgen``                open-loop load generator against a live
                             server; reports achieved rate, p50/p99 and
                             drop fractions

Observability flags (before the subcommand) capture the structured event
stream of every cluster run the command performs (docs/observability.md):

- ``--trace-out PATH``       Chrome trace_event JSON (chrome://tracing /
                             Perfetto)
- ``--metrics-out PATH``     Prometheus-style text snapshot of
                             counters/gauges
- ``--trace-csv PATH``       the raw event table as CSV
"""

from __future__ import annotations

import argparse
import sys

__all__ = ["main", "build_parser"]

#: Experiments runnable from the CLI, with quick-mode overrides.
_EXPERIMENTS: dict[str, dict] = {
    "table1": {},
    "fig2": {},
    "fig4": {},
    "fig5": {"quick": {"duration_ms": 20_000.0}},
    "fig9": {"quick": {"duration_ms": 15_000.0, "iterations": 7}},
    "fig10": {"quick": {"duration_ms": 5_000.0, "iterations": 6,
                        "systems": ["nexus", "tf_serving", "-OL"]}},
    "fig11": {"quick": {"duration_ms": 6_000.0, "iterations": 6,
                        "systems": ["nexus", "tf_serving", "-OL"]}},
    "fig12": {"quick": {"duration_ms": 6_000.0, "iterations": 6,
                        "systems": ["nexus", "tf_serving"]}},
    "fig14": {"quick": {"duration_ms": 6_000.0, "iterations": 6,
                        "model_counts": (2, 4), "slos": (50.0, 200.0)}},
    "fig15": {},
    "fig16": {"quick": {"duration_ms": 5_000.0, "iterations": 6,
                        "scenarios": ("mix_rates_inception",)}},
    "fig17": {"quick": {"duration_ms": 6_000.0, "iterations": 6,
                        "slos": (400.0,), "gammas": (1.0,)}},
    "utilization": {"quick": {"duration_ms": 15_000.0}},
    "ilp_gap": {"quick": {"sizes": (4, 6), "trials": 5}},
    "mixed_fleet": {},
    "fault_recovery": {"quick": {"duration_ms": 60_000.0,
                                 "kill_at_ms": 20_000.0,
                                 "warmup_ms": 5_000.0}},
    "oracle_validation": {"quick": {"duration_ms": 20_000.0}},
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Nexus (SOSP 2019) reproduction toolkit",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="write a Chrome trace_event JSON of every cluster run the "
             "command performs (open in chrome://tracing or Perfetto)",
    )
    parser.add_argument(
        "--metrics-out", metavar="PATH", default=None,
        help="write a Prometheus-style text snapshot of the run's "
             "counters/gauges (goodput, bad rate, drops, batch sizes, "
             "GPU occupancy)",
    )
    parser.add_argument(
        "--trace-csv", metavar="PATH", default=None,
        help="write the raw structured event table as CSV",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("experiments", help="list reproducible tables/figures")

    run = sub.add_parser("run", help="regenerate one table/figure")
    run.add_argument("experiment", choices=sorted(_EXPERIMENTS))
    run.add_argument("--quick", action="store_true",
                     help="scaled-down parameters (minutes -> seconds)")

    fr = sub.add_parser(
        "fault-recovery",
        help="kill k of N backends mid-run and measure recovery",
    )
    fr.add_argument("--gpus", type=int, default=8,
                    help="cluster size (backends)")
    fr.add_argument("--kill", type=int, default=1,
                    help="backends to crash")
    fr.add_argument("--kill-at", type=float, default=40_000.0,
                    metavar="MS", help="crash instant (virtual ms)")
    fr.add_argument("--duration", type=float, default=120_000.0,
                    metavar="MS", help="run length (virtual ms)")
    fr.add_argument("--seed", type=int, default=0)

    ov = sub.add_parser(
        "oracle-validation",
        help="validate the queueing oracle against simulated ground truth",
    )
    ov.add_argument("--duration", type=float, default=120_000.0,
                    metavar="MS", help="arrival stream length (virtual ms)")
    ov.add_argument("--seed", type=int, default=0)
    ov.add_argument("--quick", action="store_true",
                    help="shorter streams (noisier quantiles; for smoke "
                         "runs)")

    mf = sub.add_parser(
        "mixed-fleet",
        help="heterogeneous fleets: cost-optimal mixed-class placement "
             "vs homogeneous baselines (docs/heterogeneous.md)",
    )
    mf.add_argument("--class", action="append", default=None,
                    metavar="NAME:COUNT", dest="classes",
                    help="fleet class with inventory, e.g. t4:4 or "
                         "gtx1080ti:16 (repeatable; COUNT '-' = "
                         "unbounded; default: gtx1080ti:16 k80:16 t4:4)")
    mf.add_argument("--no-stage-placement", action="store_true",
                    help="skip the PPipe-style per-stage placement rows")

    mega = sub.add_parser(
        "megascale",
        help="fleet-scale sharded serving: a compressed day of diurnal "
             "drift, regional waves and flash crowds "
             "(docs/sharded-simulation.md)",
    )
    mega.add_argument("--gpus", type=int, default=10_000,
                      help="fleet size (cap), dealt across shards")
    mega.add_argument("--sessions", type=int, default=1_000,
                      help="total model sessions across the fleet")
    mega.add_argument("--shards", type=int, default=8,
                      help="independent partitions (one worker each)")
    mega.add_argument("--duration", type=float, default=120.0,
                      metavar="S", help="compressed-day length (virtual s)")
    mega.add_argument("--base-rps", type=float, default=10.0,
                      help="per-session baseline rate")
    mega.add_argument("--workers", type=int, default=None,
                      help="worker processes for shard fan-out "
                           "(default: serial)")
    mega.add_argument("--seed", type=int, default=0)
    mega.add_argument("--quick", action="store_true",
                      help="small smoke configuration (64 GPUs, 12 "
                           "sessions, 2 shards, 8s day)")

    sub.add_parser("models", help="show the model zoo")

    prof = sub.add_parser("profile", help="print a model's batching profile")
    prof.add_argument("model", help="zoo name, e.g. resnet50 or "
                                    "'resnet50@task:40'")
    prof.add_argument("--device", default="gtx1080ti")
    prof.add_argument("--batches", default="1,2,4,8,16,32",
                      help="comma-separated batch sizes")

    plan = sub.add_parser("plan", help="capacity-plan a session workload")
    plan.add_argument("sessions", nargs="+",
                      help="model:slo_ms:rate_rps triples, e.g. "
                           "resnet50:100:400")
    plan.add_argument("--device", default="gtx1080ti")
    plan.add_argument("--exact", action="store_true",
                      help="also solve exactly (small workloads only)")

    lint = sub.add_parser(
        "lint",
        help="nexuslint: determinism / SLO-safety static analysis",
    )
    lint.add_argument("paths", nargs="*",
                      help="files or directories (default: the repro "
                           "package source)")
    lint.add_argument("--rules", default=None, metavar="R1,R2",
                      help="comma-separated subset of rules")
    lint.add_argument("--format", choices=("text", "json", "github"),
                      default="text", dest="lint_format",
                      help="findings output format (github = workflow "
                           "annotations)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule registry and exit")
    lint.add_argument("--baseline", default=None, metavar="FILE",
                      help="ratchet file: recorded findings are waived, "
                           "new ones fail")
    lint.add_argument("--write-baseline", action="store_true",
                      help="regenerate --baseline from current findings")
    lint.add_argument("--json-out", default=None, metavar="FILE",
                      help="also write a JSON findings artifact")

    bench = sub.add_parser(
        "bench",
        help="run the perf benchmarks and write BENCH_simulator.json",
    )
    bench.add_argument("--quick", action="store_true",
                       help="scaled-down workloads (~10x smaller; for CI "
                            "smoke runs)")
    bench.add_argument("--workers", type=int, default=4, metavar="N",
                       help="worker processes for the parallel sweep "
                            "(default: 4)")
    bench.add_argument("--repeats", type=int, default=3, metavar="K",
                       help="best-of-K runs for the micro-benchmarks "
                            "(default: 3)")
    bench.add_argument("--out", default=None, metavar="PATH",
                       help="output JSON path (default: "
                            "BENCH_simulator.json in the current "
                            "directory; '-' to skip writing)")
    bench.add_argument("--check-against", default=None, metavar="PATH",
                       dest="check_against",
                       help="compare rate metrics against a committed "
                            "baseline JSON; exit 1 on a >30%% "
                            "regression, exit 0 with a notice when the "
                            "hardware fingerprint differs")

    serve = sub.add_parser(
        "serve",
        help="run the live serving plane (asyncio HTTP frontend)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="listen port (0 = ephemeral, printed on start)")
    serve.add_argument("--app", action="append", default=None,
                       metavar="SPEC", dest="apps",
                       help="app to deploy: MODEL:SLO_MS:RATE_RPS or "
                            "app=NAME:RATE_RPS (repeatable; default "
                            "lenet5:50:30000)")
    serve.add_argument("--device", default="gtx1080ti")
    serve.add_argument("--gpus", type=int, default=None,
                       help="cluster size cap (default: size to demand)")
    serve.add_argument("--epoch-ms", type=float, default=10_000.0,
                       metavar="MS", help="epoch control-loop cadence")
    serve.add_argument("--dynamic", action="store_true",
                       help="re-plan every epoch from observed load")
    serve.add_argument("--seed", type=int, default=0)

    lg = sub.add_parser(
        "loadgen",
        help="open-loop load generator against a live server",
    )
    lg.add_argument("--host", default="127.0.0.1")
    lg.add_argument("--port", type=int, default=8642)
    lg.add_argument("--app", default="lenet5",
                    help="application name to invoke (default lenet5)")
    lg.add_argument("--rate", type=float, default=25_000.0, metavar="RPS",
                    help="offered request rate")
    lg.add_argument("--duration", type=float, default=5.0, metavar="S",
                    dest="duration_s", help="burst length in seconds")
    lg.add_argument("--connections", type=int, default=8,
                    help="pipelined keep-alive connections")
    lg.add_argument("--arrival", choices=("poisson", "uniform"),
                    default="poisson")
    lg.add_argument("--seed", type=int, default=0)
    lg.add_argument("--wait-ready", type=float, default=0.0, metavar="S",
                    dest="wait_ready_s",
                    help="poll /v1/healthz up to S seconds before starting")
    lg.add_argument("--min-achieved-rps", type=float, default=None,
                    metavar="RPS", dest="min_achieved_rps",
                    help="exit 1 if the achieved rate falls below RPS")
    lg.add_argument("--min-goodput-rps", type=float, default=None,
                    metavar="RPS", dest="min_goodput_rps",
                    help="exit 1 if server-side goodput falls below RPS")
    lg.add_argument("--report-json", default=None, metavar="PATH",
                    help="write the full report as JSON")
    lg.add_argument("--shutdown", action="store_true",
                    help="POST /v1/shutdown after the run (CI smoke)")

    return parser


def _cmd_experiments() -> int:
    from .experiments import __doc__ as doc

    print("reproducible artifacts (run with: python -m repro run <name>):")
    for name in sorted(_EXPERIMENTS):
        quick = " [--quick available]" if _EXPERIMENTS[name] else ""
        print(f"  {name}{quick}")
    print("\nfig13 (the 1000 s timeline) is driven via "
          "repro.experiments.fig13.run() or benchmarks/ -- it takes minutes.")
    return 0


def _cmd_run(name: str, quick: bool) -> int:
    import importlib

    module = importlib.import_module(f"repro.experiments.{name}")
    kwargs = _EXPERIMENTS[name].get("quick", {}) if quick else {}
    result = module.run(**kwargs)
    # Some experiments return (table, structured output); print the table.
    if isinstance(result, tuple):
        result = result[0]
    print(result)
    return 0


def _cmd_megascale(gpus: int, sessions: int, shards: int, duration_s: float,
                   base_rps: float, workers: int | None, seed: int,
                   quick: bool) -> int:
    from .experiments.megascale import run

    if quick:
        gpus, sessions, shards, duration_s = 64, 12, 2, 8.0
    table = run(
        gpus=gpus, sessions=sessions, shards=shards,
        duration_s=duration_s, seed=seed, workers=workers,
        base_rps=base_rps,
    )
    print(table)
    return 0


def _cmd_fault_recovery(gpus: int, kill: int, kill_at_ms: float,
                        duration_ms: float, seed: int) -> int:
    from .experiments.fault_recovery import run

    table, output = run(
        duration_ms=duration_ms, kill_at_ms=kill_at_ms, kill=kill,
        gpus=gpus, seed=seed,
    )
    print(table)
    det = output.detection_ms
    ttr = output.time_to_recover_ms
    print(f"pre-fault goodput : {output.pre_fault_goodput_rps:.1f} rps")
    print(f"dip depth         : {output.dip_fraction:.2f}x pre-fault")
    print("detection latency : "
          + ("not detected" if det is None else f"{det:.0f} ms"))
    print("time to recover   : "
          + ("not recovered" if ttr is None else f"{ttr:.0f} ms"))
    print(f"recovered level   : {output.recovered_fraction:.2f}x pre-fault")
    return 0


def _cmd_oracle_validation(duration_ms: float, seed: int,
                           quick: bool) -> int:
    from .experiments.common import format_table
    from .experiments.oracle_validation import run

    if quick:
        duration_ms = min(duration_ms, 20_000.0)
    result = run(duration_ms=duration_ms, seed=seed)
    print(format_table(result.name, result.columns, result.rows,
                       result.notes))
    return 0


def _cmd_mixed_fleet(classes: list[str] | None,
                     no_stage_placement: bool) -> int:
    from .experiments.mixed_fleet import run

    counts: dict[str, int | None] | None = None
    if classes:
        counts = {}
        for spec in classes:
            try:
                name, count_s = spec.rsplit(":", 1)
                counts[name] = None if count_s == "-" else int(count_s)
            except ValueError:
                print(f"bad class spec {spec!r}; want NAME:COUNT",
                      file=sys.stderr)
                return 2
    print(run(counts=counts,
              include_stage_placement=not no_stage_placement))
    return 0


def _cmd_models() -> int:
    from .experiments.common import format_table
    from .models.zoo import MODEL_BUILDERS, get_model

    rows = []
    for name in sorted(MODEL_BUILDERS):
        m = get_model(name)
        rows.append([
            name,
            "x".join(str(d) for d in m.input_shape),
            m.num_layers(),
            round(m.total_flops() / 1e9, 2),
            round(m.total_param_bytes() / 1e6, 1),
        ])
    print(format_table("model zoo",
                       ["model", "input", "layers", "gflops", "params_mb"],
                       rows))
    return 0


def _cmd_profile(model: str, device: str, batches: str) -> int:
    from .experiments.common import format_table
    from .models.profiler import profile

    prof = profile(model, device)
    rows = []
    for b in (int(x) for x in batches.split(",")):
        if b < 1 or b > prof.max_batch:
            continue
        rows.append([b, round(prof.latency(b), 3),
                     round(prof.throughput(b), 1),
                     round(prof.memory_bytes(b) / 1e6, 1)])
    print(format_table(
        f"{model} on {device} (alpha={prof.alpha:.3f} ms, "
        f"beta={prof.beta:.3f} ms, max_batch={prof.max_batch})",
        ["batch", "latency_ms", "throughput_rps", "memory_mb"], rows))
    return 0


def _cmd_plan(sessions: list[str], device: str, exact: bool) -> int:
    from .core import Session, SessionLoad, squishy_bin_packing
    from .core.ilp import exact_min_gpus
    from .core.profile import EffectiveProfile
    from .models.profiler import profile

    loads = []
    for spec in sessions:
        try:
            model, slo_s, rate_s = spec.rsplit(":", 2)
            slo, rate = float(slo_s), float(rate_s)
        except ValueError:
            print(f"bad session spec {spec!r}; want model:slo_ms:rate_rps",
                  file=sys.stderr)
            return 2
        prof = EffectiveProfile(base=profile(model, device), overlap=True)
        loads.append(SessionLoad(Session(model, slo), rate, prof))

    plan = squishy_bin_packing(loads)
    print(f"{plan.num_gpus} GPUs ({device}):")
    for i, gpu in enumerate(plan.gpus):
        members = ", ".join(
            f"{a.session_id} b={a.batch} ({a.exec_ms:.1f} ms)"
            for a in gpu.allocations
        )
        kind = "saturated" if gpu.saturated else "shared"
        print(f"  gpu{i} [{kind}] duty={gpu.duty_cycle_ms:.1f} ms "
              f"occ={gpu.occupancy:.0%}: {members}")
    for load in plan.infeasible:
        print(f"  INFEASIBLE: {load.session_id} "
              f"(l(1)={load.profile.latency(1):.1f} ms vs "
              f"SLO {load.slo_ms:.0f} ms)")
    if exact:
        optimum = exact_min_gpus(loads)
        print(f"exact optimum: {optimum.num_gpus} GPUs")
    return 0


def _cmd_lint(paths: list[str], rules: str | None, fmt: str,
              list_rules: bool, baseline: str | None,
              write_baseline: bool, json_out: str | None) -> int:
    from .analysis.lint import main as lint_main

    argv = list(paths)
    if rules:
        argv += ["--rules", rules]
    if fmt != "text":
        argv += ["--format", fmt]
    if list_rules:
        argv += ["--list-rules"]
    if baseline:
        argv += ["--baseline", baseline]
    if write_baseline:
        argv += ["--write-baseline"]
    if json_out:
        argv += ["--json-out", json_out]
    return lint_main(argv)


def _cmd_bench(quick: bool, workers: int, repeats: int,
               out: str | None, check_against: str | None = None) -> int:
    from .experiments.bench import (
        DEFAULT_OUT,
        check_regression,
        format_bench,
        run_bench,
    )

    out_path = DEFAULT_OUT if out is None else (None if out == "-" else out)
    payload = run_bench(quick=quick, workers=workers, out_path=out_path,
                        repeats=repeats)
    print(format_bench(payload))
    if out_path:
        print(f"baseline -> {out_path}", file=sys.stderr)
    if check_against:
        status, lines = check_regression(payload, check_against)
        print(f"regression gate vs {check_against}: {status}")
        for line in lines:
            print(f"  {line}")
        return 1 if status == "fail" else 0
    return 0


def _cmd_serve(host: str, port: int, apps: list[str] | None, device: str,
               gpus: int | None, epoch_ms: float, dynamic: bool,
               seed: int) -> int:
    import asyncio

    from .cluster.nexus import ClusterConfig
    from .serving import NexusServer, parse_app_spec

    cfg = ClusterConfig(
        device=device, max_gpus=gpus, epoch_ms=epoch_ms, seed=seed,
        dynamic=dynamic, expand_to_cluster=False,
    )

    async def _run() -> int:
        server = NexusServer(cfg, host=host, port=port, dynamic=dynamic)
        for spec in apps or ["lenet5:50:30000"]:
            query, rate, arrival = parse_app_spec(spec, device)
            server.runtime.add_app(query, rate, arrival)
        bound = await server.start()
        plan = server.runtime.plan
        print(
            f"serving on http://{host}:{bound} "
            f"({plan.num_gpus if plan else 0} emulated GPUs, "
            f"apps: {', '.join(server.runtime.app_names)})",
            flush=True,
        )
        try:
            await server.wait_shutdown()
        except (KeyboardInterrupt, asyncio.CancelledError):
            pass
        finally:
            await server.stop()
        print("server stopped cleanly", flush=True)
        return 0

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        print("server stopped cleanly", flush=True)
        return 0


def _cmd_loadgen(host: str, port: int, app: str, rate: float,
                 duration_s: float, connections: int, arrival: str,
                 seed: int, wait_ready_s: float,
                 min_achieved_rps: float | None,
                 min_goodput_rps: float | None,
                 report_json: str | None, shutdown: bool) -> int:
    import asyncio
    import json

    from .serving.loadgen import run_loadgen, wait_ready

    async def _run() -> tuple[int, dict]:
        if wait_ready_s > 0:
            await wait_ready(host, port, timeout_s=wait_ready_s)
        report = await run_loadgen(
            host, port, app, rate, duration_s,
            connections=connections, arrival=arrival, seed=seed,
        )
        print(report.summary())
        status = 0
        if min_achieved_rps is not None and (
            report.achieved_rps < min_achieved_rps
        ):
            print(
                f"FAIL: achieved {report.achieved_rps:,.1f} rps < "
                f"required {min_achieved_rps:,.1f} rps", file=sys.stderr,
            )
            status = 1
        if min_goodput_rps is not None:
            goodput = float(report.server_stats.get("goodput_rps", 0.0))
            if goodput < min_goodput_rps:
                print(
                    f"FAIL: server goodput {goodput:,.1f} rps < "
                    f"required {min_goodput_rps:,.1f} rps",
                    file=sys.stderr,
                )
                status = 1
        if shutdown:
            try:
                reader, writer = await asyncio.open_connection(host, port)
                writer.write(
                    b"POST /v1/shutdown HTTP/1.1\r\nHost: lg\r\n"
                    b"Content-Length: 0\r\nConnection: close\r\n\r\n"
                )
                await writer.drain()
                await reader.read()
                writer.close()
            except OSError as exc:
                print(f"shutdown request failed: {exc}", file=sys.stderr)
                status = status or 1
        return status, report.to_dict()

    # The report file is written here, after the event loop has exited:
    # synchronous file I/O inside the coroutine would stall the very
    # connections the loadgen is still draining.
    status, payload = asyncio.run(_run())
    if report_json:
        with open(report_json, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2)
        print(f"report -> {report_json}", file=sys.stderr)
    return status


def _dispatch(args) -> int:
    if args.command == "experiments":
        return _cmd_experiments()
    if args.command == "run":
        return _cmd_run(args.experiment, args.quick)
    if args.command == "fault-recovery":
        return _cmd_fault_recovery(args.gpus, args.kill, args.kill_at,
                                   args.duration, args.seed)
    if args.command == "oracle-validation":
        return _cmd_oracle_validation(args.duration, args.seed, args.quick)
    if args.command == "mixed-fleet":
        return _cmd_mixed_fleet(args.classes, args.no_stage_placement)
    if args.command == "megascale":
        return _cmd_megascale(args.gpus, args.sessions, args.shards,
                              args.duration, args.base_rps, args.workers,
                              args.seed, args.quick)
    if args.command == "models":
        return _cmd_models()
    if args.command == "profile":
        return _cmd_profile(args.model, args.device, args.batches)
    if args.command == "plan":
        return _cmd_plan(args.sessions, args.device, args.exact)
    if args.command == "lint":
        return _cmd_lint(args.paths, args.rules, args.lint_format,
                         args.list_rules, args.baseline,
                         args.write_baseline, args.json_out)
    if args.command == "bench":
        return _cmd_bench(args.quick, args.workers, args.repeats, args.out,
                          args.check_against)
    if args.command == "serve":
        return _cmd_serve(args.host, args.port, args.apps, args.device,
                          args.gpus, args.epoch_ms, args.dynamic, args.seed)
    if args.command == "loadgen":
        return _cmd_loadgen(args.host, args.port, args.app, args.rate,
                            args.duration_s, args.connections, args.arrival,
                            args.seed, args.wait_ready_s,
                            args.min_achieved_rps, args.min_goodput_rps,
                            args.report_json, args.shutdown)
    raise AssertionError(f"unhandled command {args.command!r}")


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if not (args.trace_out or args.metrics_out or args.trace_csv):
        return _dispatch(args)

    from .observability import (
        capture_trace,
        write_chrome_trace,
        write_csv,
        write_prometheus_snapshot,
    )

    # Fail on unwritable paths now, not after a possibly long run.
    for path in (args.trace_out, args.metrics_out, args.trace_csv):
        if path:
            try:
                with open(path, "a", encoding="utf-8"):
                    pass
            except OSError as exc:
                print(f"cannot write {path}: {exc}", file=sys.stderr)
                return 2

    with capture_trace() as buffer:
        status = _dispatch(args)
    if args.trace_out:
        write_chrome_trace(buffer.events, args.trace_out)
        print(f"trace: {len(buffer.events)} events -> {args.trace_out}",
              file=sys.stderr)
    if args.metrics_out:
        write_prometheus_snapshot(buffer.events, args.metrics_out)
        print(f"metrics snapshot -> {args.metrics_out}", file=sys.stderr)
    if args.trace_csv:
        write_csv(buffer.events, args.trace_csv)
        print(f"event csv -> {args.trace_csv}", file=sys.stderr)
    return status


if __name__ == "__main__":
    sys.exit(main())
