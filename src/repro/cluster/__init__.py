"""Cluster runtime: frontends, backends, control plane, NexusCluster."""

from .backend import Backend, BackendSession
from .faults import FaultEvent, FaultInjector, FaultPlan, seeded_plan
from .frontend import Frontend, QueryInstance, RetryPolicy, RoutingTable
from .global_scheduler import (
    BackendPool,
    HeartbeatMonitor,
    PoolConfig,
    make_policy,
)
from .messages import Request
from .nexus import AppSpec, ClusterConfig, ClusterResult, NexusCluster, find_max_rate
from .sharded import equivalence_report, partition_apps, run_sharded

__all__ = [
    "Backend",
    "BackendSession",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "seeded_plan",
    "Frontend",
    "QueryInstance",
    "RetryPolicy",
    "RoutingTable",
    "BackendPool",
    "HeartbeatMonitor",
    "PoolConfig",
    "make_policy",
    "Request",
    "AppSpec",
    "ClusterConfig",
    "ClusterResult",
    "NexusCluster",
    "find_max_rate",
    "equivalence_report",
    "partition_apps",
    "run_sharded",
]
