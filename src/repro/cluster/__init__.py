"""Cluster runtime: frontends, backends, control plane, NexusCluster."""

from .backend import Backend, BackendSession
from .frontend import Frontend, QueryInstance, RoutingTable
from .global_scheduler import BackendPool, PoolConfig, make_policy
from .messages import Request
from .nexus import AppSpec, ClusterConfig, ClusterResult, NexusCluster, find_max_rate

__all__ = [
    "Backend",
    "BackendSession",
    "Frontend",
    "QueryInstance",
    "RoutingTable",
    "BackendPool",
    "PoolConfig",
    "make_policy",
    "Request",
    "AppSpec",
    "ClusterConfig",
    "ClusterResult",
    "NexusCluster",
    "find_max_rate",
]
