"""Backend node: per-GPU queues, duty-cycle round robin, batched execution.

Paper sections 5 and 6.3.  Each backend owns one GPU.  The Nexus GPU
scheduler executes the sessions assigned to it in a round-robin duty
cycle, forming each batch with the early-drop policy and overlapping CPU
pre-/post-processing with GPU execution.  The same class also emulates the
baselines' execution disciplines through three knobs:

- ``pacing="cycle"`` (Nexus): sessions execute once per duty cycle, which
  lets batches fill to their planned size; ``pacing="greedy"`` (Clipper /
  TF Serving): execute whatever is queued whenever the GPU frees up.
- ``overlap``: section 6.3's OL -- without it the GPU idles through CPU
  pre/post-processing (the dominant effect in the game study, Figure 10).
- ``interference_factor``: Clipper runs co-located models in independent
  containers whose kernels interleave arbitrarily on the GPU (section
  6.3, "GPU multiplexing"), inflating everyone's latency; Nexus and TF
  Serving run models one at a time and take no penalty.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..core.drop import (
    DropPolicy,
    EarlyDropPolicy,
    QueuedRequest,
    consume_selected,
)
from ..core.profile import BatchingProfile
from ..metrics.collector import MetricsCollector
from ..observability.events import (
    DROP_BACKEND_FAILED,
    DROP_EARLY,
    DROP_MISROUTED,
    DROP_UNSCHEDULED,
)
from ..observability.tracer import Tracer, tracer_for_collector
from .messages import Request

if TYPE_CHECKING:
    from ..runtime.clock import EventSource, TimerHandle

__all__ = ["BackendSession", "Backend", "ExecutionSpan"]


@dataclass
class ExecutionSpan:
    """One batched execution on the GPU timeline (for tracing/tools)."""

    gpu_id: int
    session_id: str
    start_ms: float
    end_ms: float
    batch: int
    deferred: bool = False

    @property
    def duration_ms(self) -> float:
        return self.end_ms - self.start_ms


@dataclass
class BackendSession:
    """One session's slot in a backend's execution schedule."""

    session_id: str
    profile: BatchingProfile
    slo_ms: float
    target_batch: int
    duty_cycle_ms: float
    policy: DropPolicy = None  # type: ignore[assignment]
    #: one-time latency to load the model's weights onto this GPU when the
    #: session is newly placed here (0 = already resident / not modeled).
    load_ms: float = 0.0

    def __post_init__(self) -> None:
        if self.target_batch < 1:
            raise ValueError(f"target_batch must be >= 1, got {self.target_batch}")
        if self.policy is None:
            self.policy = EarlyDropPolicy(self.target_batch)


class _SessionState:
    """Backend-internal queue + pacing state for one scheduled session."""

    __slots__ = ("spec", "queue", "deferred", "requests", "last_start_ms",
                 "ready_ms")

    def __init__(self, spec: BackendSession) -> None:
        self.spec = spec
        self.queue: deque[QueuedRequest] = deque()
        self.deferred: list[QueuedRequest] = []
        self.requests: dict[int, Request] = {}
        self.last_start_ms = -math.inf
        #: absolute time the model finishes loading onto this GPU; no
        #: batch of this session may start earlier.
        self.ready_ms = -math.inf


class Backend:
    """A single-GPU backend module.

    Args:
        sim: the clock/timer driver (simulator or live event source).
        gpu_id: identifier for metrics.
        collector: sink for per-request outcome records (invocation
            granularity); pass None to rely on callbacks only.
        tracer: structured event tracer; when omitted, one is derived
            from ``collector`` (metrics-only, no event recording).  All
            outcome records reach the collector *through* the tracer's
            event stream.
        pacing: ``"cycle"`` or ``"greedy"`` (see module docstring).
        overlap: CPU/GPU overlap (OL).
        interference_factor: per-extra-co-located-session latency
            inflation; 0 disables (Nexus, TF Serving).
        device: GPU class this backend belongs to in a heterogeneous
            fleet ("" on homogeneous clusters).  The pool only deploys
            plan nodes of the matching class onto it.
    """

    def __init__(
        self,
        sim: EventSource,
        gpu_id: int = 0,
        collector: MetricsCollector | None = None,
        pacing: str = "cycle",
        overlap: bool = True,
        interference_factor: float = 0.0,
        defer_missed: bool = False,
        tracer: Tracer | None = None,
        device: str = "",
    ) -> None:
        if pacing not in ("cycle", "greedy"):
            raise ValueError(f"unknown pacing {pacing!r}")
        self.sim = sim
        self.gpu_id = gpu_id
        self.device = device
        self.collector = collector
        self.tracer = (
            tracer if tracer is not None else tracer_for_collector(collector)
        )
        self.pacing = pacing
        self.overlap = overlap
        self.interference_factor = interference_factor
        #: section 5: "we could configure our system to simply delay the
        #: execution of requests that miss their deadlines to a later time
        #: and at a lower priority" -- the batch-application mode.  Missed
        #: requests join a deferred queue served only when the GPU would
        #: otherwise idle; they complete late rather than dropping.
        self.defer_missed = defer_missed

        self._sessions: dict[str, _SessionState] = {}
        self._order: list[str] = []
        #: session_id -> position in ``_order`` (constant-time round-robin
        #: advance; rebuilt with the schedule).
        self._index: dict[str, int] = {}
        self._cycle_pos = 0
        self._busy = False
        self._wake: TimerHandle | None = None
        #: absolute time the armed wake fires (meaningful iff _wake set).
        self._wake_at = math.inf
        #: False once :meth:`fail` fires; a dead backend executes nothing
        #: and fails every request handed to it until :meth:`recover`.
        self.alive = True
        #: multiplier on every batch's execution time (transient stragg-
        #: ler emulation); 1.0 = nominal speed.
        self.slowdown_factor = 1.0
        #: the in-flight batch, if any: (exec handle, state, batch,
        #: completion time) -- cancelled wholesale on a crash.
        self._inflight: tuple[TimerHandle, _SessionState,
                              list[QueuedRequest], float] | None = None
        self.busy_ms = 0.0
        self.batches_executed = 0
        #: set True to record an ExecutionSpan per batch (Gantt tooling).
        self.trace_enabled = False
        self.trace: list[ExecutionSpan] = []

    # ------------------------------------------------------------- schedule

    def set_schedule(self, specs: list[BackendSession]) -> None:
        """Install (or replace) the execution schedule.

        Queued requests of sessions that survive the update are kept;
        queues of removed sessions are dropped (the global scheduler is
        responsible for not stranding live sessions).
        """
        old = self._sessions
        self._sessions = {}
        self._order = []
        self._index = {}
        now = self.sim.now
        for spec in specs:
            state = _SessionState(spec)
            if spec.session_id in old:
                prev = old[spec.session_id]
                state.queue = prev.queue
                state.deferred = prev.deferred
                state.requests = prev.requests
                state.last_start_ms = prev.last_start_ms
                # A model still streaming over PCIe stays not-ready across
                # schedule updates; resetting to the default -inf would let
                # the next batch start before the weights have landed.
                state.ready_ms = prev.ready_ms
            elif spec.load_ms > 0:
                # Newly placed model: its weights stream over PCIe before
                # the first batch can run (section 2.2).
                state.ready_ms = now + spec.load_ms
            self._sessions[spec.session_id] = state
            self._index[spec.session_id] = len(self._order)
            self._order.append(spec.session_id)
        for sid, prev in old.items():
            if sid not in self._sessions:
                for q in (*prev.queue, *prev.deferred):
                    self._finish_drop(prev, q, DROP_UNSCHEDULED)
        self._cycle_pos = 0
        self._kick()

    def serves(self, session_id: str) -> bool:
        return session_id in self._sessions

    # --------------------------------------------------------------- faults

    def fail(self, cause: str = "crash") -> None:
        """Crash this backend: lose every queued and in-flight request.

        Lost requests take the ``on_fail`` path (retryable, no outcome
        event) rather than the drop path -- see
        :class:`~repro.cluster.messages.Request`.  The backend stays dead
        (rejecting all work) until :meth:`recover`.
        """
        if not self.alive:
            return
        self.alive = False
        now = self.sim.now
        self.tracer.backend_failed(now, self.gpu_id, cause=cause)
        if self._wake is not None:
            self._wake.cancel()
            self._wake = None
        if self._inflight is not None:
            handle, state, batch, completion = self._inflight
            handle.cancel()
            self._inflight = None
            self._busy = False
            # The batch never finished: give back the unspent busy time.
            self.busy_ms -= max(0.0, completion - now)
            for q in batch:
                self._fail_request(state, q, now)
        for state in self._sessions.values():
            lost = [*state.queue, *state.deferred]
            state.queue = deque()
            state.deferred = []
            for q in lost:
                self._fail_request(state, q, now)

    def recover(self) -> None:
        """Bring a failed backend back, empty, ready for a new schedule."""
        if self.alive:
            return
        self.alive = True
        self.slowdown_factor = 1.0
        self.tracer.backend_recovered(self.sim.now, self.gpu_id)
        self._kick()

    def set_slowdown(self, factor: float) -> None:
        """Scale execution time by ``factor`` (1.0 restores full speed)."""
        if factor <= 0:
            raise ValueError(f"slowdown factor must be > 0, got {factor}")
        self.slowdown_factor = factor
        self.tracer.backend_slowdown(self.sim.now, self.gpu_id, factor)

    def _fail_request(self, state: _SessionState, q: QueuedRequest,
                      now: float) -> None:
        request = state.requests.pop(q.request_id, None)
        if request is None:
            return
        if request.on_fail is not None:
            request.on_fail(request, now)
        else:
            self._record_drop(request, now, DROP_BACKEND_FAILED)

    @property
    def num_sessions(self) -> int:
        return len(self._sessions)

    # -------------------------------------------------------------- enqueue

    def enqueue(self, request: Request) -> None:
        if not self.alive:
            # Routed to a corpse (detection lag): retryable failure.
            if request.on_fail is not None:
                request.on_fail(request, self.sim.now)
            else:
                self._record_drop(request, self.sim.now, DROP_BACKEND_FAILED)
            return
        state = self._sessions.get(request.session_id)
        if state is None:
            # Misrouted (e.g. schedule changed mid-flight): drop.
            self._record_drop(request, self.sim.now, DROP_MISROUTED)
            return
        state.queue.append(
            QueuedRequest(request.request_id, request.arrival_ms,
                          request.deadline_ms)
        )
        state.requests[request.request_id] = request
        if self.tracer.recording:  # one-predicate gate on the hot path
            self.tracer.request_admitted(
                self.sim.now, request.session_id, request.request_id,
                request.deadline_ms, gpu_id=self.gpu_id,
            )
        self._kick()

    # ------------------------------------------------------------ execution

    def _kick(self) -> None:
        if self._busy or not self.alive:
            return
        if self._wake is not None:
            self._wake.cancel()
            self._wake = None
        self._try_dispatch()

    def _try_dispatch(self) -> None:
        if not self._order:
            return
        now = self.sim.now

        candidate = self._pick_session(now)
        if candidate is None:
            self._arm_wake(now)
            return

        if candidate.startswith("deferred:"):
            self._run_deferred(self._sessions[candidate.split(":", 1)[1]], now)
            return

        state = self._sessions[candidate]
        batch, dropped = state.spec.policy.select(
            state.queue, now, state.spec.profile
        )
        state.queue = consume_selected(state.queue, batch, dropped)
        for q in dropped:
            if self.defer_missed:
                state.deferred.append(q)
            else:
                self._finish_drop(state, q, DROP_EARLY)
        if not batch:
            # Policy had nothing servable; try the next session right away.
            self._advance_cycle(candidate)
            self._try_dispatch()
            return

        exec_ms = state.spec.profile.occupancy_time(
            len(batch), overlap=self.overlap
        )
        if self.interference_factor > 0 and len(self._sessions) > 1:
            exec_ms *= 1.0 + self.interference_factor * (len(self._sessions) - 1)
        exec_ms *= self.slowdown_factor

        state.last_start_ms = now
        self._busy = True
        self.busy_ms += exec_ms
        self.batches_executed += 1
        self.tracer.batch_executed(
            now, exec_ms, self.gpu_id, state.spec.session_id, len(batch)
        )
        completion = now + exec_ms
        if self.trace_enabled:
            self.trace.append(ExecutionSpan(
                self.gpu_id, state.spec.session_id, now, completion,
                len(batch),
            ))
        self._advance_cycle(candidate)
        handle = self.sim.schedule(
            exec_ms, lambda: self._on_batch_done(state, batch, completion)
        )
        self._inflight = (handle, state, batch, completion)

    def _pick_session(self, now: float) -> str | None:
        """Choose the next session to execute, honoring pacing."""
        n = len(self._order)
        if self.pacing == "greedy":
            # Serve the session whose head request is oldest (FIFO across
            # sessions), mirroring a shared dispatch queue.
            best, best_arrival = None, math.inf
            for sid in self._order:
                state = self._sessions[sid]
                q = state.queue
                if not q or now < state.ready_ms:
                    # An unloaded model cannot execute, greedy or not
                    # (section 2.2); baselines wait for the load too.
                    continue
                if q[0].arrival_ms < best_arrival:
                    best, best_arrival = sid, q[0].arrival_ms
            return best
        # Cycle pacing: round robin, but a session only runs again once its
        # duty cycle has elapsed -- unless its queue already holds a full
        # batch (burst catch-up).
        order = self._order
        sessions = self._sessions
        pos = self._cycle_pos
        for i in range(n):
            sid = order[(pos + i) % n]
            state = sessions[sid]
            queue = state.queue
            if not queue or now < state.ready_ms:
                continue
            spec = state.spec
            if (now - state.last_start_ms >= spec.duty_cycle_ms - 1e-9
                    or len(queue) >= spec.target_batch):
                return sid
        # Deadline rescue: a head request that cannot survive waiting for
        # its session's next duty slot runs now (the GPU is idle anyway).
        # Batched upstream completions inject pulses into downstream
        # queues; without this, the second half of a pulse waits a full
        # extra cycle and expires.
        best, best_deadline = None, math.inf
        for sid in self._order:
            state = self._sessions[sid]
            if not state.queue or now < state.ready_ms:
                continue
            head = state.queue[0]
            if self._at_risk(state, head, now) and head.deadline_ms < best_deadline:
                best, best_deadline = sid, head.deadline_ms
        if best is not None:
            return best
        # Lowest priority: deferred (already-missed) work runs only when
        # nothing live is runnable (section 5's delay-at-lower-priority
        # option).
        if self.defer_missed:
            for sid in self._order:
                state = self._sessions[sid]
                if state.deferred and not state.queue:
                    return f"deferred:{sid}"
        return None

    def _run_deferred(self, state: _SessionState, now: float) -> None:
        """Serve a batch of already-missed requests at low priority."""
        size = min(len(state.deferred), state.spec.target_batch,
                   state.spec.profile.max_batch)
        batch, state.deferred = state.deferred[:size], state.deferred[size:]
        exec_ms = state.spec.profile.occupancy_time(
            len(batch), overlap=self.overlap
        ) * self.slowdown_factor
        state.last_start_ms = now
        self._busy = True
        self.busy_ms += exec_ms
        self.batches_executed += 1
        self.tracer.batch_executed(
            now, exec_ms, self.gpu_id, state.spec.session_id, len(batch),
            deferred=True,
        )
        completion = now + exec_ms
        if self.trace_enabled:
            self.trace.append(ExecutionSpan(
                self.gpu_id, state.spec.session_id, now, completion,
                len(batch), deferred=True,
            ))
        handle = self.sim.schedule(
            exec_ms, lambda: self._on_batch_done(state, batch, completion)
        )
        self._inflight = (handle, state, batch, completion)

    def _at_risk(
        self, state: _SessionState, head: QueuedRequest, now: float
    ) -> bool:
        """Would waiting for the next duty slot make ``head`` miss?"""
        spec = state.spec
        due_time = state.last_start_ms + spec.duty_cycle_ms
        if due_time < now:
            due_time = now
        # Queue is non-empty and target_batch >= 1, so batch >= 1.
        batch = len(state.queue)
        if batch > spec.target_batch:
            batch = spec.target_batch
        return due_time + spec.profile.latency(batch) > head.deadline_ms - 1e-6

    def _advance_cycle(self, executed_sid: str) -> None:
        idx = self._index.get(executed_sid)
        if idx is None:
            return
        self._cycle_pos = (idx + 1) % len(self._order)

    def _arm_wake(self, now: float) -> None:
        """Nothing runnable now: wake at the next dueness or rescue point."""
        next_wake = math.inf
        for state in self._sessions.values():
            queue = state.queue
            if not queue:
                continue
            spec = state.spec
            due_time = state.last_start_ms + spec.duty_cycle_ms
            # Queue is non-empty and target_batch >= 1, so batch >= 1.
            batch = len(queue)
            if batch > spec.target_batch:
                batch = spec.target_batch
            rescue_time = queue[0].deadline_ms - spec.profile.latency(batch)
            wake = due_time if due_time < rescue_time else rescue_time
            if wake < state.ready_ms:
                wake = state.ready_ms
            if wake < next_wake:
                next_wake = wake
        if self.defer_missed and not math.isfinite(next_wake):
            if any(s.deferred for s in self._sessions.values()):
                next_wake = now
        if math.isfinite(next_wake):
            delay = max(0.0, next_wake - now)
            self._wake = self.sim.schedule(delay, self._kick)
            self._wake_at = now + delay

    def _on_batch_done(
        self, state: _SessionState, batch: list[QueuedRequest], completion: float
    ) -> None:
        # SLO verdicts and completion timestamps use the *actual* fire
        # time, not the ``completion`` the batch was scheduled for: under
        # the simulator they are identical, but a wall-clock timer can
        # land late, and judging requests against the planned instant
        # would silently mark late work on-time.
        now = self.sim.now
        self._busy = False
        self._inflight = None
        tracer = self.tracer
        emit = tracer.enabled  # hoisted one-predicate gate
        session_id = state.spec.session_id
        gpu_id = self.gpu_id
        requests = state.requests
        for q in batch:
            request = requests.pop(q.request_id, None)
            if request is None:
                continue
            ok = now <= q.deadline_ms
            if emit:
                tracer.request_completed(
                    now, session_id, q.request_id,
                    q.arrival_ms, q.deadline_ms, ok, gpu_id=gpu_id,
                )
            if request.on_complete is not None:
                request.on_complete(request, now, ok)
        self._kick()

    def _finish_drop(self, state: _SessionState, q: QueuedRequest,
                     reason: str = DROP_EARLY) -> None:
        request = state.requests.pop(q.request_id, None)
        if request is None:
            return
        self._record_drop(request, self.sim.now, reason)

    def _record_drop(self, request: Request, now: float,
                     reason: str = DROP_EARLY) -> None:
        if self.tracer.enabled:  # one-predicate gate on the hot path
            self.tracer.request_dropped(
                now, request.session_id, request.request_id,
                request.arrival_ms, request.deadline_ms, reason,
                gpu_id=self.gpu_id,
            )
        if request.on_drop is not None:
            request.on_drop(request, now)

    def utilization(self, span_ms: float) -> float:
        if span_ms <= 0:
            return 0.0
        return min(1.0, self.busy_ms / span_ms)
