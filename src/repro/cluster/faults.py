"""Deterministic fault injection for the simulated cluster.

The injector is the *cause* side of the fault-tolerance story: it kills,
slows, and revives backends on a schedule driven entirely by the
simulator clock, so every run with the same seed produces bit-identical
failure timelines.  Detection (:class:`~repro.cluster.global_scheduler.
HeartbeatMonitor`) and recovery (the epoch scheduler's re-pack) live in
the control plane and observe only the effects -- a dead backend stops
answering heartbeats; they never peek at the schedule.

Two ways to build a schedule:

- explicitly, via :meth:`FaultPlan.crash` / :meth:`FaultPlan.slowdown`
  (experiments that kill k of N backends at a known instant);
- randomly, via :func:`seeded_plan`, which draws crash times and victims
  from a seeded generator (soak-style runs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..simulation.simulator import Simulator
from .backend import Backend

__all__ = ["FaultEvent", "FaultPlan", "FaultInjector", "seeded_plan"]

#: event kinds a plan may contain.
CRASH = "crash"
RECOVER = "recover"
SLOWDOWN = "slowdown"


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: what happens to which backend, and when."""

    time_ms: float
    kind: str  # CRASH | RECOVER | SLOWDOWN
    backend_idx: int
    #: slowdown multiplier (>1 slows, 1.0 restores); ignored for
    #: crash/recover events.
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in (CRASH, RECOVER, SLOWDOWN):
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.time_ms < 0:
            raise ValueError(f"fault time must be >= 0, got {self.time_ms}")


@dataclass
class FaultPlan:
    """An ordered fault schedule (builder with a fluent interface)."""

    events: list[FaultEvent] = field(default_factory=list)

    def crash(self, time_ms: float, backend_idx: int,
              recover_after_ms: float | None = None) -> "FaultPlan":
        """Kill a backend at ``time_ms``; optionally revive it later."""
        self.events.append(FaultEvent(time_ms, CRASH, backend_idx))
        if recover_after_ms is not None:
            self.events.append(
                FaultEvent(time_ms + recover_after_ms, RECOVER, backend_idx)
            )
        return self

    def slowdown(self, time_ms: float, backend_idx: int, factor: float,
                 duration_ms: float | None = None) -> "FaultPlan":
        """Slow a backend by ``factor``; optionally restore speed later."""
        self.events.append(FaultEvent(time_ms, SLOWDOWN, backend_idx, factor))
        if duration_ms is not None:
            self.events.append(
                FaultEvent(time_ms + duration_ms, SLOWDOWN, backend_idx, 1.0)
            )
        return self

    def sorted_events(self) -> list[FaultEvent]:
        """Stable chronological order (ties keep insertion order)."""
        return sorted(
            self.events, key=lambda e: e.time_ms
        )


class FaultInjector:
    """Arms a :class:`FaultPlan` against live backends on a simulator.

    The injector resolves backend indices lazily at fire time (backends
    are drafted on demand by the pool), so a plan may reference indices
    that do not exist yet when :meth:`arm` runs.  Events aimed at an
    index that still does not exist when they fire are recorded as
    skipped rather than raising -- a seeded soak plan may target more
    slots than a small run drafts.
    """

    def __init__(self, sim: Simulator, backends: list[Backend],
                 plan: FaultPlan) -> None:
        self.sim = sim
        #: live view of the pool's backend list (shared, not copied).
        self.backends = backends
        self.plan = plan
        #: (time_ms, kind, backend_idx) log of every event actually
        #: applied, for assertions and reports.
        self.applied: list[tuple[float, str, int]] = []
        #: events that fired against a nonexistent backend slot.
        self.skipped: list[FaultEvent] = []

    def arm(self) -> None:
        """Schedule every plan event on the simulator (call once)."""
        for ev in self.plan.sorted_events():
            self.sim.schedule_at(ev.time_ms, lambda e=ev: self._fire(e))

    def _fire(self, ev: FaultEvent) -> None:
        if ev.backend_idx >= len(self.backends):
            self.skipped.append(ev)
            return
        backend = self.backends[ev.backend_idx]
        if ev.kind == CRASH:
            backend.fail(cause="crash")
        elif ev.kind == RECOVER:
            backend.recover()
        elif ev.kind == SLOWDOWN:
            backend.set_slowdown(ev.factor)
        self.applied.append((self.sim.now, ev.kind, ev.backend_idx))


def seeded_plan(
    seed: int,
    num_backends: int,
    duration_ms: float,
    crash_rate_per_min: float = 1.0,
    recover_after_ms: float | None = 20_000.0,
    start_ms: float = 0.0,
) -> FaultPlan:
    """Draw a random-but-reproducible crash schedule.

    Crash instants follow a Poisson process at ``crash_rate_per_min``
    over ``[start_ms, duration_ms)``; victims are drawn uniformly.  The
    same ``seed`` always yields the identical plan.
    """
    if num_backends < 1:
        raise ValueError("need at least one backend to injure")
    rng = np.random.default_rng(seed)
    plan = FaultPlan()
    rate_per_ms = crash_rate_per_min / 60_000.0
    t = start_ms
    while True:
        t += float(rng.exponential(1.0 / rate_per_ms)) if rate_per_ms > 0 else duration_ms
        if t >= duration_ms:
            break
        victim = int(rng.integers(0, num_backends))
        plan.crash(t, victim, recover_after_ms=recover_after_ms)
    return plan
