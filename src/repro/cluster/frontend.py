"""Frontend: the Nexus library -- routing tables and query orchestration.

Paper section 5 (data plane): "When a user request comes into (a replica
of) an application container, the application invokes DNNs via the Nexus
library API.  The library consults the local routing table to find a
suitable backend for that model, dispatches the request to the backend,
and delivers responses back to the application."

This module provides:

- :class:`RoutingTable` -- session -> weighted backend list, with
  deterministic weighted round-robin dispatch;
- :class:`Frontend` -- dispatches individual session requests and
  orchestrates multi-stage queries: when a stage completes, its children
  are invoked ``gamma`` times each (sampled), and the query succeeds iff
  every spawned invocation finishes within the whole-query deadline.
"""

from __future__ import annotations

import math
import zlib
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, cast

import numpy as np

from ..core.query import Query, QueryStage
from ..metrics.collector import MetricsCollector
from ..observability.events import DROP_BACKEND_FAILED
from ..observability.tracer import Tracer, tracer_for_collector
from .backend import Backend
from .messages import Request, new_request_id

if TYPE_CHECKING:
    from ..runtime.clock import EventSource

__all__ = ["RoutingTable", "Frontend", "QueryInstance", "RetryPolicy"]


@dataclass(frozen=True)
class RetryPolicy:
    """Frontend behavior when a backend fails a dispatched request.

    A lost request is re-dispatched (to any live backend the routing
    table offers) after an exponential backoff, up to ``max_retries``
    times; past that -- or once the request's deadline has passed -- it
    becomes a terminal ``DROP_BACKEND_FAILED`` drop.
    """

    max_retries: int = 3
    backoff_ms: float = 5.0
    multiplier: float = 2.0

    def backoff_for(self, attempt: int) -> float:
        """Backoff before re-dispatch number ``attempt`` (1-based)."""
        return self.backoff_ms * self.multiplier ** max(0, attempt - 1)


@dataclass(slots=True)
class _Route:
    backend: Backend
    weight: float
    served: int = 0
    index: int = 0  # insertion order: the deterministic tie-breaker


class RoutingTable:
    """Session -> weighted backends, with smooth weighted round robin."""

    def __init__(self) -> None:
        self._routes: dict[str, list[_Route]] = {}
        self._alias: dict[str, str] = {}

    def set_routes(
        self, session_id: str, backends: list[tuple[Backend, float]]
    ) -> None:
        routes = [_Route(b, w, index=i)
                  for i, (b, w) in enumerate(backends) if w > 0]
        if routes:
            self._routes[session_id] = routes
        else:
            self._routes.pop(session_id, None)

    def set_alias(self, session_id: str, target_session_id: str) -> None:
        """Route one session's traffic into another (prefix-fused) session."""
        self._alias[session_id] = target_session_id

    def resolve(self, session_id: str) -> str:
        return self._alias.get(session_id, session_id)

    def pick(self, session_id: str) -> Backend | None:
        """Deterministic weighted round robin: least served/weight first.

        Backends known to be dead are skipped, so during the detection
        window only requests already routed (or racing the failure) land
        on the corpse and need the retry path.
        """
        return self.pick_resolved(session_id)[0]

    def pick_resolved(self, session_id: str) -> tuple[Backend | None, str]:
        """:meth:`pick` plus the resolved session id (one alias lookup)."""
        resolved = self._alias.get(session_id, session_id)
        routes = self._routes.get(resolved)
        if not routes:
            return None, resolved
        # Single pass, no intermediate list: routes are stored in index
        # order, so keeping the first strict minimum of served/weight
        # reproduces the (served/weight, index) tie-break exactly.
        best: _Route | None = None
        best_key = 0.0
        for route in routes:
            if not route.backend.alive:
                continue
            key = route.served / route.weight
            if best is None or key < best_key:
                best = route
                best_key = key
        if best is None:
            return None, resolved
        best.served += 1
        return best.backend, resolved

    def sessions(self) -> list[str]:
        return list(self._routes)

    def clear(self) -> None:
        self._routes.clear()


class QueryInstance:
    """Tracks one in-flight multi-stage query."""

    __slots__ = (
        "query", "query_id", "arrival_ms", "deadline_ms", "outstanding",
        "failed", "finished", "completion_ms", "frontend", "_budgets",
        "on_done",
    )

    def __init__(self, frontend: "Frontend", query: Query,
                 arrival_ms: float) -> None:
        self.frontend = frontend
        self.query = query
        self.query_id = new_request_id()
        self.arrival_ms = arrival_ms
        self.deadline_ms = arrival_ms + query.slo_ms
        self.outstanding = 0
        self.failed = False
        self.finished = False
        self.completion_ms = arrival_ms
        self._budgets: dict[str, float] | None = None
        #: optional completion hook (the live serving frontend resolves
        #: its per-request response future here).
        self.on_done: Callable[[QueryInstance], None] | None = None

    def spawn(self, stage: QueryStage, count: int) -> None:
        self.outstanding += count
        for _ in range(count):
            self.frontend._dispatch_stage(self, stage)

    def stage_done(self, stage: QueryStage, completion_ms: float, ok: bool) -> None:
        self.outstanding -= 1
        if completion_ms > self.completion_ms:
            self.completion_ms = completion_ms
        if not ok:
            self.failed = True
        else:
            for child in stage.children:
                n = self.frontend._sample_fanout(self.query.name, child.gamma)
                if n > 0:
                    # A child may fail synchronously (unroutable) and
                    # finish the query from inside spawn().
                    self.spawn(child, n)
        if self.outstanding == 0:
            self.frontend._finish_query(self)

    def stage_dropped(self, stage: QueryStage, time_ms: float) -> None:
        self.outstanding -= 1
        self.failed = True
        self.completion_ms = max(self.completion_ms, time_ms)
        if self.outstanding == 0:
            self.frontend._finish_query(self)


class Frontend:
    """One frontend replica: dispatch + query orchestration.

    Args:
        sim: the clock/timer driver (simulator or live event source).
        routing: the (shared) routing table pushed by the global scheduler.
        query_collector: sink for whole-query outcome records.
        tracer: structured event tracer; when omitted, one is derived
            from ``query_collector`` (metrics-only).  Query outcomes reach
            the collector *through* the tracer's event stream.
        seed: RNG seed for fan-out sampling (deterministic experiments).
        session_prefix_fn: maps ``(query_name, stage_name)`` to the session
            id used in the routing table; default ``"<query>/<stage>"``.
    """

    def __init__(
        self,
        sim: EventSource,
        routing: RoutingTable,
        query_collector: MetricsCollector | None = None,
        seed: int = 0,
        tracer: Tracer | None = None,
        retry_policy: RetryPolicy | None = None,
    ) -> None:
        self.sim = sim
        self.routing = routing
        self.query_collector = query_collector
        self.tracer = (
            tracer if tracer is not None
            else tracer_for_collector(query=query_collector)
        )
        self._seed = seed
        #: per-query fan-out RNG substreams (lazily created).  Keying the
        #: stream by query name makes each query's draw sequence depend
        #: only on its own submission order -- not on how draws from
        #: *other* queries interleave -- so a sharded run (which hosts a
        #: subset of the queries on this frontend replica's counterpart)
        #: reproduces the monolithic per-query sequences exactly.
        self._fanout_rngs: dict[str, np.random.Generator] = {}
        self.retry_policy = retry_policy or RetryPolicy()
        self.dispatched = 0
        self.routing_failures = 0
        #: re-dispatches after backend failures / terminal retry drops.
        self.retries = 0
        self.retry_drops = 0
        #: observed per-session arrival counters for workload statistics
        #: (the control plane reads and resets these each epoch).
        self.session_counters: dict[str, int] = {}
        #: observed per-query arrival counters (whole queries, counted at
        #: submission -- robust to source-stage roots that never dispatch).
        self.query_counters: dict[str, int] = {}
        #: interned "<query>/<stage>" ids, built once per (query, stage)
        #: instead of formatting a fresh string per dispatched request.
        self._session_ids: dict[tuple[str, str], str] = {}

    # ------------------------------------------------------ single requests

    def submit_request(
        self, session_id: str, slo_ms: float,
        on_complete: Callable[[Request, float, bool], None] | None = None,
        on_drop: Callable[[Request, float], None] | None = None,
        context: object = None,
    ) -> bool:
        """Dispatch a single-model request; returns False if unroutable.

        ``context`` rides along on the request untouched (the live
        serving frontend stores its per-request completion future there).
        """
        now = self.sim.now
        self.session_counters[session_id] = (
            self.session_counters.get(session_id, 0) + 1
        )
        backend, resolved = self.routing.pick_resolved(session_id)
        request = Request(
            session_id=resolved,
            arrival_ms=now,
            deadline_ms=now + slo_ms,
            on_complete=on_complete,
            on_drop=on_drop,
            on_fail=self._handle_backend_failure,
            context=context,
        )
        if backend is None:
            self.routing_failures += 1
            self.tracer.route_failed(now, session_id)
            if on_drop is not None:
                on_drop(request, now)
            return False
        self.dispatched += 1
        backend.enqueue(request)
        return True

    # -------------------------------------------------------------- queries

    def submit_query(self, query: Query,
                     budgets_ms: dict[str, float] | None = None,
                     on_done: Callable[[QueryInstance], None] | None = None,
                     ) -> QueryInstance:
        """Start a query; per-stage SLOs come from ``budgets_ms`` (the
        latency split) or default to the whole remaining query budget.
        ``on_done`` fires exactly once when the query finishes (after the
        outcome event is emitted)."""
        instance = QueryInstance(self, query, self.sim.now)
        instance._budgets = budgets_ms
        instance.on_done = on_done
        self.query_counters[query.name] = (
            self.query_counters.get(query.name, 0) + 1
        )
        if self.tracer.recording:  # one-predicate gate on the hot path
            self.tracer.query_submitted(
                instance.arrival_ms, query.name, instance.query_id,
                instance.deadline_ms,
            )
        instance.spawn(
            query.root, max(1, self._sample_fanout(query.name, query.root.gamma))
        )
        return instance

    def _stage_session_id(self, instance: QueryInstance, stage: QueryStage) -> str:
        key = (instance.query.name, stage.name)
        sid = self._session_ids.get(key)
        if sid is None:
            sid = f"{instance.query.name}/{stage.name}"
            self._session_ids[key] = sid
        return sid

    def _stage_budget(self, instance: QueryInstance, stage: QueryStage) -> float:
        budgets = instance._budgets
        if budgets is not None:
            budget = budgets.get(stage.name)
            if budget is not None:
                return budget
        return instance.deadline_ms - self.sim.now

    def _dispatch_stage(self, instance: QueryInstance, stage: QueryStage) -> None:
        now = self.sim.now
        if stage.is_source:
            # Structural stage: completes instantly, fanning out children.
            instance.stage_done(stage, now, True)
            return
        session_id = self._stage_session_id(instance, stage)
        counters = self.session_counters
        counters[session_id] = counters.get(session_id, 0) + 1
        backend, resolved = self.routing.pick_resolved(session_id)
        budget = self._stage_budget(instance, stage)
        # The stage's own deadline: its latency split, but never beyond the
        # whole-query deadline.
        deadline = now + budget
        if deadline > instance.deadline_ms:
            deadline = instance.deadline_ms
        # Shared bound-method callbacks with the (instance, stage) pair in
        # ``context`` -- two closure allocations per request saved.
        # Positional construction (field order of Request); this runs once
        # per dispatched stage invocation.
        request = Request(
            resolved, now, deadline, new_request_id(),
            self._stage_complete, self._stage_drop,
            self._handle_backend_failure, 0, (instance, stage),
        )
        if backend is None:
            self.routing_failures += 1
            self.tracer.route_failed(now, session_id)
            instance.stage_dropped(stage, now)
            return
        self.dispatched += 1
        backend.enqueue(request)

    def _stage_complete(self, request: Request, t: float, ok: bool) -> None:
        instance, stage = cast(
            "tuple[QueryInstance, QueryStage]", request.context
        )
        instance.stage_done(stage, t, ok)

    def _stage_drop(self, request: Request, t: float) -> None:
        instance, stage = cast(
            "tuple[QueryInstance, QueryStage]", request.context
        )
        instance.stage_dropped(stage, t)

    # ---------------------------------------------------- failure handling

    def _handle_backend_failure(self, request: Request, now: float) -> None:
        """A backend crashed with ``request`` queued or in flight.

        Retry on a surviving backend after exponential backoff; give up
        (terminal ``DROP_BACKEND_FAILED``) when retries or the deadline
        budget run out.  No outcome event was emitted for the loss
        itself, so exactly one outcome is recorded per logical request:
        either the eventual completion or the terminal drop here.

        The backoff respects the remaining SLO budget: a retry whose
        backoff would land at or past the deadline cannot possibly
        complete in time, so it drops *now* instead of burning a queue
        slot on a doomed re-dispatch (and charging the drop to a later,
        misleading timestamp).
        """
        policy = self.retry_policy
        if request.attempt >= policy.max_retries or now >= request.deadline_ms:
            self._final_fail_drop(request, now)
            return
        backoff = policy.backoff_for(request.attempt + 1)
        if now + backoff >= request.deadline_ms:
            self._final_fail_drop(request, now)
            return
        request.attempt += 1
        self.retries += 1
        self.tracer.request_retried(
            now, request.session_id, request.request_id,
            attempt=request.attempt, backoff_ms=backoff,
        )
        self.sim.schedule(backoff, lambda: self._redispatch(request))

    def _redispatch(self, request: Request) -> None:
        now = self.sim.now
        if now >= request.deadline_ms:
            self._final_fail_drop(request, now)
            return
        backend = self.routing.pick(request.session_id)
        if backend is None:
            # No live replica serves this session (yet): the recovery
            # epoch has not landed.  Treat as a failure so the remaining
            # retry budget keeps probing.
            self._handle_backend_failure(request, now)
            return
        self.dispatched += 1
        backend.enqueue(request)

    def _final_fail_drop(self, request: Request, now: float) -> None:
        self.retry_drops += 1
        self.tracer.request_dropped(
            now, request.session_id, request.request_id,
            request.arrival_ms, request.deadline_ms, DROP_BACKEND_FAILED,
        )
        if request.on_drop is not None:
            request.on_drop(request, now)

    def _sample_fanout(self, key: str, gamma: float) -> int:
        """Integer fan-out with mean gamma, drawn from ``key``'s substream.

        Deterministic part + Bernoulli remainder keeps the variance low
        (object counts in adjacent frames are correlated, not Poisson).
        """
        whole = int(gamma)
        frac = gamma - whole
        if frac > 0:
            rng = self._fanout_rngs.get(key)
            if rng is None:
                # Stable across processes: crc32, not the salted hash().
                rng = np.random.default_rng(
                    [self._seed, zlib.crc32(key.encode())]
                )
                self._fanout_rngs[key] = rng
            if rng.random() < frac:
                whole += 1
        return whole

    def _finish_query(self, instance: QueryInstance) -> None:
        if instance.finished:
            return
        instance.finished = True
        self.tracer.query_completed(
            instance.completion_ms, instance.query.name, instance.query_id,
            instance.arrival_ms, instance.deadline_ms,
            ok=not instance.failed,
        )
        if instance.on_done is not None:
            instance.on_done(instance)

    # ------------------------------------------------------------ workload

    def read_and_reset_counters(self) -> dict[str, int]:
        counters = self.session_counters
        self.session_counters = {}
        return counters

    def read_and_reset_query_counters(self) -> dict[str, int]:
        counters = self.query_counters
        self.query_counters = {}
        return counters
