"""Global scheduler: the control plane that turns plans into deployments.

Paper section 5: the global scheduler collects load statistics from the
runtime, invokes the epoch scheduler to decide which models execute where
and at what batch size, and pushes routing tables to frontends and
execution schedules to backends.

:class:`BackendPool` owns the physical backends and applies a
:class:`~repro.core.squishy.SchedulePlan` with minimal churn: plan nodes
that were already deployed stay on their backend (stable ``node_id``
stickiness); remaining plans are matched to the backends hosting the
most-overlapping session sets before new backends are drafted.

:class:`HeartbeatMonitor` is the failure detector: backends hold a lease
that live ones renew every heartbeat; a backend whose lease expires is
declared dead within ``lease_ms + heartbeat_ms`` of the actual crash and
handed to the recovery callback.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from ..core.drop import DropPolicy, EarlyDropPolicy, LazyDropPolicy
from ..core.fleet import Fleet
from ..core.floatcmp import definitely_gt
from ..core.squishy import GpuPlan, SchedulePlan
from ..metrics.collector import MetricsCollector
from ..observability.tracer import Tracer, tracer_for_collector
from .backend import Backend, BackendSession
from .frontend import RoutingTable

if TYPE_CHECKING:
    from ..runtime.clock import EventSource

__all__ = ["BackendPool", "HeartbeatMonitor", "make_policy"]


def make_policy(kind: str, target_batch: int) -> DropPolicy:
    """Instantiate the configured drop policy for one session slot."""
    if kind == "early":
        return EarlyDropPolicy(target_batch)
    if kind == "lazy":
        return LazyDropPolicy(batch_cap=target_batch)
    raise ValueError(f"unknown drop policy {kind!r}")


@dataclass
class PoolConfig:
    """Runtime knobs applied to every backend in the pool."""

    pacing: str = "cycle"
    overlap: bool = True
    drop_policy: str = "early"
    interference_factor: float = 0.0
    #: charge PCIe model-load latency when a session is newly placed on a
    #: backend (section 2.2); the load time derives from the profile's
    #: resident weight bytes at ~12 GB/s plus framework init.
    model_loads: bool = True
    #: pace each session to its planned duty cycle (Nexus's GPU scheduler);
    #: baselines execute as soon as the GPU frees up.
    paced: bool = True
    #: hard cap on backend slots (the physical cluster size); ``None`` =
    #: draft freely.  With a cap, a failed backend's slot stays dead --
    #: recovery must re-pack onto the survivors, not draft a replacement.
    max_backends: int | None = None
    #: check every applied plan against the Algorithm-1 invariants
    #: (:mod:`repro.analysis.plan_check`) before deployment; a violation
    #: raises :class:`~repro.analysis.plan_check.PlanCheckError`.  Off by
    #: default so baselines that are latency-infeasible by design (e.g.
    #: batch-oblivious) still deploy.
    validate_plans: bool = False
    #: per-GPU memory bound the validator enforces (``None`` = unchecked).
    memory_capacity: int | None = None
    #: heterogeneous fleet: class-tags backend slots, restricts matching
    #: to same-class slots, and switches plan validation to per-class
    #: memory/consistency invariants.  ``None`` = homogeneous cluster.
    fleet: Fleet | None = None


class BackendPool:
    """Physical backends + the routing table, kept in sync with plans."""

    def __init__(
        self,
        sim: EventSource,
        routing: RoutingTable,
        collector: MetricsCollector | None = None,
        config: PoolConfig | None = None,
        tracer: Tracer | None = None,
    ) -> None:
        self.sim = sim
        self.routing = routing
        self.collector = collector
        self.tracer = (
            tracer if tracer is not None else tracer_for_collector(collector)
        )
        self.config = config or PoolConfig()
        self.backends: list[Backend] = []
        self._active: set[int] = set()
        #: session -> gpu placement from the last applied plan, for
        #: placement/relocation events across epochs.
        self._placement: dict[str, int] = {}
        #: backend indices declared dead by the failure detector; never
        #: assigned plans until marked recovered.
        self.failed: set[int] = set()
        #: plan node_id -> backend index from the last applied plan
        #: (stable identity across epochs; basis for sticky matching and
        #: for mapping a dead backend back to its plan nodes).
        self._node_backend: dict[int, int] = {}
        #: backend slot -> device class, fixed the first time a slot is
        #: drafted (a physical machine's class never changes; a drained
        #: t4 slot cannot host a 1080ti plan node later).
        self._slot_device: dict[int, str] = {}

    @property
    def gpus_in_use(self) -> int:
        return len(self._active)

    @property
    def live_backends(self) -> int:
        """Backend slots currently usable for placement."""
        cap = self.config.max_backends
        if cap is None:
            return max(0, len(self.backends) - len(self.failed))
        return max(0, cap - len(self.failed))

    def mark_failed(self, backend_idx: int) -> None:
        """The failure detector declared this backend dead."""
        self.failed.add(backend_idx)
        self._active.discard(backend_idx)

    def mark_recovered(self, backend_idx: int) -> None:
        """A declared-dead backend is serving heartbeats again."""
        self.failed.discard(backend_idx)

    def nodes_on(self, backend_idx: int) -> list[int]:
        """Plan node ids deployed on the given backend slot."""
        return sorted(
            nid for nid, b in self._node_backend.items() if b == backend_idx
        )

    def apply_plan(self, plan: SchedulePlan) -> None:
        """Deploy a plan: match GPU plans to backends, push schedules/routes."""
        if self.config.validate_plans:
            # Lazy import: repro.analysis depends on repro.core, and the
            # cluster package is imported from both directions.
            from ..analysis.plan_check import assert_valid_plan

            assert_valid_plan(
                plan, memory_capacity=self.config.memory_capacity,
                fleet=self.config.fleet,
            )
        assignments = self._match(plan.gpus)

        new_routes: dict[str, list[tuple[Backend, float]]] = {}
        self._active = set()
        for backend_idx, gpu_plan in assignments:
            backend = self._backend(backend_idx)
            if gpu_plan.device and not backend.device:
                backend.device = gpu_plan.device
            specs = []
            for alloc in gpu_plan.allocations:
                if not self.config.paced:
                    duty = 0.0
                else:
                    duty = (
                        gpu_plan.duty_cycle_ms
                        if not gpu_plan.saturated
                        else alloc.exec_ms
                    )
                    # Never pace a session slower than its SLO permits:
                    # waiting longer than (SLO - batch latency) between
                    # executions guarantees misses regardless of load.
                    duty = min(duty, max(0.0, alloc.load.slo_ms - alloc.exec_ms))
                load_ms = 0.0
                if self.config.model_loads:
                    load_ms = (
                        50.0
                        + alloc.load.profile.memory_model_bytes / 12e9 * 1000.0
                    )
                specs.append(
                    BackendSession(
                        session_id=alloc.session_id,
                        profile=alloc.load.profile,
                        slo_ms=alloc.load.slo_ms,
                        target_batch=alloc.batch,
                        duty_cycle_ms=duty,
                        policy=make_policy(self.config.drop_policy, alloc.batch),
                        load_ms=load_ms,
                    )
                )
                capacity = alloc.batch / max(gpu_plan.duty_cycle_ms, 1e-9)
                new_routes.setdefault(alloc.session_id, []).append(
                    (backend, capacity)
                )
            backend.set_schedule(specs)
            self._active.add(backend_idx)

        # Drain backends not in the new plan.
        for i, backend in enumerate(self.backends):
            if i not in self._active and backend.num_sessions:
                backend.set_schedule([])

        for session_id in self.routing.sessions():
            if session_id not in new_routes:
                self.routing.set_routes(session_id, [])
        for session_id, targets in new_routes.items():
            self.routing.set_routes(session_id, targets)

        self._node_backend = {
            gpu_plan.node_id: b_idx for b_idx, gpu_plan in assignments
        }
        self._emit_placement_events(assignments)
        self.tracer.plan_applied(self.sim.now, len(self._active))

    def _emit_placement_events(
        self, assignments: list[tuple[int, GpuPlan]]
    ) -> None:
        """Diff the new placement against the previous plan's and emit
        session placed/removed/relocated lifecycle events."""
        now = self.sim.now
        new_placement: dict[str, int] = {}
        for backend_idx, gpu_plan in assignments:
            gpu_id = self._backend(backend_idx).gpu_id
            for sid in gpu_plan.session_ids():
                new_placement[sid] = gpu_id
        if self.tracer.recording:
            old = self._placement
            for sid, gpu in new_placement.items():
                if sid not in old:
                    self.tracer.session_placed(now, gpu, sid)
                elif old[sid] != gpu:
                    self.tracer.session_relocated(now, gpu, sid,
                                                  from_gpu=old[sid])
            for sid, gpu in old.items():
                if sid not in new_placement:
                    self.tracer.session_removed(now, gpu, sid)
        self._placement = new_placement

    def _backend(self, idx: int) -> Backend:
        while len(self.backends) <= idx:
            self.backends.append(
                Backend(
                    self.sim,
                    gpu_id=len(self.backends),
                    collector=self.collector,
                    tracer=self.tracer,
                    pacing=self.config.pacing,
                    overlap=self.config.overlap,
                    interference_factor=self.config.interference_factor,
                )
            )
        return self.backends[idx]

    def _match(self, gpu_plans: list[GpuPlan]) -> list[tuple[int, GpuPlan]]:
        """Assign plans to backend slots with minimal movement.

        Three passes: (0) a plan node already deployed keeps its backend
        (stable ``node_id`` stickiness -- immune to the occupancy re-sort
        the epoch scheduler applies every update); (1) remaining plans
        claim the backend whose current sessions overlap most; (2) the
        rest fill free or newly drafted slots.  Failed backend slots are
        never assigned.  Keeps models resident across epochs where
        possible (section 6.1: "minimizing the movement of models across
        nodes").

        A class-tagged plan node only lands on a slot of its class: a
        slot's class is fixed when first drafted, and every pass skips
        incompatible slots (an untagged, never-drafted slot accepts any
        class and adopts the node's).
        """
        current: dict[int, set[str]] = {
            i: set(backend._sessions)  # noqa: SLF001 -- pool owns backends
            for i, backend in enumerate(self.backends)
            if i not in self.failed
        }

        plan_taken: set[int] = set()
        backend_taken: set[int] = set(self.failed)
        out: list[tuple[int, GpuPlan]] = []

        def compatible(b_idx: int, plan: GpuPlan) -> bool:
            slot_class = self._slot_device.get(b_idx, "")
            return slot_class == plan.device or not slot_class

        def claim(b_idx: int, p_idx: int, plan: GpuPlan) -> None:
            plan_taken.add(p_idx)
            backend_taken.add(b_idx)
            if plan.device:
                self._slot_device.setdefault(b_idx, plan.device)
            out.append((b_idx, plan))

        # Pass 0: node_id stickiness.
        for p_idx, plan in enumerate(gpu_plans):
            b_idx = self._node_backend.get(plan.node_id)
            if b_idx is None or b_idx in backend_taken:
                continue
            if b_idx >= len(self.backends):
                continue
            if not compatible(b_idx, plan):
                continue
            claim(b_idx, p_idx, plan)

        # Pass 1: session overlap.
        scored: list[tuple[int, int, int]] = []  # (-overlap, plan_idx, backend_idx)
        for p_idx, plan in enumerate(gpu_plans):
            if p_idx in plan_taken:
                continue
            sessions = set(plan.session_ids())
            for b_idx, hosted in current.items():
                if b_idx in backend_taken or not compatible(b_idx, plan):
                    continue
                overlap = len(sessions & hosted)
                if overlap:
                    scored.append((-overlap, p_idx, b_idx))
        scored.sort()
        for neg, p_idx, b_idx in scored:
            if p_idx in plan_taken or b_idx in backend_taken:
                continue
            claim(b_idx, p_idx, gpu_plans[p_idx])

        # Pass 2: free / drafted slots (skipping dead and wrong-class ones).
        for p_idx, plan in enumerate(gpu_plans):
            if p_idx in plan_taken:
                continue
            next_free = 0
            while next_free in backend_taken or not compatible(next_free, plan):
                next_free += 1
            cap = self.config.max_backends
            if cap is not None and next_free >= cap:
                raise ValueError(
                    f"plan needs more than the {cap} backend slots the "
                    f"cluster has ({len(self.failed)} failed)"
                )
            claim(next_free, p_idx, plan)
        return out


class HeartbeatMonitor:
    """Lease-based failure detector over a :class:`BackendPool`.

    Every ``heartbeat_ms`` the monitor sweeps the pool: a live backend
    renews its lease (``last_beat = now``); a backend whose lease has
    been stale for more than ``lease_ms`` is declared dead -- the pool
    marks the slot failed and ``on_failure(backend_idx, now)`` fires so
    the control plane can run a recovery epoch.  A declared-dead backend
    that starts answering again is declared recovered symmetrically.

    Detection bound: a backend that crashes at time ``t`` renewed its
    lease at most ``heartbeat_ms`` before ``t``, and the declaring sweep
    runs at most ``heartbeat_ms`` after the lease goes stale, so the
    declaration lands within ``lease_ms + 2 * heartbeat_ms`` of the
    crash (and never before ``lease_ms`` has elapsed).
    """

    def __init__(
        self,
        sim: EventSource,
        pool: BackendPool,
        heartbeat_ms: float = 500.0,
        lease_ms: float = 2_000.0,
        on_failure: Callable[[int, float], None] | None = None,
        on_recovery: Callable[[int, float], None] | None = None,
    ) -> None:
        if heartbeat_ms <= 0 or lease_ms <= 0:
            raise ValueError("heartbeat_ms and lease_ms must be > 0")
        self.sim = sim
        self.pool = pool
        self.heartbeat_ms = heartbeat_ms
        self.lease_ms = lease_ms
        self.on_failure = on_failure
        self.on_recovery = on_recovery
        self._last_beat: dict[int, float] = {}
        self._declared: set[int] = set()
        self._running = False
        #: (backend_idx, declared_at_ms) log of every declaration.
        self.declared_failures: list[tuple[int, float]] = []

    def start(self) -> None:
        if self._running:
            return
        self._running = True
        self._tick()

    def stop(self) -> None:
        self._running = False

    @property
    def suspected(self) -> set[int]:
        return set(self._declared)

    def _tick(self) -> None:
        if not self._running:
            return
        now = self.sim.now
        for idx, backend in enumerate(self.pool.backends):
            if backend.alive:
                self._last_beat[idx] = now
                if idx in self._declared:
                    self._declared.discard(idx)
                    self.pool.mark_recovered(idx)
                    self.pool.tracer.backend_recovered(
                        now, backend.gpu_id, cause="heartbeat_resumed"
                    )
                    if self.on_recovery is not None:
                        self.on_recovery(idx, now)
                continue
            if idx in self._declared:
                continue
            # A backend first observed already-dead leases from this
            # sweep, keeping the "never before lease_ms" lower bound.
            last = self._last_beat.setdefault(idx, now)
            # Tolerant comparison: a lease exactly at its deadline (or
            # within float jitter of it -- wall-clock timers land with
            # ~ns error) is still held; only a definitely stale lease
            # declares the backend dead.
            if definitely_gt(now - last, self.lease_ms):
                self._declared.add(idx)
                self.declared_failures.append((idx, now))
                self.pool.mark_failed(idx)
                self.pool.tracer.backend_failed(
                    now, backend.gpu_id, cause="lease_expired"
                )
                if self.on_failure is not None:
                    self.on_failure(idx, now)
        self.sim.schedule(self.heartbeat_ms, self._tick)
