"""Global scheduler: the control plane that turns plans into deployments.

Paper section 5: the global scheduler collects load statistics from the
runtime, invokes the epoch scheduler to decide which models execute where
and at what batch size, and pushes routing tables to frontends and
execution schedules to backends.

:class:`BackendPool` owns the physical backends and applies a
:class:`~repro.core.squishy.SchedulePlan` with minimal churn: new GPU
plans are matched to the existing backends hosting the most-overlapping
session sets before new backends are drafted.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.drop import DropPolicy, EarlyDropPolicy, LazyDropPolicy
from ..core.squishy import GpuPlan, SchedulePlan
from ..metrics.collector import MetricsCollector
from ..observability.tracer import Tracer, tracer_for_collector
from ..simulation.simulator import Simulator
from .backend import Backend, BackendSession
from .frontend import RoutingTable

__all__ = ["BackendPool", "make_policy"]


def make_policy(kind: str, target_batch: int) -> DropPolicy:
    """Instantiate the configured drop policy for one session slot."""
    if kind == "early":
        return EarlyDropPolicy(target_batch)
    if kind == "lazy":
        return LazyDropPolicy(batch_cap=target_batch)
    raise ValueError(f"unknown drop policy {kind!r}")


@dataclass
class PoolConfig:
    """Runtime knobs applied to every backend in the pool."""

    pacing: str = "cycle"
    overlap: bool = True
    drop_policy: str = "early"
    interference_factor: float = 0.0
    #: charge PCIe model-load latency when a session is newly placed on a
    #: backend (section 2.2); the load time derives from the profile's
    #: resident weight bytes at ~12 GB/s plus framework init.
    model_loads: bool = True
    #: pace each session to its planned duty cycle (Nexus's GPU scheduler);
    #: baselines execute as soon as the GPU frees up.
    paced: bool = True


class BackendPool:
    """Physical backends + the routing table, kept in sync with plans."""

    def __init__(
        self,
        sim: Simulator,
        routing: RoutingTable,
        collector: MetricsCollector | None = None,
        config: PoolConfig | None = None,
        tracer: Tracer | None = None,
    ):
        self.sim = sim
        self.routing = routing
        self.collector = collector
        self.tracer = (
            tracer if tracer is not None else tracer_for_collector(collector)
        )
        self.config = config or PoolConfig()
        self.backends: list[Backend] = []
        self._active: set[int] = set()
        #: session -> gpu placement from the last applied plan, for
        #: placement/relocation events across epochs.
        self._placement: dict[str, int] = {}

    @property
    def gpus_in_use(self) -> int:
        return len(self._active)

    def apply_plan(self, plan: SchedulePlan) -> None:
        """Deploy a plan: match GPU plans to backends, push schedules/routes."""
        assignments = self._match(plan.gpus)

        new_routes: dict[str, list[tuple[Backend, float]]] = {}
        self._active = set()
        for backend_idx, gpu_plan in assignments:
            backend = self._backend(backend_idx)
            specs = []
            for alloc in gpu_plan.allocations:
                if not self.config.paced:
                    duty = 0.0
                else:
                    duty = (
                        gpu_plan.duty_cycle_ms
                        if not gpu_plan.saturated
                        else alloc.exec_ms
                    )
                    # Never pace a session slower than its SLO permits:
                    # waiting longer than (SLO - batch latency) between
                    # executions guarantees misses regardless of load.
                    duty = min(duty, max(0.0, alloc.load.slo_ms - alloc.exec_ms))
                load_ms = 0.0
                if self.config.model_loads:
                    load_ms = (
                        50.0
                        + alloc.load.profile.memory_model_bytes / 12e9 * 1000.0
                    )
                specs.append(
                    BackendSession(
                        session_id=alloc.session_id,
                        profile=alloc.load.profile,
                        slo_ms=alloc.load.slo_ms,
                        target_batch=alloc.batch,
                        duty_cycle_ms=duty,
                        policy=make_policy(self.config.drop_policy, alloc.batch),
                        load_ms=load_ms,
                    )
                )
                capacity = alloc.batch / max(gpu_plan.duty_cycle_ms, 1e-9)
                new_routes.setdefault(alloc.session_id, []).append(
                    (backend, capacity)
                )
            backend.set_schedule(specs)
            self._active.add(backend_idx)

        # Drain backends not in the new plan.
        for i, backend in enumerate(self.backends):
            if i not in self._active and backend.num_sessions:
                backend.set_schedule([])

        for session_id in self.routing.sessions():
            if session_id not in new_routes:
                self.routing.set_routes(session_id, [])
        for session_id, targets in new_routes.items():
            self.routing.set_routes(session_id, targets)

        self._emit_placement_events(assignments)
        self.tracer.plan_applied(self.sim.now, len(self._active))

    def _emit_placement_events(
        self, assignments: list[tuple[int, GpuPlan]]
    ) -> None:
        """Diff the new placement against the previous plan's and emit
        session placed/removed/relocated lifecycle events."""
        now = self.sim.now
        new_placement: dict[str, int] = {}
        for backend_idx, gpu_plan in assignments:
            gpu_id = self._backend(backend_idx).gpu_id
            for sid in gpu_plan.session_ids():
                new_placement[sid] = gpu_id
        if self.tracer.recording:
            old = self._placement
            for sid, gpu in new_placement.items():
                if sid not in old:
                    self.tracer.session_placed(now, gpu, sid)
                elif old[sid] != gpu:
                    self.tracer.session_relocated(now, gpu, sid,
                                                  from_gpu=old[sid])
            for sid, gpu in old.items():
                if sid not in new_placement:
                    self.tracer.session_removed(now, gpu, sid)
        self._placement = new_placement

    def _backend(self, idx: int) -> Backend:
        while len(self.backends) <= idx:
            self.backends.append(
                Backend(
                    self.sim,
                    gpu_id=len(self.backends),
                    collector=self.collector,
                    tracer=self.tracer,
                    pacing=self.config.pacing,
                    overlap=self.config.overlap,
                    interference_factor=self.config.interference_factor,
                )
            )
        return self.backends[idx]

    def _match(self, gpu_plans: list[GpuPlan]) -> list[tuple[int, GpuPlan]]:
        """Assign plans to backend slots, maximizing session overlap.

        Greedy: plans with the largest overlap against an existing
        backend's current sessions claim that backend; the rest fill free
        or new slots.  Keeps models resident across epochs where possible
        (section 6.1: "minimizing the movement of models across nodes").
        """
        current: dict[int, set[str]] = {
            i: set(backend._sessions)  # noqa: SLF001 -- pool owns backends
            for i, backend in enumerate(self.backends)
        }

        scored: list[tuple[int, int, int]] = []  # (-overlap, plan_idx, backend_idx)
        for p_idx, plan in enumerate(gpu_plans):
            sessions = set(plan.session_ids())
            for b_idx, hosted in current.items():
                overlap = len(sessions & hosted)
                if overlap:
                    scored.append((-overlap, p_idx, b_idx))
        scored.sort()

        plan_taken: set[int] = set()
        backend_taken: set[int] = set()
        out: list[tuple[int, GpuPlan]] = []
        for neg, p_idx, b_idx in scored:
            if p_idx in plan_taken or b_idx in backend_taken:
                continue
            plan_taken.add(p_idx)
            backend_taken.add(b_idx)
            out.append((b_idx, gpu_plans[p_idx]))

        next_free = 0
        for p_idx, plan in enumerate(gpu_plans):
            if p_idx in plan_taken:
                continue
            while next_free in backend_taken:
                next_free += 1
            backend_taken.add(next_free)
            out.append((next_free, plan))
        return out
