"""Data-plane records exchanged between frontends and backends."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Request", "new_request_id"]

_request_ids = itertools.count()


def new_request_id() -> int:
    return next(_request_ids)


@dataclass(slots=True)
class Request:
    """One model invocation in flight.

    ``on_complete(request, completion_ms, ok)`` fires when the batched
    execution containing this request finishes; ``on_drop(request,
    time_ms)`` fires if admission control sheds it.  Query orchestration
    in the frontend hangs its continuation logic on these callbacks.

    ``on_fail(request, time_ms)`` fires when the request is *lost to a
    backend failure* (crash while queued or in flight).  Unlike
    ``on_drop`` it is not a final outcome: the hosting frontend may
    re-dispatch the request to a surviving backend, so no drop event is
    emitted on this path -- emitting one would double-count the request
    if the retry later completes.  When ``on_fail`` is unset the failure
    degrades to a terminal drop.
    """

    session_id: str
    arrival_ms: float
    deadline_ms: float
    request_id: int = field(default_factory=new_request_id)
    on_complete: Callable[["Request", float, bool], None] | None = None
    on_drop: Callable[["Request", float], None] | None = None
    on_fail: Callable[["Request", float], None] | None = None
    #: retry attempt number (0 = first dispatch); bumped by the frontend
    #: on each re-dispatch after a backend failure.
    attempt: int = 0
    #: opaque payload for the application layer (e.g. query instance).
    context: object = None

    @property
    def slo_ms(self) -> float:
        return self.deadline_ms - self.arrival_ms
