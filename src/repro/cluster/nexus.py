"""NexusCluster: the deployable system, end to end.

Wires the whole paper together: applications declare queries (dataflow
graphs with a whole-query SLO) and offered rates; the cluster

1. splits each query's SLO across stages (query analysis, section 6.2 --
   or an even split when disabled, the -QA ablation);
2. fuses sessions whose models share a prefix and latency SLO into
   prefix-batched pseudo-models (section 6.3, the -PB ablation);
3. packs sessions onto GPUs with squishy bin packing (section 6.1 -- or
   the batch-oblivious baseline, the -SS ablation);
4. deploys schedules/routes and serves traffic through the event-driven
   runtime with early-drop admission control and CPU/GPU overlap (the
   -ED and -OL ablations);
5. optionally re-plans every epoch from observed workload statistics
   (section 5's control plane; Figure 13).

The paper's baselines are configurations of the same machinery: see
:func:`repro.baselines.clipper_config` and
:func:`repro.baselines.tf_serving_config`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Callable

from ..core.epoch import EpochScheduler
from ..core.fleet import Fleet, assign_classes
from ..core.prefix import PrefixGroup
from ..core.profile import EffectiveProfile
from ..core.query import Query, QueryStage, even_split, plan_query
from ..core.session import Session, SessionLoad
from ..core.squishy import SchedulePlan, pack_fleet, squishy_bin_packing
from ..baselines.batch_oblivious import batch_oblivious_plan  # noqa: E402 -- leaf module, no cycle
from ..metrics.collector import MetricsCollector
from ..models import get_device, get_model, prefix_suffix_profiles
from ..models import profile as profile_on
from ..observability.events import TraceEvent
from ..runtime.core import RuntimeCore
from ..simulation.simulator import Simulator
from ..workloads.arrivals import poisson_arrivals, uniform_arrivals
from .faults import FaultInjector, FaultPlan
from .frontend import Frontend, RetryPolicy
from .global_scheduler import BackendPool, HeartbeatMonitor, PoolConfig

__all__ = ["ClusterConfig", "AppSpec", "ClusterResult", "NexusCluster"]

#: post-run drain window beyond the longest SLO: lets in-flight batches
#: and retry backoffs settle before the run is declared over.
_DRAIN_GRACE_MS = 1_000.0

#: rate-multiplier slack for the expand-to-cluster search: a 1-GPU plan
#: scaled by ``max_gpus`` already fills ``max_gpus`` GPUs, so a few x
#: covers batching-efficiency gains at any cluster size.  The cap must
#: scale with ``max_gpus`` -- a fixed literal silently stops the search
#: short on large clusters (the old ``hi < 64`` bug).
_EXPAND_SCALE_SLACK = 4.0


@dataclass
class ClusterConfig:
    """Feature flags and sizing for one cluster deployment.

    The default configuration is full Nexus; each ablation in Figures 10
    and 11 flips one field.
    """

    device: str = "gtx1080ti"
    max_gpus: int | None = None
    #: heterogeneous mode: a named-class fleet (see
    #: :func:`repro.models.gpus.make_fleet`).  When set, the squishy
    #: packer runs per class with class-specific profiles and memory,
    #: and ``device`` only names the fallback class for sessions that
    #: cannot be re-profiled (prefix-fused pseudo-models).  ``None``
    #: keeps the homogeneous single-``device`` path, byte-identical to
    #: the fleetless planner.
    fleet: Fleet | None = None
    #: class-choice objective in fleet mode: "gpus" minimizes GPU count
    #: (the paper's homogeneous objective), "cost" minimizes
    #: price_per_hour per unit throughput (Table 1 generalized).
    objective: str = "gpus"
    scheduler: str = "squishy"          # "squishy" | "batch_oblivious"
    pacing: str = "cycle"               # "cycle" | "greedy"
    drop_policy: str = "early"          # "early" | "lazy"
    overlap: bool = True                # OL
    prefix_batching: bool = True        # PB
    query_analysis: bool = True         # QA
    interference_factor: float = 0.0    # Clipper-style container interference
    paced: bool = True                  # duty-cycle pacing (Nexus GPU scheduler)
    #: capacity cushion: plan for (1 + headroom) x the offered rate so the
    #: deployment is not balanced on a knife edge (real deployments do the
    #: same; the paper's 84%-of-optimal utilization reflects such slack).
    plan_headroom: float = 0.15
    #: plan sessions against (1 - slo_margin) x their latency budget so the
    #: runtime has jitter room; request deadlines still use the full budget.
    slo_margin: float = 0.1
    #: extra margin for non-root query stages: their arrivals come in
    #: pulses (a whole upstream batch completes at once), so they need
    #: more frequent, smaller batches than a smooth-arrival plan would
    #: pick.  Planning them against a tighter SLO buys exactly that.
    child_slo_margin: float = 0.35
    qa_epsilon_ms: float = 5.0
    qa_worst_case_factor: float = 2.0
    epoch_ms: float = 30_000.0
    dynamic: bool = False               # re-plan each epoch from observed load
    #: frontend replicas; the paper's frontend is distributed and a cluster
    #: load balancer spreads user requests across replicas (section 5).
    num_frontends: int = 1
    #: with a fixed cluster size, scale the plan out to use every GPU
    #: (the paper's fixed-cluster throughput experiments); dynamic
    #: deployments keep the minimal allocation so idle GPUs are released.
    expand_to_cluster: bool = True
    #: failure-detector cadence: backends renew their lease every
    #: heartbeat; the monitor sweeps at the same period.
    heartbeat_ms: float = 500.0
    #: lease duration: a backend silent for longer is declared dead
    #: (detection lands within ``lease_ms + 2 * heartbeat_ms`` of the
    #: crash).
    lease_ms: float = 2_000.0
    #: frontend retry budget for requests lost to backend failures.
    retry_max: int = 3
    retry_backoff_ms: float = 5.0
    seed: int = 0
    #: summary-mode metrics: fold every request outcome into counters and
    #: a log-spaced latency histogram at record time instead of retaining
    #: per-request records (megascale runs would hold millions).  Scalar
    #: metrics and approximate percentiles keep working; record-based
    #: timelines and ``warmup_ms`` filtering do not.
    summary_metrics: bool = False


@dataclass
class AppSpec:
    """One application: a query plus its offered load."""

    query: Query
    rate_rps: float
    arrival: str = "uniform"            # "uniform" | "poisson"
    #: optional time-varying rate, ms -> rps (drives Figure 13); when set,
    #: ``rate_rps`` is only the planning-time estimate.
    rate_fn: Callable[[float], float] | None = None


@dataclass
class ClusterResult:
    """Everything a run produced."""

    query_metrics: MetricsCollector
    invocation_metrics: MetricsCollector
    plan: SchedulePlan
    gpus_used: int
    duration_ms: float
    epochs: int = 0
    #: full structured event stream; populated by ``run(trace=True)``,
    #: ``None`` otherwise (tracing is off by default).
    trace: list[TraceEvent] | None = None
    #: ``(time_ms, kind, backend_idx)`` faults actually injected
    #: (``run(faults=...)`` only).
    fault_log: list[tuple[float, str, int]] | None = None
    #: ``(backend_idx, declared_at_ms)`` failure-detector declarations.
    detections: list[tuple[int, float]] | None = None
    #: simulator events processed during the run (aggregate across
    #: shards for sharded execution); 0 for pre-existing pickles.
    events_processed: int = 0

    @property
    def good_rate(self) -> float:
        return self.query_metrics.good_rate

    @property
    def bad_rate(self) -> float:
        return self.query_metrics.bad_rate

    def goodput_rps(self) -> float:
        return self.query_metrics.goodput_rps(self.duration_ms)


class NexusCluster:
    """Build, plan, and run one cluster deployment."""

    def __init__(self, config: ClusterConfig | None = None) -> None:
        self.config = config or ClusterConfig()
        self.apps: list[AppSpec] = []
        self._session_loads: list[SessionLoad] = []
        self._aliases: dict[str, str] = {}
        self._splits: dict[str, dict[str, float]] = {}
        self._child_sessions: set[str] = set()

    # ----------------------------------------------------------- declaring

    def add_app(self, app: AppSpec) -> None:
        self.apps.append(app)

    def add_query(self, query: Query, rate_rps: float, arrival: str = "uniform",
                  rate_fn: Callable[[float], float] | None = None) -> None:
        self.add_app(AppSpec(query, rate_rps, arrival, rate_fn))

    # ------------------------------------------------------------ planning

    def build_session_loads(
        self, rates: dict[str, float] | None = None
    ) -> list[SessionLoad]:
        """Steps 1-2: latency splits + prefix fusion -> session loads.

        Args:
            rates: per-app rate overrides keyed by query name (used by the
                dynamic control plane); defaults to the declared rates.
        """
        cfg = self.config
        loads: list[SessionLoad] = []
        self._aliases = {}
        self._splits = {}
        self._child_sessions: set[str] = set()
        for app in self.apps:
            rate = app.rate_rps if rates is None else rates.get(
                app.query.name, app.rate_rps
            )
            planned = rate * (1.0 + cfg.plan_headroom)
            # Plan splits against *effective* profiles (CPU occupancy
            # folded in, per the overlap setting) so the DP's view of each
            # stage's capacity matches what the packer and runtime see.
            eff_query = self._effective_query(app.query)
            even = even_split(
                eff_query, max(planned, 1e-6),
                worst_case_factor=cfg.qa_worst_case_factor,
            )
            split = even
            if cfg.query_analysis and len(app.query.stages()) > 1:
                try:
                    dp = plan_query(
                        eff_query,
                        max(planned, 1e-6),
                        epsilon_ms=cfg.qa_epsilon_ms,
                        worst_case_factor=cfg.qa_worst_case_factor,
                    )
                except ValueError:
                    dp = None
                # Adopt the DP split only when it predicts a real saving:
                # uneven splits shave children's budgets, which costs the
                # runtime burst slack, so a sub-noise predicted gain is not
                # worth taking.  (Also covers SLOs the even split cannot
                # satisfy at all.)
                if dp is not None and (
                    math.isinf(even.total_gpus)
                    or dp.total_gpus <= 0.97 * even.total_gpus
                ):
                    split = dp
            split = replace(split, rate_rps=planned)
            self._splits[app.query.name] = dict(split.budgets_ms)
            app_loads = split.sessions(app.query)  # raw profiles; wrapped below
            root_name = app.query.root.name
            for load in app_loads:
                stage_name = load.session_id.rsplit("/", 1)[-1]
                is_child = stage_name != root_name and not (
                    app.query.root.is_source
                    and any(c.name == stage_name
                            for c in app.query.root.children)
                )
                self._child_sessions.add(load.session_id) if is_child else None
            loads.extend(app_loads)

        if cfg.prefix_batching:
            loads = self._fuse_prefixes(loads)
        loads = [self._effective(load) for load in loads]
        self._session_loads = loads
        return loads

    def _effective_query(self, query: Query) -> Query:
        """A copy of the query whose stage profiles are effective views."""
        cfg = self.config

        def clone(stage: QueryStage) -> QueryStage:
            prof = stage.profile
            if prof is not None and not isinstance(prof, EffectiveProfile):
                prof = EffectiveProfile(base=prof, overlap=cfg.overlap)
            out = QueryStage(
                name=stage.name, profile=prof, gamma=stage.gamma,
                model_id=stage.model_id,
            )
            for child in stage.children:
                out.add_child(clone(child))
            return out

        return Query(query.name, clone(query.root), query.slo_ms)

    def _effective(self, load: SessionLoad) -> SessionLoad:
        """Fold CPU occupancy into the profile and shave the planning SLO.

        The scheduler must see how long a batch ties up the GPU slot
        (``max(gpu, cpu)`` with overlap, ``gpu + cpu`` without), and plans
        against a slightly tightened SLO so worst-case bounds are not met
        with equality; the runtime keeps the full deadline.
        """
        cfg = self.config
        profile = load.profile
        if not isinstance(profile, EffectiveProfile):
            profile = EffectiveProfile(base=profile, overlap=cfg.overlap)
        slo = load.session.slo_ms
        margin = cfg.slo_margin
        if load.session_id in getattr(self, "_child_sessions", set()):
            margin = max(margin, cfg.child_slo_margin)
        tightened = slo * (1.0 - margin)
        if 2.0 * profile.latency(1) > tightened:
            # Session can't afford the cushion: plan against the full SLO
            # and let admission control absorb the tail.
            tightened = slo
        session = Session(
            model_id=load.session.model_id,
            slo_ms=tightened,
            session_id=load.session.session_id,
        )
        return SessionLoad(session, load.rate_rps, profile)

    def _fuse_prefixes(self, loads: list[SessionLoad]) -> list[SessionLoad]:
        """Fuse sessions whose models share a prefix and latency SLO.

        Grouping key: (base model name, SLO rounded to the ms).  Only
        zoo-resolvable specialized models ("base@variant") participate;
        everything else passes through unchanged.
        """
        groups: dict[tuple[str, float], list[SessionLoad]] = {}
        passthrough: list[SessionLoad] = []
        for load in loads:
            model_id = load.session.model_id
            if "@" not in model_id:
                passthrough.append(load)
                continue
            base = model_id.split("@", 1)[0]
            key = (base, round(load.slo_ms, 1))
            groups.setdefault(key, []).append(load)

        fused: list[SessionLoad] = []
        for (base, slo), members in groups.items():
            if len(members) < 2:
                passthrough.extend(members)
                continue
            try:
                graphs = [get_model(m.session.model_id) for m in members]
                device = get_device(self.config.device)
                prefix_prof, suffix_profs, plen = prefix_suffix_profiles(
                    graphs, device
                )
            except (KeyError, ValueError):
                passthrough.extend(members)
                continue
            group = PrefixGroup(
                model_ids=[m.session.model_id for m in members],
                prefix_profile=prefix_prof,
                suffix_profiles=suffix_profs,
                prefix_len=plen,
            )
            rates = [m.rate_rps for m in members]
            total_rate = sum(rates)
            weights = (
                [r / total_rate for r in rates]
                if total_rate > 0
                else None
            )
            fused_id = f"pb:{base}@{slo:g}ms#{len(members)}"
            combined = group.combined_profile(weights, name=fused_id)
            fused.append(
                SessionLoad(
                    Session(model_id=fused_id, slo_ms=slo, session_id=fused_id),
                    total_rate,
                    combined,
                )
            )
            for m in members:
                self._aliases[m.session_id] = fused_id
        return passthrough + fused

    def plan(self, rates: dict[str, float] | None = None) -> SchedulePlan:
        """Steps 1-3: produce the cluster plan (no deployment)."""
        loads = self.build_session_loads(rates)
        return self._pack(loads)

    def _pack(self, loads: list[SessionLoad]) -> SchedulePlan:
        cfg = self.config
        device = get_device(cfg.device)
        if cfg.scheduler == "squishy":
            if cfg.fleet is not None:
                return self._pack_onto_fleet(loads, cfg.fleet)
            memory = int(device.mem_capacity)
            plan = squishy_bin_packing(loads, memory_capacity=memory)
            if cfg.max_gpus is not None:
                if plan.num_gpus > cfg.max_gpus:
                    plan = self._shrink(loads, memory, cfg.max_gpus)
                elif cfg.expand_to_cluster and not cfg.dynamic:
                    plan = self._expand(loads, plan, memory, cfg.max_gpus)
            return plan
        if cfg.scheduler == "batch_oblivious":
            return batch_oblivious_plan(loads, num_gpus=cfg.max_gpus)
        raise ValueError(f"unknown scheduler {cfg.scheduler!r}")

    def _pack_onto_fleet(
        self, loads: list[SessionLoad], fleet: Fleet
    ) -> SchedulePlan:
        """Heterogeneous path: pick a class per session, pack per class.

        Each session is re-profiled on every fleet class (the analytic
        profiler models each device's flops/bandwidth), the cost- or
        GPU-minimizing class is chosen under the fleet's inventory
        bounds, and squishy bin packing runs once per class with that
        class's memory capacity.  The fleet's per-class ``count`` fields
        are the capacity bound, so ``max_gpus``/``expand_to_cluster`` do
        not apply here.
        """
        class_loads = {
            name: self._class_variants(loads, name) for name in fleet.names
        }
        assignment = assign_classes(
            class_loads, fleet, objective=self.config.objective
        )
        return pack_fleet(assignment.loads, fleet)

    def _class_variants(
        self, loads: list[SessionLoad], class_name: str
    ) -> list[SessionLoad]:
        """The given sessions carrying ``class_name``'s profiles.

        Sessions whose model cannot be re-profiled (prefix-fused
        pseudo-models) are pinned to the configured default class: they
        keep their existing profile and are offered on no other class.
        """
        cfg = self.config
        out: list[SessionLoad] = []
        for load in loads:
            try:
                base = profile_on(load.session.model_id, class_name)
            except (KeyError, ValueError):
                if class_name == cfg.device:
                    out.append(load.with_device(class_name))
                continue
            effective = EffectiveProfile(base=base, overlap=cfg.overlap)
            out.append(load.with_device(class_name, profile=effective))
        return out

    @staticmethod
    def _shrink(
        loads: list[SessionLoad],
        memory: int,
        max_gpus: int,
    ) -> SchedulePlan:
        """Demand exceeds the cluster: shed load *proportionally*.

        Scaling every session's rate down by a common factor until the
        plan fits keeps all sessions served (admission control absorbs the
        shed fraction uniformly); dropping whole GPU plans would zero out
        some sessions entirely.
        """
        def pack_at(scale: float) -> SchedulePlan:
            scaled = [l.with_rate(l.rate_rps * scale) for l in loads]
            return squishy_bin_packing(scaled, memory_capacity=memory)

        lo, hi = 0.02, 1.0
        best = pack_at(lo)
        if best.num_gpus > max_gpus:
            return best  # even 2% does not fit; nothing better to do
        for _ in range(12):
            mid = (lo + hi) / 2
            cand = pack_at(mid)
            if cand.num_gpus <= max_gpus:
                lo = mid
                best = cand
            else:
                hi = mid
        return best

    @staticmethod
    def _expand(
        loads: list[SessionLoad],
        plan: SchedulePlan,
        memory: int,
        max_gpus: int,
    ) -> SchedulePlan:
        """Scale rates up until the plan fills the fixed cluster.

        The fixed-cluster throughput experiments hand Nexus all 16 GPUs;
        extra capacity beyond demand absorbs bursts.  Binary search on a
        uniform rate multiplier keeps the allocation shape the packer
        chose.
        """
        if plan.num_gpus >= max_gpus:
            return plan

        def pack_at(scale: float) -> SchedulePlan:
            scaled = [l.with_rate(l.rate_rps * scale) for l in loads]
            return squishy_bin_packing(scaled, memory_capacity=memory)

        lo, hi = 1.0, 2.0
        scale_cap = _EXPAND_SCALE_SLACK * max_gpus
        while pack_at(hi).num_gpus <= max_gpus and hi < scale_cap:
            lo, hi = hi, hi * 2
        best = plan
        for _ in range(10):
            mid = (lo + hi) / 2
            cand = pack_at(mid)
            if cand.num_gpus <= max_gpus:
                lo = mid
                best = cand
            else:
                hi = mid
        return best

    # -------------------------------------------------------------- running

    def run(self, duration_ms: float, warmup_ms: float = 0.0,
            trace: bool = False,
            faults: FaultPlan | None = None) -> ClusterResult:
        """Plan, deploy, generate traffic, and serve for ``duration_ms``.

        ``warmup_ms`` excludes an initial window from the metrics (queries
        *arriving* before it are not recorded).  ``trace=True`` records
        the full structured event stream into ``ClusterResult.trace``
        (see :mod:`repro.observability`); the ambient
        :func:`~repro.observability.capture_trace` buffer, when active,
        is attached as well.

        ``faults`` arms a :class:`~repro.cluster.faults.FaultPlan`
        against the deployment and installs the fault-tolerant control
        loop: a heartbeat/lease failure detector plus incremental
        epoch-driven recovery (dead backends' sessions are re-packed
        onto survivors, charging weight-reload costs).  Fault runs use
        the incremental :class:`~repro.core.epoch.EpochScheduler` in
        place of the scratch-replan ``dynamic`` loop.
        """
        cfg = self.config
        sim = Simulator()
        core = RuntimeCore(
            sim,
            pool_config=PoolConfig(
                pacing=cfg.pacing,
                overlap=cfg.overlap,
                drop_policy=cfg.drop_policy,
                interference_factor=cfg.interference_factor,
                paced=cfg.paced,
                # With faults the cluster is physically capped: a dead
                # backend's slot must not be replaced by drafting.
                max_backends=cfg.max_gpus if faults is not None else None,
                # Algorithm-1 invariant assertion layer: every deployed
                # squishy plan must be provably SLO- and memory-sound.
                # Baselines (batch-oblivious) are infeasible by design.
                validate_plans=cfg.scheduler == "squishy",
                memory_capacity=int(get_device(cfg.device).mem_capacity),
                fleet=cfg.fleet,
            ),
            num_frontends=cfg.num_frontends,
            seed=cfg.seed,
            retry_policy=RetryPolicy(
                max_retries=cfg.retry_max,
                backoff_ms=cfg.retry_backoff_ms,
            ),
            trace=trace,
            summary_metrics=cfg.summary_metrics,
        )
        if cfg.summary_metrics and warmup_ms > 0:
            raise ValueError(
                "summary_metrics folds records at record time; "
                "warmup filtering needs retained records (use warmup_ms=0)"
            )
        pool = core.pool
        query_metrics = core.query_metrics
        warm_query_metrics = MetricsCollector()

        plan = self.plan()
        core.deploy(plan, self._aliases)

        self._generate_traffic(sim, core.frontends, duration_ms, warmup_ms)

        injector: FaultInjector | None = None
        monitor: HeartbeatMonitor | None = None
        if faults is not None:
            injector = FaultInjector(sim, pool.backends, faults)
            injector.arm()
            monitor = self._install_ft_loop(core, plan, duration_ms)
        elif cfg.dynamic:
            self._install_epoch_loop(core, duration_ms)

        tail_ms = max((a.query.slo_ms for a in self.apps), default=0.0)
        sim.run_until(duration_ms + tail_ms + _DRAIN_GRACE_MS)
        epochs = getattr(self, "_epoch_state", {"epochs": 0})["epochs"]

        if warmup_ms > 0:
            warm_query_metrics.records = [
                r for r in query_metrics.records if r.arrival_ms >= warmup_ms
            ]
            warm_query_metrics.gpu_busy_ms = query_metrics.gpu_busy_ms
            query_metrics = warm_query_metrics

        return ClusterResult(
            query_metrics=query_metrics,
            invocation_metrics=core.invocation_metrics,
            plan=pool_plan_snapshot(pool, plan),
            gpus_used=max(pool.gpus_in_use, plan.num_gpus),
            duration_ms=duration_ms - warmup_ms,
            epochs=epochs,
            trace=(
                core.trace_buffer.events
                if core.trace_buffer is not None else None
            ),
            fault_log=injector.applied if injector is not None else None,
            detections=(
                monitor.declared_failures if monitor is not None else None
            ),
            events_processed=sim.events_processed,
        )

    def _generate_traffic(
        self, sim: Simulator, frontends: list[Frontend], duration_ms: float,
        warmup_ms: float,
    ) -> None:
        cfg = self.config
        for i, app in enumerate(self.apps):
            arrivals = self._app_arrivals(app, duration_ms, cfg.seed + i * 7919)
            budgets = self._splits.get(app.query.name)
            # The cluster load balancer spreads queries round-robin over
            # the frontend replicas (section 5).
            for j, t in enumerate(arrivals):
                fe = frontends[j % len(frontends)]
                sim.schedule_at(
                    t,
                    lambda q=app.query, b=budgets, f=fe: f.submit_query(q, b),
                )

    def _app_arrivals(
        self, app: AppSpec, duration_ms: float, seed: int
    ) -> list[float]:
        gen = poisson_arrivals if app.arrival == "poisson" else uniform_arrivals
        if app.rate_fn is None:
            return gen(app.rate_rps, duration_ms, seed=seed)
        # Time-varying rate: generate per 1-second slices.
        out: list[float] = []
        t = 0.0
        slice_ms = 1000.0
        k = 0
        while t < duration_ms:
            rate = float(app.rate_fn(t))
            span = min(slice_ms, duration_ms - t)
            chunk = gen(rate, span, seed=seed + k)
            out.extend(t + x for x in chunk)
            t += span
            k += 1
        return out

    def _install_epoch_loop(
        self, core: RuntimeCore, duration_ms: float
    ) -> None:
        """Section 5's control loop: measure, re-plan, redeploy.

        The cadence timer lives in :meth:`RuntimeCore.install_epoch_loop`
        (shared with the live serving driver); this method supplies the
        simulator driver's policy -- scratch re-plan from observed
        whole-query rates.
        """
        cfg = self.config
        state = {"epochs": 0, "last": 0.0}

        def on_tick(now: float) -> None:
            span_s = max((now - state["last"]) / 1000.0, 1e-9)
            _, counters = core.read_counters()
            # App-level observed rates (whole-query arrivals).
            rates: dict[str, float] = {}
            for app in self.apps:
                rates[app.query.name] = counters.get(app.query.name, 0) / span_s
            state["last"] = now
            plan = self.plan(rates)
            core.deploy(plan, self._aliases)
            state["epochs"] += 1
            core.tracer.epoch_planned(now, state["epochs"], plan.num_gpus,
                                      rates=rates)

        core.install_epoch_loop(cfg.epoch_ms, on_tick, until_ms=duration_ms)
        # Epoch count read lazily via the state dict after the run.
        self._epoch_state = state

    def _install_ft_loop(
        self, core: RuntimeCore, plan: SchedulePlan, duration_ms: float
    ) -> HeartbeatMonitor:
        """Fault-tolerant control loop: detect, re-pack, redeploy.

        The incremental :class:`EpochScheduler` adopts the deployed plan;
        a lease failure detector triggers an *emergency* recovery epoch
        the moment a backend is declared dead (the dead node's sessions
        are re-packed onto survivors under the shrunken GPU cap), and
        regular epoch ticks keep running on the nominal cadence.  The
        timers and detector are the :class:`RuntimeCore`'s; only the
        re-pack policy lives here.
        """
        cfg = self.config
        pool = core.pool
        loads = list(self._session_loads)
        scheduler = EpochScheduler(
            epoch_ms=cfg.epoch_ms,
            memory_capacity=int(get_device(cfg.device).mem_capacity),
            max_gpus=cfg.max_gpus,
            validate=cfg.scheduler == "squishy",
            fleet=cfg.fleet,
        )
        scheduler.adopt(plan, core.events.now, loads)
        state = {"epochs": 0, "last": 0.0}
        self._epoch_state = state
        self._ft_scheduler = scheduler

        def redeploy(now: float) -> None:
            core.deploy(scheduler.plan, self._aliases)
            state["epochs"] += 1
            core.tracer.epoch_planned(now, state["epochs"],
                                      scheduler.plan.num_gpus)

        def on_failure(backend_idx: int, now: float) -> None:
            dead_nodes = pool.nodes_on(backend_idx)
            # Unconditional: even with no configured cap the recovery
            # re-pack must not plan onto more GPUs than are alive, or
            # the redeploy silently drafts phantom backends for the dead
            # node's sessions.
            scheduler.max_gpus = pool.live_backends
            scheduler.handle_failure(now, dead_nodes, loads)
            redeploy(now)

        def on_recovery(backend_idx: int, now: float) -> None:
            scheduler.max_gpus = pool.live_backends
            scheduler.update(now, loads)
            redeploy(now)

        monitor = core.install_heartbeat(
            cfg.heartbeat_ms, cfg.lease_ms, on_failure, on_recovery
        )

        def on_tick(now: float) -> None:
            if scheduler.should_reschedule(now, loads):
                scheduler.update(now, loads)
                redeploy(now)

        core.install_epoch_loop(cfg.epoch_ms, on_tick, until_ms=duration_ms)
        return monitor

    # ------------------------------------------------------------- sharded

    def run_sharded(
        self,
        duration_ms: float = 30_000.0,
        warmup_ms: float = 0.0,
        n_shards: int = 2,
        faults: "FaultPlan | None" = None,
    ) -> ClusterResult:
        """Serve with the partitioned engine (:mod:`repro.cluster.sharded`).

        Splits the deployment into ``n_shards`` per-component event
        loops that synchronize only at control barriers; equivalent to
        :meth:`run` for partition-closed configurations (``n_shards=1``
        is the monolithic schedule with barrier bookkeeping).
        """
        from .sharded import run_sharded

        return run_sharded(
            self, duration_ms, n_shards, warmup_ms=warmup_ms, faults=faults
        )

    # ------------------------------------------------------------- measure

    def measure_goodput(
        self, duration_ms: float = 30_000.0, warmup_ms: float = 2_000.0
    ) -> ClusterResult:
        return self.run(duration_ms, warmup_ms)


def pool_plan_snapshot(pool: BackendPool, plan: SchedulePlan) -> SchedulePlan:
    """The plan actually deployed (currently the static plan)."""
    return plan


def find_max_rate(
    make_cluster: Callable[[float], "NexusCluster"],
    base_rates: dict[str, float],
    target_good_rate: float = 0.99,
    duration_ms: float = 20_000.0,
    warmup_ms: float = 2_000.0,
    lo_scale: float = 0.05,
    hi_scale: float = 4.0,
    iterations: int = 8,
) -> tuple[float, ClusterResult | None]:
    """Binary-search the workload scale keeping query good rate >= target.

    The paper's throughput metric at cluster level.  ``make_cluster`` is a
    ``scale -> NexusCluster`` factory that declares apps with rates
    ``scale * base_rates[app]`` (and plans for them).

    Returns ``(max_total_rps, result_at_max)``.
    """
    total_base = sum(base_rates.values())

    def attempt(scale: float) -> tuple[bool, ClusterResult]:
        cluster = make_cluster(scale)
        result = cluster.run(duration_ms, warmup_ms)
        return result.good_rate >= target_good_rate, result

    ok_lo, res_lo = attempt(lo_scale)
    if not ok_lo:
        return 0.0, res_lo
    lo, hi = lo_scale, hi_scale
    best = res_lo
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        ok, res = attempt(mid)
        if ok:
            lo, best = mid, res
        else:
            hi = mid
    return lo * total_base, best
