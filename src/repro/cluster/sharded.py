"""Sharded execution of a :class:`~repro.cluster.nexus.NexusCluster`.

Partitions a cluster's applications into disjoint *components* (apps
coupled by prefix fusion or plan co-location must share a shard), gives
each shard a private :class:`~repro.simulation.simulator.Simulator` heap
plus its own :class:`~repro.runtime.core.RuntimeCore`, and replays the
monolithic control plane -- fault injection, the heartbeat/lease failure
detector, and epoch re-planning -- as barrier actions of a
:class:`~repro.simulation.sharded.ShardedSimulator`.

The coordinator mirrors the monolithic run exactly:

- every control event becomes a barrier whose markers occupy the
  control event's seq position in every shard (see the determinism
  argument in :mod:`repro.simulation.sharded`);
- a :class:`_ShadowPool` replays the monolithic ``BackendPool._match``
  decisions over the *global* plan, maintaining the global backend-slot
  numbering that fault plans and failure detections use, and a
  directory maps each global slot to its ``(shard, local slot)`` home;
- the global planner (epoch scheduler, re-pack recovery) runs once at
  each barrier against merged per-shard counters, and the resulting
  plan is sliced per shard and deployed through each shard's own pool.

A deployment that would couple two shards -- a plan node hosting
sessions of two components, or the monolithic matcher handing a slot
previously owned by one shard to another -- raises
:class:`~repro.simulation.sharded.CrossShardPlanError` instead of
silently diverging.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING

from ..core.epoch import EpochScheduler
from ..core.floatcmp import definitely_gt
from ..core.squishy import GpuPlan, SchedulePlan
from ..metrics.collector import MetricsCollector
from ..models import get_device
from ..runtime.core import RuntimeCore
from ..simulation.sharded import (
    CrossShardPlanError,
    ShardedSimulator,
    ShardMessage,
)
from .faults import CRASH, RECOVER, FaultEvent, FaultPlan
from .frontend import RetryPolicy
from .global_scheduler import PoolConfig
from .nexus import _DRAIN_GRACE_MS, ClusterResult

if TYPE_CHECKING:
    from .nexus import NexusCluster

__all__ = ["run_sharded", "partition_apps", "equivalence_report"]


# --------------------------------------------------------------- partition


def _session_owners(cluster: "NexusCluster") -> dict[str, set[int]]:
    """Map every session id the planner can emit to its owning app(s).

    Stage sessions (``"<query>/<stage>"``) belong to one app; a
    prefix-fused pseudo-session belongs to every app aliased into it.
    """
    owners: dict[str, set[int]] = {}
    for i, app in enumerate(cluster.apps):
        for name in app.query.stage_names():
            owners.setdefault(f"{app.query.name}/{name}", set()).add(i)
    for src, dst in cluster._aliases.items():
        owners.setdefault(dst, set()).update(owners.get(src, set()))
    return owners


def partition_apps(
    cluster: "NexusCluster", plan: SchedulePlan, n_shards: int
) -> list[int]:
    """Assign each app to a shard; coupled apps share one.

    Union-find over apps: two apps are coupled when the initial plan
    co-locates their sessions on one GPU or prefix fusion merged their
    sessions into one pseudo-model.  Components (sorted by smallest app
    index) are dealt round-robin across the shards.
    """
    owners = _session_owners(cluster)
    parent = list(range(len(cluster.apps)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[max(ra, rb)] = min(ra, rb)

    for members in owners.values():
        members = sorted(members)
        for other in members[1:]:
            union(members[0], other)
    for gpu_plan in plan.gpus:
        apps: list[int] = []
        for sid in gpu_plan.session_ids():
            if sid not in owners:
                raise CrossShardPlanError(
                    f"plan session {sid!r} belongs to no declared app"
                )
            apps.extend(owners[sid])
        for other in apps[1:]:
            union(apps[0], other)

    components: dict[int, list[int]] = {}
    for i in range(len(cluster.apps)):
        components.setdefault(find(i), []).append(i)
    app_shard = [0] * len(cluster.apps)
    for k, root in enumerate(sorted(components)):
        for i in components[root]:
            app_shard[i] = k % n_shards
    return app_shard


# ------------------------------------------------------------ shadow pool


class _ShadowPool:
    """Replays monolithic ``BackendPool._match`` over the global plan.

    Owns no backends -- only the matching state (node stickiness, slot
    session sets, failed slots) needed to reproduce the monolithic
    global slot numbering, which fault plans and detection logs are
    expressed in.  Heterogeneous fleets are not supported in sharded
    mode, so device-class compatibility never filters a slot.
    """

    def __init__(self, max_backends: int | None) -> None:
        self.max_backends = max_backends
        self.slot_count = 0
        self.failed: set[int] = set()
        self._node_backend: dict[int, int] = {}
        self._slot_sessions: dict[int, set[str]] = {}
        self._active: set[int] = set()

    @property
    def live_backends(self) -> int:
        cap = self.max_backends
        if cap is None:
            return max(0, self.slot_count - len(self.failed))
        return max(0, cap - len(self.failed))

    @property
    def gpus_in_use(self) -> int:
        return len(self._active)

    def nodes_on(self, slot: int) -> list[int]:
        return sorted(
            nid for nid, b in self._node_backend.items() if b == slot
        )

    def match(self, gpu_plans: list[GpuPlan]) -> list[tuple[int, GpuPlan]]:
        """The monolithic three-pass match, over shadow state."""
        current = {
            i: self._slot_sessions.get(i, set())
            for i in range(self.slot_count)
            if i not in self.failed
        }
        plan_taken: set[int] = set()
        backend_taken: set[int] = set(self.failed)
        out: list[tuple[int, GpuPlan]] = []

        def claim(b_idx: int, p_idx: int, plan: GpuPlan) -> None:
            plan_taken.add(p_idx)
            backend_taken.add(b_idx)
            out.append((b_idx, plan))

        for p_idx, plan in enumerate(gpu_plans):
            b_idx = self._node_backend.get(plan.node_id)
            if b_idx is None or b_idx in backend_taken:
                continue
            if b_idx >= self.slot_count:
                continue
            claim(b_idx, p_idx, plan)

        scored: list[tuple[int, int, int]] = []
        for p_idx, plan in enumerate(gpu_plans):
            if p_idx in plan_taken:
                continue
            sessions = set(plan.session_ids())
            for b_idx, hosted in current.items():
                if b_idx in backend_taken:
                    continue
                overlap = len(sessions & hosted)
                if overlap:
                    scored.append((-overlap, p_idx, b_idx))
        scored.sort()
        for _, p_idx, b_idx in scored:
            if p_idx in plan_taken or b_idx in backend_taken:
                continue
            claim(b_idx, p_idx, gpu_plans[p_idx])

        for p_idx, plan in enumerate(gpu_plans):
            if p_idx in plan_taken:
                continue
            next_free = 0
            while next_free in backend_taken:
                next_free += 1
            cap = self.max_backends
            if cap is not None and next_free >= cap:
                raise ValueError(
                    f"plan needs more than the {cap} backend slots the "
                    f"cluster has ({len(self.failed)} failed)"
                )
            claim(next_free, p_idx, plan)
        return out

    def apply(self, assignments: list[tuple[int, GpuPlan]]) -> None:
        """Commit a match: stickiness, session sets, drain semantics."""
        self._active = {slot for slot, _ in assignments}
        if self._active:
            self.slot_count = max(self.slot_count, max(self._active) + 1)
        self._node_backend = {
            plan.node_id: slot for slot, plan in assignments
        }
        sessions = {
            slot: set(plan.session_ids()) for slot, plan in assignments
        }
        # Slots outside the new plan are drained (their backends' session
        # dicts are cleared by apply_plan, dead or alive).
        self._slot_sessions = sessions


# ------------------------------------------------------------- coordinator


def run_sharded(
    cluster: "NexusCluster",
    duration_ms: float,
    n_shards: int,
    warmup_ms: float = 0.0,
    faults: FaultPlan | None = None,
) -> ClusterResult:
    """Plan, shard, and serve; mirror of ``NexusCluster.run``.

    Small partition-closed configurations produce byte-identical
    :func:`equivalence_report` output to the monolithic run for any
    shard count; ``n_shards=1`` is a single-heap run with barrier
    bookkeeping.  ``trace=True`` runs and heterogeneous fleets are not
    supported here.
    """
    cfg = cluster.config
    if cfg.fleet is not None:
        raise ValueError("sharded execution supports homogeneous fleets only")
    if cfg.summary_metrics:
        raise ValueError(
            "sharded execution merges per-shard records; summary-mode "
            "collectors belong to the federated megascale path"
        )
    plan = cluster.plan()
    app_shard = partition_apps(cluster, plan, n_shards)
    owners = _session_owners(cluster)
    shard_aliases: list[dict[str, str]] = [
        {
            src: dst
            for src, dst in cluster._aliases.items()
            if any(app_shard[i] == s for i in owners.get(src, set()))
        }
        for s in range(n_shards)
    ]
    memory_capacity = int(get_device(cfg.device).mem_capacity)
    validate = cfg.scheduler == "squishy"

    engine = ShardedSimulator(n_shards)
    cores: list[RuntimeCore] = []
    for shard in engine.shards:
        cores.append(
            RuntimeCore(
                shard.sim,
                pool_config=PoolConfig(
                    pacing=cfg.pacing,
                    overlap=cfg.overlap,
                    drop_policy=cfg.drop_policy,
                    interference_factor=cfg.interference_factor,
                    paced=cfg.paced,
                    # The *global* cap lives in the shadow pool; a shard
                    # never knows how many slots its peers drafted.
                    max_backends=None,
                    validate_plans=validate,
                    memory_capacity=memory_capacity,
                ),
                num_frontends=cfg.num_frontends,
                seed=cfg.seed,
                retry_policy=RetryPolicy(
                    max_retries=cfg.retry_max,
                    backoff_ms=cfg.retry_backoff_ms,
                ),
                shard_id=shard.shard_id,
            )
        )

    shadow = _ShadowPool(cfg.max_gpus if faults is not None else None)
    #: global slot -> (shard, local slot); grows as slots are drafted.
    directory: dict[int, tuple[int, int]] = {}
    local_counts = [0] * n_shards

    def shard_of_node(gpu_plan: GpuPlan) -> int:
        shards = set()
        for sid in gpu_plan.session_ids():
            if sid not in owners:
                raise CrossShardPlanError(
                    f"plan session {sid!r} belongs to no declared app"
                )
            shards.update(app_shard[i] for i in owners[sid])
        if len(shards) != 1:
            raise CrossShardPlanError(
                f"plan node {gpu_plan.node_id} co-locates sessions from "
                f"shards {sorted(shards)}; partition is not closed"
            )
        return shards.pop()

    def global_deploy(new_plan: SchedulePlan) -> None:
        """Shadow-match globally, slice per shard, deploy per shard."""
        if validate:
            from ..analysis.plan_check import assert_valid_plan

            assert_valid_plan(new_plan, memory_capacity=memory_capacity)
        assignments = shadow.match(new_plan.gpus)
        node_shard: dict[int, int] = {}
        for slot, gpu_plan in assignments:
            s = shard_of_node(gpu_plan)
            node_shard[gpu_plan.node_id] = s
            home = directory.get(slot)
            if home is None:
                directory[slot] = (s, local_counts[s])
                local_counts[s] += 1
            elif home[0] != s:
                raise CrossShardPlanError(
                    f"monolithic matching hands global slot {slot} "
                    f"(shard {home[0]}) to a node of shard {s}; "
                    "sharded execution cannot reproduce this run"
                )
        shadow.apply(assignments)
        for s in range(n_shards):
            sub = SchedulePlan(
                gpus=[
                    g for g in new_plan.gpus if node_shard[g.node_id] == s
                ]
            )
            cores[s].deploy(sub, shard_aliases[s])

    global_deploy(plan)

    # ----- traffic: identical per-app arrival streams, routed by shard.
    # Arrivals travel as timestamped shard messages delivered before any
    # window runs, so posting order (the monolithic schedule-call order)
    # fixes their seq positions.
    for i, app in enumerate(cluster.apps):
        arrivals = cluster._app_arrivals(app, duration_ms, cfg.seed + i * 7919)
        budgets = cluster._splits.get(app.query.name)
        core = cores[app_shard[i]]
        shard = engine.shards[app_shard[i]]
        frontends = core.frontends
        for j, t in enumerate(arrivals):
            fe = frontends[j % len(frontends)]
            shard.post(ShardMessage(
                t, lambda q=app.query, b=budgets, f=fe: f.submit_query(q, b)
            ))
    for shard in engine.shards:
        shard.deliver()

    state = {"epochs": 0, "last": 0.0}
    fault_log: list[tuple[float, str, int]] | None = None
    skipped_faults: list[FaultEvent] = []
    detections: list[tuple[int, float]] | None = None

    if faults is not None:
        applied: list[tuple[float, str, int]] = []
        fault_log = applied

        def fire(ev: FaultEvent, now: float) -> None:
            if ev.backend_idx >= shadow.slot_count:
                skipped_faults.append(ev)
                return
            s, local = directory[ev.backend_idx]
            backend = cores[s].pool.backends[local]
            if ev.kind == CRASH:
                backend.fail(cause="crash")
            elif ev.kind == RECOVER:
                backend.recover()
            else:
                backend.set_slowdown(ev.factor)
            applied.append((now, ev.kind, ev.backend_idx))

        for ev in faults.sorted_events():
            engine.schedule_barrier(
                ev.time_ms,
                lambda now, e=ev: fire(e, now),
                label=f"fault:{ev.kind}@{ev.backend_idx}",
            )

        # ----- fault-tolerant control loop (mirror of _install_ft_loop).
        loads = list(cluster._session_loads)
        scheduler = EpochScheduler(
            epoch_ms=cfg.epoch_ms,
            memory_capacity=memory_capacity,
            max_gpus=cfg.max_gpus,
            validate=validate,
        )
        scheduler.adopt(plan, 0.0, loads)

        def redeploy(now: float) -> None:
            global_deploy(scheduler.plan)
            state["epochs"] += 1

        def on_failure(idx: int, now: float) -> None:
            dead_nodes = shadow.nodes_on(idx)
            scheduler.max_gpus = shadow.live_backends
            scheduler.handle_failure(now, dead_nodes, loads)
            redeploy(now)

        def on_recovery(idx: int, now: float) -> None:
            scheduler.max_gpus = shadow.live_backends
            scheduler.update(now, loads)
            redeploy(now)

        # ----- heartbeat/lease detector (mirror of HeartbeatMonitor).
        last_beat: dict[int, float] = {}
        declared: set[int] = set()
        declared_failures: list[tuple[int, float]] = []
        detections = declared_failures

        def sweep(now: float) -> None:
            for idx in range(shadow.slot_count):
                s, local = directory[idx]
                pool = cores[s].pool
                backend = pool.backends[local]
                if backend.alive:
                    last_beat[idx] = now
                    if idx in declared:
                        declared.discard(idx)
                        pool.mark_recovered(local)
                        shadow.failed.discard(idx)
                        pool.tracer.backend_recovered(
                            now, backend.gpu_id, cause="heartbeat_resumed"
                        )
                        on_recovery(idx, now)
                    continue
                if idx in declared:
                    continue
                last = last_beat.setdefault(idx, now)
                if definitely_gt(now - last, cfg.lease_ms):
                    declared.add(idx)
                    declared_failures.append((idx, now))
                    pool.mark_failed(local)
                    shadow.failed.add(idx)
                    pool.tracer.backend_failed(
                        now, backend.gpu_id, cause="lease_expired"
                    )
                    on_failure(idx, now)
            engine.schedule_barrier(
                now + cfg.heartbeat_ms, sweep, label="sweep"
            )

        # monitor.start() runs the first sweep synchronously at setup.
        sweep(0.0)

        def epoch_tick(now: float) -> None:
            if scheduler.should_reschedule(now, loads):
                scheduler.update(now, loads)
                redeploy(now)
            if now + cfg.epoch_ms <= duration_ms:
                engine.schedule_barrier(
                    now + cfg.epoch_ms, epoch_tick, label="epoch"
                )

        engine.schedule_barrier(cfg.epoch_ms, epoch_tick, label="epoch")

    elif cfg.dynamic:
        # ----- dynamic re-plan loop (mirror of _install_epoch_loop).
        def dyn_tick(now: float) -> None:
            span_s = max((now - state["last"]) / 1000.0, 1e-9)
            counters: dict[str, int] = {}
            for core in cores:
                _, queries = core.read_counters()
                for name, n in queries.items():
                    counters[name] = counters.get(name, 0) + n
            rates = {
                app.query.name: counters.get(app.query.name, 0) / span_s
                for app in cluster.apps
            }
            state["last"] = now
            global_deploy(cluster.plan(rates))
            state["epochs"] += 1
            if now + cfg.epoch_ms <= duration_ms:
                engine.schedule_barrier(
                    now + cfg.epoch_ms, dyn_tick, label="epoch"
                )

        engine.schedule_barrier(cfg.epoch_ms, dyn_tick, label="epoch")

    tail_ms = max((a.query.slo_ms for a in cluster.apps), default=0.0)
    engine.run_until(duration_ms + tail_ms + _DRAIN_GRACE_MS)

    # ----- merge per-shard metrics into one result.
    query_metrics = MetricsCollector()
    invocation_metrics = MetricsCollector()
    reverse = {home: slot for slot, home in directory.items()}
    for s, core in enumerate(cores):
        query_metrics.records.extend(core.query_metrics.records)
        invocation_metrics.records.extend(core.invocation_metrics.records)
        for collector, merged in (
            (core.invocation_metrics, invocation_metrics),
            (core.query_metrics, query_metrics),
        ):
            for gpu_id, busy in collector.gpu_busy_ms.items():
                slot = reverse.get((s, gpu_id), None)
                if slot is None:
                    slot = -1 - len(merged.gpu_busy_ms)
                merged.gpu_busy_ms[slot] = (
                    merged.gpu_busy_ms.get(slot, 0.0) + busy
                )

    if warmup_ms > 0:
        warm = MetricsCollector()
        warm.records = [
            r for r in query_metrics.records if r.arrival_ms >= warmup_ms
        ]
        warm.gpu_busy_ms = query_metrics.gpu_busy_ms
        query_metrics = warm

    return ClusterResult(
        query_metrics=query_metrics,
        invocation_metrics=invocation_metrics,
        plan=plan,
        gpus_used=max(
            sum(core.pool.gpus_in_use for core in cores), plan.num_gpus
        ),
        duration_ms=duration_ms - warmup_ms,
        epochs=state["epochs"],
        fault_log=fault_log,
        detections=detections,
        events_processed=engine.events_processed,
    )


# ------------------------------------------------------------ equivalence


def equivalence_report(result: ClusterResult) -> str:
    """Canonical, execution-order-insensitive digest of a run.

    Byte-comparable between monolithic and sharded runs: per-session
    integer counters, per-session sorted latency lists (every latency is
    computed with identical per-component arithmetic in both runs, so
    the floats match bit for bit), the exactly-rounded total GPU busy
    time (``math.fsum`` is order-independent), and the fault/detection
    logs in global backend numbering.  Deliberately excluded: request
    and node ids (global counters whose absolute values depend on
    cross-component interleaving) and per-slot busy keys (the monolithic
    matcher may merge two components' busy time onto one reused slot).
    """

    def per_session(collector: MetricsCollector) -> dict[str, object]:
        out: dict[str, object] = {}
        by_session: dict[str, list[float]] = {}
        for rec in collector.records:
            if rec.latency_ms is not None:
                by_session.setdefault(rec.session_id, []).append(
                    rec.latency_ms
                )
        stats = collector.per_session_stats()
        for sid in sorted(stats):
            entry = dict(stats[sid])
            entry["latencies"] = sorted(by_session.get(sid, []))
            out[sid] = entry
        return out

    payload = {
        "queries": per_session(result.query_metrics),
        "invocations": per_session(result.invocation_metrics),
        "gpu_busy_total_ms": math.fsum(
            result.invocation_metrics.gpu_busy_ms.values()
        ),
        "gpus_used": result.gpus_used,
        "epochs": result.epochs,
        "duration_ms": result.duration_ms,
        "fault_log": result.fault_log,
        "detections": result.detections,
    }
    return json.dumps(payload, sort_keys=True)
