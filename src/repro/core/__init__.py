"""Nexus's core contribution: batching-aware scheduling and dispatch.

- :mod:`profile` -- batching profiles (Equation 1 and tabulated curves);
- :mod:`session` -- the (model, SLO) session abstraction;
- :mod:`squishy` -- squishy bin packing (Algorithm 1);
- :mod:`ilp` -- exact small-instance solver (the CPLEX substitute);
- :mod:`query` -- complex query latency-SLO splitting (section 6.2);
- :mod:`dag` -- fork-join (series-parallel) query planning, the general
  case section 6.2 mentions;
- :mod:`prefix` -- prefix batching of specialized models (section 6.3);
- :mod:`drop` -- lazy/early drop dispatch policies (sections 4.3, 6.3);
- :mod:`epoch` -- incremental epoch scheduling (sections 5, 6.1);
- :mod:`queueing` -- closed-form queueing oracle for O(1) capacity /
  what-if answers and p99 admission (docs/queueing.md).
"""

from .dag import Parallel, Series, SPPlan, SPStage, plan_sp, sp_from_edges
from .drop import (
    DispatchStats,
    DropPolicy,
    EarlyDropPolicy,
    LazyDropPolicy,
    max_goodput,
    simulate_dispatch,
)
from .epoch import EpochScheduler, EpochUpdate
from .fleet import ClassAssignment, Fleet, GpuClass, assign_classes
from .ilp import exact_min_gpus, fgsp_feasible_partition, subset_feasible
from .prefix import PrefixBatchedProfile, PrefixGroup, find_prefix_groups
from .profile import (
    BatchingProfile,
    EffectiveProfile,
    LinearProfile,
    TabulatedProfile,
)
from .queueing import (
    OracleInapplicable,
    QueueEstimate,
    analytic_estimate,
    capacity_answer,
    max_batch_under_p99,
    queue_latencies,
    simulate_estimate,
)
from .query import (
    LatencySplit,
    MixedSplit,
    Query,
    QueryStage,
    evaluate_split,
    even_split,
    plan_query,
    plan_query_classes,
)
from .session import Session, SessionLoad
from .squishy import (
    Allocation,
    GpuPlan,
    SchedulePlan,
    pack_fleet,
    schedule_residue,
    schedule_saturate,
    squishy_bin_packing,
)

__all__ = [
    "Parallel",
    "Series",
    "SPPlan",
    "SPStage",
    "plan_sp",
    "sp_from_edges",
    "DispatchStats",
    "DropPolicy",
    "EarlyDropPolicy",
    "LazyDropPolicy",
    "max_goodput",
    "simulate_dispatch",
    "EpochScheduler",
    "EpochUpdate",
    "ClassAssignment",
    "Fleet",
    "GpuClass",
    "assign_classes",
    "exact_min_gpus",
    "fgsp_feasible_partition",
    "subset_feasible",
    "PrefixBatchedProfile",
    "PrefixGroup",
    "find_prefix_groups",
    "BatchingProfile",
    "EffectiveProfile",
    "LinearProfile",
    "TabulatedProfile",
    "OracleInapplicable",
    "QueueEstimate",
    "analytic_estimate",
    "capacity_answer",
    "max_batch_under_p99",
    "queue_latencies",
    "simulate_estimate",
    "LatencySplit",
    "MixedSplit",
    "Query",
    "QueryStage",
    "evaluate_split",
    "even_split",
    "plan_query",
    "plan_query_classes",
    "Session",
    "SessionLoad",
    "Allocation",
    "GpuPlan",
    "SchedulePlan",
    "pack_fleet",
    "schedule_residue",
    "schedule_saturate",
    "squishy_bin_packing",
]
