"""Fork-join query planning: the general case of section 6.2.

The paper: "We use dynamic programming to solve this optimization problem
for the case of fork-join dependency graphs, but limit our exposition to
the simpler case of tree-like dependency graphs."  :mod:`repro.core.query`
implements the tree exposition; this module implements the general
fork-join case via **series-parallel decomposition**:

- a *series* composition runs parts one after another: budgets add along
  the chain (min-plus composition of the parts' cost tables);
- a *parallel* composition runs branches concurrently between the same
  fork and join points: every branch must finish within the same shared
  window, so costs add at equal budget.

Any fork-join dataflow (single source, single sink, nested fork/join
pairs) decomposes into these two operators, and the tree DP is the
special case where every parallel composition joins directly at the sink.

The planner here covers the *scheduling* side (latency budgets and GPU
costs); the runtime continues to orchestrate tree-shaped queries, as in
the paper's exposition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Union

from .profile import BatchingProfile

__all__ = ["SPStage", "Series", "Parallel", "SPPlan", "plan_sp",
           "sp_from_edges"]

#: a node of the series-parallel expression tree.
SPNode = Union["SPStage", "Series", "Parallel"]

#: ``assign(budget_index, out)`` writes a subtree's chosen per-stage
#: budgets into ``out``.
_Assign = Callable[[int, "dict[str, float]"], None]


@dataclass
class SPStage:
    """A leaf of the series-parallel expression: one model invocation.

    ``rate_multiplier`` is the stage's invocation rate relative to the
    query root (the product of fan-outs on the way in, times the number
    of join inputs consumed per output where applicable).
    """

    name: str
    profile: BatchingProfile
    rate_multiplier: float = 1.0

    def __post_init__(self) -> None:
        if self.rate_multiplier < 0:
            raise ValueError(
                f"rate_multiplier must be >= 0, got {self.rate_multiplier}"
            )


@dataclass
class Series:
    """Parts executed one after another; budgets add along the chain."""

    parts: list[SPNode] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.parts) < 1:
            raise ValueError("Series needs at least one part")


@dataclass
class Parallel:
    """Branches executed concurrently between a fork and its join."""

    branches: list[SPNode] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.branches) < 2:
            raise ValueError("Parallel needs at least two branches")


@dataclass
class SPPlan:
    """Planned budgets for every stage plus the total GPU cost."""

    budgets_ms: dict[str, float]
    total_gpus: float
    slo_ms: float


def _stage_costs(stage: SPStage, rate_rps: float, budgets: list[float],
                 worst_case_factor: float) -> list[float]:
    costs = []
    rate = rate_rps * stage.rate_multiplier
    for budget in budgets:
        b = stage.profile.max_batch_with_latency(budget / worst_case_factor)
        if b == 0:
            costs.append(math.inf)
        else:
            costs.append(rate * stage.profile.latency(b) / b / 1000.0)
    return costs


def plan_sp(
    expr: SPNode,
    slo_ms: float,
    rate_rps: float,
    epsilon_ms: float = 5.0,
    worst_case_factor: float = 1.0,
) -> SPPlan:
    """Plan latency budgets over a series-parallel expression.

    Args:
        expr: an :class:`SPStage`, :class:`Series`, or :class:`Parallel`.
        slo_ms: whole-query latency SLO.
        rate_rps: offered rate at the query root.
        epsilon_ms: budget discretization.
        worst_case_factor: see :mod:`repro.core.query`.

    Returns:
        :class:`SPPlan` with per-stage budgets summing within ``slo_ms``
        along every source-to-sink path.

    Raises:
        ValueError: if no feasible assignment exists.
    """
    if slo_ms <= 0:
        raise ValueError(f"slo_ms must be positive, got {slo_ms}")
    steps = max(1, int(round(slo_ms / epsilon_ms)))
    budgets = [i * slo_ms / steps for i in range(steps + 1)]

    # Each node yields (cost_table, assign) where cost_table[t] is the min
    # GPU cost within budget index t, and assign(t, out) writes the
    # chosen per-stage budgets into `out` for that allocation.
    def solve(node: SPNode) -> tuple[list[float], _Assign]:
        if isinstance(node, SPStage):
            costs = _stage_costs(node, rate_rps, budgets, worst_case_factor)
            # A stage's cost is non-increasing in budget; make the table
            # monotone so callers can always spend the full window.
            best = list(costs)
            best_k = list(range(steps + 1))
            for t in range(1, steps + 1):
                if best[t - 1] < best[t]:
                    best[t] = best[t - 1]
                    best_k[t] = best_k[t - 1]
                else:
                    best_k[t] = t

            def assign(t: int, out: dict[str, float],
                       _k: list[int] = best_k) -> None:
                out[node.name] = budgets[t]

            return best, assign

        if isinstance(node, Parallel):
            tables = [solve(b) for b in node.branches]

            def cost(t: int) -> float:
                total = 0.0
                for tab, _ in tables:
                    c = tab[t]
                    if math.isinf(c):
                        return math.inf
                    total += c
                return total

            table = [cost(t) for t in range(steps + 1)]

            def assign(t: int, out: dict[str, float]) -> None:
                for _, sub_assign in tables:
                    sub_assign(t, out)

            return table, assign

        if isinstance(node, Series):
            tables = [solve(p) for p in node.parts]
            # Min-plus composition, one part at a time.
            acc = [0.0] * (steps + 1)
            choices: list[list[int]] = []
            for tab, _ in tables:
                new = [math.inf] * (steps + 1)
                choice = [0] * (steps + 1)
                for t in range(steps + 1):
                    for k in range(t + 1):
                        c = tab[k]
                        rest = acc[t - k]
                        if math.isinf(c) or math.isinf(rest):
                            continue
                        if c + rest < new[t]:
                            new[t] = c + rest
                            choice[t] = k
                acc = new
                choices.append(choice)

            def assign(t: int, out: dict[str, float]) -> None:
                remaining = t
                # Walk parts in reverse: each recorded its chosen k given
                # the budget remaining when it was composed.
                for (tab, sub_assign), choice in zip(
                    reversed(tables), reversed(choices)
                ):
                    k = choice[remaining]
                    sub_assign(k, out)
                    remaining -= k

            return acc, assign

        raise TypeError(f"not a series-parallel node: {node!r}")

    table, assign = solve(expr)
    if math.isinf(table[steps]):
        raise ValueError(
            f"no feasible budget assignment within {slo_ms} ms"
        )
    out: dict[str, float] = {}
    assign(steps, out)
    return SPPlan(budgets_ms=out, total_gpus=table[steps], slo_ms=slo_ms)


def sp_from_edges(
    stages: dict[str, SPStage], edges: list[tuple[str, str]]
) -> Series:
    """Build a series-parallel expression from a fork-join edge list.

    Supports the common fork-join shapes by recursive decomposition of the
    single-source, single-sink DAG: serial chains become :class:`Series`,
    branch bundles between a fork node and the (unique) join node where
    all branches reconverge become :class:`Parallel`.

    Raises:
        ValueError: if the graph is not series-parallel decomposable.
    """
    succ: dict[str, list[str]] = {name: [] for name in stages}
    pred: dict[str, list[str]] = {name: [] for name in stages}
    for a, b in edges:
        if a not in stages or b not in stages:
            raise ValueError(f"edge ({a!r}, {b!r}) references unknown stage")
        succ[a].append(b)
        pred[b].append(a)

    sources = [n for n in stages if not pred[n]]
    sinks = [n for n in stages if not succ[n]]
    if len(sources) != 1 or len(sinks) != 1:
        raise ValueError(
            f"need a single source and sink; got {sources} / {sinks}"
        )

    def reachable(start: str) -> set[str]:
        seen, stack = set(), [start]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            stack.extend(succ[n])
        return seen

    def decompose(start: str, stop: str) -> SPNode:
        """SP expression covering start..stop inclusive of start,
        exclusive of stop."""
        parts: list[SPNode] = []
        node = start
        while node != stop:
            parts.append(stages[node])
            outs = succ[node]
            if len(outs) == 1:
                node = outs[0]
            elif len(outs) == 0:
                raise ValueError(f"dead end at {node!r} before {stop!r}")
            else:
                # Fork: the join is the unique node reachable from every
                # branch where they reconverge.
                branch_reach = [reachable(o) for o in outs]
                common = set.intersection(*branch_reach)
                if not common:
                    raise ValueError(f"branches from {node!r} never join")
                # The join is the common node none of whose predecessors
                # within `common` precede it... pick the one all branch
                # heads reach first: the common node with every other
                # common node reachable from it is the *last*; we want the
                # earliest: the one from which all of `common` is
                # reachable.
                join = None
                for cand in common:
                    if common.issubset(reachable(cand)):
                        join = cand
                        break
                if join is None:
                    raise ValueError(
                        f"fork at {node!r} is not series-parallel"
                    )
                branches: list[SPNode] = []
                for o in outs:
                    if o == join:
                        raise ValueError(
                            f"fork at {node!r} has an empty branch to "
                            f"{join!r}; not supported"
                        )
                    branches.append(decompose(o, join))
                parts.append(Parallel(branches=branches))
                node = join
        return parts[0] if len(parts) == 1 else Series(parts=parts)

    sink = sinks[0]
    expr = decompose(sources[0], sink)
    tail = stages[sink]
    if isinstance(expr, Series):
        expr.parts.append(tail)
        return expr
    return Series(parts=[expr, tail])
