"""Fork-join query planning: the general case of section 6.2.

The paper: "We use dynamic programming to solve this optimization problem
for the case of fork-join dependency graphs, but limit our exposition to
the simpler case of tree-like dependency graphs."  :mod:`repro.core.query`
implements the tree exposition; this module implements the general
fork-join case via **series-parallel decomposition**:

- a *series* composition runs parts one after another: budgets add along
  the chain (min-plus composition of the parts' cost tables);
- a *parallel* composition runs branches concurrently between the same
  fork and join points: every branch must finish within the same shared
  window, so costs add at equal budget.

Any fork-join dataflow (single source, single sink, nested fork/join
pairs) decomposes into these two operators, and the tree DP is the
special case where every parallel composition joins directly at the sink.

The planner here covers the *scheduling* side (latency budgets and GPU
costs); the runtime continues to orchestrate tree-shaped queries, as in
the paper's exposition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Union

from .profile import BatchingProfile

__all__ = ["SPStage", "Series", "Parallel", "SPPlan", "plan_sp",
           "sp_from_edges"]

#: a node of the series-parallel expression tree.
SPNode = Union["SPStage", "Series", "Parallel"]

#: ``assign(budget_index, out, devices)`` writes a subtree's chosen
#: per-stage budgets into ``out`` and class placements into ``devices``.
_Assign = Callable[[int, "dict[str, float]", "dict[str, str]"], None]


@dataclass
class SPStage:
    """A leaf of the series-parallel expression: one model invocation.

    ``rate_multiplier`` is the stage's invocation rate relative to the
    query root (the product of fan-outs on the way in, times the number
    of join inputs consumed per output where applicable).

    ``class_profiles`` opts the stage into heterogeneous placement: a
    ``device class -> profile`` map lets :func:`plan_sp` choose the
    class jointly with the budget (PPipe-style pool placement).  When
    set, ``profile`` may be None.
    """

    name: str
    profile: BatchingProfile | None
    rate_multiplier: float = 1.0
    class_profiles: dict[str, BatchingProfile] | None = None

    def __post_init__(self) -> None:
        if self.rate_multiplier < 0:
            raise ValueError(
                f"rate_multiplier must be >= 0, got {self.rate_multiplier}"
            )
        if self.profile is None and not self.class_profiles:
            raise ValueError(
                f"stage {self.name!r} needs a profile or class_profiles"
            )


@dataclass
class Series:
    """Parts executed one after another; budgets add along the chain."""

    parts: list[SPNode] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.parts) < 1:
            raise ValueError("Series needs at least one part")


@dataclass
class Parallel:
    """Branches executed concurrently between a fork and its join."""

    branches: list[SPNode] = field(default_factory=list)

    def __post_init__(self) -> None:
        if len(self.branches) < 2:
            raise ValueError("Parallel needs at least two branches")


@dataclass
class SPPlan:
    """Planned budgets for every stage plus the total GPU cost.

    ``devices`` maps heterogeneously placed stages to their chosen
    device class (empty for stages planned on a single profile);
    ``price_per_hour`` is the fractional-GPU dollar estimate when class
    prices were supplied, else 0.
    """

    budgets_ms: dict[str, float]
    total_gpus: float
    slo_ms: float
    devices: dict[str, str] = field(default_factory=dict)
    price_per_hour: float = 0.0


def _stage_costs(
    stage: SPStage,
    rate_rps: float,
    budgets: list[float],
    worst_case_factor: float,
    weight: Callable[[str], float],
) -> tuple[list[float], list[str]]:
    """Per-budget cost table for one stage, plus the winning class.

    A stage with ``class_profiles`` takes the cheapest class at each
    budget (weighted by ``weight``, e.g. its hourly price); a
    single-profile stage keeps its classic table with an empty winner.
    """
    costs: list[float] = []
    winners: list[str] = []
    rate = rate_rps * stage.rate_multiplier
    if stage.class_profiles:
        names = sorted(stage.class_profiles)
        for budget in budgets:
            best_cost, best_name = math.inf, ""
            for name in names:
                prof = stage.class_profiles[name]
                b = prof.max_batch_with_latency(budget / worst_case_factor)
                if b == 0:
                    continue
                c = weight(name) * rate * prof.latency(b) / b / 1000.0
                if c < best_cost:
                    best_cost, best_name = c, name
            costs.append(best_cost)
            winners.append(best_name)
        return costs, winners
    assert stage.profile is not None  # __post_init__ guarantees one of the two
    for budget in budgets:
        b = stage.profile.max_batch_with_latency(budget / worst_case_factor)
        if b == 0:
            costs.append(math.inf)
        else:
            costs.append(rate * stage.profile.latency(b) / b / 1000.0)
        winners.append("")
    return costs, winners


def _leaves(expr: SPNode) -> list[SPStage]:
    if isinstance(expr, SPStage):
        return [expr]
    if isinstance(expr, Parallel):
        return [s for b in expr.branches for s in _leaves(b)]
    if isinstance(expr, Series):
        return [s for p in expr.parts for s in _leaves(p)]
    raise TypeError(f"not a series-parallel node: {expr!r}")


def plan_sp(
    expr: SPNode,
    slo_ms: float,
    rate_rps: float,
    epsilon_ms: float = 5.0,
    worst_case_factor: float = 1.0,
    prices: dict[str, float] | None = None,
    objective: str = "gpus",
) -> SPPlan:
    """Plan latency budgets over a series-parallel expression.

    Stages carrying ``class_profiles`` are also *placed*: at each budget
    the DP picks the device class minimizing the stage's weighted cost,
    so one fork-join query can pipeline across classes.

    Args:
        expr: an :class:`SPStage`, :class:`Series`, or :class:`Parallel`.
        slo_ms: whole-query latency SLO.
        rate_rps: offered rate at the query root.
        epsilon_ms: budget discretization.
        worst_case_factor: see :mod:`repro.core.query`.
        prices: ``class -> price_per_hour`` weights for heterogeneous
            stages under the cost objective (missing/non-positive = 1.0).
        objective: ``"gpus"`` (classic; every class weighted equally) or
            ``"cost"`` (weight each class by its hourly price).

    Returns:
        :class:`SPPlan` with per-stage budgets summing within ``slo_ms``
        along every source-to-sink path, plus per-stage class placements
        for heterogeneous stages.

    Raises:
        ValueError: if no feasible assignment exists.
    """
    if slo_ms <= 0:
        raise ValueError(f"slo_ms must be positive, got {slo_ms}")
    if objective not in ("gpus", "cost"):
        raise ValueError(f"unknown objective {objective!r}")
    steps = max(1, int(round(slo_ms / epsilon_ms)))
    budgets = [i * slo_ms / steps for i in range(steps + 1)]

    def weight(name: str) -> float:
        if objective == "cost" and prices is not None:
            price = prices.get(name, 0.0)
            if price > 0.0:
                return price
        return 1.0

    # Each node yields (cost_table, assign) where cost_table[t] is the min
    # cost within budget index t, and assign(t, out, devices) writes the
    # chosen per-stage budgets and class placements for that allocation.
    def solve(node: SPNode) -> tuple[list[float], _Assign]:
        if isinstance(node, SPStage):
            costs, winners = _stage_costs(
                node, rate_rps, budgets, worst_case_factor, weight
            )
            # A stage's cost is non-increasing in budget; make the table
            # monotone so callers can always spend the full window.
            best = list(costs)
            best_k = list(range(steps + 1))
            for t in range(1, steps + 1):
                if best[t - 1] < best[t]:
                    best[t] = best[t - 1]
                    best_k[t] = best_k[t - 1]
                else:
                    best_k[t] = t

            def assign(t: int, out: dict[str, float],
                       devices: dict[str, str],
                       _k: list[int] = best_k) -> None:
                out[node.name] = budgets[t]
                # The class that won at the cost-minimizing index within
                # the window (the full window t only ties or beats it).
                winner = winners[_k[t]]
                if winner:
                    devices[node.name] = winner

            return best, assign

        if isinstance(node, Parallel):
            tables = [solve(b) for b in node.branches]

            def cost(t: int) -> float:
                total = 0.0
                for tab, _ in tables:
                    c = tab[t]
                    if math.isinf(c):
                        return math.inf
                    total += c
                return total

            table = [cost(t) for t in range(steps + 1)]

            def assign(t: int, out: dict[str, float],
                       devices: dict[str, str]) -> None:
                for _, sub_assign in tables:
                    sub_assign(t, out, devices)

            return table, assign

        if isinstance(node, Series):
            tables = [solve(p) for p in node.parts]
            # Min-plus composition, one part at a time.
            acc = [0.0] * (steps + 1)
            choices: list[list[int]] = []
            for tab, _ in tables:
                new = [math.inf] * (steps + 1)
                choice = [0] * (steps + 1)
                for t in range(steps + 1):
                    for k in range(t + 1):
                        c = tab[k]
                        rest = acc[t - k]
                        if math.isinf(c) or math.isinf(rest):
                            continue
                        if c + rest < new[t]:
                            new[t] = c + rest
                            choice[t] = k
                acc = new
                choices.append(choice)

            def assign(t: int, out: dict[str, float],
                       devices: dict[str, str]) -> None:
                remaining = t
                # Walk parts in reverse: each recorded its chosen k given
                # the budget remaining when it was composed.
                for (tab, sub_assign), choice in zip(
                    reversed(tables), reversed(choices)
                ):
                    k = choice[remaining]
                    sub_assign(k, out, devices)
                    remaining -= k

            return acc, assign

        raise TypeError(f"not a series-parallel node: {node!r}")

    table, assign = solve(expr)
    if math.isinf(table[steps]):
        raise ValueError(
            f"no feasible budget assignment within {slo_ms} ms"
        )
    out: dict[str, float] = {}
    devices: dict[str, str] = {}
    assign(steps, out, devices)

    total_gpus = table[steps]
    dollars = 0.0
    if devices or objective == "cost":
        # Re-derive true GPU counts (and dollars) from the final budgets:
        # the DP table holds *weighted* costs once prices enter it.
        total_gpus = 0.0
        for leaf in _leaves(expr):
            name = devices.get(leaf.name, "")
            prof = (
                leaf.class_profiles[name]
                if name and leaf.class_profiles
                else leaf.profile
            )
            assert prof is not None
            b = prof.max_batch_with_latency(
                out[leaf.name] / worst_case_factor
            )
            if b == 0:
                continue  # source-like zero-budget stages cost nothing
            gpus = (
                rate_rps * leaf.rate_multiplier * prof.latency(b) / b / 1000.0
            )
            total_gpus += gpus
            if prices is not None and name:
                dollars += prices.get(name, 0.0) * gpus
    return SPPlan(
        budgets_ms=out, total_gpus=total_gpus, slo_ms=slo_ms,
        devices=devices, price_per_hour=dollars,
    )


def sp_from_edges(
    stages: dict[str, SPStage], edges: list[tuple[str, str]]
) -> Series:
    """Build a series-parallel expression from a fork-join edge list.

    Supports the common fork-join shapes by recursive decomposition of the
    single-source, single-sink DAG: serial chains become :class:`Series`,
    branch bundles between a fork node and the (unique) join node where
    all branches reconverge become :class:`Parallel`.

    Raises:
        ValueError: if the graph is not series-parallel decomposable.
    """
    succ: dict[str, list[str]] = {name: [] for name in stages}
    pred: dict[str, list[str]] = {name: [] for name in stages}
    for a, b in edges:
        if a not in stages or b not in stages:
            raise ValueError(f"edge ({a!r}, {b!r}) references unknown stage")
        succ[a].append(b)
        pred[b].append(a)

    sources = [n for n in stages if not pred[n]]
    sinks = [n for n in stages if not succ[n]]
    if len(sources) != 1 or len(sinks) != 1:
        raise ValueError(
            f"need a single source and sink; got {sources} / {sinks}"
        )

    def reachable(start: str) -> set[str]:
        seen, stack = set(), [start]
        while stack:
            n = stack.pop()
            if n in seen:
                continue
            seen.add(n)
            stack.extend(succ[n])
        return seen

    def decompose(start: str, stop: str) -> SPNode:
        """SP expression covering start..stop inclusive of start,
        exclusive of stop."""
        parts: list[SPNode] = []
        node = start
        while node != stop:
            parts.append(stages[node])
            outs = succ[node]
            if len(outs) == 1:
                node = outs[0]
            elif len(outs) == 0:
                raise ValueError(f"dead end at {node!r} before {stop!r}")
            else:
                # Fork: the join is the unique node reachable from every
                # branch where they reconverge.
                branch_reach = [reachable(o) for o in outs]
                common = set.intersection(*branch_reach)
                if not common:
                    raise ValueError(f"branches from {node!r} never join")
                # The join is the common node none of whose predecessors
                # within `common` precede it... pick the one all branch
                # heads reach first: the common node with every other
                # common node reachable from it is the *last*; we want the
                # earliest: the one from which all of `common` is
                # reachable.
                join = None
                for cand in common:
                    if common.issubset(reachable(cand)):
                        join = cand
                        break
                if join is None:
                    raise ValueError(
                        f"fork at {node!r} is not series-parallel"
                    )
                branches: list[SPNode] = []
                for o in outs:
                    if o == join:
                        raise ValueError(
                            f"fork at {node!r} has an empty branch to "
                            f"{join!r}; not supported"
                        )
                    branches.append(decompose(o, join))
                parts.append(Parallel(branches=branches))
                node = join
        return parts[0] if len(parts) == 1 else Series(parts=parts)

    sink = sinks[0]
    expr = decompose(sources[0], sink)
    tail = stages[sink]
    if isinstance(expr, Series):
        expr.parts.append(tail)
        return expr
    return Series(parts=[expr, tail])
