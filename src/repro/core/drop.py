"""Rate control and adaptive batching: lazy drop vs early drop.

Paper sections 4.3 and 6.3.  Under bursty arrivals a serving system must
drop some requests to keep the rest within their SLO.

- **Lazy drop** (Clipper): drop a request only once it has already missed
  its deadline, and size each batch by the time budget remaining for the
  *earliest* request in the queue.  When the fixed cost ``beta`` is high
  this forces small batches, the dispatcher falls behind, and the bad rate
  explodes (Figure 5).

- **Early drop** (Nexus): slide a window of length equal to the target
  batch size (set by the global scheduler) over the queue; stop at the
  first request with enough remaining budget for the *whole window's*
  batched execution latency, and drop everything earlier.  Sacrificing a
  few stale requests preserves large-batch efficiency (Figure 9: up to
  ~25% more goodput).

:func:`simulate_dispatch` runs a single-GPU dispatch loop over explicit
arrival times -- the simulation behind Figures 5 and 9.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Callable

from .profile import BatchingProfile

__all__ = [
    "QueuedRequest",
    "DispatchStats",
    "DropPolicy",
    "LazyDropPolicy",
    "EarlyDropPolicy",
    "consume_selected",
    "simulate_dispatch",
    "max_goodput",
]


@dataclass(slots=True)
class QueuedRequest:
    """A request waiting in a backend queue (slotted: allocated per
    request on the dispatch hot path)."""

    request_id: int
    arrival_ms: float
    deadline_ms: float


@dataclass
class DispatchStats:
    """Outcome counters from a dispatch simulation."""

    served_ok: int = 0
    served_late: int = 0
    dropped: int = 0
    batches: int = 0
    batch_size_sum: int = 0
    busy_ms: float = 0.0
    span_ms: float = 0.0

    @property
    def total(self) -> int:
        return self.served_ok + self.served_late + self.dropped

    @property
    def bad_rate(self) -> float:
        """Fraction of requests that missed the deadline or were dropped."""
        if self.total == 0:
            return 0.0
        return (self.served_late + self.dropped) / self.total

    @property
    def good_rate(self) -> float:
        return 1.0 - self.bad_rate

    @property
    def goodput_rps(self) -> float:
        if self.span_ms <= 0:
            return 0.0
        return self.served_ok / self.span_ms * 1000.0

    @property
    def mean_batch(self) -> float:
        if self.batches == 0:
            return 0.0
        return self.batch_size_sum / self.batches

    @property
    def utilization(self) -> float:
        if self.span_ms <= 0:
            return 0.0
        return min(1.0, self.busy_ms / self.span_ms)


class DropPolicy:
    """Selects which queued requests form the next batch and which drop."""

    def select(
        self,
        queue: Sequence[QueuedRequest],
        now_ms: float,
        profile: BatchingProfile,
    ) -> tuple[list[QueuedRequest], list[QueuedRequest]]:
        """Return ``(batch, dropped)``; both disjoint sublists of ``queue``.

        An empty batch with an empty drop list means "wait for more work";
        an empty batch with a non-empty drop list means "I shed stale
        requests, ask me again" (the dispatcher re-invokes rather than
        treating the survivors as unservable).
        """
        raise NotImplementedError

    @staticmethod
    def _expire(
        queue: Sequence[QueuedRequest], now_ms: float, min_service_ms: float
    ) -> tuple[list[QueuedRequest], list[QueuedRequest]]:
        """Split queue into (alive, already-hopeless) at time ``now``."""
        alive, dead = [], []
        for req in queue:
            if now_ms + min_service_ms > req.deadline_ms:
                dead.append(req)
            else:
                alive.append(req)
        return alive, dead


class LazyDropPolicy(DropPolicy):
    """Clipper's policy: serve the oldest request, drop only the expired.

    ``batch_cap`` optionally bounds the batch size (TF Serving fixes "the
    maximum batch size for each model, so its SLO is not violated").
    """

    def __init__(self, batch_cap: int | None = None) -> None:
        if batch_cap is not None and batch_cap < 1:
            raise ValueError(f"batch_cap must be >= 1, got {batch_cap}")
        self.batch_cap = batch_cap

    def select(
        self,
        queue: Sequence[QueuedRequest],
        now_ms: float,
        profile: BatchingProfile,
    ) -> tuple[list[QueuedRequest], list[QueuedRequest]]:
        min_service = profile.latency(1)
        alive, dead = self._expire(queue, now_ms, min_service)
        if not alive:
            return [], dead
        head = alive[0]
        budget = head.deadline_ms - now_ms
        batch_cap = profile.max_batch_with_latency(budget)
        if batch_cap == 0:
            # The head can no longer be served even alone; count it dead.
            return [], dead + [head]
        if self.batch_cap is not None:
            batch_cap = min(batch_cap, self.batch_cap)
        batch = alive[: min(batch_cap, len(alive))]
        return batch, dead


class EarlyDropPolicy(DropPolicy):
    """Nexus's policy: slide a target-size window, drop stale heads.

    ``target_batch`` is the batch size the global scheduler chose for the
    session; the dispatcher refuses to run (much) smaller batches when
    sacrificing a few old requests lets the window fit.
    """

    def __init__(self, target_batch: int) -> None:
        if target_batch < 1:
            raise ValueError(f"target_batch must be >= 1, got {target_batch}")
        self.target_batch = target_batch

    def select(
        self,
        queue: Sequence[QueuedRequest],
        now_ms: float,
        profile: BatchingProfile,
    ) -> tuple[list[QueuedRequest], list[QueuedRequest]]:
        min_service = profile.latency(1)
        alive, dead = self._expire(queue, now_ms, min_service)
        if not alive:
            return [], dead
        window = min(self.target_batch, profile.max_batch)
        # Scan for the first request whose budget covers a full window.
        for start, req in enumerate(alive):
            size = min(window, len(alive) - start)
            exec_ms = profile.latency(size)
            if now_ms + exec_ms <= req.deadline_ms:
                return alive[start : start + size], dead + alive[:start]
        # Unreachable in practice: _expire guarantees the freshest alive
        # request can cover a single-item window, so the scan's final
        # (size-1) iteration always returns.  Kept as a defensive drain.
        return [alive[-1]], dead + alive[:-1]


def consume_selected(
    queue: deque[QueuedRequest],
    batch: list[QueuedRequest],
    dropped: list[QueuedRequest],
) -> deque[QueuedRequest]:
    """Remove a ``select()``'s batch and drops from ``queue`` in place.

    Both drop policies consume a *prefix* of the queue whenever deadlines
    are monotone in queue order (the steady-state: one session, one SLO,
    arrivals appended in time order), so the common case is ``popleft``
    per taken request instead of rebuilding the whole queue per batch.
    The rare non-prefix selection (a custom policy, or deadline inversion
    across a schedule change) falls back to a single filtered rebuild.

    Returns the queue holding the surviving requests (the same object in
    the fast path).
    """
    remaining = len(batch) + len(dropped)
    if not remaining:
        return queue
    taken = {q.request_id for q in batch}
    taken.update(q.request_id for q in dropped)
    while remaining and queue and queue[0].request_id in taken:
        queue.popleft()
        remaining -= 1
    if remaining:
        return deque(q for q in queue if q.request_id not in taken)
    return queue


def simulate_dispatch(
    arrivals_ms: list[float],
    profile: BatchingProfile,
    slo_ms: float,
    policy: DropPolicy,
    overlap: bool = True,
) -> DispatchStats:
    """Run a single-GPU dispatch loop over the given arrival times.

    The GPU serves batches back to back; whenever it frees up, ``policy``
    picks the next batch from whatever has arrived.  Requests finish when
    their batch finishes; they count as served-in-time iff that is within
    their deadline (arrival + SLO).

    Args:
        arrivals_ms: sorted request arrival times.
        profile: the model's batching profile.
        slo_ms: per-request latency SLO.
        policy: drop policy instance.
        overlap: whether CPU pre/post-processing overlaps GPU execution
            (section 6.3 OL); without it the GPU idles through CPU work.
    """
    if any(b < a for a, b in zip(arrivals_ms, arrivals_ms[1:])):
        raise ValueError("arrivals_ms must be sorted")
    stats = DispatchStats()
    if not arrivals_ms:
        return stats

    queue: deque[QueuedRequest] = deque()
    next_idx = 0
    n = len(arrivals_ms)
    now = arrivals_ms[0]
    last_completion = now

    while next_idx < n or queue:
        # Admit everything that has arrived by `now`.
        while next_idx < n and arrivals_ms[next_idx] <= now:
            t = arrivals_ms[next_idx]
            queue.append(QueuedRequest(next_idx, t, t + slo_ms))
            next_idx += 1

        if not queue:
            now = arrivals_ms[next_idx]
            continue

        batch, dropped = policy.select(queue, now, profile)
        stats.dropped += len(dropped)
        queue = consume_selected(queue, batch, dropped)

        if not batch:
            if dropped:
                # The policy made progress (expired heads dropped); the
                # surviving queue may be servable at this very instant, so
                # re-invoke the policy rather than waiting (or, at end of
                # trace, draining still-servable requests as dropped).
                continue
            if queue and next_idx < n:
                # Policy wants to wait for fresher work.
                now = max(now, arrivals_ms[next_idx])
            elif not queue and next_idx < n:
                now = arrivals_ms[next_idx]
            else:
                # No arrivals left and the policy refuses to either serve
                # or drop anything: drain defensively (unreachable for the
                # built-in policies, which always make progress).
                stats.dropped += len(queue)
                queue.clear()
            continue

        exec_ms = profile.occupancy_time(len(batch), overlap=overlap)
        completion = now + exec_ms
        stats.batches += 1
        stats.batch_size_sum += len(batch)
        stats.busy_ms += exec_ms
        for req in batch:
            if completion <= req.deadline_ms:
                stats.served_ok += 1
            else:
                stats.served_late += 1
        now = completion
        last_completion = completion

    stats.span_ms = max(last_completion, arrivals_ms[-1]) - arrivals_ms[0]
    return stats


def max_goodput(
    make_arrivals: Callable[[float], list[float]],
    profile: BatchingProfile,
    slo_ms: float,
    make_policy: Callable[[], DropPolicy],
    target_good_rate: float = 0.99,
    lo_rps: float = 1.0,
    hi_rps: float | None = None,
    iterations: int = 12,
    overlap: bool = True,
) -> float:
    """Binary-search the max offered rate keeping good rate >= target.

    This is the paper's throughput metric (section 7): "the maximum rate
    of queries ... such that 99% of them are served within their latency
    SLOs".

    Args:
        make_arrivals: ``rate_rps -> list[float]`` arrival generator
            (deterministic per rate; callers pass a seeded process).
        make_policy: ``() -> DropPolicy`` factory (fresh state per trial).
    """
    if hi_rps is None:
        hi_rps = profile.throughput(profile.max_batch) * 2.0

    def good(rate: float) -> bool:
        stats = simulate_dispatch(
            make_arrivals(rate), profile, slo_ms, make_policy(), overlap=overlap
        )
        return stats.good_rate >= target_good_rate

    if not good(lo_rps):
        return 0.0
    lo, hi = lo_rps, hi_rps
    # Validate the ceiling before bisecting: if the system is still good
    # at ``hi_rps`` the search would silently converge to it and
    # under-report.  Double the upper bound until it fails (capped).
    for _ in range(12):
        if not good(hi):
            break
        lo, hi = hi, hi * 2.0
    else:
        return hi  # good even at the expansion cap; report what we proved
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        if good(mid):
            lo = mid
        else:
            hi = mid
    return lo
