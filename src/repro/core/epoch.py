"""Incremental epoch scheduling: adapt the plan across workload changes.

Paper section 5: "Allocation, scheduling, and routing updates happen at
the granularity of an epoch, typically 30-60s ... To prevent oscillation
from frequent reconfiguration, we limit the minimum period between two
epochs to 10 seconds."  Section 6.1's closing paragraph describes the
incremental policy this module implements:

- if workload *decreases*, move sessions off the least-utilized backends
  and release backends that no longer run anything;
- if a backend becomes *overloaded*, evict its cheapest sessions until it
  is feasible again, then re-pack the evicted sessions (plus any brand-new
  demand) with squishy bin packing.

:class:`EpochScheduler` owns the evolving plan and reports churn metrics
(GPUs added/released, sessions moved) so the large-scale experiment
(Figure 13) can show adaptation lag and reconfiguration cost.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .fleet import Fleet
from .floatcmp import approx_zero
from .queueing import QueueEstimate, capacity_answer
from .session import SessionLoad
from .squishy import (
    Allocation,
    GpuPlan,
    SchedulePlan,
    pack_fleet,
    schedule_residue,
    schedule_saturate,
    squishy_bin_packing,
)

__all__ = ["EpochUpdate", "EpochScheduler"]


@dataclass
class EpochUpdate:
    """What one epoch's rescheduling changed."""

    epoch: int
    time_ms: float
    gpus_before: int
    gpus_after: int
    sessions_moved: int
    triggered: bool
    #: plan nodes carried over *unchanged* from the previous epoch (the
    #: incremental fast path reused the GpuPlan object instead of
    #: rebuilding it).  Zero when the GPU cap forced a proportional
    #: repack of every node.
    nodes_reused: int = 0

    @property
    def gpus_added(self) -> int:
        return max(0, self.gpus_after - self.gpus_before)

    @property
    def gpus_released(self) -> int:
        return max(0, self.gpus_before - self.gpus_after)


@dataclass
class EpochScheduler:
    """Stateful scheduler reacting to per-epoch workload statistics.

    Args:
        epoch_ms: nominal epoch length (30-60 s in the paper).
        min_period_ms: minimum gap between reschedules (10 s in the paper).
        change_threshold: relative rate change that triggers an early epoch.
        memory_capacity: per-GPU memory bound handed to the packer.
        max_gpus: optional cluster size cap; demand beyond it is left to
            admission control (the runtime's drop policy).
        fleet: optional heterogeneous fleet.  When set, class-tagged
            loads repack per class (class memory capacities and inventory
            counts come from the fleet) and ``memory_capacity`` only
            applies to nodes whose class the fleet does not know.
        validate: when True, every plan this scheduler emits is checked
            against the Algorithm-1 invariants
            (:mod:`repro.analysis.plan_check`) and a violation raises
            :class:`~repro.analysis.plan_check.PlanCheckError`.  Leave
            False for baselines that are latency-infeasible by design.
        slo_mode: admission regime for residual nodes -- ``"worst_case"``
            (the paper's deterministic bounds) or ``"p99"`` (the queueing
            oracle's tail bound; docs/queueing.md).
        capacity_mode: how capacity/what-if questions are answered --
            ``"analytic"`` consults the closed-form oracle and falls back
            to the seeded queue simulation when its preconditions fail;
            ``"simulate"`` always simulates.
    """

    epoch_ms: float = 30_000.0
    min_period_ms: float = 10_000.0
    change_threshold: float = 0.25
    memory_capacity: int | None = None
    max_gpus: int | None = None
    validate: bool = False
    slo_mode: str = "worst_case"
    capacity_mode: str = "analytic"
    fleet: Fleet | None = None

    plan: SchedulePlan = field(default_factory=lambda: SchedulePlan(gpus=[]))
    updates: list[EpochUpdate] = field(default_factory=list)
    _epoch: int = 0
    _last_schedule_ms: float = -math.inf
    _last_rates: dict[str, float] = field(default_factory=dict)

    # ------------------------------------------------------------- triggers

    def should_reschedule(self, now_ms: float, loads: list[SessionLoad]) -> bool:
        """Epoch boundary reached, or a large workload change observed."""
        if now_ms - self._last_schedule_ms < self.min_period_ms:
            return False
        if now_ms - self._last_schedule_ms >= self.epoch_ms:
            return True
        for load in loads:
            old = self._last_rates.get(load.session_id, 0.0)
            new = load.rate_rps
            base = max(old, 1e-9)
            if approx_zero(old) and new > 0.0:
                return True
            if abs(new - old) / base > self.change_threshold:
                return True
        # A session that disappears entirely (present last epoch, absent
        # from the current loads) is a rate change to zero: without an
        # early epoch its GPUs stay allocated until the next boundary.
        seen = {load.session_id for load in loads}
        for sid, old in self._last_rates.items():
            if old > 0.0 and sid not in seen:
                return True
        return False

    # ------------------------------------------------------------- schedule

    def update(self, now_ms: float, loads: list[SessionLoad]) -> EpochUpdate:
        """Run one epoch: adapt the plan to the new rates.

        Call this when :meth:`should_reschedule` returns True (or
        unconditionally at epoch boundaries); it records and returns the
        churn summary either way.
        """
        before = self.plan.num_gpus
        before_assignment = self._assignment()

        new_plan = self._incremental_plan(loads)
        if self.max_gpus is not None and new_plan.num_gpus > self.max_gpus:
            new_plan = self._capped_plan(loads)
        if self.validate:
            # Imported lazily: repro.analysis depends on core.squishy, so a
            # module-level import here would be circular when repro.analysis
            # is imported first.
            from ..analysis.plan_check import assert_valid_plan

            assert_valid_plan(
                new_plan, memory_capacity=self.memory_capacity,
                fleet=self.fleet,
            )
        prev_nodes = {id(n) for n in self.plan.gpus}
        reused = sum(1 for n in new_plan.gpus if id(n) in prev_nodes)
        self.plan = new_plan

        moved = self._count_moves(before_assignment, self._assignment())
        self._epoch += 1
        self._last_schedule_ms = now_ms
        self._last_rates = {l.session_id: l.rate_rps for l in loads}
        update = EpochUpdate(
            epoch=self._epoch,
            time_ms=now_ms,
            gpus_before=before,
            gpus_after=self.plan.num_gpus,
            sessions_moved=moved,
            triggered=True,
            nodes_reused=reused,
        )
        self.updates.append(update)
        return update

    def _incremental_plan(self, loads: list[SessionLoad]) -> SchedulePlan:
        """Keep feasible nodes; evict/repack only what must change."""
        by_id = {l.session_id: l for l in loads}
        demand = {l.session_id: l.rate_rps for l in loads}

        kept: list[GpuPlan] = []
        evicted: list[str] = []

        # Walk existing nodes from most- to least-utilized so that, when
        # demand shrinks, the least-utilized backends are the ones drained
        # (section 6.1: "the scheduler attempts to move sessions from the
        # least utilized backends to other backends").
        for node in sorted(
            self.plan.gpus, key=lambda n: (-n.occupancy, n.node_id)
        ):
            # Fast path: when every allocation on this node would take
            # exactly its current rate again, the rebuild below reproduces
            # the node verbatim (same loads, batches, duty cycle), so the
            # existing GpuPlan object can be reused without reconstructing
            # allocations or re-running the eviction loop.  This is the
            # common case between epochs: most sessions' rates are
            # unchanged and only a few nodes need repacking.
            reuse = bool(node.allocations)
            taken: dict[str, float] = {}
            for alloc in node.allocations:
                sid = alloc.session_id
                load = alloc.load
                cur = by_id.get(sid)
                remaining = taken.get(sid, demand.get(sid, 0.0))
                if cur is None or remaining <= 1e-9:
                    reuse = False
                    break
                supplied = alloc.batch / max(node.duty_cycle_ms, 1e-9) * 1000.0
                take = remaining if remaining < supplied else supplied
                # Exact float equality is deliberate: the rebuilt
                # allocation would carry precisely ``take`` as its rate,
                # so any difference -- however small -- means the node's
                # contents would change and it must be rebuilt.
                if (
                    take != load.rate_rps
                    or cur.profile is not load.profile
                    or cur.session != load.session
                ):
                    reuse = False
                    break
                taken[sid] = remaining - take
            # One validate() call guards the reuse (identical to the first
            # iteration of the slow path's eviction check, since the node
            # contents match what the rebuild would produce); the savings
            # come from skipping the allocation/GpuPlan reconstruction.
            if reuse and not node.validate(self._node_memory(node)):
                demand.update(taken)
                kept.append(node)
                continue

            new_allocs: list[Allocation] = []
            for alloc in node.allocations:
                sid = alloc.session_id
                if sid not in by_id:
                    continue  # session retired entirely
                remaining = demand.get(sid, 0.0)
                if remaining <= 1e-9:
                    continue  # demand already covered by earlier nodes
                supplied = alloc.batch / max(node.duty_cycle_ms, 1e-9) * 1000.0
                take = min(remaining, supplied)
                demand[sid] = remaining - take
                new_allocs.append(
                    Allocation(by_id[sid].with_rate(take), alloc.batch)
                )
            if not new_allocs:
                continue  # release this backend
            candidate = GpuPlan(
                new_allocs, node.duty_cycle_ms, saturated=node.saturated,
                node_id=node.node_id, slo_mode=node.slo_mode,
                capacity_mode=node.capacity_mode, device=node.device,
            )
            # Overload check: evict cheapest sessions until feasible.
            while candidate.validate(self._node_memory(node)):
                cheapest = min(
                    range(len(candidate.allocations)),
                    key=lambda i: candidate.allocations[i].exec_ms,
                )
                victim = candidate.allocations[cheapest]
                evicted.append(victim.session_id)
                demand[victim.session_id] = (
                    demand.get(victim.session_id, 0.0) + victim.load.rate_rps
                )
                rest = [
                    a for i, a in enumerate(candidate.allocations) if i != cheapest
                ]
                if not rest:
                    candidate = None  # type: ignore[assignment]
                    break
                candidate = GpuPlan(
                    rest, candidate.duty_cycle_ms,
                    saturated=candidate.saturated, node_id=candidate.node_id,
                    slo_mode=candidate.slo_mode,
                    capacity_mode=candidate.capacity_mode,
                    device=candidate.device,
                )
            if candidate is not None and candidate.allocations:
                kept.append(candidate)

        # Pack all uncovered demand (new sessions, rate growth, evictions).
        residual_loads = [
            by_id[sid].with_rate(rate)
            for sid, rate in demand.items()
            if rate > 1e-9
        ]
        extra = self._repack(residual_loads)
        return SchedulePlan(
            gpus=kept + extra.gpus, infeasible=extra.infeasible
        )

    def _node_memory(self, node: GpuPlan) -> int | None:
        """Memory bound for one node: its class's capacity under a fleet."""
        if self.fleet is not None and node.device in self.fleet.names:
            return self.fleet.memory_capacity(node.device)
        return self.memory_capacity

    def _repack(self, loads: list[SessionLoad]) -> SchedulePlan:
        """Pack uncovered demand: per class under a fleet, flat otherwise."""
        if self.fleet is not None:
            return pack_fleet(
                loads, self.fleet, slo_mode=self.slo_mode,
                capacity_mode=self.capacity_mode,
            )
        return squishy_bin_packing(
            loads, memory_capacity=self.memory_capacity,
            slo_mode=self.slo_mode, capacity_mode=self.capacity_mode,
        )

    def _capped_plan(self, loads: list[SessionLoad]) -> SchedulePlan:
        """Demand exceeds the GPU cap: shed load *proportionally*.

        Scaling every session's rate down by a common factor until the
        plan fits keeps all sessions served -- admission control absorbs
        the shed fraction uniformly (section 5: "Nexus relies on admission
        control that drops excessive requests").  Dropping whole GPU plans
        would zero out some sessions entirely, which matters most in the
        recovery case (a dead backend shrinks the cap).
        """
        assert self.max_gpus is not None

        def pack_at(scale: float) -> SchedulePlan:
            scaled = [l.with_rate(l.rate_rps * scale) for l in loads]
            return self._incremental_plan(scaled)

        lo, hi = 0.02, 1.0
        best = pack_at(lo)
        if best.num_gpus > self.max_gpus:
            # Even 2% does not fit: keep the fullest nodes and give up on
            # the rest (nothing proportional shedding can do here).
            nodes = sorted(best.gpus, key=lambda n: (-n.occupancy, n.node_id))
            return SchedulePlan(
                gpus=nodes[: self.max_gpus], infeasible=best.infeasible
            )
        for _ in range(12):
            mid = (lo + hi) / 2
            cand = pack_at(mid)
            if cand.num_gpus <= self.max_gpus:
                lo, best = mid, cand
            else:
                hi = mid
        return best

    # ------------------------------------------------------------- recovery

    def handle_failure(
        self, now_ms: float, failed_node_ids: set[int] | list[int],
        loads: list[SessionLoad],
    ) -> EpochUpdate:
        """Run a recovery epoch after backends died.

        Drops the plan nodes hosted by the dead backends (identified by
        stable ``node_id``, never by list position) and re-runs the
        incremental update: surviving nodes are kept, the dead nodes'
        demand is uncovered and re-packed onto new nodes -- which the
        deployment layer maps to surviving backends, charging each newly
        placed session its weight-reload cost.
        """
        failed = set(failed_node_ids)
        self.plan = SchedulePlan(
            gpus=[n for n in self.plan.gpus if n.node_id not in failed],
            infeasible=self.plan.infeasible,
        )
        return self.update(now_ms, loads)

    def adopt(
        self, plan: SchedulePlan, now_ms: float, loads: list[SessionLoad]
    ) -> None:
        """Take ownership of an externally computed plan.

        Used at deployment time: the initial plan comes from the full
        planner (latency splits, prefix fusion, cluster expansion); the
        epoch scheduler evolves it incrementally from there.
        """
        self.plan = plan
        self._last_schedule_ms = now_ms
        self._last_rates = {l.session_id: l.rate_rps for l in loads}

    # ------------------------------------------------------ capacity queries

    def capacity_query(
        self, load: SessionLoad, batch_cap: int | None = None,
        seed: int = 0,
    ) -> QueueEstimate:
        """What-if oracle: the latency distribution / sustainable rate one
        dedicated GPU would give this load at its current rate.

        Routes through :func:`repro.core.queueing.capacity_answer` under
        this scheduler's ``capacity_mode`` -- the analytic path answers in
        O(1) with no event loop, falling back to the seeded queue
        simulation only when the oracle's preconditions fail.  Direct
        simulator calls here are a lint error
        (``sim-in-planner-inner-loop``).
        """
        return capacity_answer(
            load.profile, load.rate_rps, batch_cap=batch_cap,
            mode=self.capacity_mode, seed=seed,
        )

    # -------------------------------------------------------------- helpers

    def _assignment(self) -> dict[str, tuple[int, ...]]:
        """session -> stable node ids hosting it (order-independent)."""
        out: dict[str, list[int]] = {}
        for node in self.plan.gpus:
            for alloc in node.allocations:
                out.setdefault(alloc.session_id, []).append(node.node_id)
        return {sid: tuple(sorted(ids)) for sid, ids in out.items()}

    @staticmethod
    def _count_moves(
        before: dict[str, tuple[int, ...]], after: dict[str, tuple[int, ...]]
    ) -> int:
        """Sessions whose node-id set changed (coarse churn measure).

        Diffing stable node ids -- not positions in ``plan.gpus``, which
        re-sort every epoch -- means a session that stays put counts as
        zero churn even when the node list reorders, and a session that
        retires (or appears) counts as one move.
        """
        moved = 0
        for sid in sorted(before.keys() | after.keys()):
            if before.get(sid, ()) != after.get(sid, ()):
                moved += 1
        return moved

    def capacity_rps(self, session_id: str) -> float:
        return self.plan.capacity_rps(session_id)

    @property
    def num_gpus(self) -> int:
        return self.plan.num_gpus
