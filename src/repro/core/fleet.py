"""Heterogeneous GPU fleets: named device classes and cost-aware placement.

Nexus evaluates on a homogeneous cluster but chooses the GPU *type* by
dollar cost per throughput (Table 1).  A :class:`Fleet` generalizes that
choice to a running cluster: a set of named GPU classes, each with a
memory capacity, an hourly price, and an optional inventory count.  The
squishy packer runs once per class (class-specific profiles, memory and
duty cycles); :func:`assign_classes` picks, per session, the class that
minimizes GPUs or dollars subject to the SLO -- the per-stage analogue of
PPipe's pool-based placement for complex queries lives in
:func:`repro.core.query.plan_query_classes`.

This module is deliberately free of device databases: a ``GpuClass`` only
carries the numbers planning needs, so :mod:`repro.models.gpus` can build
fleets from calibrated ``DeviceSpec`` entries without a core->models
import cycle.
"""

from __future__ import annotations

from dataclasses import dataclass

from .session import SessionLoad

__all__ = ["GpuClass", "Fleet", "ClassAssignment", "assign_classes"]


@dataclass(frozen=True)
class GpuClass:
    """One device class of a fleet.

    Attributes:
        name: class name (conventionally the ``DeviceSpec`` key).
        mem_capacity: per-GPU memory in bytes.
        price_per_hour: dollar cost of one GPU-hour (0 when unknown).
        count: inventory of this class, or None for unbounded.
    """

    name: str
    mem_capacity: int
    price_per_hour: float = 0.0
    count: int | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("GpuClass.name must be non-empty")
        if self.mem_capacity <= 0:
            raise ValueError(
                f"{self.name}: mem_capacity must be positive, got "
                f"{self.mem_capacity}"
            )
        if self.price_per_hour < 0:
            raise ValueError(
                f"{self.name}: price_per_hour must be >= 0, got "
                f"{self.price_per_hour}"
            )
        if self.count is not None and self.count < 1:
            raise ValueError(
                f"{self.name}: count must be >= 1 or None, got {self.count}"
            )


@dataclass(frozen=True)
class Fleet:
    """An ordered, named collection of GPU classes.

    Classes are kept sorted by name so every consumer iterates the fleet
    in the same order (the determinism contract nexuslint enforces).
    """

    classes: tuple[GpuClass, ...]

    def __post_init__(self) -> None:
        if not self.classes:
            raise ValueError("Fleet needs at least one GpuClass")
        names = [c.name for c in self.classes]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate class names in fleet: {names}")
        ordered = tuple(sorted(self.classes, key=lambda c: c.name))
        object.__setattr__(self, "classes", ordered)

    @classmethod
    def of(cls, *classes: GpuClass) -> "Fleet":
        return cls(tuple(classes))

    @classmethod
    def single(
        cls,
        name: str,
        mem_capacity: int,
        price_per_hour: float = 0.0,
        count: int | None = None,
    ) -> "Fleet":
        """A one-class fleet -- the homogeneous special case."""
        return cls((GpuClass(name, mem_capacity, price_per_hour, count),))

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.classes)

    @property
    def is_single_class(self) -> bool:
        return len(self.classes) == 1

    def get(self, name: str) -> GpuClass:
        for c in self.classes:
            if c.name == name:
                return c
        raise KeyError(f"unknown device class {name!r}; fleet has {self.names}")

    def memory_capacity(self, name: str) -> int:
        return self.get(name).mem_capacity

    def price_per_hour(self, name: str) -> float:
        return self.get(name).price_per_hour

    def count(self, name: str) -> int | None:
        return self.get(name).count

    def total_count(self) -> int | None:
        """Total GPUs in the fleet, or None if any class is unbounded."""
        total = 0
        for c in self.classes:
            if c.count is None:
                return None
            total += c.count
        return total


#: Target utilization for sessions too tight to saturate (mirrors the
#: packer's dedicated batch-1 slots; see squishy._TIGHT_SESSION_UTILIZATION).
_TIGHT_UTILIZATION = 0.55


def _class_capacity_rps(load: SessionLoad) -> float:
    """One GPU's sustainable rate for this load on its class's profile.

    Saturate-regime sessions use the peak ``B/l(B)`` throughput; sessions
    too tight to saturate (``2*l(1) > SLO >= l(1)``) fall back to the
    mostly-idle batch-1 slot capacity the residue phase grants them.
    Returns 0 when even a batch of one misses the SLO.
    """
    profile = load.profile
    if profile.latency(1) > load.slo_ms:
        return 0.0
    peak = profile.peak_throughput_under_slo(load.slo_ms)
    if peak > 0:
        return peak
    return _TIGHT_UTILIZATION / profile.latency(1) * 1000.0


@dataclass
class ClassAssignment:
    """Result of :func:`assign_classes`.

    ``loads`` carry the chosen class in ``SessionLoad.device`` (with that
    class's profile); ``infeasible`` lists sessions no class can serve.
    """

    loads: list[SessionLoad]
    infeasible: list[SessionLoad]

    def by_class(self) -> dict[str, list[SessionLoad]]:
        grouped: dict[str, list[SessionLoad]] = {}
        for load in self.loads:
            grouped.setdefault(load.device, []).append(load)
        return {name: grouped[name] for name in sorted(grouped)}


def assign_classes(
    class_loads: dict[str, list[SessionLoad]],
    fleet: Fleet,
    objective: str = "cost",
) -> ClassAssignment:
    """Pick a device class per session: Table 1 generalized to a fleet.

    Args:
        class_loads: for each class name, the sessions carrying that
            class's profile (e.g. from ``profile(model, class)``).  A
            session absent from a class's list is treated as infeasible
            on that class (how callers pin a session -- say a fused
            pseudo-model that can only be profiled on one device -- to a
            subset of the fleet).
        fleet: the available classes; ``count`` bounds are respected by a
            greedy spill to the next-cheapest feasible class.
        objective: ``"cost"`` minimizes ``price_per_hour`` per unit
            throughput (dollars per request); ``"gpus"`` minimizes GPU
            count (unit price for every class), recovering the paper's
            homogeneous objective.

    Returns a :class:`ClassAssignment` of class-tagged loads.
    """
    if objective not in ("cost", "gpus"):
        raise ValueError(f"unknown objective {objective!r}")
    for name in fleet.names:
        if name not in class_loads:
            raise ValueError(f"class_loads missing fleet class {name!r}")

    by_session: dict[str, dict[str, SessionLoad]] = {}
    for name in fleet.names:
        for load in class_loads[name]:
            by_session.setdefault(load.session_id, {})[name] = load

    # Fractional GPUs already committed per class, so inventory bounds
    # hold across sessions as the greedy pass walks them.
    committed: dict[str, float] = {name: 0.0 for name in fleet.names}
    chosen: list[SessionLoad] = []
    infeasible: list[SessionLoad] = []
    for session_id in sorted(by_session):
        variants = by_session[session_id]
        # Rank classes by unit cost; ties break on name for determinism.
        ranked: list[tuple[float, str, SessionLoad, float]] = []
        for name in fleet.names:
            if name not in variants:
                continue  # session pinned away from this class
            load = variants[name]
            capacity = _class_capacity_rps(load)
            if capacity <= 0:
                continue
            price = fleet.price_per_hour(name) if objective == "cost" else 1.0
            if price <= 0:
                price = 1.0
            ranked.append((price / capacity, name, load, capacity))
        ranked.sort(key=lambda item: (item[0], item[1]))
        if not ranked:
            any_load = variants[sorted(variants)[0]]
            infeasible.append(any_load)
            continue
        placed = False
        for _, name, load, capacity in ranked:
            need = load.rate_rps / capacity
            cap = fleet.count(name)
            if cap is not None and committed[name] + need > cap:
                continue
            committed[name] += need
            chosen.append(load.with_device(name))
            placed = True
            break
        if not placed:
            # Inventory exhausted everywhere: take the cheapest class and
            # let admission control shed the overflow.
            _, name, load, capacity = ranked[0]
            committed[name] += load.rate_rps / capacity
            chosen.append(load.with_device(name))
    return ClassAssignment(loads=chosen, infeasible=infeasible)
