"""Tolerant float comparison helpers for latency/rate arithmetic.

Scheduler math works in milliseconds and requests/second, where values
routinely come out of long chains of multiplications and binary searches.
Exact ``==``/``!=`` on such values is a determinism hazard (a few ulps of
rounding flips a branch), and hand-rolled ``x <= y + 1e-9`` thresholds
scale badly: at high rates an absolute epsilon is below one ulp and the
comparison silently degrades to exact equality.  ``nexuslint`` (rule
``float-equality``) flags the raw comparisons; these helpers are the
sanctioned replacements.

All helpers combine an absolute floor with a relative term, so they stay
meaningful for both near-zero residues and multi-thousand-ms quantities:

    tolerance = max(abs_tol, rel_tol * max(|a|, |b|))
"""

from __future__ import annotations

__all__ = [
    "ABS_TOL",
    "REL_TOL",
    "tolerance",
    "approx_eq",
    "approx_zero",
    "approx_le",
    "approx_ge",
    "definitely_lt",
    "definitely_gt",
]

#: default absolute floor: one nanosecond when values are milliseconds.
ABS_TOL: float = 1e-9
#: default relative term: a few ulps of double precision headroom.
REL_TOL: float = 1e-9


def tolerance(a: float, b: float, rel_tol: float = REL_TOL,
              abs_tol: float = ABS_TOL) -> float:
    """The comparison slack for a pair of magnitudes."""
    return max(abs_tol, rel_tol * max(abs(a), abs(b)))


def approx_eq(a: float, b: float, rel_tol: float = REL_TOL,
              abs_tol: float = ABS_TOL) -> bool:
    """``a == b`` up to the combined tolerance."""
    return abs(a - b) <= tolerance(a, b, rel_tol, abs_tol)


def approx_zero(x: float, abs_tol: float = ABS_TOL) -> bool:
    """``x == 0.0`` up to the absolute floor (no relative term)."""
    return abs(x) <= abs_tol


def approx_le(a: float, b: float, rel_tol: float = REL_TOL,
              abs_tol: float = ABS_TOL) -> bool:
    """``a <= b`` with slack: not meaningfully greater."""
    return a <= b + tolerance(a, b, rel_tol, abs_tol)


def approx_ge(a: float, b: float, rel_tol: float = REL_TOL,
              abs_tol: float = ABS_TOL) -> bool:
    """``a >= b`` with slack: not meaningfully smaller."""
    return a >= b - tolerance(a, b, rel_tol, abs_tol)


def definitely_lt(a: float, b: float, rel_tol: float = REL_TOL,
                  abs_tol: float = ABS_TOL) -> bool:
    """``a < b`` by more than the tolerance (strict beyond noise)."""
    return a < b - tolerance(a, b, rel_tol, abs_tol)


def definitely_gt(a: float, b: float, rel_tol: float = REL_TOL,
                  abs_tol: float = ABS_TOL) -> bool:
    """``a > b`` by more than the tolerance (strict beyond noise)."""
    return a > b + tolerance(a, b, rel_tol, abs_tol)
