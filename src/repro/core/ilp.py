"""Exact solver for the fixed-rate GPU scheduling problem (FGSP).

Paper section 6.1 formulates residual-load scheduling as an integer
program (decision variables g_j, s_ij, b_ij with constraints (a)-(g)) and
reports that CPLEX takes hours even at 25 sessions; Appendix A proves the
problem strongly NP-hard by reduction from 3-PARTITION.  Nexus therefore
ships the greedy Algorithm 1.

This module is the validation-side substitute for CPLEX: an exact
dynamic-programming-over-subsets solver that is tractable for small
session counts (n <= ~14) and lets the tests and the ``ilp_gap`` bench
measure the greedy algorithm's optimality gap, plus a direct encoding of
Appendix A's FGSP instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

from .session import SessionLoad
from .squishy import Allocation, GpuPlan, SchedulePlan

__all__ = ["subset_feasible", "exact_min_gpus", "fgsp_feasible_partition"]


def _duty_candidates(loads: list[SessionLoad]) -> list[float]:
    """Candidate duty cycles: every b/r_i gathering time, deduplicated.

    An optimal duty cycle can be assumed to equal some session's gathering
    time for an integer batch (shrinking d to the largest such value keeps
    all batches, so feasibility is preserved).
    """
    cands: set[float] = set()
    for load in loads:
        if load.rate_rps <= 0:
            continue
        max_b = load.profile.max_batch_residual(load.rate_rps, load.slo_ms)
        for b in range(1, max_b + 1):
            cands.add(b / load.rate_rps * 1000.0)
            # Low-rate sessions need cycles shorter than their gather time:
            # the SLO-slack duty (GPU idles between visits) is also optimal
            # for some instances.
            slack = load.slo_ms - load.profile.latency(b)
            if slack > 0:
                cands.add(slack)
    return sorted(cands)


def subset_feasible(loads: list[SessionLoad]) -> GpuPlan | None:
    """Can this set of sessions share one GPU?  Return a plan if so.

    Feasibility of a set S (constraints (e)-(g)): exists duty cycle d and
    integer batches ``b_i >= ceil(r_i * d)`` with ``sum_i l_i(b_i) <= d``
    and ``d + l_i(b_i) <= L_i`` for all i.  We scan the finite candidate
    set of duty cycles (see :func:`_duty_candidates`) and return the first
    feasible plan with the smallest duty cycle (which maximizes slack).
    """
    active = [l for l in loads if l.rate_rps > 0]
    if not active:
        return GpuPlan([], 0.0)
    best: GpuPlan | None = None
    for d in _duty_candidates(active):
        allocs: list[Allocation] = []
        busy = 0.0
        ok = True
        for load in active:
            b = math.ceil(load.rate_rps * d / 1000.0)
            if b < 1:
                b = 1
            if b > load.profile.max_batch:
                ok = False
                break
            exec_ms = load.profile.latency(b)
            if d + exec_ms > load.slo_ms + 1e-9:
                ok = False
                break
            busy += exec_ms
            allocs.append(Allocation(load, b))
        if ok and busy <= d + 1e-9:
            plan = GpuPlan(allocs, d)
            if best is None or plan.occupancy > best.occupancy:
                best = plan
            # The smallest feasible duty cycle has the best latency slack;
            # keep scanning only to prefer higher occupancy plans.
    return best


def exact_min_gpus(loads: list[SessionLoad], max_sessions: int = 14) -> SchedulePlan:
    """Minimum-GPU partition of residual loads, by DP over subsets.

    Args:
        loads: residual session loads (each needing < 1 GPU).
        max_sessions: refuse instances larger than this (exponential cost).

    Returns:
        A :class:`SchedulePlan` using the provably minimal GPU count.

    Raises:
        ValueError: if the instance is too large or some single session is
            infeasible even alone on a GPU.
    """
    active = [l for l in loads if l.rate_rps > 0]
    n = len(active)
    if n == 0:
        return SchedulePlan(gpus=[])
    if n > max_sessions:
        raise ValueError(
            f"exact solver limited to {max_sessions} sessions, got {n} "
            "(the problem is strongly NP-hard; see Appendix A)"
        )
    for load in active:
        if subset_feasible([load]) is None:
            raise ValueError(f"session {load.session_id} infeasible even alone")

    full = (1 << n) - 1
    feasible_plan: dict[int, GpuPlan | None] = {}

    def plan_for(mask: int) -> GpuPlan | None:
        if mask not in feasible_plan:
            members = [active[i] for i in range(n) if mask & (1 << i)]
            feasible_plan[mask] = subset_feasible(members)
        return feasible_plan[mask]

    INF = n + 1
    dp = [INF] * (full + 1)
    parent: list[int] = [0] * (full + 1)
    dp[0] = 0
    for mask in range(1, full + 1):
        # Enumerate submasks containing the lowest set bit (canonical
        # decomposition avoids counting the same partition twice).
        low = mask & (-mask)
        sub = mask
        while sub:
            if sub & low and plan_for(sub) is not None:
                cand = dp[mask ^ sub] + 1
                if cand < dp[mask]:
                    dp[mask] = cand
                    parent[mask] = sub
            sub = (sub - 1) & mask

    if dp[full] >= INF:
        raise ValueError("no feasible partition found")

    gpus: list[GpuPlan] = []
    mask = full
    while mask:
        sub = parent[mask]
        plan = plan_for(sub)
        assert plan is not None
        gpus.append(plan)
        mask ^= sub
    return SchedulePlan(gpus=gpus)


def fgsp_feasible_partition(
    latencies_ms: list[float], bounds_ms: list[float], gpu_count: int
) -> list[list[int]] | None:
    """Appendix A's FGSP decision problem, solved exactly.

    Given fixed per-model latencies L_i and bounds B_i, partition models
    into ``gpu_count`` sets such that in each set S,
    ``D + L_i <= B_i`` for all i in S where ``D = sum_{i in S} L_i``.

    Returns the partition as index lists, or None if infeasible.  Used by
    the tests to confirm the 3-PARTITION reduction behaves as proven.
    """
    if len(latencies_ms) != len(bounds_ms):
        raise ValueError("latencies and bounds length mismatch")
    n = len(latencies_ms)
    if n == 0:
        return [[] for _ in range(gpu_count)]
    if n > 18:
        raise ValueError("exact FGSP limited to 18 models")

    full = (1 << n) - 1
    subset_ok = [False] * (full + 1)
    subset_sum = [0.0] * (full + 1)
    for mask in range(1, full + 1):
        i = (mask & (-mask)).bit_length() - 1
        subset_sum[mask] = subset_sum[mask ^ (1 << i)] + latencies_ms[i]
    for mask in range(1, full + 1):
        d = subset_sum[mask]
        ok = True
        m = mask
        while m:
            i = (m & (-m)).bit_length() - 1
            if d + latencies_ms[i] > bounds_ms[i] + 1e-9:
                ok = False
                break
            m &= m - 1
        subset_ok[mask] = ok

    INF = n + 1
    dp = [INF] * (full + 1)
    parent = [0] * (full + 1)
    dp[0] = 0
    for mask in range(1, full + 1):
        low = mask & (-mask)
        sub = mask
        while sub:
            if sub & low and subset_ok[sub]:
                cand = dp[mask ^ sub] + 1
                if cand < dp[mask]:
                    dp[mask] = cand
                    parent[mask] = sub
            sub = (sub - 1) & mask

    if dp[full] > gpu_count:
        return None
    partition: list[list[int]] = []
    mask = full
    while mask:
        sub = parent[mask]
        partition.append([i for i in range(n) if sub & (1 << i)])
        mask ^= sub
    while len(partition) < gpu_count:
        partition.append([])
    return partition
