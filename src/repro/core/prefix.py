"""Prefix batching: batch specialized models through their shared trunk.

Paper section 6.3: transfer learning re-trains only the last layer(s) of a
model, so "several models may differ only by their output layer.  Batching
the execution of all but the output layer can yield substantial batching
gains."  Nexus hashes every sub-tree of an uploaded model's schema against
the model database; at runtime, models with known common sub-trees are
loaded partially and batched at prefix granularity, with the different
suffixes executed sequentially.

This module provides:

- :func:`find_prefix_groups` -- the ingest-time clustering of models into
  prefix-sharing families;
- :class:`PrefixGroup` / :class:`PrefixBatchedProfile` -- a family fused
  into one schedulable pseudo-model whose "batch" is the combined input
  count across all variants.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..models.graph import ModelGraph
from .profile import BatchingProfile, LinearProfile

__all__ = ["PrefixGroup", "PrefixBatchedProfile", "find_prefix_groups",
           "group_memory_bytes", "unbatched_memory_bytes"]


def find_prefix_groups(
    models: list[ModelGraph], min_shared_frac: float = 0.5
) -> list[list[int]]:
    """Cluster models into prefix-sharing families.

    Two models join the same group when their common prefix carries at
    least ``min_shared_frac`` of *both* models' FLOPs -- prefix batching a
    trivially-shared stem would not pay for the bookkeeping.

    Returns index lists into ``models``; singletons are included, so the
    result is a partition.
    """
    if not 0.0 < min_shared_frac <= 1.0:
        raise ValueError(f"min_shared_frac must be in (0, 1], got {min_shared_frac}")
    groups: list[list[int]] = []
    for i, model in enumerate(models):
        placed = False
        for group in groups:
            rep = models[group[0]]
            shared = rep.common_prefix_len(model)
            shared_flops = rep.prefix_flops(shared)
            if (
                shared_flops >= min_shared_frac * rep.total_flops()
                and shared_flops >= min_shared_frac * model.total_flops()
            ):
                group.append(i)
                placed = True
                break
        if not placed:
            groups.append([i])
    return groups


@dataclass
class PrefixGroup:
    """A family of specialized models fused for prefix-batched execution.

    Attributes:
        model_ids: names of the member models, in suffix order.
        prefix_profile: profile of the shared trunk.
        suffix_profiles: one profile per member's private suffix.
        prefix_len: number of shared leading graph nodes (for reporting).
    """

    model_ids: list[str]
    prefix_profile: BatchingProfile
    suffix_profiles: list[BatchingProfile]
    prefix_len: int = 0

    def __post_init__(self) -> None:
        if len(self.model_ids) != len(self.suffix_profiles):
            raise ValueError(
                f"{len(self.model_ids)} models but "
                f"{len(self.suffix_profiles)} suffix profiles"
            )
        if len(self.model_ids) < 2:
            raise ValueError("a prefix group needs at least two members")

    @property
    def size(self) -> int:
        return len(self.model_ids)

    def combined_profile(
        self, weights: list[float] | None = None, name: str = ""
    ) -> "PrefixBatchedProfile":
        """Fuse into a single schedulable profile.

        ``weights`` gives each member's share of the combined batch
        (normalized internally); default is an even split.
        """
        if weights is None:
            weights = [1.0] * self.size
        if len(weights) != self.size or any(w < 0 for w in weights):
            raise ValueError(f"bad weights {weights} for group of {self.size}")
        total = sum(weights)
        if total <= 0:
            raise ValueError("weights must sum to a positive value")
        return PrefixBatchedProfile(
            name=name or "+".join(self.model_ids),
            prefix=self.prefix_profile,
            suffixes=list(self.suffix_profiles),
            weights=[w / total for w in weights],
        )


@dataclass
class PrefixBatchedProfile(BatchingProfile):
    """Latency model of a prefix-batched family.

    A combined batch of ``b`` inputs runs the prefix once at batch ``b``,
    then each suffix ``i`` sequentially on its own sub-batch
    ``ceil(weights[i] * b)`` (section 6.3: "the different suffix parts are
    then executed sequentially").
    """

    name: str = "?"
    prefix: BatchingProfile = None  # type: ignore[assignment]
    suffixes: list[BatchingProfile] = field(default_factory=list)
    weights: list[float] = field(default_factory=list)

    def __post_init__(self) -> None:
        if self.prefix is None or not self.suffixes:
            raise ValueError("need a prefix profile and at least one suffix")
        if len(self.weights) != len(self.suffixes):
            raise ValueError("weights/suffixes length mismatch")
        self.max_batch = self.prefix.max_batch
        self.pre_ms = self.prefix.pre_ms
        self.post_ms = sum(
            w * s.post_ms for w, s in zip(self.weights, self.suffixes)
        )
        self.cpu_workers = self.prefix.cpu_workers
        self.memory_model_bytes = self.prefix.memory_model_bytes + sum(
            s.memory_model_bytes for s in self.suffixes
        )
        self.memory_per_input_bytes = self.prefix.memory_per_input_bytes

    def split_batch(self, batch: int) -> list[int]:
        """Partition ``batch`` inputs across the suffixes by weight.

        Largest-remainder (Hamilton) apportionment: floors first, then the
        leftover inputs go to the largest fractional remainders (ties
        broken by suffix order, so the split is deterministic).  The
        sub-batches always sum to exactly ``batch`` — a per-suffix
        ``ceil`` would over-count by up to ``len(suffixes) - 1`` inputs.
        """
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        total_w = sum(self.weights)
        if total_w <= 0:
            raise ValueError("weights must sum to a positive value")
        shares = [w * batch / total_w for w in self.weights]
        subs = [math.floor(s) for s in shares]
        leftover = batch - sum(subs)
        if leftover:
            by_remainder = sorted(
                range(len(shares)),
                key=lambda i: (subs[i] - shares[i], i),
            )
            for i in by_remainder[:leftover]:
                subs[i] += 1
        return subs

    def latency(self, batch: int) -> float:
        total = self.prefix.latency(batch)
        for sub, suffix in zip(self.split_batch(batch), self.suffixes):
            if sub >= 1:
                total += suffix.latency(min(sub, suffix.max_batch))
        return total


def group_memory_bytes(group: PrefixGroup) -> int:
    """GPU memory for the fused family: one trunk + all suffixes."""
    return group.prefix_profile.memory_model_bytes + sum(
        s.memory_model_bytes for s in group.suffix_profiles
    )


def unbatched_memory_bytes(full_profiles: list[BatchingProfile]) -> int:
    """GPU memory when each variant is loaded whole (no prefix sharing)."""
    return sum(p.memory_model_bytes for p in full_profiles)
