"""Batching profiles: the latency/throughput curves that drive scheduling.

Paper section 2.2, Equation 1: batched execution latency is well fit by
``batch_lat(b) = alpha*b + beta`` where ``beta`` is the fixed cost to
invoke a model and ``alpha`` the marginal cost per input.  Every scheduling
decision in Nexus -- squishy bin packing, query-latency splits, drop
policies -- consumes one of these profiles rather than the model itself.

Two concrete profile kinds:

- :class:`LinearProfile`: the Equation-1 analytic form (what the profiler
  emits and what the micro-benchmarks sweep);
- :class:`TabulatedProfile`: explicit (batch -> latency) tables, e.g. the
  paper's Table 2 and Figure 3 examples, linearly interpolated between
  listed batch sizes.

The algorithms only assume latency is non-decreasing in ``b`` and that
per-input latency ``l(b)/b`` is non-increasing (section 6.1: "The
algorithm only assumes that the latency per input l(b)/b is non-decreasing
with batch size b" -- the text has a typo; throughput ``b/l(b)`` is
non-decreasing).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from .profile_tables import ProfileTables

__all__ = ["BatchingProfile", "LinearProfile", "TabulatedProfile",
           "EffectiveProfile", "ProfileTables"]

#: Default ceiling on batch size: profiles refuse batches above this even
#: when memory permits (real frameworks cap batch dimensions too).
DEFAULT_MAX_BATCH = 256


class BatchingProfile:
    """Interface shared by all profile kinds.

    Times are milliseconds; batch sizes are positive integers.
    Subclasses implement :meth:`latency`; everything else derives from it.

    Attributes:
        name: identifies the (model, device) pair that was profiled.
        max_batch: largest admissible batch (memory / framework bound).
        pre_ms: RAW single-core CPU pre-processing cost per input; the
            worker pool (``cpu_workers``) divides it when pipelined.
        post_ms: RAW single-core CPU post-processing cost per input.
        cpu_workers: worker-pool size per GPU (section 6.3: 4-5 cores
            saturate one GPU).
        memory_model_bytes: resident bytes for weights.
        memory_per_input_bytes: activation bytes per input in a batch.
    """

    name: str = "?"
    max_batch: int = DEFAULT_MAX_BATCH
    #: RAW single-core CPU cost per input (ms); the worker pool divides it
    #: only when pre/post-processing runs pipelined (OL on).
    pre_ms: float = 0.0
    post_ms: float = 0.0
    #: CPU worker pool size per GPU (section 6.3: 4-5 cores saturate one).
    cpu_workers: int = 1
    memory_model_bytes: int = 0
    memory_per_input_bytes: int = 0
    #: Lazily built lookup tables (:meth:`tables`); cached per instance,
    #: deliberately *not* a dataclass field in the subclasses.
    _cached_tables: ProfileTables | None = None

    # ------------------------------------------------------------ primitives

    def latency(self, batch: int) -> float:
        """GPU execution latency (ms) of one batch of the given size."""
        raise NotImplementedError

    def _scan_latency(self, batch: int) -> float:
        """``latency()`` computed without consulting the lookup tables.

        The :class:`ProfileTables` builder calls this; subclasses whose
        ``latency`` reads the tables (:class:`EffectiveProfile`) override
        it with the raw computation so the build cannot recurse.
        """
        return self.latency(batch)

    def tables(self) -> ProfileTables:
        """Precomputed monotone lookup tables for this profile.

        Built on first use and cached on the instance; profiles are
        treated as immutable once the scheduler has consumed them.
        """
        tab = self._cached_tables
        if tab is None:
            tab = ProfileTables(self)
            self._cached_tables = tab
        return tab

    def cpu_time(self, batch: int, pooled: bool = True) -> float:
        """CPU time (ms) to pre+post-process one batch.

        ``pooled`` divides the work across the backend's worker pool; the
        serialized (-OL) path runs it on the dispatch thread instead.
        """
        total = (self.pre_ms + self.post_ms) * batch
        if pooled:
            return total / max(1, self.cpu_workers)
        return total

    def occupancy_time(self, batch: int, overlap: bool = True) -> float:
        """Time the GPU is tied up by one batch.

        With CPU/GPU overlap (OL, section 6.3) the thread pool pipelines
        pre/post-processing under the GPU work, so the slot costs
        ``max(gpu, pooled cpu)``.  Without OL the dispatch thread
        serializes raw CPU work with the GPU launch ("Serializing
        preprocessing with GPU execution ... results in roughly half the
        cycles of the GPU remaining idle").
        """
        gpu = self.latency(batch)
        if overlap:
            return max(gpu, self.cpu_time(batch, pooled=True))
        return gpu + self.cpu_time(batch, pooled=False)

    # ------------------------------------------------------------ deriveds

    def throughput(self, batch: int) -> float:
        """Requests/second sustained when executing back-to-back batches."""
        lat = self.latency(batch)
        if lat <= 0:
            raise ValueError(f"non-positive latency for batch={batch}")
        return batch / lat * 1000.0

    def max_batch_with_latency(self, budget_ms: float) -> int:
        """Largest batch whose *execution latency* fits the budget (0 if none).

        Bisects the precomputed latency table with the same probe sequence
        a direct binary search over ``latency()`` would take.
        """
        return self.tables().max_batch_with_latency(budget_ms)

    def max_batch_under_slo(self, slo_ms: float) -> int:
        """Largest batch B with ``2 * latency(B) <= slo``.

        Section 4.1: a request that just misses a batch waits for the whole
        next batch, so worst-case latency is twice the batch execution
        cost; this bounds the batch usable by a GPU saturated with one
        session.  Memoized per SLO: ``schedule_saturate`` asks the same
        question for the same session every epoch.
        """
        memo = self.tables().slo_memo
        hit = memo.get(slo_ms)
        if hit is None:
            # Route through the (possibly overridden) budget search so
            # e.g. LinearProfile's closed form keeps answering.
            hit = self.max_batch_with_latency(slo_ms / 2.0)
            memo[slo_ms] = hit
        return hit

    def peak_throughput_under_slo(self, slo_ms: float) -> float:
        """Best requests/second a dedicated GPU can serve within the SLO."""
        b = self.max_batch_under_slo(slo_ms)
        if b == 0:
            return 0.0
        return self.throughput(b)

    def max_batch_residual(self, rate_rps: float, slo_ms: float) -> int:
        """Largest batch b with ``(b-1)/rate + latency(b) <= slo``.

        Section 6.1's residual-load constraint (Equation 2) uses the full
        duty cycle ``b/rate``; we use the *gather time* ``(b-1)/rate``
        actually experienced by the first request of a batch (a batch of
        one executes on arrival and needs no gathering).  This keeps
        low-rate sessions with tight SLOs feasible, matching a runtime
        that dispatches as soon as the target batch fills.

        Gather time is strictly increasing and latency non-decreasing, so
        the feasibility predicate bisects over the precomputed curve;
        results are memoized per ``(rate, slo)`` for epoch replanning.
        """
        return self.tables().max_batch_residual(rate_rps, slo_ms)

    def memory_bytes(self, batch: int) -> int:
        """Resident GPU memory with the model loaded at this batch size."""
        return self.memory_model_bytes + batch * self.memory_per_input_bytes

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}({self.name!r}, "
            f"l(1)={self.latency(1):.2f}ms, l(32)={self.latency(min(32, self.max_batch)):.2f}ms)"
        )


@dataclass
class LinearProfile(BatchingProfile):
    """Equation-1 profile: ``latency(b) = alpha*b + beta``."""

    name: str = "?"
    alpha: float = 1.0
    beta: float = 0.0
    max_batch: int = DEFAULT_MAX_BATCH
    pre_ms: float = 0.0
    post_ms: float = 0.0
    cpu_workers: int = 1
    memory_model_bytes: int = 0
    memory_per_input_bytes: int = 0

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ValueError(f"alpha must be positive, got {self.alpha}")
        if self.beta < 0:
            raise ValueError(f"beta must be non-negative, got {self.beta}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")

    def latency(self, batch: int) -> float:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if batch > self.max_batch:
            raise ValueError(
                f"batch {batch} exceeds max_batch {self.max_batch} for {self.name}"
            )
        return self.alpha * batch + self.beta

    def max_batch_with_latency(self, budget_ms: float) -> int:
        # Closed form beats binary search for the linear case.
        if budget_ms < self.alpha + self.beta:
            return 0
        b = min(self.max_batch, int((budget_ms - self.beta) / self.alpha))
        # Guard the floating-point edge where alpha*b rounds just above
        # the budget.
        while b > 1 and self.latency(b) > budget_ms:
            b -= 1
        return b

    def optimal_throughput(self) -> float:
        """Throughput at max batch, ignoring SLO (the paper's 'optimal')."""
        return self.throughput(self.max_batch)

    def scaled(self, factor: float, name: str | None = None) -> "LinearProfile":
        """A copy with both alpha and beta scaled (device speed ratio)."""
        return LinearProfile(
            name=name or self.name,
            alpha=self.alpha * factor,
            beta=self.beta * factor,
            max_batch=self.max_batch,
            pre_ms=self.pre_ms,
            post_ms=self.post_ms,
            cpu_workers=self.cpu_workers,
            memory_model_bytes=self.memory_model_bytes,
            memory_per_input_bytes=self.memory_per_input_bytes,
        )


@dataclass
class TabulatedProfile(BatchingProfile):
    """Profile given as explicit (batch, latency_ms) points.

    Latency between listed batch sizes is linearly interpolated; beyond the
    largest point it extrapolates with the last segment's slope.  Points
    must have strictly increasing batch and non-decreasing latency.
    """

    name: str = "?"
    points: tuple[tuple[int, float], ...] = ()
    pre_ms: float = 0.0
    post_ms: float = 0.0
    cpu_workers: int = 1
    memory_model_bytes: int = 0
    memory_per_input_bytes: int = 0
    max_batch: int = field(default=0)  # 0 -> largest tabulated batch

    def __post_init__(self) -> None:
        if len(self.points) < 1:
            raise ValueError("need at least one (batch, latency) point")
        batches = [b for b, _ in self.points]
        lats = [l for _, l in self.points]
        if batches != sorted(set(batches)):
            raise ValueError(f"batch sizes must be strictly increasing: {batches}")
        if any(l2 < l1 for l1, l2 in zip(lats, lats[1:])):
            raise ValueError(f"latency must be non-decreasing: {lats}")
        if self.max_batch == 0:
            self.max_batch = batches[-1]

    def latency(self, batch: int) -> float:
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch}")
        if batch > self.max_batch:
            raise ValueError(
                f"batch {batch} exceeds max_batch {self.max_batch} for {self.name}"
            )
        pts = self.points
        if batch <= pts[0][0]:
            # Below the first point, scale latency linearly down toward a
            # zero intercept floor at half the first latency -- conservative
            # for small batches the table never measured.
            b0, l0 = pts[0]
            if batch == b0:
                return l0
            return l0 * (0.5 + 0.5 * batch / b0)
        for (b1, l1), (b2, l2) in zip(pts, pts[1:]):
            if b1 <= batch <= b2:
                frac = (batch - b1) / (b2 - b1)
                return l1 + frac * (l2 - l1)
        # Extrapolate past the last point with the final slope (or the
        # average per-input latency when only one point exists).
        if len(pts) == 1:
            b2, l2 = pts[0]
            slope = l2 / b2
        else:
            (b1, l1), (b2, l2) = pts[-2], pts[-1]
            slope = (l2 - l1) / (b2 - b1) if b2 > b1 else 0.0
        return l2 + slope * (batch - b2)


@dataclass
class EffectiveProfile(BatchingProfile):
    """A profile whose latency is the *occupancy* of the underlying model.

    The scheduler must reason about how long a batch ties up the GPU slot,
    not just its kernel time: with CPU/GPU overlap (OL, section 6.3) that
    is ``max(gpu, cpu)`` per batch; without OL the stages serialize to
    ``gpu + cpu``.  Wrapping a raw profile in this class folds the CPU
    side in, so planner and runtime agree on timing -- and disabling
    ``overlap`` automatically shrinks feasible batches and throughput,
    which is exactly the -OL ablation.
    """

    name: str = "?"
    base: BatchingProfile = None  # type: ignore[assignment]
    overlap: bool = True

    def __post_init__(self) -> None:
        if self.base is None:
            raise ValueError("need a base profile")
        if self.name == "?":
            suffix = "+ol" if self.overlap else "-ol"
            self.name = f"{self.base.name}{suffix}"
        self.max_batch = self.base.max_batch
        self.pre_ms = 0.0   # folded into latency
        self.post_ms = 0.0  # folded into latency
        self.cpu_workers = 1
        self.memory_model_bytes = self.base.memory_model_bytes
        self.memory_per_input_bytes = self.base.memory_per_input_bytes
        # Direct handle on the latency array: latency() sits on the
        # dispatch hot path and base occupancy (esp. prefix-batched
        # bases) is expensive to recompute per call.
        self._latency_table: tuple[float, ...] | None = None

    def _scan_latency(self, batch: int) -> float:
        # Raw computation for the table builder (no table reads).
        return self.base.occupancy_time(batch, overlap=self.overlap)

    def latency(self, batch: int) -> float:
        table = self._latency_table
        if table is None:
            table = self.tables().latency_ms
            self._latency_table = table
        if 1 <= batch <= len(table):
            return table[batch - 1]
        # Out-of-range batches keep the base profile's exact error.
        return self.base.occupancy_time(batch, overlap=self.overlap)

    def occupancy_time(self, batch: int, overlap: bool = True) -> float:
        # pre_ms/post_ms are folded into latency (both zero here), so the
        # slot time equals latency whichever way the flag points.
        return self.latency(batch)
