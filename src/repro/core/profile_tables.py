"""Precomputed lookup tables for batching profiles.

Every Algorithm-1 pass (``squishy_bin_packing``, ``_try_merge``) and every
hot dispatch decision asks a profile the same handful of questions --
``latency(b)``, "largest batch under this budget", "largest residual batch
at this rate/SLO" -- thousands of times per epoch.  The profile contract
(section 6.1) guarantees latency is non-decreasing in ``b`` and throughput
``b/l(b)`` non-increasing per input, so all of those questions are
prefix-property searches over a monotone curve: they bisect.

:class:`ProfileTables` materializes the per-batch latency, throughput and
memory curves once per profile (built lazily by
:meth:`~repro.core.profile.BatchingProfile.tables` and cached on the
instance), then answers:

- ``max_batch_with_latency``: binary search over the latency array, with
  the *same probe sequence* as the pre-table search directly over
  ``latency()`` -- results are bit-identical even if a profile violates
  monotonicity;
- ``max_batch_residual``: bisect over the monotone ``gather + latency``
  curve of Equation 2 (``(b-1)/rate + l(b) <= slo``), memoized per
  ``(rate, slo)`` so repeated epochs with unchanged loads hit a dict;
  profiles whose measured latency array is *not* non-decreasing fall back
  to the exact linear scan, preserving legacy results;
- a per-SLO memo used by ``max_batch_under_slo``.

Profiles are treated as immutable once the scheduler has consumed them;
mutating a profile after its tables are built leaves the tables stale.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .profile import BatchingProfile

__all__ = ["ProfileTables"]

#: Residual-memo entries kept per profile before the cache resets; long
#: dynamic runs with drifting per-epoch rates would otherwise grow the
#: dict without bound.
_RESIDUAL_MEMO_LIMIT = 4096


class ProfileTables:
    """Monotone per-batch lookup tables for one profile.

    Attributes:
        max_batch: the profile's batch ceiling; all arrays have this length.
        latency_ms: ``latency_ms[b - 1] == profile.latency(b)``.
        throughput_rps: ``b / latency(b) * 1000`` per batch (0.0 where the
            profile reports non-positive latency).
        memory_bytes: ``profile.memory_bytes(b)`` per batch.
        monotone: whether ``latency_ms`` is non-decreasing -- the profile
            contract; bisection short-cuts are only taken when it holds.
        residual_memo: ``(rate_rps, slo_ms) -> max_batch_residual`` cache.
        slo_memo: ``slo_ms -> max_batch_under_slo`` cache (filled by
            :meth:`BatchingProfile.max_batch_under_slo`, which routes
            through the subclass's ``max_batch_with_latency`` override).
        p99_memo: ``(rate_rps, slo_ms, mode, device) ->
            max_batch_under_p99`` -- the device-class component keeps one
            profile's memo from answering for another fleet class
            cache (filled by :func:`repro.core.queueing.max_batch_under_p99`,
            the queueing oracle's p99 analogue of Equation 2).
    """

    __slots__ = ("max_batch", "latency_ms", "throughput_rps", "memory_bytes",
                 "monotone", "residual_memo", "slo_memo", "p99_memo")

    def __init__(self, profile: BatchingProfile) -> None:
        max_batch = profile.max_batch
        scan = profile._scan_latency
        latency_ms = tuple(scan(b) for b in range(1, max_batch + 1))
        self.max_batch = max_batch
        self.latency_ms = latency_ms
        self.throughput_rps = tuple(
            (b / lat * 1000.0) if lat > 0 else 0.0
            for b, lat in enumerate(latency_ms, start=1)
        )
        self.memory_bytes = tuple(
            profile.memory_bytes(b) for b in range(1, max_batch + 1)
        )
        self.monotone = all(
            a <= b for a, b in zip(latency_ms, latency_ms[1:])
        )
        self.residual_memo: dict[tuple[float, float], int] = {}
        self.slo_memo: dict[float, int] = {}
        self.p99_memo: dict[tuple[float, float, str, str], int] = {}

    def max_batch_with_latency(self, budget_ms: float) -> int:
        """Largest batch whose execution latency fits the budget (0 if none).

        Identical probe decisions to a binary search over ``latency()``
        itself, just reading the precomputed array.
        """
        lat = self.latency_ms
        if lat[0] > budget_ms:
            return 0
        lo, hi = 1, self.max_batch
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if lat[mid - 1] <= budget_ms:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def max_batch_residual(self, rate_rps: float, slo_ms: float) -> int:
        """Largest batch b with ``(b - 1)/rate + latency(b) <= slo``.

        ``gather(b) = (b - 1)/rate`` is strictly increasing and latency is
        non-decreasing, so the Equation-2 feasibility predicate is a prefix
        property and bisects; the gather term keeps the exact expression of
        the legacy scan so boundary floating-point behaviour is unchanged.
        Non-monotone latency arrays (a contract violation some ad-hoc test
        profiles commit) fall back to the legacy linear scan.
        """
        if rate_rps <= 0:
            return 0
        key = (rate_rps, slo_ms)
        memo = self.residual_memo
        hit = memo.get(key)
        if hit is not None:
            return hit
        lat = self.latency_ms
        if self.monotone:
            lo, hi = 0, self.max_batch
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if (mid - 1) / rate_rps * 1000.0 + lat[mid - 1] <= slo_ms:
                    lo = mid
                else:
                    hi = mid - 1
            best = lo
        else:
            best = 0
            for b in range(1, self.max_batch + 1):
                gather_ms = (b - 1) / rate_rps * 1000.0
                if gather_ms + lat[b - 1] <= slo_ms:
                    best = b
                elif lat[b - 1] > slo_ms:
                    break
        if len(memo) >= _RESIDUAL_MEMO_LIMIT:
            memo.clear()
        memo[key] = best
        return best
