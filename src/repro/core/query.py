"""Complex query scheduling: latency-SLO splits for dataflow queries.

Paper section 4.2 and 6.2.  Applications express groups of dependent DNN
invocations as a query (e.g. traffic analysis: SSD detection feeding car
and face recognizers -- Figure 8) with a single whole-query latency SLO.
The system must split that SLO across stages; the best split depends on
per-stage batching profiles *and* the fan-out ``gamma`` (average outputs
per invocation: <1 filters, =1 maps, >1 expands).

The optimization (section 6.2):

    minimize    sum_v  R_v * l_v(b_v) / b_v         (total GPUs)
    subject to  sum_{u on any root->leaf path} l_u(b_u) <= L

solved by dynamic programming over the (tree-shaped) dataflow graph with
the time budget discretized into ``L / epsilon`` segments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterator

from .profile import BatchingProfile
from .session import Session, SessionLoad

__all__ = ["QueryStage", "Query", "LatencySplit", "MixedSplit", "plan_query",
           "plan_query_classes", "evaluate_split", "even_split",
           "average_throughput"]


@dataclass
class QueryStage:
    """One model invocation stage in a query dataflow graph.

    Attributes:
        name: stage label (e.g. ``"ssd"``, ``"face"``).
        profile: batching profile of the stage's model.
        gamma: average number of invocations of THIS stage per invocation
            of its parent (1.0 for the root).  Section 4.2's γ.
        children: downstream stages fed by this one's outputs.
        model_id: optional zoo model name, for building sessions.
    """

    name: str
    profile: BatchingProfile | None
    gamma: float = 1.0
    children: list["QueryStage"] = field(default_factory=list)
    model_id: str = ""

    def __post_init__(self) -> None:
        if self.gamma < 0:
            raise ValueError(f"gamma must be >= 0, got {self.gamma}")
        if not self.model_id:
            self.model_id = self.name

    @property
    def is_source(self) -> bool:
        """Structural (cost-free) stage: fans out children in parallel.

        A ``profile=None`` stage consumes no GPU and no latency budget; it
        exists so queries whose per-frame invocations are *parallel* (e.g.
        the game app's 6 digit recognizers + 1 icon recognizer) can hang
        them all off one root.
        """
        return self.profile is None

    def add_child(self, stage: "QueryStage") -> "QueryStage":
        self.children.append(stage)
        return stage

    def walk(self) -> Iterator[tuple["QueryStage", float]]:
        """Yield (stage, rate_multiplier) preorder; multiplier is the
        product of gammas from the root down to the stage inclusive."""
        stack = [(self, self.gamma)]
        while stack:
            stage, mult = stack.pop()
            yield stage, mult
            for child in stage.children:
                stack.append((child, mult * child.gamma))


@dataclass
class Query:
    """A named query: a root stage plus a whole-query latency SLO."""

    name: str
    root: QueryStage
    slo_ms: float

    def __post_init__(self) -> None:
        if self.slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {self.slo_ms}")

    def stages(self) -> list[tuple[QueryStage, float]]:
        """All stages with their rate multipliers, preorder."""
        return list(self.root.walk())

    def stage_names(self) -> list[str]:
        return [s.name for s, _ in self.stages()]

    def depth(self) -> int:
        """Longest root-to-leaf chain of *model* stages (sources free)."""

        def rec(s: QueryStage) -> int:
            own = 0 if s.is_source else 1
            return own + max((rec(c) for c in s.children), default=0)

        return max(1, rec(self.root))


@dataclass
class LatencySplit:
    """Result of query planning: per-stage latency budget and batch."""

    budgets_ms: dict[str, float]
    batches: dict[str, int]
    total_gpus: float
    rate_rps: float

    def sessions(self, query: Query) -> list[SessionLoad]:
        """Materialize one SessionLoad per stage for the squishy scheduler."""
        out = []
        for stage, mult in query.stages():
            if stage.is_source:
                continue
            session = Session(
                model_id=stage.model_id,
                slo_ms=self.budgets_ms[stage.name],
                session_id=f"{query.name}/{stage.name}",
            )
            out.append(SessionLoad(session, self.rate_rps * mult, stage.profile))
        return out


def _stage_cost_table(
    profile: BatchingProfile | None,
    rate_rps: float,
    budgets_ms: list[float],
    worst_case_factor: float,
) -> tuple[list[float], list[int]]:
    """For each candidate budget, the stage's GPU cost and chosen batch.

    GPU cost = rate * per-input latency = R * l(b)/b / 1000 (rates are per
    second, latencies per millisecond).  ``worst_case_factor`` scales the
    latency the budget must cover: 1.0 follows the paper's DP formulation
    (budget bounds the batch execution latency); 2.0 applies the section
    4.1 worst-case rule, for use when the split feeds the real scheduler.
    """
    if profile is None:
        # Source stage: free everywhere; zero budget suffices.
        return [0.0] * len(budgets_ms), [0] * len(budgets_ms)
    costs: list[float] = []
    batches: list[int] = []
    for budget in budgets_ms:
        b = profile.max_batch_with_latency(budget / worst_case_factor)
        if b == 0:
            costs.append(math.inf)
            batches.append(0)
        else:
            costs.append(rate_rps * profile.latency(b) / b / 1000.0)
            batches.append(b)
    return costs, batches


def plan_query(
    query: Query,
    rate_rps: float,
    epsilon_ms: float = 5.0,
    worst_case_factor: float = 1.0,
    min_stage_frac: float = 0.2,
    slack_tolerance: float = 0.05,
) -> LatencySplit:
    """Find the latency split minimizing total GPUs (section 6.2 DP).

    Args:
        query: the dataflow query with profiles and gammas attached.
        rate_rps: offered rate at the query root.
        epsilon_ms: budget discretization; the DP is quadratic in
            ``slo / epsilon``.
        worst_case_factor: see :func:`_stage_cost_table`.
        min_stage_frac: floor on each model stage's budget, as a fraction
            of the whole-query SLO.  The pure DP objective happily starves
            cheap stages down to near-zero budgets (their GPU cost barely
            changes) -- but a near-zero latency budget is unservable at
            runtime, where queueing jitter is not free.  Clamped so deep
            chains stay feasible.
        slack_tolerance: bounded regret for the per-stage budget choice:
            each stage takes the smallest budget within this fraction of
            the optimal subtree cost, leaving slack to its descendants
            (worst case the plan costs ``(1+tol)^depth`` of optimal).

    Returns:
        The optimal :class:`LatencySplit`.

    Raises:
        ValueError: if no split can satisfy the SLO at all.
    """
    if rate_rps < 0:
        raise ValueError(f"rate_rps must be >= 0, got {rate_rps}")
    steps = max(1, int(round(query.slo_ms / epsilon_ms)))
    budgets = [i * query.slo_ms / steps for i in range(steps + 1)]
    floor_frac = min(min_stage_frac, 0.8 / max(1, query.depth()))
    floor_idx = int(floor_frac * steps)

    # Bottom-up DP: for each stage, f[t] = min GPUs to run the stage and
    # its whole subtree within budget index t.  ``tables`` captures each
    # stage's (chosen-k, batch) tables for top-down reconstruction.
    tables: dict[int, tuple[list[int], list[int]]] = {}

    def solve(stage: QueryStage, mult: float) -> list[float]:
        stage_rate = rate_rps * mult
        costs, batch_tab = _stage_cost_table(
            stage.profile, stage_rate, budgets, worst_case_factor
        )
        child_fs = [solve(child, mult * child.gamma) for child in stage.children]
        k_min = 0 if stage.is_source else floor_idx
        f = [math.inf] * (steps + 1)
        choice = [0] * (steps + 1)
        for t in range(steps + 1):
            # Below the floor the stage is unservable: f[t] stays infinite
            # and the parent must leave more budget.
            totals = [math.inf] * (t + 1)
            for k in range(k_min, t + 1):
                c = costs[k]
                if math.isinf(c):
                    continue
                rest = t - k
                bad = False
                for child_f in child_fs:
                    if math.isinf(child_f[rest]):
                        bad = True
                        break
                    c += child_f[rest]
                if bad:
                    continue
                totals[k] = c
                if c < f[t]:
                    f[t] = c
            if math.isinf(f[t]):
                continue
            # Bounded-regret tie-break: take the SMALLEST own budget whose
            # total cost is within `slack_tolerance` of optimal, leaving
            # the slack downstream -- the runtime converts child budget
            # into burst absorption, which the cost model cannot see.
            limit = f[t] * (1.0 + slack_tolerance)
            for k in range(k_min, t + 1):
                if totals[k] <= limit:
                    choice[t] = k
                    break
        tables[id(stage)] = (choice, batch_tab)
        return f

    root_f = solve(query.root, query.root.gamma)
    if math.isinf(root_f[steps]):
        raise ValueError(
            f"query {query.name!r}: no feasible latency split within "
            f"{query.slo_ms}ms SLO"
        )

    budgets_out: dict[str, float] = {}
    batches_out: dict[str, int] = {}

    def reconstruct(stage: QueryStage, t: int) -> None:
        choice, batch_tab = tables[id(stage)]
        k = choice[t]
        if not stage.children and not stage.is_source:
            # Leaf stages absorb all remaining path slack: ties in the DP
            # cost table otherwise pin them at the smallest tied budget,
            # which starves the runtime of latency room for free.
            k = t
        budgets_out[stage.name] = budgets[k]
        batches_out[stage.name] = batch_tab[k]
        for child in stage.children:
            reconstruct(child, t - k)

    reconstruct(query.root, steps)
    return LatencySplit(
        budgets_ms=budgets_out,
        batches=batches_out,
        total_gpus=root_f[steps],
        rate_rps=rate_rps,
    )


@dataclass
class MixedSplit:
    """A latency split whose stages may land on different device classes.

    The heterogeneous analogue of :class:`LatencySplit` (PPipe-style
    pool-based pipelining): each stage carries the class it was placed on
    and that class's profile, so :meth:`sessions` materializes loads the
    per-class packer can deploy directly.
    """

    budgets_ms: dict[str, float]
    batches: dict[str, int]
    devices: dict[str, str]
    stage_profiles: dict[str, BatchingProfile]
    total_gpus: float
    price_per_hour: float
    rate_rps: float

    def sessions(self, query: Query) -> list[SessionLoad]:
        """One class-tagged SessionLoad per stage for the fleet packer."""
        out = []
        for stage, mult in query.stages():
            if stage.is_source:
                continue
            session = Session(
                model_id=stage.model_id,
                slo_ms=self.budgets_ms[stage.name],
                session_id=f"{query.name}/{stage.name}",
            )
            out.append(SessionLoad(
                session, self.rate_rps * mult,
                self.stage_profiles[stage.name],
                device=self.devices[stage.name],
            ))
        return out


def plan_query_classes(
    query: Query,
    rate_rps: float,
    class_profiles: dict[str, dict[str, BatchingProfile]],
    prices: dict[str, float] | None = None,
    objective: str = "cost",
    epsilon_ms: float = 5.0,
    worst_case_factor: float = 1.0,
    min_stage_frac: float = 0.2,
    slack_tolerance: float = 0.05,
) -> MixedSplit:
    """Latency split *and* per-stage device class, jointly (PPipe-style).

    Extends the section 6.2 DP: at every candidate budget each stage also
    chooses the device class minimizing its weighted GPU cost, so one
    dataflow query can pipeline across classes (e.g. a bandwidth-bound
    detector on 1080Ti feeding recognizers on cheap T4s).

    Args:
        query: the dataflow query (its stages' own profiles are ignored;
            ``class_profiles`` supplies the per-class ones).
        rate_rps: offered rate at the query root.
        class_profiles: ``class name -> stage name -> profile``.  Every
            class must profile every model stage of the query.
        prices: ``class name -> price_per_hour`` for the cost objective;
            missing or non-positive prices count as 1.0.
        objective: ``"cost"`` minimizes dollars per hour, ``"gpus"``
            minimizes GPU count (all classes weighted equally).
        epsilon_ms / worst_case_factor / min_stage_frac / slack_tolerance:
            as in :func:`plan_query`.

    Returns the optimal :class:`MixedSplit`.

    Raises:
        ValueError: if no (split, placement) satisfies the SLO.
    """
    if rate_rps < 0:
        raise ValueError(f"rate_rps must be >= 0, got {rate_rps}")
    if objective not in ("cost", "gpus"):
        raise ValueError(f"unknown objective {objective!r}")
    class_names = sorted(class_profiles)
    if not class_names:
        raise ValueError("class_profiles must name at least one class")
    weights: dict[str, float] = {}
    for name in class_names:
        weight = 1.0
        if objective == "cost" and prices is not None:
            weight = prices.get(name, 0.0)
            if weight <= 0.0:
                weight = 1.0
        weights[name] = weight

    steps = max(1, int(round(query.slo_ms / epsilon_ms)))
    budgets = [i * query.slo_ms / steps for i in range(steps + 1)]
    floor_frac = min(min_stage_frac, 0.8 / max(1, query.depth()))
    floor_idx = int(floor_frac * steps)

    # Per stage: chosen budget index plus, per budget, the winning class
    # and its batch -- the DP below is plan_query's with the stage cost
    # replaced by the min over classes.
    tables: dict[int, tuple[list[int], list[int], list[str]]] = {}

    def stage_tables(
        stage: QueryStage, stage_rate: float
    ) -> tuple[list[float], list[int], list[str]]:
        if stage.is_source:
            n = len(budgets)
            return [0.0] * n, [0] * n, [""] * n
        costs: list[float] = []
        batches: list[int] = []
        chosen: list[str] = []
        for budget in budgets:
            best_cost, best_batch, best_class = math.inf, 0, ""
            for name in class_names:
                profile = class_profiles[name].get(stage.name)
                if profile is None:
                    raise ValueError(
                        f"class {name!r} has no profile for stage "
                        f"{stage.name!r}"
                    )
                b = profile.max_batch_with_latency(budget / worst_case_factor)
                if b == 0:
                    continue
                cost = (
                    weights[name] * stage_rate * profile.latency(b) / b / 1000.0
                )
                if cost < best_cost:
                    best_cost, best_batch, best_class = cost, b, name
            costs.append(best_cost)
            batches.append(best_batch)
            chosen.append(best_class)
        return costs, batches, chosen

    def solve(stage: QueryStage, mult: float) -> list[float]:
        costs, batch_tab, class_tab = stage_tables(stage, rate_rps * mult)
        child_fs = [solve(child, mult * child.gamma) for child in stage.children]
        k_min = 0 if stage.is_source else floor_idx
        f = [math.inf] * (steps + 1)
        choice = [0] * (steps + 1)
        for t in range(steps + 1):
            totals = [math.inf] * (t + 1)
            for k in range(k_min, t + 1):
                c = costs[k]
                if math.isinf(c):
                    continue
                rest = t - k
                bad = False
                for child_f in child_fs:
                    if math.isinf(child_f[rest]):
                        bad = True
                        break
                    c += child_f[rest]
                if bad:
                    continue
                totals[k] = c
                if c < f[t]:
                    f[t] = c
            if math.isinf(f[t]):
                continue
            limit = f[t] * (1.0 + slack_tolerance)
            for k in range(k_min, t + 1):
                if totals[k] <= limit:
                    choice[t] = k
                    break
        tables[id(stage)] = (choice, batch_tab, class_tab)
        return f

    root_f = solve(query.root, query.root.gamma)
    if math.isinf(root_f[steps]):
        raise ValueError(
            f"query {query.name!r}: no feasible latency split within "
            f"{query.slo_ms}ms SLO on any class of {class_names}"
        )

    budgets_out: dict[str, float] = {}
    batches_out: dict[str, int] = {}
    devices_out: dict[str, str] = {}
    profiles_out: dict[str, BatchingProfile] = {}
    totals = {"gpus": 0.0, "dollars": 0.0}

    def reconstruct(stage: QueryStage, t: int, mult: float) -> None:
        choice, batch_tab, class_tab = tables[id(stage)]
        k = choice[t]
        if not stage.children and not stage.is_source:
            k = t  # leaf absorbs remaining path slack (see plan_query)
        budgets_out[stage.name] = budgets[k]
        if not stage.is_source:
            name = class_tab[k]
            profile = class_profiles[name][stage.name]
            # The chosen budget may exceed what the winning batch needs;
            # re-derive the batch at the final budget (leaf slack can
            # enlarge it, which only helps throughput).
            b = profile.max_batch_with_latency(budgets[k] / worst_case_factor)
            if b < 1:
                b = max(1, batch_tab[k])
            batches_out[stage.name] = b
            devices_out[stage.name] = name
            profiles_out[stage.name] = profile
            gpus = rate_rps * mult * profile.latency(b) / b / 1000.0
            totals["gpus"] += gpus
            price = (prices or {}).get(name, 0.0)
            totals["dollars"] += price * gpus
        else:
            batches_out[stage.name] = 0
            devices_out[stage.name] = ""
        for child in stage.children:
            reconstruct(child, t - k, mult * child.gamma)

    reconstruct(query.root, steps, query.root.gamma)
    return MixedSplit(
        budgets_ms=budgets_out,
        batches=batches_out,
        devices=devices_out,
        stage_profiles=profiles_out,
        total_gpus=totals["gpus"],
        price_per_hour=totals["dollars"],
        rate_rps=rate_rps,
    )


def even_split(query: Query, rate_rps: float,
               worst_case_factor: float = 1.0) -> LatencySplit:
    """The baseline of sections 7.2/7.5: split the SLO evenly across the
    depth of the query, ignoring profiles and gammas."""
    per_stage = query.slo_ms / query.depth()
    budgets_out: dict[str, float] = {}
    batches_out: dict[str, int] = {}
    total = 0.0
    for stage, mult in query.stages():
        if stage.is_source:
            budgets_out[stage.name] = 0.0
            batches_out[stage.name] = 0
            continue
        budgets_out[stage.name] = per_stage
        b = stage.profile.max_batch_with_latency(per_stage / worst_case_factor)
        batches_out[stage.name] = b
        if b == 0:
            total = math.inf
        else:
            total += rate_rps * mult * stage.profile.latency(b) / b / 1000.0
    return LatencySplit(budgets_out, batches_out, total, rate_rps)


def evaluate_split(
    profiles: dict[str, BatchingProfile],
    budgets_ms: dict[str, float],
    gammas: dict[str, float],
) -> float:
    """Section 4.2's *average throughput* for a linear pipeline.

    For a two-stage pipeline X -> Y with per-GPU throughputs T_X, T_Y
    (each at its own latency budget) and fan-out gamma, balancing GPUs so
    neither stage bottlenecks (gamma * p * T_X = q * T_Y) gives average
    throughput ``p * T_X / (p + q) = T_X * T_Y / (T_Y + gamma * T_X)``.
    Generalized here to a chain by accumulating GPU-cost per unit of root
    throughput.

    Args:
        profiles: per-stage profiles keyed by stage name.
        budgets_ms: per-stage latency budgets (execution-latency bound).
        gammas: per-stage rate multiplier *relative to the root* (the
            root's entry is 1.0).
    """
    gpu_cost_per_root_rps = 0.0
    for name, prof in profiles.items():
        budget = budgets_ms[name]
        b = prof.max_batch_with_latency(budget)
        if b == 0:
            return 0.0
        per_gpu_tput = prof.throughput(b)
        gpu_cost_per_root_rps += gammas[name] / per_gpu_tput
    return 1.0 / gpu_cost_per_root_rps


def average_throughput(split: LatencySplit) -> float:
    """Pipeline throughput per GPU implied by a planned split."""
    if split.total_gpus <= 0:
        return 0.0
    return split.rate_rps / split.total_gpus
