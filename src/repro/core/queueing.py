"""Closed-form queueing oracle: the planner's O(1) capacity answers.

Every capacity/what-if question the planner asks -- "what latency tail
does this session see at this rate?", "what rate can one GPU sustain?",
"what batch cap keeps p99 under the SLO?" -- was previously answerable
only by running a discrete-event simulation.  This module answers them
analytically from the memoized :class:`~repro.core.profile_tables.ProfileTables`,
in microseconds instead of milliseconds, following the spirit of Inoue's
closed-form analysis of dynamic-batching GPU queues (PAPERS.md:
"Queueing Analysis of GPU-Based Inference Servers with Dynamic
Batching").

**The model** (derivation and validation: docs/queueing.md).  One GPU
serves one session with *dynamic batching*: whenever the GPU frees up it
takes ``min(batch_cap, queued)`` requests as the next batch; an arrival
to an idle GPU starts a batch immediately.  Arrivals are Poisson at rate
``lambda`` (req/ms); a batch of ``b`` takes ``l(b)`` ms from the profile
tables.  The oracle characterizes the steady state by a *batch fixed
point* ``n*`` solving ``n = lambda * l(n)`` (the batch size that
reproduces itself: the requests that queue during one service ride the
next batch), clamped to ``[1, batch_cap]``:

- busy fraction ``u = min(1, lambda * l(1))``: when even batch-1 service
  outpaces arrivals the server idles between batches, otherwise dynamic
  batching keeps it continuously busy at batch ``n*`` (self-regulating:
  bigger batches absorb higher rates at bounded latency);
- a request arriving to an *idle* server (prob. ``1 - u``) departs after
  ``l(1)``;
- a request arriving to a *busy* server (prob. ``u``) waits the residual
  of the in-flight batch -- Uniform(0, ``l(n*)``) -- then rides a batch
  of ``min(batch_cap, 1 + M)`` where ``M ~ Poisson(lambda * l(n*))`` is
  the other arrivals sharing its wait.

The sojourn CDF of that mixture is piecewise linear and inverts by
bisection, giving p50/p90/p99 without any event loop.

**Applicability preconditions** -- when any fails, the oracle raises
:class:`OracleInapplicable` and :func:`capacity_answer` falls back to
the seeded queue simulation in this module:

- the profile's latency table is monotone (the profile contract);
- ``l(1) > 0`` (degenerate zero-latency profiles break the mixture);
- the arrival rate is positive;
- the batch-cap spillover mass ``P(1 + M > batch_cap)`` is below
  :data:`SPILLOVER_CEILING` -- near saturation, arrivals overflow the
  next batch and queue across *several* batches, which the one-batch
  model ignores; the simulation is the honest answer there.

An *unstable* rate (above the cap's sustainable throughput) is not a
precondition failure: the tables answer it exactly (``stable=False``,
infinite quantiles), no fallback needed.

The simulation fallback draws its own Poisson arrivals from a seeded
``random.Random`` -- core code must not depend on the numpy-based
workload generators -- and :func:`queue_latencies` accepts any explicit
arrival stream so the validation experiment can replay bursty (MMPP)
and deterministic processes through the same queue.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_right
from dataclasses import dataclass
from typing import TYPE_CHECKING

from .floatcmp import approx_le

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    from .profile import BatchingProfile
    from .profile_tables import ProfileTables

__all__ = [
    "QueueEstimate",
    "OracleInapplicable",
    "analytic_estimate",
    "queue_latencies",
    "empirical_estimate",
    "simulate_estimate",
    "capacity_answer",
    "max_batch_under_p99",
    "SPILLOVER_CEILING",
    "DEFAULT_SIM_ARRIVALS",
]

#: Max tolerated probability that a busy arrival's cohort overflows the
#: batch cap (``P(1 + M > cap)``).  Above it, requests queue across
#: several batches -- a regime the one-batch model ignores -- so
#: :func:`capacity_answer` falls back to simulation.
SPILLOVER_CEILING = 0.10

#: Arrivals per simulation fallback run: sized so the p99 estimate rests
#: on ~200 tail samples.
DEFAULT_SIM_ARRIVALS = 20_000

#: Bisection steps for the fixed point and the quantile inversions; 60
#: halvings resolve any ms-scale interval far below float noise.
_BISECT_STEPS = 60

#: Fraction of a fallback simulation discarded as warmup.
_SIM_WARMUP_FRACTION = 0.05


@dataclass(frozen=True)
class QueueEstimate:
    """One capacity answer: the latency distribution of a dedicated,
    dynamically-batched GPU queue at a given arrival rate.

    ``source`` records which engine produced it (``"analytic"`` or
    ``"simulator"``); when the oracle declined, ``reason`` carries the
    failed precondition (e.g. ``"batch-cap-spillover"``).  An unstable
    queue reports ``stable=False`` with infinite quantiles.
    """

    source: str
    stable: bool
    utilization: float
    mean_batch: float
    mean_latency_ms: float
    p50_ms: float
    p90_ms: float
    p99_ms: float
    sustainable_rps: float
    batch_cap: int
    reason: str | None = None


class OracleInapplicable(Exception):
    """The analytic model's preconditions do not hold for this query."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# ----------------------------------------------------------- analytic model


def _resolve_cap(tables: ProfileTables, batch_cap: int | None) -> int:
    if batch_cap is None:
        return tables.max_batch
    return max(1, min(batch_cap, tables.max_batch))


def _sustainable_rps(tables: ProfileTables, cap: int) -> float:
    return max(tables.throughput_rps[:cap])


def _interp_latency(lat: tuple[float, ...], x: float) -> float:
    """Latency at a *continuous* batch size, linear between table points."""
    if x <= 1.0:
        return lat[0]
    if x >= len(lat):
        return lat[-1]
    lo = int(x)
    frac = x - lo
    if frac <= 0.0:
        return lat[lo - 1]
    return lat[lo - 1] + (lat[lo] - lat[lo - 1]) * frac


def _batch_fixed_point(lat: tuple[float, ...], cap: int, lam: float) -> float:
    """Solve ``n = lam * l(n)`` over ``[1, cap]`` (monotone bisection)."""
    if lam * _interp_latency(lat, 1.0) <= 1.0:
        return 1.0
    if lam * _interp_latency(lat, float(cap)) >= float(cap):
        return float(cap)
    lo, hi = 1.0, float(cap)
    for _ in range(_BISECT_STEPS):
        mid = (lo + hi) / 2.0
        if lam * _interp_latency(lat, mid) >= mid:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0


def _poisson_pmf_with_tail(mu: float, size: int) -> tuple[list[float], float]:
    """``P(M = m)`` for ``m < size - 1`` with ``P(M >= size - 1)`` folded
    into the last slot, plus the overflow mass ``P(M >= size)``."""
    out = [0.0] * size
    p = math.exp(-mu)
    cum = 0.0
    for m in range(size - 1):
        out[m] = p
        cum += p
        p = p * mu / (m + 1)
    tail = max(0.0, 1.0 - cum)  # P(M >= size - 1)
    out[size - 1] = tail
    spill = max(0.0, tail - p)  # p == P(M = size - 1) exactly
    return out, spill


def analytic_estimate(
    profile: BatchingProfile,
    rate_rps: float,
    batch_cap: int | None = None,
) -> QueueEstimate:
    """The closed-form oracle: no event loop, O(batch_cap) arithmetic.

    Raises :class:`OracleInapplicable` when a model precondition fails;
    use :func:`capacity_answer` for the oracle-or-fallback policy.
    """
    tables = profile.tables()
    cap = _resolve_cap(tables, batch_cap)
    if not tables.monotone:
        raise OracleInapplicable("non-monotone-profile")
    lat = tables.latency_ms
    if lat[0] <= 0.0:
        raise OracleInapplicable("degenerate-latency")
    if rate_rps <= 0.0:
        raise OracleInapplicable("nonpositive-rate")

    sustainable = _sustainable_rps(tables, cap)
    if not approx_le(rate_rps, sustainable):
        inf = math.inf
        return QueueEstimate(
            source="analytic", stable=False, utilization=1.0,
            mean_batch=float(cap), mean_latency_ms=inf,
            p50_ms=inf, p90_ms=inf, p99_ms=inf,
            sustainable_rps=sustainable, batch_cap=cap,
        )

    lam = rate_rps / 1000.0  # arrivals per millisecond
    n_star = _batch_fixed_point(lat, cap, lam)
    service_ms = _interp_latency(lat, n_star)
    # Busy fraction from the drift boundary: below ``lam * l(1) = 1`` the
    # batch chain drifts to empty and the server idles between batches;
    # above it, dynamic batching keeps the server continuously busy at
    # the self-reproducing batch n* (where lam * l(n*) / n* == 1 by
    # construction -- n* itself carries no idle-time information).
    util = min(1.0, lam * lat[0])

    # Busy-arrival mixture: residual wait Uniform(0, service) plus the
    # batch it rides, min(cap, 1 + M) with M ~ Poisson(lam * service).
    pmf, spill = _poisson_pmf_with_tail(lam * service_ms, cap)
    if spill > SPILLOVER_CEILING:
        raise OracleInapplicable("batch-cap-spillover")
    starts = [lat[min(cap, m + 1) - 1] for m in range(cap)]
    weights = [util * p for p in pmf]
    # Prefix sums of the uniform components (all share width = service):
    # the CDF evaluates with two binary searches instead of an O(cap) sum.
    cum_w = [0.0] * (cap + 1)
    cum_ws = [0.0] * (cap + 1)
    for i in range(cap):
        cum_w[i + 1] = cum_w[i] + weights[i]
        cum_ws[i + 1] = cum_ws[i] + weights[i] * starts[i]
    idle_w = 1.0 - util
    first = lat[0]
    width = service_ms

    def cdf(t: float) -> float:
        total = idle_w if t >= first else 0.0
        i_full = bisect_right(starts, t - width)
        i_part = bisect_right(starts, t)
        total += cum_w[i_full]
        total += (
            (cum_w[i_part] - cum_w[i_full]) * t
            - (cum_ws[i_part] - cum_ws[i_full])
        ) / width
        return total

    def quantile(q: float) -> float:
        lo, hi = 0.0, lat[cap - 1] + width
        for _ in range(_BISECT_STEPS):
            mid = (lo + hi) / 2.0
            if cdf(mid) >= q:
                hi = mid
            else:
                lo = mid
        return hi

    mean = idle_w * first + sum(
        w * (s + width / 2.0) for w, s in zip(weights, starts)
    )
    return QueueEstimate(
        source="analytic", stable=True, utilization=util,
        mean_batch=n_star, mean_latency_ms=mean,
        p50_ms=quantile(0.50), p90_ms=quantile(0.90), p99_ms=quantile(0.99),
        sustainable_rps=sustainable, batch_cap=cap,
    )


# ------------------------------------------------------ simulation fallback


def _poisson_arrivals(
    rate_rps: float, duration_ms: float, seed: int
) -> list[float]:
    """Seeded stdlib Poisson stream (core must not import the numpy-based
    workload generators)."""
    if rate_rps <= 0.0 or duration_ms <= 0.0:
        return []
    rng = random.Random(seed)
    out: list[float] = []
    t = 0.0
    rate_per_ms = rate_rps / 1000.0
    while True:
        t += rng.expovariate(rate_per_ms)
        if t >= duration_ms:
            return out
        out.append(t)


def _run_queue(
    arrivals_ms: list[float], lat: tuple[float, ...], cap: int
) -> tuple[list[float], float, int]:
    """Replay a dynamic-batching queue over an explicit arrival stream.

    Returns ``(per-arrival sojourn latencies, total busy ms, batches)``.
    When the server frees up it takes the ``min(cap, queued)`` oldest
    requests as one batch; an arrival to an idle server starts a batch
    immediately.  Every request is served (admission drops are the
    runtime's job, not the capacity model's).
    """
    out: list[float] = []
    busy_ms = 0.0
    batches = 0
    free = 0.0
    i = 0
    n = len(arrivals_ms)
    while i < n:
        start = arrivals_ms[i] if arrivals_ms[i] > free else free
        limit = i + cap if i + cap < n else n
        j = i + 1
        while j < limit and arrivals_ms[j] <= start:
            j += 1
        exec_ms = lat[j - i - 1]
        done = start + exec_ms
        for k in range(i, j):
            out.append(done - arrivals_ms[k])
        busy_ms += exec_ms
        batches += 1
        free = done
        i = j
    return out, busy_ms, batches


def queue_latencies(
    arrivals_ms: list[float],
    profile: BatchingProfile,
    batch_cap: int | None = None,
) -> list[float]:
    """Per-request sojourn times of the dynamic-batching queue over any
    arrival stream (in arrival order)."""
    tables = profile.tables()
    cap = _resolve_cap(tables, batch_cap)
    latencies, _, _ = _run_queue(arrivals_ms, tables.latency_ms, cap)
    return latencies


def _quantile(sorted_vals: list[float], q: float) -> float:
    """Nearest-rank quantile of an ascending-sorted sample."""
    if not sorted_vals:
        return math.nan
    idx = math.ceil(q * len(sorted_vals)) - 1
    return sorted_vals[max(0, min(idx, len(sorted_vals) - 1))]


def empirical_estimate(
    arrivals_ms: list[float],
    profile: BatchingProfile,
    batch_cap: int | None = None,
    warmup_ms: float = 0.0,
    reason: str | None = None,
) -> QueueEstimate:
    """Measure a :class:`QueueEstimate` by replaying an arrival stream."""
    tables = profile.tables()
    cap = _resolve_cap(tables, batch_cap)
    sustainable = _sustainable_rps(tables, cap)
    latencies, busy_ms, batches = _run_queue(
        arrivals_ms, tables.latency_ms, cap
    )
    kept = sorted(
        latency for latency, arrival in zip(latencies, arrivals_ms)
        if arrival >= warmup_ms
    )
    if not kept:
        # No (post-warmup) arrivals: an always-idle server answers a lone
        # probe request in l(1).
        solo = tables.latency_ms[0]
        return QueueEstimate(
            source="simulator", stable=True, utilization=0.0,
            mean_batch=1.0, mean_latency_ms=solo,
            p50_ms=solo, p90_ms=solo, p99_ms=solo,
            sustainable_rps=sustainable, batch_cap=cap, reason=reason,
        )
    span_ms = arrivals_ms[-1] + latencies[-1] if arrivals_ms else 0.0
    # Offered load is measured over the arrival window alone -- including
    # the drain tail would deflate an overloaded stream's rate to exactly
    # the service capacity and mask the instability.
    arrival_span_ms = arrivals_ms[-1] - arrivals_ms[0] if arrivals_ms else 0.0
    offered_rps = (
        len(arrivals_ms) / arrival_span_ms * 1000.0
        if arrival_span_ms > 0 else 0.0
    )
    return QueueEstimate(
        source="simulator",
        stable=approx_le(offered_rps, sustainable),
        utilization=min(1.0, busy_ms / span_ms) if span_ms > 0 else 0.0,
        mean_batch=len(arrivals_ms) / batches if batches else 1.0,
        mean_latency_ms=sum(kept) / len(kept),
        p50_ms=_quantile(kept, 0.50),
        p90_ms=_quantile(kept, 0.90),
        p99_ms=_quantile(kept, 0.99),
        sustainable_rps=sustainable, batch_cap=cap, reason=reason,
    )


def simulate_estimate(
    profile: BatchingProfile,
    rate_rps: float,
    batch_cap: int | None = None,
    seed: int = 0,
    num_arrivals: int = DEFAULT_SIM_ARRIVALS,
    reason: str | None = None,
) -> QueueEstimate:
    """The fallback engine: a seeded Poisson replay of the same queue."""
    tables = profile.tables()
    cap = _resolve_cap(tables, batch_cap)
    if rate_rps <= 0.0:
        return empirical_estimate([], profile, cap, reason=reason)
    duration_ms = num_arrivals / rate_rps * 1000.0
    arrivals = _poisson_arrivals(rate_rps, duration_ms, seed)
    return empirical_estimate(
        arrivals, profile, cap,
        warmup_ms=duration_ms * _SIM_WARMUP_FRACTION, reason=reason,
    )


# ------------------------------------------------------- oracle-or-fallback


def capacity_answer(
    profile: BatchingProfile,
    rate_rps: float,
    batch_cap: int | None = None,
    mode: str = "analytic",
    seed: int = 0,
    num_arrivals: int = DEFAULT_SIM_ARRIVALS,
) -> QueueEstimate:
    """The planner's capacity-query entry point.

    ``mode="analytic"`` consults the closed-form oracle and falls back to
    the seeded simulation when a precondition fails (the returned
    estimate's ``source``/``reason`` record the decision);
    ``mode="simulate"`` always simulates.  Planning code -- the epoch
    scheduler in particular -- must route every capacity question through
    here rather than invoking a simulator directly (nexuslint rule
    ``sim-in-planner-inner-loop``).
    """
    if mode == "analytic":
        try:
            return analytic_estimate(profile, rate_rps, batch_cap)
        except OracleInapplicable as exc:
            return simulate_estimate(
                profile, rate_rps, batch_cap, seed=seed,
                num_arrivals=num_arrivals, reason=exc.reason,
            )
    if mode == "simulate":
        return simulate_estimate(
            profile, rate_rps, batch_cap, seed=seed, num_arrivals=num_arrivals
        )
    raise ValueError(f"unknown capacity mode {mode!r}")


def max_batch_under_p99(
    profile: BatchingProfile,
    rate_rps: float,
    slo_ms: float,
    mode: str = "analytic",
    seed: int = 0,
    num_arrivals: int = DEFAULT_SIM_ARRIVALS,
    device: str = "",
) -> int:
    """Largest batch cap whose p99 sojourn meets the SLO at this rate
    (0 if none): the p99 analogue of Equation 2's worst-case batch.

    Scans caps downward from the profile maximum -- p99 is not monotone
    in the cap, so bisection is unsound -- and stops early once the rate
    is unstable (smaller caps only have less capacity).  Memoized per
    ``(rate, slo, mode, device)`` on the profile's tables: memos
    effectively key on (profile, device class), so a profile object
    shared across fleet classes cannot alias another class's answer.
    """
    tables = profile.tables()
    if rate_rps <= 0.0 or tables.latency_ms[0] > slo_ms:
        return 0
    key = (rate_rps, slo_ms, mode, device)
    memo = tables.p99_memo
    hit = memo.get(key)
    if hit is not None:
        return hit
    best = 0
    for cap in range(tables.max_batch, 0, -1):
        est = capacity_answer(
            profile, rate_rps, batch_cap=cap, mode=mode, seed=seed,
            num_arrivals=num_arrivals,
        )
        if not est.stable:
            break
        if approx_le(est.p99_ms, slo_ms):
            best = cap
            break
    memo[key] = best
    return best
