"""Sessions: the unit of scheduling in Nexus.

Paper section 6.1: "We refer to the requests for a given model and latency
SLO as a session."  A session aggregates traffic from many users and
applications that invoke the same model under the same latency constraint;
the global scheduler allocates GPUs to sessions, not to applications.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .profile import BatchingProfile

__all__ = ["Session", "SessionLoad"]


@dataclass(frozen=True)
class Session:
    """A (model, latency SLO) pair -- the key the scheduler packs by.

    Attributes:
        model_id: name of the model (zoo name or specialized variant).
        slo_ms: end-to-end latency bound for requests in this session.
        session_id: unique id; defaults to ``"<model>@<slo>ms"``.  Distinct
            sessions may serve the same model at different SLOs.
    """

    model_id: str
    slo_ms: float
    session_id: str = ""

    def __post_init__(self) -> None:
        if self.slo_ms <= 0:
            raise ValueError(f"slo_ms must be positive, got {self.slo_ms}")
        if not self.session_id:
            object.__setattr__(
                self, "session_id", f"{self.model_id}@{self.slo_ms:g}ms"
            )

    def __str__(self) -> str:
        return self.session_id


@dataclass
class SessionLoad:
    """A session together with its observed request rate and profile.

    This is the scheduler's working record: ``rate_rps`` comes from the
    runtime's workload statistics (control plane), ``profile`` from the
    model database.  ``device`` names the GPU class the profile was built
    for; the empty string means "the cluster's (single) default class"
    and keeps homogeneous planning byte-identical.
    """

    session: Session
    rate_rps: float
    profile: BatchingProfile
    device: str = ""

    def __post_init__(self) -> None:
        if self.rate_rps < 0:
            raise ValueError(f"rate_rps must be >= 0, got {self.rate_rps}")

    @property
    def slo_ms(self) -> float:
        return self.session.slo_ms

    @property
    def session_id(self) -> str:
        return self.session.session_id

    def with_rate(self, rate_rps: float) -> "SessionLoad":
        return SessionLoad(self.session, rate_rps, self.profile, self.device)

    def with_device(
        self, device: str, profile: BatchingProfile | None = None
    ) -> "SessionLoad":
        """Retag this load onto a device class (optionally re-profiled)."""
        return SessionLoad(
            self.session, self.rate_rps, profile or self.profile, device
        )

    def peak_throughput(self) -> float:
        """Best single-GPU rate for this session (saturate regime)."""
        return self.profile.peak_throughput_under_slo(self.slo_ms)

    def is_feasible(self) -> bool:
        """Can even a batch of one meet this session's SLO?"""
        return self.profile.max_batch_under_slo(self.slo_ms) >= 1
