"""Squishy bin packing: the paper's Algorithm 1 (section 6.1).

Bin packing where the "balls" change size with the batch they are squished
into.  The algorithm has two phases:

1. **ScheduleSaturate** -- for each session, compute the largest batch
   ``B`` with ``2*l(B) <= SLO`` (a request that just misses a batch waits
   for the whole next one), hence the session's peak single-GPU throughput
   ``T = B / l(B)``.  Allocate ``floor(rate / T)`` whole GPUs and emit the
   remainder as a *residual load*.

2. **ScheduleResidue** -- for each residual load pick the largest batch
   ``b`` satisfying Equation 2, ``b/r + l(b) <= SLO`` (duty cycle to
   gather the batch plus its execution), giving duty cycle ``d = b/r`` and
   occupancy ``l(b)/d``.  Sort residues by occupancy descending and
   best-fit merge them into existing duty cycles (Figure 7): the merged
   node adopts the smaller duty cycle, every member's batch shrinks to
   ``ceil(d * r) <= b`` (which can only improve its worst-case latency),
   and the merge is accepted only if the members' batch latencies still
   fit inside the new duty cycle and the GPU's memory.

The only assumptions on profiles are that latency is non-decreasing and
throughput non-decreasing in batch size -- no linearity required.
"""

from __future__ import annotations

import itertools
import math
from collections.abc import Callable
from dataclasses import dataclass, field

from .fleet import Fleet
from .floatcmp import approx_ge, approx_le
from .queueing import capacity_answer, max_batch_under_p99
from .session import SessionLoad

__all__ = [
    "Allocation",
    "GpuPlan",
    "SchedulePlan",
    "schedule_saturate",
    "schedule_residue",
    "squishy_bin_packing",
    "pack_fleet",
]


@dataclass
class Allocation:
    """One session's share of one GPU's duty cycle."""

    load: SessionLoad
    batch: int

    @property
    def session_id(self) -> str:
        return self.load.session_id

    @property
    def device(self) -> str:
        """Device class this allocation's load was profiled for."""
        return self.load.device

    @property
    def exec_ms(self) -> float:
        """Batch execution latency for this allocation."""
        return self.load.profile.latency(self.batch)

    def worst_case_latency(self, duty_cycle_ms: float) -> float:
        """Section 4.1: duty cycle + own batch execution cost."""
        return duty_cycle_ms + self.exec_ms

    def gather_wait_ms(self) -> float:
        """Worst wait of a batch's first request until the batch fills."""
        if self.load.rate_rps <= 0:
            return 0.0
        return (self.batch - 1) / self.load.rate_rps * 1000.0

    def memory_bytes(self) -> int:
        return self.load.profile.memory_bytes(self.batch)


#: process-wide source of stable GPU-plan node ids.  Ids are identity, not
#: order: churn accounting and failure tracking diff plans on ``node_id``,
#: never on a node's position in ``SchedulePlan.gpus`` (which the epoch
#: scheduler re-sorts every epoch).
_node_ids = itertools.count(1)


def _next_node_id() -> int:
    return next(_node_ids)


@dataclass
class GpuPlan:
    """The schedule for one GPU: sessions executed round-robin in a cycle.

    ``duty_cycle_ms`` is the period over which the GPU cycles through all
    its allocations.  A saturated GPU (single session at peak batch) uses
    ``duty_cycle = l(B)`` and back-to-back batches.

    ``node_id`` is a stable identity that survives re-sorting and rebuilds:
    a plan node that carries over to the next epoch (possibly with adjusted
    allocations) keeps its id, so "did this session move?" and "which node
    died with that backend?" have well-defined answers.

    ``slo_mode`` selects the admission regime the node was sized under:
    ``"worst_case"`` (the paper's deterministic bounds) or ``"p99"`` (a
    dedicated dynamic-batching node whose p99 sojourn -- per the queueing
    oracle -- meets the SLO; ``batch`` is the batch *cap*, ``duty_cycle_ms``
    the nominal gather period used for capacity accounting).
    ``capacity_mode`` records which engine sized a p99 node, so
    :meth:`validate` re-asks the *same* engine -- p99 admission sits
    exactly at the estimate's boundary, and the analytic and simulated
    estimates legitimately disagree by a few percent there.
    """

    allocations: list[Allocation]
    duty_cycle_ms: float
    saturated: bool = False
    node_id: int = field(default_factory=_next_node_id)
    slo_mode: str = "worst_case"
    capacity_mode: str = "analytic"
    device: str = ""

    @property
    def busy_ms(self) -> float:
        return sum(a.exec_ms for a in self.allocations)

    @property
    def occupancy(self) -> float:
        """Fraction of the duty cycle spent executing."""
        if self.duty_cycle_ms <= 0:
            return 0.0
        return self.busy_ms / self.duty_cycle_ms

    def throughput_rps(self, session_id: str) -> float:
        """Capacity this GPU provides to one session (requests/second)."""
        total = 0.0
        for a in self.allocations:
            if a.session_id == session_id:
                total += a.batch / self.duty_cycle_ms * 1000.0
        return total

    def memory_bytes(self) -> int:
        """Resident bytes on this GPU: weights once per model, activations
        per allocation.

        Two sessions of the same model merged into one duty cycle share
        one resident copy of the weights (one model instance, several
        queues), so weight bytes are deduped per model id -- summing
        ``Allocation.memory_bytes`` would double-count them and refuse
        merges that actually fit.
        """
        total = 0
        weight_bytes: dict[str, int] = {}
        for a in self.allocations:
            total += a.batch * a.load.profile.memory_per_input_bytes
            model = a.load.session.model_id
            prior = weight_bytes.get(model, 0)
            weight_bytes[model] = max(prior, a.load.profile.memory_model_bytes)
        return total + sum(weight_bytes.values())

    def session_ids(self) -> list[str]:
        return [a.session_id for a in self.allocations]

    def validate(self, memory_capacity: int | None = None) -> list[str]:
        """Return human-readable constraint violations (empty if valid)."""
        problems = []
        if not approx_le(self.busy_ms, self.duty_cycle_ms):
            problems.append(
                f"busy {self.busy_ms:.2f}ms exceeds duty cycle "
                f"{self.duty_cycle_ms:.2f}ms"
            )
        if self.slo_mode == "p99":
            problems.extend(self._validate_p99())
        else:
            for a in self.allocations:
                wc = a.worst_case_latency(self.duty_cycle_ms)
                if self.saturated:
                    wc = 2 * a.exec_ms
                elif len(self.allocations) == 1:
                    # A lone residual session dispatches as soon as its batch
                    # fills: its first request waits the gather time, not the
                    # nominal duty cycle.
                    wc = min(wc, a.gather_wait_ms() + a.exec_ms)
                if not approx_le(wc, a.load.slo_ms):
                    problems.append(
                        f"{a.session_id}: worst-case {wc:.2f}ms > SLO "
                        f"{a.load.slo_ms:.2f}ms"
                    )
        if memory_capacity is not None and self.memory_bytes() > memory_capacity:
            problems.append(
                f"memory {self.memory_bytes()} > capacity {memory_capacity}"
            )
        return problems

    def _validate_p99(self) -> list[str]:
        """p99-mode invariants: a dedicated node whose tail meets the SLO.

        The oracle's queue model describes one session with the whole GPU;
        multi-session p99 nodes have no validated latency story.
        """
        problems = []
        if len(self.allocations) != 1:
            problems.append(
                f"p99 node hosts {len(self.allocations)} sessions; p99 "
                f"admission applies to dedicated nodes only"
            )
        for a in self.allocations:
            est = capacity_answer(
                a.load.profile, a.load.rate_rps, batch_cap=a.batch,
                mode=self.capacity_mode,
            )
            if not est.stable:
                problems.append(
                    f"{a.session_id}: rate {a.load.rate_rps:.2f} rps exceeds "
                    f"sustainable {est.sustainable_rps:.2f} rps at cap "
                    f"{a.batch}"
                )
            elif not approx_le(est.p99_ms, a.load.slo_ms):
                problems.append(
                    f"{a.session_id}: p99 {est.p99_ms:.2f}ms > SLO "
                    f"{a.load.slo_ms:.2f}ms at cap {a.batch}"
                )
        return problems


@dataclass
class SchedulePlan:
    """Full cluster plan: one GpuPlan per allocated GPU."""

    gpus: list[GpuPlan]
    infeasible: list[SessionLoad] = field(default_factory=list)

    @property
    def num_gpus(self) -> int:
        return len(self.gpus)

    def capacity_rps(self, session_id: str) -> float:
        return sum(g.throughput_rps(session_id) for g in self.gpus)

    def gpus_by_class(self) -> dict[str, int]:
        """GPU counts per device class (sorted by class name)."""
        counts: dict[str, int] = {}
        for gpu in self.gpus:
            counts[gpu.device] = counts.get(gpu.device, 0) + 1
        return {name: counts[name] for name in sorted(counts)}

    def price_per_hour(self, fleet: Fleet) -> float:
        """Hourly dollar cost of every GPU this plan occupies."""
        return sum(fleet.price_per_hour(g.device) for g in self.gpus)

    def validate(self, memory_capacity: int | None = None) -> list[str]:
        problems = []
        for i, gpu in enumerate(self.gpus):
            problems.extend(f"gpu{i}: {p}" for p in gpu.validate(memory_capacity))
        return problems


@dataclass
class _Residual:
    """Working record for ScheduleResidue."""

    load: SessionLoad
    batch: int
    duty_ms: float

    @property
    def occupancy(self) -> float:
        return self.load.profile.latency(self.batch) / self.duty_ms


def schedule_saturate(
    loads: list[SessionLoad],
    slo_mode: str = "worst_case",
) -> tuple[list[GpuPlan], list[SessionLoad], list[SessionLoad]]:
    """Phase 1: allocate whole GPUs to sessions that can fill them.

    Returns ``(gpu_plans, residual_loads, infeasible_loads)``.  A load is
    infeasible when even a batch of one misses its SLO on this profile.

    Saturated GPUs are sized by the worst-case ``2*l(B)`` bound in both
    SLO modes (a saturated queue sits at utilization ~1, outside the
    queueing oracle's applicability); ``slo_mode="p99"`` only changes how
    too-tight sessions (``2*l(1) > SLO``) are handed to the residue
    phase, which shards them by the oracle instead of Equation 2.
    """
    plans: list[GpuPlan] = []
    residuals: list[SessionLoad] = []
    infeasible: list[SessionLoad] = []
    # Stable input order: callers often assemble loads from dicts/sets, and
    # the emitted plan must not depend on their iteration order (the
    # determinism contract nexuslint enforces on this package).
    for load in sorted(loads, key=lambda l: l.session_id):
        if load.rate_rps <= 0:
            continue
        peak_batch = load.profile.max_batch_under_slo(load.slo_ms)
        if peak_batch == 0:
            # Too tight for back-to-back batching (2*l(1) > SLO), but may
            # still be servable on-arrival at batch ~1: shard the rate
            # across enough residual-only nodes.
            if load.profile.latency(1) > load.slo_ms:
                infeasible.append(load)
            elif slo_mode == "p99":
                # The p99 residue phase sizes (and shards) tight sessions
                # by the oracle's tail bound, not the worst-case one.
                residuals.append(load)
            else:
                residuals.extend(_shard_tight_session(load))
            continue
        peak_tput = load.profile.throughput(peak_batch)
        whole_gpus = int(load.rate_rps // peak_tput)
        for _ in range(whole_gpus):
            plans.append(
                GpuPlan(
                    allocations=[Allocation(load.with_rate(peak_tput), peak_batch)],
                    duty_cycle_ms=load.profile.latency(peak_batch),
                    saturated=True,
                    device=load.device,
                )
            )
        residue_rate = load.rate_rps - whole_gpus * peak_tput
        # Tolerance relative to one GPU's capacity: at high rates the
        # subtraction's float rounding can leave a residue of a few ulps
        # of ``rate_rps``, and an absolute 1e-9 threshold would spawn a
        # whole extra GPU to serve it.
        if residue_rate > 1e-9 * peak_tput * max(1.0, whole_gpus):
            residuals.append(load.with_rate(residue_rate))
    return plans, residuals, infeasible


def _shard_tight_session(load: SessionLoad) -> list[SessionLoad]:
    """Split a too-tight-to-saturate session into residual-sized shards.

    Each shard must fit one GPU's residual capacity (the batch/duty pair
    of Equation 2 with the duty capped at the SLO slack); the smallest
    shard count whose per-shard rate fits is used.
    """
    for shards in range(1, 10_000):
        shard = load.with_rate(load.rate_rps / shards)
        res = _initial_residual(shard)
        if res is None:
            continue
        capacity = res.batch / res.duty_ms * 1000.0
        if approx_ge(capacity, shard.rate_rps):
            return [shard] * shards
    return [load]  # give the packer one oversized shard; drops absorb it


def _initial_residual(load: SessionLoad) -> _Residual | None:
    """Largest batch (and duty cycle) satisfying Equation 2 for this load.

    The duty cycle is the gather time ``b / r`` -- but never longer than
    the session's SLO slack ``L - l(b)``: a low-rate session must still be
    *visited* often enough that a request arriving right after its slot
    does not miss the SLO waiting for the next cycle.  (The GPU simply
    idles through slots whose queue is empty.)
    """
    batch = load.profile.max_batch_residual(load.rate_rps, load.slo_ms)
    if batch == 0:
        return None
    while batch >= 1:
        exec_ms = load.profile.latency(batch)
        duty_ms = min(batch / load.rate_rps * 1000.0,
                      load.slo_ms - exec_ms)
        if duty_ms >= exec_ms:
            return _Residual(load, batch, duty_ms)
        batch -= 1
    # Very tight sessions (SLO - l(1) < l(1)): no cycle grants a
    # worst-case guarantee, but a mostly-idle solo node serves requests on
    # arrival within l(1) <= SLO.  Model it as batch-1 slots at a
    # conservative utilization (the duty is the capacity bound, not a
    # visit interval); such nodes never merge (duty + l exceeds the SLO).
    exec_ms = load.profile.latency(1)
    if exec_ms <= load.slo_ms:
        duty_ms = exec_ms / _TIGHT_SESSION_UTILIZATION
        if approx_ge(1.0 / duty_ms * 1000.0, load.rate_rps):
            return _Residual(load, 1, duty_ms)
    return None


def _p99_residual(load: SessionLoad, capacity_mode: str) -> _Residual | None:
    """p99 analogue of :func:`_initial_residual`: size a *dedicated*
    dynamic-batching node by the queueing oracle's tail bound.

    The batch is the largest cap whose p99 sojourn meets the SLO at this
    rate; the duty cycle is the nominal gather period ``cap / rate``
    (capacity accounting -- the node dispatches dynamically, not on a
    timer).  Returns None when no cap works on one GPU.
    """
    cap = max_batch_under_p99(
        load.profile, load.rate_rps, load.slo_ms, mode=capacity_mode,
        device=load.device,
    )
    if cap == 0:
        return None
    exec_ms = load.profile.latency(cap)
    duty_ms = cap / load.rate_rps * 1000.0
    if duty_ms < exec_ms:
        # Defensive: a profile whose peak throughput sits below the cap
        # could leave the gather period shorter than the execution; pin
        # the duty to back-to-back batches so occupancy stays <= 1.
        duty_ms = exec_ms
    return _Residual(load, cap, duty_ms)


#: Shard-count ceiling when splitting one session's rate across several
#: dedicated p99 nodes (each shard re-runs the oracle at a lower rate).
_MAX_P99_SHARDS = 64


def _schedule_residue_p99(
    residuals: list[SessionLoad], capacity_mode: str
) -> tuple[list[GpuPlan], list[SessionLoad]]:
    """Residue phase under p99 admission: one dedicated node per load.

    The oracle's queue model describes a session with a whole GPU to
    itself, so p99 nodes never merge into shared duty cycles; a load too
    hot for one node is sharded across several (halving the rate lowers
    utilization and with it the tail).
    """
    nodes: list[GpuPlan] = []
    infeasible: list[SessionLoad] = []
    for load in sorted(residuals, key=lambda l: l.session_id):
        if load.rate_rps <= 0:
            continue
        if load.profile.latency(1) > load.slo_ms:
            infeasible.append(load)
            continue
        placed = False
        for shards in range(1, _MAX_P99_SHARDS + 1):
            shard = load.with_rate(load.rate_rps / shards)
            res = _p99_residual(shard, capacity_mode)
            if res is None:
                continue
            for _ in range(shards):
                nodes.append(GpuPlan(
                    [Allocation(res.load, res.batch)], res.duty_ms,
                    slo_mode="p99", capacity_mode=capacity_mode,
                    device=load.device,
                ))
            placed = True
            break
        if not placed:
            infeasible.append(load)
    return nodes, infeasible


#: Ceiling on merged-node occupancy.  1.0 is the paper's rule (the worked
#: example of section 4.1 packs A+B to exactly 100% of the duty cycle);
#: lower values trade GPUs for burst slack -- the ablation bench sweeps
#: this.
MERGE_OCCUPANCY_CAP = 1.0

#: Target utilization for sessions so tight (SLO - l(1) < l(1)) that no
#: duty cycle guarantees their worst case: they get dedicated batch-1
#: slots kept mostly idle so queueing rarely pushes waits past the slack.
_TIGHT_SESSION_UTILIZATION = 0.55


def _try_merge(
    node: GpuPlan, res: _Residual, memory_capacity: int | None,
    occupancy_cap: float = MERGE_OCCUPANCY_CAP,
) -> GpuPlan | None:
    """Figure 7's merge: shrink to the smaller duty cycle, re-derive batches.

    Returns the merged plan, or None if latency/memory constraints fail.
    Shards of the same session never share a GPU (one queue per session
    per backend): sharding exists to spread one session across GPUs.
    """
    if any(a.session_id == res.load.session_id for a in node.allocations):
        return None
    # Never mix device classes in one duty cycle: the node's profiles and
    # memory bound are all class-specific.
    if res.load.device != node.device:
        return None
    new_duty = min(node.duty_cycle_ms, res.duty_ms)
    members = [(a.load, a.batch) for a in node.allocations] + [(res.load, res.batch)]
    new_allocs: list[Allocation] = []
    busy = 0.0
    for load, old_batch in members:
        # ceil(d * r) <= old_batch because d <= old duty = old_batch / r,
        # so worst-case latency can only improve (section 6.1's argument).
        new_batch = min(old_batch, math.ceil(new_duty * load.rate_rps / 1000.0))
        if new_batch < 1:
            new_batch = 1
        exec_ms = load.profile.latency(new_batch)
        if not approx_le(new_duty + exec_ms, load.slo_ms):
            return None
        busy += exec_ms
        new_allocs.append(Allocation(load, new_batch))
    if not approx_le(busy, occupancy_cap * new_duty):
        return None
    # The merge grows an existing node in place: keep its identity.
    merged = GpuPlan(new_allocs, new_duty, node_id=node.node_id,
                     device=node.device)
    if memory_capacity is not None and merged.memory_bytes() > memory_capacity:
        return None
    return merged


def schedule_residue(
    residuals: list[SessionLoad],
    memory_capacity: int | None = None,
    merge_order: str = "best_fit",
    slo_mode: str = "worst_case",
    capacity_mode: str = "analytic",
) -> tuple[list[GpuPlan], list[SessionLoad]]:
    """Phase 2: pack residual loads into shared duty cycles.

    Args:
        residuals: loads, each needing less than one GPU.
        memory_capacity: per-GPU memory bound, or None to ignore memory.
        merge_order: ``"best_fit"`` (paper: merge into the candidate whose
            merged occupancy is highest), ``"first_fit"``, or
            ``"worst_fit"`` -- the alternatives exist for the ablation
            bench on merge policy.
        slo_mode: ``"worst_case"`` (Equation 2 batches, Figure 7 merges)
            or ``"p99"`` (dedicated per-load nodes sized by the queueing
            oracle's tail bound; see docs/queueing.md).
        capacity_mode: how p99-mode capacity questions are answered --
            ``"analytic"`` (oracle with simulation fallback) or
            ``"simulate"`` (always the seeded queue simulation).
            Ignored under worst-case admission.

    Returns ``(gpu_plans, infeasible_loads)``.
    """
    if merge_order not in ("best_fit", "first_fit", "worst_fit"):
        raise ValueError(f"unknown merge_order {merge_order!r}")
    if slo_mode == "p99":
        return _schedule_residue_p99(residuals, capacity_mode)

    work: list[_Residual] = []
    infeasible: list[SessionLoad] = []
    # Stable input order (see schedule_saturate): identical residual sets
    # must pack identically regardless of how the caller ordered them.
    for load in sorted(residuals, key=lambda l: l.session_id):
        if load.rate_rps <= 0:
            continue
        res = _initial_residual(load)
        if res is None:
            infeasible.append(load)
        else:
            work.append(res)

    # Best-fit decreasing: consider heaviest residuals first; ties break
    # on session id so equal-occupancy residues pack order-independently.
    work.sort(key=lambda r: (-r.occupancy, r.load.session_id))

    nodes: list[GpuPlan] = []
    for res in work:
        chosen_idx: int | None = None
        chosen_plan: GpuPlan | None = None
        for i, node in enumerate(nodes):
            merged = _try_merge(node, res, memory_capacity)
            if merged is None:
                continue
            if merge_order == "first_fit":
                chosen_idx, chosen_plan = i, merged
                break
            better = (
                chosen_plan is None
                or (merge_order == "best_fit" and merged.occupancy > chosen_plan.occupancy)
                or (merge_order == "worst_fit" and merged.occupancy < chosen_plan.occupancy)
            )
            if better:
                chosen_idx, chosen_plan = i, merged
        if chosen_plan is not None and chosen_idx is not None:
            nodes[chosen_idx] = chosen_plan
        else:
            nodes.append(
                GpuPlan([Allocation(res.load, res.batch)], res.duty_ms,
                        device=res.load.device)
            )
    return nodes, infeasible


def squishy_bin_packing(
    loads: list[SessionLoad],
    memory_capacity: int | None = None,
    merge_order: str = "best_fit",
    slo_mode: str = "worst_case",
    capacity_mode: str = "analytic",
) -> SchedulePlan:
    """Algorithm 1 end-to-end: saturate, then pack residues.

    ``slo_mode="p99"`` swaps the residue phase's worst-case admission
    (Equation 2) for the queueing oracle's p99 bound; ``capacity_mode``
    selects how those oracle questions are answered (``"analytic"`` with
    simulation fallback, or ``"simulate"``).
    """
    if slo_mode not in ("worst_case", "p99"):
        raise ValueError(f"unknown slo_mode {slo_mode!r}")
    if capacity_mode not in ("analytic", "simulate"):
        raise ValueError(f"unknown capacity_mode {capacity_mode!r}")
    saturated, residuals, infeasible = schedule_saturate(
        loads, slo_mode=slo_mode
    )
    residual_nodes, more_infeasible = schedule_residue(
        residuals, memory_capacity=memory_capacity, merge_order=merge_order,
        slo_mode=slo_mode, capacity_mode=capacity_mode,
    )
    return SchedulePlan(
        gpus=saturated + residual_nodes,
        infeasible=infeasible + more_infeasible,
    )


#: Binary-search depth when shedding a class's rates down to its
#: inventory; 1e-12 of the scale interval is far below rate granularity.
_SHED_SEARCH_ITERS = 40


def _shed_to_count(
    loads: list[SessionLoad],
    count: int,
    pack: Callable[[list[SessionLoad]], SchedulePlan],
) -> SchedulePlan:
    """Proportionally scale a class's rates until its plan fits ``count``.

    Mirrors the cluster's admission control: when a class's inventory
    cannot serve its assigned rates, every session sheds the same
    fraction rather than any session being dropped outright.
    """
    lo, hi = 0.0, 1.0
    best = pack([l.with_rate(0.0) for l in loads])
    for _ in range(_SHED_SEARCH_ITERS):
        mid = (lo + hi) / 2.0
        plan = pack([l.with_rate(l.rate_rps * mid) for l in loads])
        if plan.num_gpus <= count:
            lo, best = mid, plan
        else:
            hi = mid
    return best


def pack_fleet(
    loads: list[SessionLoad],
    fleet: Fleet,
    merge_order: str = "best_fit",
    slo_mode: str = "worst_case",
    capacity_mode: str = "analytic",
) -> SchedulePlan:
    """Algorithm 1 per device class: heterogeneous squishy packing.

    Every load must be tagged with a fleet class (``SessionLoad.device``)
    and carry that class's profile -- see
    :func:`repro.core.fleet.assign_classes`.  As a convenience, untagged
    loads are legal on a *single-class* fleet and adopt its class, so the
    homogeneous path needs no re-tagging.  Each class packs independently
    with its own memory capacity; a class whose plan exceeds its
    inventory ``count`` sheds rate proportionally until it fits.
    """
    tagged: list[SessionLoad] = []
    for load in loads:
        if not load.device:
            if not fleet.is_single_class:
                raise ValueError(
                    f"untagged load {load.session_id!r} on a multi-class "
                    f"fleet; assign device classes first"
                )
            load = load.with_device(fleet.classes[0].name)
        elif load.device not in fleet.names:
            raise KeyError(
                f"load {load.session_id!r} tagged {load.device!r}, not in "
                f"fleet {fleet.names}"
            )
        tagged.append(load)

    gpus: list[GpuPlan] = []
    infeasible: list[SessionLoad] = []
    for gpu_class in fleet.classes:
        class_loads = [l for l in tagged if l.device == gpu_class.name]
        if not class_loads:
            continue
        def pack(
            batch: list[SessionLoad], memory: int = gpu_class.mem_capacity
        ) -> SchedulePlan:
            return squishy_bin_packing(
                batch, memory_capacity=memory, merge_order=merge_order,
                slo_mode=slo_mode, capacity_mode=capacity_mode,
            )

        plan = pack(class_loads)
        if gpu_class.count is not None and plan.num_gpus > gpu_class.count:
            plan = _shed_to_count(class_loads, gpu_class.count, pack)
        gpus.extend(plan.gpus)
        infeasible.extend(plan.infeasible)
    return SchedulePlan(gpus=gpus, infeasible=infeasible)
