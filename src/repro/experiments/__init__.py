"""Experiment modules: one per table/figure of the paper's evaluation.

Each module exposes ``run(...)`` returning an
:class:`~repro.experiments.common.ExperimentResult`; the ``benchmarks/``
tree wraps these in pytest-benchmark targets, and ``python -m
repro.experiments.<name>`` prints the reproduced rows.

==================  ====================================================
module              reproduces
==================  ====================================================
``table1``          Table 1: device latencies and $ per 1000 invocations
``fig2``            Table 2 / Figure 2: squishy packing worked example
``fig4``            Figures 3-4: latency-split plans vs gamma
``fig5``            Figure 5: lazy-drop bad rate vs alpha
``fig9``            Figure 9: lazy vs early drop max goodput
``fig10``           Figure 10: game-analysis ablation (16 GPUs)
``fig11``           Figure 11: traffic-analysis ablation (16 GPUs)
``fig12``           Figure 12: rush vs non-rush hour throughput
``fig13``           Figure 13: 1000 s large-scale deployment window
``fig14``           Figure 14: GPU multiplexing
``fig15``           Figure 15: prefix batching throughput + memory
``fig16``           Figure 16: squishy vs batch-oblivious mixes
``fig17``           Figure 17: query analysis vs even splits
``utilization``     Section 7.4: 84%-of-lower-bound utilization
``ilp_gap``         Appendix A companion: greedy vs exact gap
``mixed_fleet``     Table 1 generalized: cost-optimal mixed-class
                    placement on a heterogeneous fleet
``report``          run the fast subset and emit one markdown report
==================  ====================================================
"""

from . import (
    common,
    fig2,
    fig4,
    fig5,
    fig9,
    fig10,
    fig11,
    fig12,
    fig13,
    fig14,
    fig15,
    fig16,
    fig17,
    ilp_gap,
    mixed_fleet,
    table1,
    utilization,
)
from .common import ExperimentResult, max_rate_search

__all__ = [
    "common",
    "table1",
    "fig2",
    "fig4",
    "fig5",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    "fig13",
    "fig14",
    "fig15",
    "fig16",
    "fig17",
    "utilization",
    "ilp_gap",
    "mixed_fleet",
    "ExperimentResult",
    "max_rate_search",
]
