"""Performance benchmarks: the repo's wall-clock baseline.

``python -m repro bench`` times the hot paths every experiment sits
on -- the discrete-event loop, the single-GPU dispatch simulation, the
epoch replanner, the queueing oracle's capacity queries (analytic vs
simulated), and a full cluster run -- plus a serial-vs-parallel cluster
rate sweep through the process-pool runner, and writes the measurements to
``BENCH_simulator.json`` so future changes have a trajectory to compare
against (``benchmarks/perf/`` wraps the same functions in
pytest-benchmark for statistical runs).

All simulated work is seeded and deterministic; only the wall-clock
readings vary between invocations.  The parallel sweep and the sharded
scaling legs record the *measured* speedup alongside ``cpu_count`` -- on
a single-core container they are recorded as ``skipped`` rather than
reporting process-spawn overhead as a speedup figure.
"""

from __future__ import annotations

import json
import os
import platform
import random
import time

from ..core.drop import EarlyDropPolicy, simulate_dispatch
from ..core.profile import LinearProfile
from ..simulation.simulator import Simulator
from ..workloads.arrivals import poisson_arrivals
from .common import parallel_map

__all__ = ["run_bench", "DEFAULT_OUT", "format_bench", "check_regression"]

DEFAULT_OUT = "BENCH_simulator.json"
SCHEMA = "repro-bench/1"


# ------------------------------------------------------------ micro benches

def bench_event_loop(num_events: int, seed: int = 0) -> dict:
    """Deep-heap event-loop throughput: pre-schedule ``num_events`` at
    seeded random times, then drain.  Exercises heap ordering, the
    slotted-event allocation, and the run loop itself."""
    sim = Simulator()
    rng = random.Random(seed)

    def _noop() -> None:
        pass

    t0 = time.perf_counter()
    for _ in range(num_events):
        sim.schedule(rng.random() * 1000.0, _noop)
    sim.run()
    wall = time.perf_counter() - t0
    return {
        "events": num_events,
        "wall_s": round(wall, 4),
        "events_per_s": round(num_events / wall),
    }


def _shard_drain(args: tuple[int, int]) -> int:
    """One shard's independent timeline: drain a seeded noop heap.

    Module-level (picklable) so the sharded bench can fan shard
    timelines across worker processes, mirroring the federated
    execution mode in ``experiments/megascale.py``.
    """
    num_events, seed = args
    sim = Simulator()
    rng = random.Random(seed)

    def _noop() -> None:
        pass

    for _ in range(num_events):
        sim.schedule(rng.random() * 1000.0, _noop)
    sim.run()
    return sim.events_processed


def bench_sharded_simulator(num_events: int, seed: int = 0,
                            barriers: int = 32) -> dict:
    """Sharded-engine throughput plus cross-process scaling legs.

    The gate leg drives a one-shard
    :class:`~repro.simulation.sharded.ShardedSimulator` through
    ``barriers`` control barriers, so ``events_per_s`` prices in the
    full marker/window protocol (arm, interrupt, resume) and guards the
    engine's coordinator overhead.  The scaling legs fan 2 and 4
    independent shard timelines across worker processes; on a
    single-core host they are recorded as ``skipped`` -- a measured
    "speedup" there would only be process-spawn overhead.
    """
    from ..simulation.sharded import ShardedSimulator, shard_map

    engine = ShardedSimulator(1)
    shard = engine.shards[0]
    rng = random.Random(seed)

    def _noop() -> None:
        pass

    def _control(now: float) -> None:
        pass

    t0 = time.perf_counter()
    for _ in range(num_events):
        shard.sim.schedule(rng.random() * 1000.0, _noop)
    for k in range(1, barriers + 1):
        engine.schedule_barrier(k * 1000.0 / (barriers + 1), _control,
                                label=f"bench:{k}")
    engine.run_until(1000.0)
    wall = time.perf_counter() - t0
    out = {
        "events": engine.events_processed,
        "barriers": barriers,
        "wall_s": round(wall, 4),
        "events_per_s": round(engine.events_processed / wall),
    }

    cpus = os.cpu_count() or 1
    for n in (2, 4):
        key = f"scaling_{n}_shards"
        if cpus < 2:
            out[key] = {"skipped": True, "cpu_count": cpus}
            continue
        per_shard = num_events // n
        tasks = [(per_shard, seed + 31 * i) for i in range(n)]
        t0 = time.perf_counter()
        totals = shard_map(_shard_drain, tasks, workers=min(n, cpus))
        wall_n = time.perf_counter() - t0
        aggregate = sum(totals) / wall_n
        out[key] = {
            "shards": n,
            "workers": min(n, cpus),
            "wall_s": round(wall_n, 4),
            "aggregate_events_per_s": round(aggregate),
            # 1.0 = every shard ran at the gate leg's single-shard rate.
            "efficiency": round(aggregate / (out["events_per_s"] * n), 3),
        }
    return out


def _dispatch_profile() -> LinearProfile:
    # Figure 5/9 parameterization at alpha=1.0 (beta-heavy: big queues).
    return LinearProfile(name="bench", alpha=1.0, beta=25.0, max_batch=64)


def bench_dispatch(duration_ms: float, rate_rps: float = 900.0,
                   seed: int = 3) -> dict:
    """``simulate_dispatch`` under overload (1.8x the optimal rate), where
    queues grow long and per-batch queue maintenance dominates."""
    arrivals = poisson_arrivals(rate_rps, duration_ms, seed=seed)
    t0 = time.perf_counter()
    stats = simulate_dispatch(arrivals, _dispatch_profile(), 100.0,
                              EarlyDropPolicy(25))
    wall = time.perf_counter() - t0
    return {
        "requests": len(arrivals),
        "wall_s": round(wall, 4),
        "requests_per_s": round(len(arrivals) / wall),
        "bad_rate": round(stats.bad_rate, 4),
    }


# --------------------------------------------------------- cluster benches

def _make_cluster(rate_rps: float, seed: int):
    from ..cluster.nexus import ClusterConfig, NexusCluster
    from ..workloads.apps import all_apps

    config = ClusterConfig(device="gtx1080ti", expand_to_cluster=False,
                           seed=seed)
    cluster = NexusCluster(config)
    queries = all_apps("gtx1080ti", num_games=4)
    for query in queries:
        cluster.add_query(query, rate_rps=rate_rps / len(queries))
    return cluster


def bench_cluster(duration_ms: float, rate_rps: float = 800.0,
                  seed: int = 0) -> dict:
    """The headline cluster run: the full application mix on one
    scheduler-planned deployment (the utilization study's setup)."""
    cluster = _make_cluster(rate_rps, seed)
    t0 = time.perf_counter()
    result = cluster.run(duration_ms, warmup_ms=duration_ms / 10)
    wall = time.perf_counter() - t0
    return {
        "sim_duration_ms": duration_ms,
        "wall_s": round(wall, 4),
        "sim_ms_per_wall_s": round(duration_ms / wall),
        "good_rate": round(result.good_rate, 4),
        "gpus_used": result.gpus_used,
    }


def _cluster_point(args: tuple[float, float, int]) -> tuple[float, float]:
    """One rate-sweep point: a full cluster run at the given offered rate.

    Module-level (picklable) and seeded through its arguments, so sweep
    points can fan across the process pool and still reproduce serial
    results exactly.
    """
    rate_rps, duration_ms, seed = args
    cluster = _make_cluster(rate_rps, seed)
    result = cluster.run(duration_ms, warmup_ms=duration_ms / 10)
    return (rate_rps, round(result.good_rate, 6))


def bench_parallel_sweep(duration_ms: float, workers: int,
                         points: int = 6, seed: int = 0) -> dict:
    """Serial vs parallel wall clock for a cluster rate sweep.

    The sweep is the shape every figure search has (independent cluster
    runs at different offered rates); the measured speedup is what
    ``report --workers`` / figure sweeps actually gain on this machine.
    """
    rates = [400.0 + 150.0 * i for i in range(points)]
    tasks = [(rate, duration_ms, seed) for rate in rates]

    # More workers than cores only adds process-spawn overhead and makes
    # the "speedup" misleading, so clamp to the machine and record both
    # the requested and the effective count.
    effective = max(1, min(workers, os.cpu_count() or 1))

    t0 = time.perf_counter()
    serial = parallel_map(_cluster_point, tasks, workers=1)
    serial_wall = time.perf_counter() - t0

    out = {
        "workers": effective,
        "workers_requested": workers,
        "points": points,
        "sim_duration_ms": duration_ms,
        "serial_wall_s": round(serial_wall, 4),
    }
    if effective == 1:
        # One core: the "parallel" leg would measure process-spawn
        # overhead, not parallelism, and any speedup number would be
        # noise.  Record the skip instead of a misleading ~1x figure.
        out["skipped"] = True
        return out

    t0 = time.perf_counter()
    parallel = parallel_map(_cluster_point, tasks, workers=effective)
    parallel_wall = time.perf_counter() - t0

    out["parallel_wall_s"] = round(parallel_wall, 4)
    out["speedup"] = round(serial_wall / parallel_wall, 3)
    out["identical_results"] = serial == parallel
    return out


def bench_oracle_vs_sim(queries: int = 400, batch_cap: int = 32,
                        seed: int = 0) -> dict:
    """Per-capacity-query cost: the closed-form oracle vs the simulation
    it replaces in the planner's inner loop (docs/queueing.md).

    Both modes answer the same rate sweep through
    :func:`~repro.core.queueing.capacity_answer` on a warmed profile; the
    simulate side runs 1/20th the queries (each one replays a 20k-arrival
    queue) and reports the per-query average.
    """
    from ..core.queueing import capacity_answer

    profile = _dispatch_profile()
    rates = [200.0 + (i % 97) * 3.0 for i in range(queries)]
    capacity_answer(profile, rates[0], batch_cap=batch_cap)  # warm tables

    t0 = time.perf_counter()
    for rate in rates:
        capacity_answer(profile, rate, batch_cap=batch_cap, mode="analytic")
    analytic_wall = time.perf_counter() - t0

    sim_queries = max(1, queries // 20)
    t0 = time.perf_counter()
    for rate in rates[:sim_queries]:
        capacity_answer(profile, rate, batch_cap=batch_cap, mode="simulate",
                        seed=seed)
    sim_wall = time.perf_counter() - t0

    analytic_us = analytic_wall / queries * 1e6
    sim_us = sim_wall / sim_queries * 1e6
    return {
        "queries": queries,
        "wall_s": round(analytic_wall, 4),
        "analytic_us_per_query": round(analytic_us, 1),
        "simulate_us_per_query": round(sim_us, 1),
        "speedup": round(sim_us / analytic_us, 1),
        "oracle_queries_per_s": round(queries / analytic_wall),
    }


def bench_epoch_schedule(epochs: int = 200, sessions: int = 40,
                         seed: int = 0) -> dict:
    """Epoch-scheduler throughput under a mostly-stable workload.

    Each simulated epoch perturbs a few sessions' rates and leaves the
    rest untouched -- the steady-state shape the incremental replanner is
    built for.  ``reuse_fraction`` reports how many plan nodes per epoch
    were carried over unchanged instead of repacked.
    """
    from ..core.epoch import EpochScheduler
    from ..core.session import Session, SessionLoad

    rng = random.Random(seed)
    loads = []
    for i in range(sessions):
        profile = LinearProfile(
            name=f"m{i}", alpha=1.0 + (i % 5) * 0.5,
            beta=10.0 + (i % 7) * 5.0, max_batch=64,
        )
        slo_ms = 100.0 + 25.0 * (i % 8)
        loads.append(
            SessionLoad(Session(f"m{i}", slo_ms), 50.0 + 10.0 * (i % 11),
                        profile)
        )

    sched = EpochScheduler()
    sched.update(0.0, loads)  # initial full pack, outside the timer
    reused = 0
    total_nodes = 0
    t0 = time.perf_counter()
    for epoch in range(1, epochs + 1):
        for idx in rng.sample(range(sessions), 3):
            loads[idx] = loads[idx].with_rate(20.0 + rng.random() * 200.0)
        up = sched.update(epoch * 30_000.0, loads)
        reused += up.nodes_reused
        total_nodes += up.gpus_after
    wall = time.perf_counter() - t0
    return {
        "epochs": epochs,
        "sessions": sessions,
        "wall_s": round(wall, 4),
        "epochs_per_s": round(epochs / wall),
        "reuse_fraction": round(reused / max(total_nodes, 1), 4),
        "gpus_final": sched.num_gpus,
    }


def bench_mixed_fleet(iterations: int = 30) -> dict:
    """Mixed-fleet planning throughput: class assignment + per-class
    squishy packing over the heterogeneous reference workload
    (docs/heterogeneous.md).  One iteration is a full ``plan_mixed``
    call: every session re-profiled on every class, the cost-greedy
    class choice, and one ``pack_fleet`` run with per-class validation.
    """
    from .mixed_fleet import DEFAULT_COUNTS, plan_mixed

    plan_mixed(DEFAULT_COUNTS)  # warm the profile cache outside the timer
    t0 = time.perf_counter()
    for _ in range(iterations):
        result = plan_mixed(DEFAULT_COUNTS)
    wall = time.perf_counter() - t0
    return {
        "iterations": iterations,
        "wall_s": round(wall, 4),
        "plans_per_s": round(iterations / wall, 1),
        "gpus": result.plan.num_gpus if result.plan is not None else 0,
        "price_per_hour": round(result.price_per_hour, 2),
    }


# ----------------------------------------------------------------- harness

def run_bench(quick: bool = False, workers: int = 4,
              out_path: str | None = DEFAULT_OUT, repeats: int = 3,
              sweep_points: int | None = None) -> dict:
    """Run the perf suite and (optionally) write the JSON baseline.

    ``quick`` scales the workloads down ~10x for CI smoke runs; the JSON
    records which mode produced it so baselines are never cross-compared.
    The single-run benches keep the best of ``repeats`` runs (least-noise
    estimator -- single-core CI containers jitter 10-20% run to run); the
    parallel sweep runs once, its serial/parallel ratio is
    self-normalizing.
    """
    if quick:
        events, dispatch_ms, cluster_ms, points = 50_000, 20_000.0, 4_000.0, 4
        epochs = 60
    else:
        events, dispatch_ms, cluster_ms, points = 200_000, 60_000.0, 20_000.0, 6
        epochs = 200
    if sweep_points is not None:
        points = sweep_points
    repeats = max(1, repeats)

    event_loop = min(
        (bench_event_loop(events, seed=i) for i in range(repeats)),
        key=lambda r: r["wall_s"],
    )
    sharded = min(
        (bench_sharded_simulator(events, seed=i) for i in range(repeats)),
        key=lambda r: r["wall_s"],
    )
    dispatch = min(
        (bench_dispatch(dispatch_ms) for _ in range(repeats)),
        key=lambda r: r["wall_s"],
    )
    epoch_sched = min(
        (bench_epoch_schedule(epochs) for _ in range(repeats)),
        key=lambda r: r["wall_s"],
    )
    oracle = min(
        (bench_oracle_vs_sim(queries=100 if quick else 400)
         for _ in range(repeats)),
        key=lambda r: r["wall_s"],
    )
    cluster = min(
        (bench_cluster(cluster_ms) for _ in range(repeats)),
        key=lambda r: r["wall_s"],
    )
    mixed = min(
        (bench_mixed_fleet(10 if quick else 30) for _ in range(repeats)),
        key=lambda r: r["wall_s"],
    )
    sweep = bench_parallel_sweep(cluster_ms / 2, workers=workers,
                                 points=points)

    payload = {
        "schema": SCHEMA,
        "created_unix": round(time.time(), 1),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
        "quick": quick,
        "benchmarks": {
            "simulator_event_loop": event_loop,
            "sharded_simulator": sharded,
            "simulate_dispatch": dispatch,
            "epoch_schedule": epoch_sched,
            "oracle_vs_sim": oracle,
            "cluster_headline": cluster,
            "mixed_fleet_planning": mixed,
            "parallel_cluster_sweep": sweep,
        },
    }
    if out_path:
        with open(out_path, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
    return payload


#: Rate metrics the regression gate compares (higher is better).  Only
#: workload-size-independent rates are listed: wall_s depends on the
#: configured workload, so quick and full runs stay comparable here.
_GATE_METRICS = (
    ("simulator_event_loop", "events_per_s"),
    ("sharded_simulator", "events_per_s"),
    ("simulate_dispatch", "requests_per_s"),
    ("epoch_schedule", "epochs_per_s"),
    ("oracle_vs_sim", "oracle_queries_per_s"),
    ("cluster_headline", "sim_ms_per_wall_s"),
    ("mixed_fleet_planning", "plans_per_s"),
)


def check_regression(payload: dict, baseline_path: str,
                     threshold: float = 0.30) -> tuple[str, list[str]]:
    """Gate a fresh bench payload against a committed baseline.

    Returns ``(status, lines)`` where status is ``"ok"`` (all rate
    metrics within ``threshold`` of the baseline), ``"fail"`` (some rate
    dropped more than ``threshold``), or ``"skip"`` (the baseline was
    produced on different hardware -- platform string or CPU count
    differ -- or cannot be read, so a wall-clock comparison would be
    meaningless).  Rates are compared, never wall seconds, so a quick
    run can be gated against a full-mode baseline.
    """
    try:
        with open(baseline_path, encoding="utf-8") as fh:
            baseline = json.load(fh)
    except (OSError, ValueError) as exc:
        return "skip", [f"baseline {baseline_path} unreadable: {exc}"]

    for key in ("platform", "cpu_count"):
        if baseline.get(key) != payload.get(key):
            return "skip", [
                "hardware fingerprint mismatch "
                f"({key}: baseline {baseline.get(key)!r}, "
                f"current {payload.get(key)!r}); not comparable"
            ]

    status = "ok"
    lines = []
    base_benches = baseline.get("benchmarks", {})
    cur_benches = payload.get("benchmarks", {})
    for bench, metric in _GATE_METRICS:
        old = base_benches.get(bench, {}).get(metric)
        new = cur_benches.get(bench, {}).get(metric)
        if not old or not new:
            lines.append(f"{bench}.{metric}: missing from baseline or "
                         "current run; not compared")
            continue
        change = (new - old) / old
        verdict = "ok"
        if change < -threshold:
            status = "fail"
            verdict = f"REGRESSION (>{threshold:.0%} drop)"
        lines.append(
            f"{bench}.{metric}: {old:,} -> {new:,} ({change:+.1%}) {verdict}"
        )
    return status, lines


def format_bench(payload: dict) -> str:
    """Render the bench payload as the table the CLI prints."""
    from .common import format_table

    b = payload["benchmarks"]
    sharded = b["sharded_simulator"]
    scale = sharded.get("scaling_4_shards", {})
    if scale.get("skipped"):
        scaling_note = "scaling skipped (1 cpu)"
    else:
        scaling_note = (f"{scale['aggregate_events_per_s']:,} agg/s "
                        f"@4 shards, {scale['efficiency']:.0%} eff")
    sweep = b["parallel_cluster_sweep"]
    if sweep.get("skipped"):
        sweep_cell = "skipped (single-core host)"
        sweep_wall = sweep["serial_wall_s"]
    else:
        sweep_cell = f"{sweep['speedup']}x with {sweep['workers']} workers"
        sweep_wall = sweep["parallel_wall_s"]
    rows = [
        ["event_loop", f"{b['simulator_event_loop']['events_per_s']:,} events/s",
         b["simulator_event_loop"]["wall_s"]],
        ["sharded_simulator",
         f"{sharded['events_per_s']:,} events/s ({scaling_note})",
         sharded["wall_s"]],
        ["simulate_dispatch",
         f"{b['simulate_dispatch']['requests_per_s']:,} reqs/s",
         b["simulate_dispatch"]["wall_s"]],
        ["epoch_schedule",
         f"{b['epoch_schedule']['epochs_per_s']:,} epochs/s "
         f"({b['epoch_schedule']['reuse_fraction']:.0%} reused)",
         b["epoch_schedule"]["wall_s"]],
        ["oracle_vs_sim",
         f"{b['oracle_vs_sim']['oracle_queries_per_s']:,} queries/s "
         f"({b['oracle_vs_sim']['speedup']}x vs simulate)",
         b["oracle_vs_sim"]["wall_s"]],
        ["cluster_headline",
         f"{b['cluster_headline']['sim_ms_per_wall_s']:,} sim-ms/s",
         b["cluster_headline"]["wall_s"]],
        ["mixed_fleet_planning",
         f"{b['mixed_fleet_planning']['plans_per_s']:,} plans/s "
         f"({b['mixed_fleet_planning']['gpus']} GPUs, "
         f"${b['mixed_fleet_planning']['price_per_hour']}/hr)",
         b["mixed_fleet_planning"]["wall_s"]],
        ["parallel_sweep", sweep_cell, sweep_wall],
    ]
    notes = (f"python {payload['python']}, {payload['cpu_count']} cpu(s), "
             f"quick={payload['quick']}")
    return format_table("perf baseline", ["benchmark", "throughput", "wall_s"],
                        rows, notes)


if __name__ == "__main__":
    print(format_bench(run_bench()))
