"""Shared harness for the per-figure/table experiment modules.

Every experiment module exposes a ``run(...)`` returning an
:class:`ExperimentResult` whose rows mirror the paper's table or figure
series, so the benchmarks can both regenerate and sanity-check them.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.nexus import ClusterConfig, NexusCluster
from ..core.query import Query

__all__ = ["ExperimentResult", "max_rate_search", "format_table"]


@dataclass
class ExperimentResult:
    """One reproduced table/figure: named columns + rows + notes."""

    name: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.name}: expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def lookup(self, **key) -> list[list]:
        """Rows matching all given column=value filters."""
        idxs = {self.columns.index(k): v for k, v in key.items()}
        return [
            row for row in self.rows
            if all(row[i] == v for i, v in idxs.items())
        ]

    def __str__(self) -> str:
        return format_table(self.name, self.columns, self.rows, self.notes)


def format_table(name: str, columns: list[str], rows: list[list],
                 notes: str = "") -> str:
    """Render rows as an aligned text table (what the harness prints)."""
    def fmt(v) -> str:
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in str_rows)) if str_rows else len(col)
        for i, col in enumerate(columns)
    ]
    lines = [f"== {name} =="]
    lines.append("  ".join(col.ljust(w) for col, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    if notes:
        lines.append(f"({notes})")
    return "\n".join(lines)


def max_rate_search(
    make_cluster,
    target_good_rate: float = 0.99,
    lo_rps: float = 5.0,
    hi_rps: float = 20_000.0,
    iterations: int = 9,
    duration_ms: float = 10_000.0,
    warmup_ms: float = 2_000.0,
) -> float:
    """The paper's throughput metric on a cluster deployment.

    ``make_cluster(rate_rps)`` must return a fully-declared
    :class:`NexusCluster` offered ``rate_rps`` total.  Binary-searches the
    largest rate whose query good rate stays >= ``target_good_rate``.
    """
    warmup_ms = min(warmup_ms, duration_ms / 2)

    def good(rate: float) -> bool:
        cluster = make_cluster(rate)
        result = cluster.run(duration_ms, warmup_ms)
        # An empty measurement window is evidence of nothing: fail it.
        if result.query_metrics.total == 0:
            return False
        return result.good_rate >= target_good_rate

    if not good(lo_rps):
        return 0.0
    lo, hi = lo_rps, hi_rps
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        if good(mid):
            lo = mid
        else:
            hi = mid
    return lo
