"""Shared harness for the per-figure/table experiment modules.

Every experiment module exposes a ``run(...)`` returning an
:class:`ExperimentResult` whose rows mirror the paper's table or figure
series, so the benchmarks can both regenerate and sanity-check them.

The module also hosts the **parallel experiment runner**: every figure
run is an independent, fully seeded function call, so a sweep of them
fans out across a process pool with no shared state.  Results come back
in submission order and each worker re-seeds from its own kwargs, which
makes parallel output identical to serial output (the serial-vs-parallel
identity test pins this).
"""

from __future__ import annotations

import importlib
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, TypeVar

from ..cluster.nexus import ClusterConfig, NexusCluster
from ..core.query import Query

__all__ = [
    "ExperimentResult",
    "ExperimentRun",
    "max_rate_search",
    "format_table",
    "run_experiment",
    "run_experiments",
    "parallel_map",
]

_T = TypeVar("_T")
_R = TypeVar("_R")


@dataclass
class ExperimentResult:
    """One reproduced table/figure: named columns + rows + notes."""

    name: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)
    notes: str = ""

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.name}: expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def column(self, name: str) -> list:
        idx = self.columns.index(name)
        return [row[idx] for row in self.rows]

    def lookup(self, **key) -> list[list]:
        """Rows matching all given column=value filters."""
        idxs = {self.columns.index(k): v for k, v in key.items()}
        return [
            row for row in self.rows
            if all(row[i] == v for i, v in idxs.items())
        ]

    def __str__(self) -> str:
        return format_table(self.name, self.columns, self.rows, self.notes)


def format_table(name: str, columns: list[str], rows: list[list],
                 notes: str = "") -> str:
    """Render rows as an aligned text table (what the harness prints)."""
    def fmt(v) -> str:
        if isinstance(v, float):
            return f"{v:.4g}"
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    widths = [
        max(len(col), *(len(r[i]) for r in str_rows)) if str_rows else len(col)
        for i, col in enumerate(columns)
    ]
    lines = [f"== {name} =="]
    lines.append("  ".join(col.ljust(w) for col, w in zip(columns, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
    if notes:
        lines.append(f"({notes})")
    return "\n".join(lines)


@dataclass
class ExperimentRun:
    """Outcome of one experiment execution (serial or pooled worker)."""

    name: str
    result: ExperimentResult
    #: wall-clock seconds inside the worker (measurement, not content:
    #: excluded from identity comparisons).
    elapsed_s: float
    #: Algorithm-1 plans validated while producing this figure; summed by
    #: the report so the footer count is identical serial vs parallel.
    plans_checked: int


def run_experiment(name: str, kwargs: dict) -> ExperimentRun:
    """Import and run one experiment module; the process-pool work unit.

    Every experiment's ``run()`` draws all randomness from the seed in its
    own kwargs (or its seeded default), so the result is a pure function
    of ``(name, kwargs)`` -- the property that makes fanning runs across
    processes safe.
    """
    from ..analysis.plan_check import plans_checked

    module = importlib.import_module(f"repro.experiments.{name}")
    before = plans_checked()
    t0 = time.perf_counter()
    result = module.run(**kwargs)
    elapsed = time.perf_counter() - t0
    if isinstance(result, tuple):  # fig13-style (table, extras)
        result = result[0]
    if not isinstance(result, ExperimentResult):
        raise TypeError(f"{name}.run() returned {type(result).__name__}")
    return ExperimentRun(name, result, elapsed, plans_checked() - before)


def run_experiments(
    experiments: list[tuple[str, dict]], workers: int | None = None
) -> list[ExperimentRun]:
    """Run ``(name, kwargs)`` experiments, optionally across a process pool.

    ``workers`` <= 1 (or None) runs serially in this process.  With more
    workers the runs fan out over a ``ProcessPoolExecutor``; results are
    collected in *submission* order regardless of completion order, so the
    output is deterministic and identical to the serial path.
    """
    if workers is None or workers <= 1 or len(experiments) <= 1:
        return [run_experiment(name, kwargs) for name, kwargs in experiments]
    with ProcessPoolExecutor(max_workers=min(workers, len(experiments))) as pool:
        futures = [
            pool.submit(run_experiment, name, kwargs)
            for name, kwargs in experiments
        ]
        return [f.result() for f in futures]


def parallel_map(
    fn: Callable[[_T], _R], items: Iterable[_T], workers: int | None = None
) -> list[_R]:
    """Order-preserving map, optionally across a process pool.

    For fanning independent sweep points (offered rates, alphas, seeds)
    of one experiment across workers.  ``fn`` must be a module-level
    callable (picklable) and each item must carry its own seed; with
    those two properties the parallel result is element-for-element
    identical to the serial one.
    """
    items = list(items)
    if workers is None or workers <= 1 or len(items) <= 1:
        return [fn(item) for item in items]
    with ProcessPoolExecutor(max_workers=min(workers, len(items))) as pool:
        return list(pool.map(fn, items))


def max_rate_search(
    make_cluster,
    target_good_rate: float = 0.99,
    lo_rps: float = 5.0,
    hi_rps: float = 20_000.0,
    iterations: int = 9,
    duration_ms: float = 10_000.0,
    warmup_ms: float = 2_000.0,
) -> float:
    """The paper's throughput metric on a cluster deployment.

    ``make_cluster(rate_rps)`` must return a fully-declared
    :class:`NexusCluster` offered ``rate_rps`` total.  Binary-searches the
    largest rate whose query good rate stays >= ``target_good_rate``.
    """
    warmup_ms = min(warmup_ms, duration_ms / 2)

    def good(rate: float) -> bool:
        cluster = make_cluster(rate)
        result = cluster.run(duration_ms, warmup_ms)
        # An empty measurement window is evidence of nothing: fail it.
        if result.query_metrics.total == 0:
            return False
        return result.good_rate >= target_good_rate

    if not good(lo_rps):
        return 0.0
    lo, hi = lo_rps, hi_rps
    for _ in range(iterations):
        mid = (lo + hi) / 2.0
        if good(mid):
            lo = mid
        else:
            hi = mid
    return lo
