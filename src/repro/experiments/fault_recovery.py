"""Fault recovery: kill k of N backends mid-run, measure the goodput dip.

Not a paper figure -- the SOSP paper treats failures as out of scope --
but the natural stress test of section 5's control plane: the epoch
scheduler owns an incremental plan, so a backend crash is just a forced
epoch with fewer GPUs.  The experiment deploys the standard applications
on a fixed cluster, kills ``kill`` backends at a known instant, and
reports three numbers:

- **detection latency**: crash -> lease-expiry declaration (bounded by
  ``lease_ms + 2 * heartbeat_ms``);
- **dip depth**: the worst windowed goodput after the crash, relative to
  the pre-fault mean;
- **time to recover**: crash -> first window back at >= 95% of the
  pre-fault goodput.

Everything is simulator-driven and seeded: the same arguments produce a
bit-identical table.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cluster.faults import FaultPlan
from ..cluster.nexus import ClusterConfig, ClusterResult, NexusCluster
from ..workloads.apps import all_apps
from .common import ExperimentResult

__all__ = ["run", "FaultRecoveryOutput", "make_fault_cluster"]

#: a window counts as recovered at this fraction of pre-fault goodput.
RECOVERY_THRESHOLD = 0.95


@dataclass
class FaultRecoveryOutput:
    """Everything the recovery experiment measured."""

    pre_fault_goodput_rps: float
    dip_goodput_rps: float
    recovered_goodput_rps: float
    #: crash -> first window back above the recovery threshold; None if
    #: the run ended still degraded.
    time_to_recover_ms: float | None
    #: crash -> first lease-expiry declaration; None if undetected.
    detection_ms: float | None
    window_ms: float
    kill_at_ms: float
    #: (window start ms, goodput rps) series over the whole run.
    goodput_series: list[tuple[float, float]] = field(default_factory=list)
    result: ClusterResult | None = None

    @property
    def dip_fraction(self) -> float:
        """Worst post-crash goodput relative to the pre-fault mean."""
        if self.pre_fault_goodput_rps <= 0:
            return 0.0
        return self.dip_goodput_rps / self.pre_fault_goodput_rps

    @property
    def recovered_fraction(self) -> float:
        if self.pre_fault_goodput_rps <= 0:
            return 0.0
        return self.recovered_goodput_rps / self.pre_fault_goodput_rps


def make_fault_cluster(
    gpus: int = 8,
    per_app_rps: float = 30.0,
    num_apps: int = 3,
    seed: int = 0,
    device: str = "gtx1080ti",
) -> NexusCluster:
    """A fixed-size deployment sized so the plan fills the cluster."""
    config = ClusterConfig(
        device=device,
        max_gpus=gpus,
        expand_to_cluster=False,
        seed=seed,
    )
    cluster = NexusCluster(config)
    for query in all_apps(device)[:num_apps]:
        cluster.add_query(query, rate_rps=per_app_rps)
    return cluster


def _goodput_windows(
    result: ClusterResult, window_ms: float, duration_ms: float
) -> list[tuple[float, float]]:
    """(window start, ok queries per second) over the run, by arrival."""
    n = max(1, int(duration_ms // window_ms))
    counts = [0] * n
    for rec in result.query_metrics.records:
        idx = int(rec.arrival_ms // window_ms)
        if rec.ok and 0 <= idx < n:
            counts[idx] += 1
    return [
        (i * window_ms, c / (window_ms / 1000.0)) for i, c in enumerate(counts)
    ]


def run(
    duration_ms: float = 120_000.0,
    kill_at_ms: float = 40_000.0,
    kill: int = 1,
    gpus: int = 8,
    per_app_rps: float = 30.0,
    num_apps: int = 3,
    window_ms: float = 2_000.0,
    warmup_ms: float = 10_000.0,
    seed: int = 0,
) -> tuple[ExperimentResult, FaultRecoveryOutput]:
    """Kill ``kill`` of ``gpus`` backends at ``kill_at_ms``; measure."""
    if not 0 < kill <= gpus:
        raise ValueError(f"kill must be in 1..{gpus}, got {kill}")
    cluster = make_fault_cluster(
        gpus=gpus, per_app_rps=per_app_rps, num_apps=num_apps, seed=seed,
    )
    faults = FaultPlan()
    for idx in range(kill):
        faults.crash(kill_at_ms, idx)
    result = cluster.run(duration_ms, faults=faults)

    series = _goodput_windows(result, window_ms, duration_ms)
    pre = [
        g for t, g in series
        if warmup_ms <= t and t + window_ms <= kill_at_ms
    ]
    pre_goodput = sum(pre) / len(pre) if pre else 0.0
    # The last window is cut off by the run's tail; ignore it.
    post = [(t, g) for t, g in series
            if t >= kill_at_ms and t + window_ms <= duration_ms]
    dip = min((g for _, g in post), default=0.0)
    recovered_at = None
    for t, g in post:
        if g >= RECOVERY_THRESHOLD * pre_goodput:
            recovered_at = t + window_ms
            break
    tail = [g for t, g in post[-5:]]
    recovered_goodput = sum(tail) / len(tail) if tail else 0.0
    detection = None
    if result.detections:
        detection = min(t for _, t in result.detections) - kill_at_ms

    output = FaultRecoveryOutput(
        pre_fault_goodput_rps=pre_goodput,
        dip_goodput_rps=dip,
        recovered_goodput_rps=recovered_goodput,
        time_to_recover_ms=(
            recovered_at - kill_at_ms if recovered_at is not None else None
        ),
        detection_ms=detection,
        window_ms=window_ms,
        kill_at_ms=kill_at_ms,
        goodput_series=series,
        result=result,
    )

    table = ExperimentResult(
        name=f"Fault recovery: kill {kill} of {gpus} backends",
        columns=["t_s", "goodput_rps", "rel_goodput"],
        notes=(
            f"pre-fault {pre_goodput:.1f} rps; dip "
            f"{output.dip_fraction:.2f}x; detection "
            f"{'-' if detection is None else f'{detection:.0f} ms'}; "
            f"time to recover "
            f"{'-' if output.time_to_recover_ms is None else f'{output.time_to_recover_ms:.0f} ms'}; "
            f"recovered at {output.recovered_fraction:.2f}x"
        ),
    )
    for t, g in series:
        if t + window_ms > duration_ms:
            continue
        rel = g / pre_goodput if pre_goodput > 0 else 0.0
        table.add(round(t / 1000.0, 1), round(g, 2), round(rel, 3))
    return table, output


if __name__ == "__main__":
    tbl, out = run(duration_ms=80_000.0, kill_at_ms=30_000.0)
    print(tbl)
