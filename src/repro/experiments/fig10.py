"""Figure 10: game-analysis case study -- baselines + Nexus ablation.

Section 7.3.1: 20 game streams, each frame requiring six digit
recognitions (per-font LeNet specializations) and one icon recognition
(last-layer-specialized ResNet-50), latency SLO 50 ms, request rates
Zipf-0.9 across games, on a 16-GPU cluster.  The metric is the maximal
query rate with >= 99% served within SLO.

Baseline concession, as in the paper: "we allow the two baselines to
invoke just the ResNet model" (their LeNet throughput collapses from lack
of CPU/GPU parallelism), so TF Serving and Clipper serve icon-only
queries here.

Ablations flip one Nexus feature each: -PB (prefix batching), -SS
(squishy scheduling -> batch-oblivious), -ED (early drop -> lazy),
-OL (CPU/GPU overlap).  Paper: Nexus 4120 r/s = 9.4x Clipper, 12.7x TF;
OL dominates in this tight-SLO/small-model regime (7.4x); -PB 1.7x.
"""

from __future__ import annotations

from ..baselines import clipper_config, tf_serving_config
from ..cluster.nexus import ClusterConfig, NexusCluster
from ..core.query import Query, QueryStage
from ..models.profiler import profile
from ..workloads.apps import game_queries
from ..workloads.arrivals import zipf_rates
from .common import ExperimentResult, max_rate_search

__all__ = ["run", "make_game_cluster", "GAME_SLO_MS"]

GAME_SLO_MS = 50.0
NUM_GAMES = 20
PAPER_RPS = {
    "tf_serving": 440, "clipper": 325, "nexus": 4120,
    "-PB": 2413, "-SS": 2489, "-ED": 3628, "-OL": 557,
}


def icon_only_queries(device: str, num_games: int) -> list[Query]:
    """The baselines' concession: serve only the ResNet icon model."""
    out = []
    for i in range(num_games):
        stage = QueryStage(
            name="icon",
            profile=profile(f"resnet50@game{i}_icon:40", device),
            model_id=f"resnet50@game{i}_icon:40",
        )
        out.append(Query(name=f"game{i}", root=stage, slo_ms=GAME_SLO_MS))
    return out


def make_game_cluster(config: ClusterConfig, total_rate: float,
                      icon_only: bool = False,
                      num_games: int = NUM_GAMES) -> NexusCluster:
    cluster = NexusCluster(config)
    queries = (
        icon_only_queries(config.device, num_games)
        if icon_only
        else game_queries(config.device, num_games, GAME_SLO_MS)
    )
    for query, rate in zip(queries, zipf_rates(total_rate, num_games)):
        cluster.add_query(query, rate_rps=rate)
    return cluster


def _configs(device: str, gpus: int) -> list[tuple[str, ClusterConfig, bool]]:
    return [
        ("tf_serving", tf_serving_config(device, gpus), True),
        ("clipper", clipper_config(device, gpus), True),
        ("nexus", ClusterConfig(device=device, max_gpus=gpus), False),
        ("-PB", ClusterConfig(device=device, max_gpus=gpus,
                              prefix_batching=False), False),
        ("-SS", ClusterConfig(device=device, max_gpus=gpus,
                              scheduler="batch_oblivious"), False),
        ("-ED", ClusterConfig(device=device, max_gpus=gpus,
                              drop_policy="lazy"), False),
        ("-OL", ClusterConfig(device=device, max_gpus=gpus,
                              overlap=False), False),
    ]


def run(device: str = "gtx1080ti", gpus: int = 16,
        duration_ms: float = 8_000.0, iterations: int = 8,
        systems: list[str] | None = None) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 10: game analysis ablation (16 GPUs, SLO 50 ms)",
        columns=["system", "throughput_rps", "paper_rps"],
        notes="baselines serve icon-only queries, as in the paper",
    )
    for name, config, icon_only in _configs(device, gpus):
        if systems is not None and name not in systems:
            continue
        rate = max_rate_search(
            lambda r, c=config, io=icon_only: make_game_cluster(c, r, io),
            duration_ms=duration_ms,
            warmup_ms=duration_ms / 5,
            iterations=iterations,
            hi_rps=40_000.0,
        )
        result.add(name, round(rate), PAPER_RPS[name])
    return result


if __name__ == "__main__":
    print(run())
