"""Figure 11: traffic-monitoring case study -- baselines + Nexus ablation.

Section 7.3.2: SSD object detection feeding VGG-Face and GoogleNet-car
recognizers (Figure 8's dataflow) over 20 streams, latency SLO 400 ms, on
16 GPUs.  Query analysis (QA) replaces prefix batching in this ablation:
the published QA split gives SSD 345 ms of the 400 ms budget, worth ~19%
throughput; -OL matters far less than in the game study (larger models,
looser SLO).

Paper: TF 297, Clipper 227, Nexus 534; -QA 433, -SS 337, -ED 326, -OL 216.
"""

from __future__ import annotations

from ..baselines import clipper_config, tf_serving_config
from ..cluster.nexus import ClusterConfig, NexusCluster
from ..workloads.apps import traffic_query
from .common import ExperimentResult, max_rate_search

__all__ = ["run", "make_traffic_cluster", "TRAFFIC_SLO_MS"]

TRAFFIC_SLO_MS = 400.0
PAPER_RPS = {
    "tf_serving": 297, "clipper": 227, "nexus": 534,
    "-QA": 433, "-SS": 337, "-ED": 326, "-OL": 216,
}


def make_traffic_cluster(config: ClusterConfig, rate: float,
                         gamma_car: float = 1.5,
                         gamma_face: float = 0.5) -> NexusCluster:
    cluster = NexusCluster(config)
    cluster.add_query(
        traffic_query(config.device, TRAFFIC_SLO_MS,
                      gamma_car=gamma_car, gamma_face=gamma_face),
        rate_rps=rate,
    )
    return cluster


def _configs(device: str, gpus: int) -> list[tuple[str, ClusterConfig]]:
    return [
        ("tf_serving", tf_serving_config(device, gpus)),
        ("clipper", clipper_config(device, gpus)),
        ("nexus", ClusterConfig(device=device, max_gpus=gpus)),
        ("-QA", ClusterConfig(device=device, max_gpus=gpus,
                              query_analysis=False)),
        ("-SS", ClusterConfig(device=device, max_gpus=gpus,
                              scheduler="batch_oblivious")),
        ("-ED", ClusterConfig(device=device, max_gpus=gpus,
                              drop_policy="lazy")),
        ("-OL", ClusterConfig(device=device, max_gpus=gpus,
                              overlap=False)),
    ]


def run(device: str = "gtx1080ti", gpus: int = 16,
        duration_ms: float = 10_000.0, iterations: int = 8,
        systems: list[str] | None = None) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 11: traffic analysis ablation (16 GPUs, SLO 400 ms)",
        columns=["system", "throughput_rps", "paper_rps"],
    )
    for name, config in _configs(device, gpus):
        if systems is not None and name not in systems:
            continue
        rate = max_rate_search(
            lambda r, c=config: make_traffic_cluster(c, r),
            duration_ms=duration_ms,
            warmup_ms=duration_ms / 5,
            iterations=iterations,
            hi_rps=8_000.0,
        )
        result.add(name, round(rate), PAPER_RPS[name])
    return result


if __name__ == "__main__":
    print(run())
