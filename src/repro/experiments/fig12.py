"""Figure 12: diurnal throughput variation for traffic analysis.

Section 7.3.2: rush-hour footage detects more vehicles per frame, so the
recognition stages fan out harder (higher gamma) and every system's
throughput falls; Nexus keeps a significant lead, and QA's relative
benefit shrinks as subsystems oversubscribe.

Paper (req/s): TF 227 -> 146, Clipper 297 -> 61*, Nexus-QA 433 -> 254,
Nexus 534 -> 264.  (*the authors could not explain Clipper's rush-hour
collapse.)
"""

from __future__ import annotations

from ..baselines import clipper_config, tf_serving_config
from ..cluster.nexus import ClusterConfig
from ..workloads.traces import rush_hour_gammas
from .common import ExperimentResult, max_rate_search
from .fig11 import make_traffic_cluster

__all__ = ["run"]

PAPER = {
    ("tf_serving", "non-rush"): 227, ("tf_serving", "rush"): 146,
    ("clipper", "non-rush"): 297, ("clipper", "rush"): 61,
    ("nexus-QA", "non-rush"): 433, ("nexus-QA", "rush"): 254,
    ("nexus", "non-rush"): 534, ("nexus", "rush"): 264,
}


def run(device: str = "gtx1080ti", gpus: int = 16,
        duration_ms: float = 10_000.0, iterations: int = 8,
        systems: list[str] | None = None) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 12: rush vs non-rush hour traffic throughput",
        columns=["system", "period", "throughput_rps", "paper_rps"],
    )
    configs = [
        ("tf_serving", tf_serving_config(device, gpus)),
        ("clipper", clipper_config(device, gpus)),
        ("nexus-QA", ClusterConfig(device=device, max_gpus=gpus,
                                   query_analysis=False)),
        ("nexus", ClusterConfig(device=device, max_gpus=gpus)),
    ]
    for name, config in configs:
        if systems is not None and name not in systems:
            continue
        for period in ("non-rush", "rush"):
            gammas = rush_hour_gammas(period == "rush")
            rate = max_rate_search(
                lambda r, c=config, g=gammas: make_traffic_cluster(
                    c, r, gamma_car=g["gamma_car"],
                    gamma_face=g["gamma_face"],
                ),
                duration_ms=duration_ms,
                warmup_ms=duration_ms / 5,
                iterations=iterations,
                hi_rps=8_000.0,
            )
            result.add(name, period, round(rate), PAPER[(name, period)])
    return result


if __name__ == "__main__":
    print(run())
