"""Figure 13: a 1000-second window of the large-scale deployment.

Section 7.4: 100 K80 GPUs, all seven applications with Poisson arrivals;
around t=326 s the workload surges and varies significantly, subsiding at
t=644 s.  Nexus (30 s epochs) detects the change within ~12 s, allocates
GPUs, and deallocates with ~10 s lag; SLO violations average 0.27% with
sporadic >1% spikes around reconfigurations.

Three series, as in the figure: offered workload (req/s), GPUs allocated,
and windowed bad rate.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cluster.nexus import ClusterConfig, NexusCluster
from ..metrics.collector import TimeSeries
from ..workloads.apps import all_apps
from ..workloads.traces import step_rate
from .common import ExperimentResult

__all__ = ["run", "Fig13Output", "make_large_cluster"]


@dataclass
class Fig13Output:
    workload: TimeSeries
    gpus: TimeSeries
    bad_rate: TimeSeries
    overall_bad_rate: float
    epochs: int


def make_large_cluster(
    device: str = "k80",
    gpus: int = 100,
    base_total_rps: float = 550.0,
    num_games: int = 4,
    seed: int = 0,
    epoch_ms: float = 30_000.0,
) -> NexusCluster:
    """The section 7.4 deployment: every app, time-varying Poisson load."""
    config = ClusterConfig(
        device=device,
        max_gpus=gpus,
        dynamic=True,
        expand_to_cluster=False,
        epoch_ms=epoch_ms,
        seed=seed,
    )
    cluster = NexusCluster(config)
    queries = all_apps(device, num_games=num_games)
    per_app = base_total_rps / len(queries)
    for query in queries:
        cluster.add_query(
            query,
            rate_rps=per_app,
            arrival="poisson",
            rate_fn=lambda t, r=per_app: step_rate(r, t),
        )
    return cluster


def run(duration_ms: float = 1_000_000.0, window_ms: float = 10_000.0,
        gpus: int = 100, base_total_rps: float = 550.0,
        num_games: int = 4, seed: int = 0) -> tuple[ExperimentResult, Fig13Output]:
    cluster = make_large_cluster(
        gpus=gpus, base_total_rps=base_total_rps, num_games=num_games,
        seed=seed,
    )
    res = cluster.run(duration_ms)
    # The paper's Figure 13 bad-rate panel counts *requests* ("violates
    # latency SLOs on 0.27% of requests"), i.e. model invocations.
    inv = res.invocation_metrics
    output = Fig13Output(
        workload=res.query_metrics.workload_series(window_ms, duration_ms),
        gpus=inv.gpu_count_series(window_ms, duration_ms),
        bad_rate=inv.bad_rate_series(window_ms, duration_ms),
        overall_bad_rate=inv.bad_rate,
        epochs=res.epochs,
    )
    result = ExperimentResult(
        name="Figure 13: 1000 s large-scale deployment window",
        columns=["t_s", "workload_rps", "gpus", "bad_rate"],
        notes=f"overall bad rate {output.overall_bad_rate:.4f} "
              f"(paper: 0.0027); {output.epochs} epochs",
    )
    for (t, w), g, b in zip(output.workload.points(),
                            output.gpus.values,
                            output.bad_rate.values):
        result.add(round(t / 1000.0), round(w, 1), g, round(b, 4))
    return result, output


if __name__ == "__main__":
    table, _ = run(duration_ms=300_000.0, gpus=40, base_total_rps=800.0)
    print(table)
