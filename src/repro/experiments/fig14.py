"""Figure 14: GPU multiplexing -- throughput vs co-located model count/SLO.

Section 7.5: increasing numbers of Inception copies share ONE GPU with a
100 ms SLO (panel a), then 3 copies under SLOs from 50 to 200 ms (panel
b).  Four systems: Clipper (independent containers, interference), TF
Serving (round robin, no interference, no overlap/early-drop),
"Nexus-parallel" (Nexus without interference control: containers in
parallel but overlapped), and Nexus.

Paper: Nexus achieves 1.4-2.1x TF Serving and 1.9-9.8x Clipper on a
single GPU; Nexus-parallel sits between.
"""

from __future__ import annotations

from ..baselines import clipper_config, tf_serving_config
from ..baselines.clipper import CLIPPER_INTERFERENCE
from ..cluster.nexus import ClusterConfig, NexusCluster
from ..core.query import Query, QueryStage
from ..models.profiler import profile
from .common import ExperimentResult, max_rate_search

__all__ = ["run", "make_multiplex_cluster"]


def _nexus_parallel_config(device: str) -> ClusterConfig:
    """Nexus minus interference control: greedy containers, but keeps
    overlap and early drop (section 7.5's 'Nexus-parallel')."""
    return ClusterConfig(
        device=device, max_gpus=1, scheduler="squishy", pacing="greedy",
        drop_policy="early", overlap=True, prefix_batching=False,
        query_analysis=False, interference_factor=CLIPPER_INTERFERENCE / 2,
        paced=False,
    )


def make_multiplex_cluster(config: ClusterConfig, rate: float,
                           num_models: int, slo_ms: float) -> NexusCluster:
    """num_models distinct Inception-v3 variants sharing one GPU."""
    cluster = NexusCluster(config)
    for i in range(num_models):
        stage = QueryStage(
            name="inception",
            profile=profile(f"inception_v3@copy{i}:1000", config.device),
            model_id=f"inception_v3@copy{i}:1000",
        )
        cluster.add_query(
            Query(name=f"m{i}", root=stage, slo_ms=slo_ms),
            rate_rps=rate / num_models,
        )
    return cluster


def _systems(device: str):
    return [
        ("clipper", clipper_config(device, max_gpus=1)),
        ("tf_serving", tf_serving_config(device, max_gpus=1)),
        ("nexus_parallel", _nexus_parallel_config(device)),
        ("nexus", ClusterConfig(device=device, max_gpus=1,
                                prefix_batching=False)),
    ]


def run(device: str = "gtx1080ti", duration_ms: float = 10_000.0,
        iterations: int = 8,
        model_counts: tuple[int, ...] = (2, 3, 4, 5),
        slos: tuple[float, ...] = (50.0, 100.0, 150.0, 200.0),
        systems: list[str] | None = None) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 14: GPU multiplexing on one GPU",
        columns=["panel", "x", "system", "throughput_rps"],
        notes="(a) varies co-located models at SLO 100 ms; "
              "(b) varies SLO with 3 models",
    )
    for n in model_counts:
        for name, config in _systems(device):
            if systems is not None and name not in systems:
                continue
            rate = max_rate_search(
                lambda r, c=config, k=n: make_multiplex_cluster(c, r, k, 100.0),
                duration_ms=duration_ms, warmup_ms=duration_ms / 5,
                iterations=iterations, hi_rps=4_000.0,
            )
            result.add("a:models", n, name, round(rate))
    for slo in slos:
        for name, config in _systems(device):
            if systems is not None and name not in systems:
                continue
            rate = max_rate_search(
                lambda r, c=config, s=slo: make_multiplex_cluster(c, r, 3, s),
                duration_ms=duration_ms, warmup_ms=duration_ms / 5,
                iterations=iterations, hi_rps=4_000.0,
            )
            result.add("b:slo_ms", slo, name, round(rate))
    return result


if __name__ == "__main__":
    print(run(model_counts=(2, 4), slos=(50.0, 200.0)))
