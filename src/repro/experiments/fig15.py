"""Figure 15: prefix batching -- throughput and memory vs variant count.

Section 7.5: 2-10 ResNet-50 variants differing only in the last layer(s),
on a single GPU with a 100 ms SLO.

(a) Throughput with vs without prefix batching: without it each variant
    executes in its own sub-batch inside the shared duty cycle, so
    aggregate throughput falls as variants multiply; with it the shared
    trunk executes one fused batch (paper: up to 110% higher throughput).
(b) GPU memory: with prefix batching, extra variants add only their
    suffix weights (negligible for "1 FC"; growing for 2-3 FC suffixes);
    without it every variant loads its full weights and memory soon
    exhausts the device (paper's black line).
"""

from __future__ import annotations

from ..core.prefix import PrefixGroup, group_memory_bytes, unbatched_memory_bytes
from ..core.profile import EffectiveProfile
from ..models import get_device, get_model, prefix_suffix_profiles, profile_model
from ..models.specialize import make_variants
from .common import ExperimentResult

__all__ = ["run", "prefix_throughput", "unbatched_throughput"]

SLO_MS = 100.0


def _fused_profile(device_name: str, num_variants: int,
                   suffix_layers: int = 1) -> EffectiveProfile:
    base = get_model("resnet50")
    variants = make_variants(base, num_variants, suffix_layers=suffix_layers)
    device = get_device(device_name)
    prefix, suffixes, plen = prefix_suffix_profiles(variants, device)
    group = PrefixGroup([m.name for m in variants], prefix, suffixes, plen)
    return EffectiveProfile(base=group.combined_profile(), overlap=True)


def prefix_throughput(device_name: str, num_variants: int) -> float:
    """Aggregate req/s of the fused family on one GPU under the SLO."""
    prof = _fused_profile(device_name, num_variants)
    return prof.peak_throughput_under_slo(SLO_MS)


def unbatched_throughput(device_name: str, num_variants: int) -> float:
    """Aggregate req/s when each variant runs its own sub-batch.

    k variants share the GPU round-robin: worst-case latency for any
    variant is the full cycle (k batches) plus its own batch, so each
    batch must satisfy (k+1) * l(b) <= SLO.
    """
    device = get_device(device_name)
    prof = EffectiveProfile(
        base=profile_model(get_model("resnet50"), device), overlap=True
    )
    budget = SLO_MS / (num_variants + 1)
    b = prof.max_batch_with_latency(budget)
    if b == 0:
        return 0.0
    # k sub-batches of size b execute per cycle of k * l(b).
    return num_variants * b / (num_variants * prof.latency(b)) * 1000.0


def run(device_name: str = "gtx1080ti",
        variant_counts: tuple[int, ...] = (2, 4, 6, 8, 10)) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 15: prefix batching throughput and memory",
        columns=["num_models", "tput_no_pb_rps", "tput_pb_rps", "pb_gain",
                 "mem_no_pb_mb", "mem_1fc_mb", "mem_2fc_mb", "mem_3fc_mb"],
        notes="one GPU, SLO 100 ms; paper: up to 110% higher throughput, "
              "near-flat memory for 1-FC suffixes",
    )
    device = get_device(device_name)
    base = get_model("resnet50")
    for k in variant_counts:
        no_pb = unbatched_throughput(device_name, k)
        pb = prefix_throughput(device_name, k)

        mem_cols = []
        for fc in (1, 2, 3):
            variants = make_variants(base, k, suffix_layers=fc)
            prefix, suffixes, plen = prefix_suffix_profiles(variants, device)
            group = PrefixGroup([m.name for m in variants], prefix,
                                suffixes, plen)
            mem_cols.append(group_memory_bytes(group) / 1e6)
        full_profiles = [
            profile_model(m, device) for m in make_variants(base, k)
        ]
        mem_no_pb = unbatched_memory_bytes(full_profiles) / 1e6

        result.add(k, round(no_pb, 1), round(pb, 1),
                   round(pb / max(no_pb, 1e-9), 2), round(mem_no_pb),
                   *(round(m) for m in mem_cols))
    return result


if __name__ == "__main__":
    print(run())
