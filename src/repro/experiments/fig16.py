"""Figure 16: squishy scheduling vs batch-oblivious across session mixes.

Section 7.5: 16 sessions scheduled onto 8 GPUs under five scenarios --
(a) Inception with mixed SLOs 50-200 ms, (b) ResNet with mixed SLOs,
(c) Inception with Zipf-0.9 mixed rates, (d) ResNet with mixed rates,
(e) 8 model architectures x {50, 100} ms SLOs.  The figure reports
throughput of Nexus relative to the batch-oblivious baseline (both on the
Nexus runtime).  Paper: squishy wins every mix; largest gains (up to 64%)
on mixed rates, smallest (11%) on mixed models.
"""

from __future__ import annotations

from ..cluster.nexus import ClusterConfig, NexusCluster
from ..core.query import Query, QueryStage
from ..models.profiler import profile
from ..workloads.arrivals import zipf_rates
from .common import ExperimentResult, max_rate_search

__all__ = ["run", "SCENARIOS", "make_mix_cluster"]

_MIXED_SLOS = (50.0, 100.0, 150.0, 200.0) * 4
_EIGHT_MODELS = (
    "inception_v3", "resnet50", "googlenet", "mobilenet_v1",
    "vgg16", "inception_v4", "darknet53", "lenet5",
)


def _sessions(scenario: str) -> list[tuple[str, float, float]]:
    """Return 16 sessions as (model_id, slo_ms, rate_weight)."""
    if scenario == "mix_slos_inception":
        return [(f"inception_v3@v{i}:100", _MIXED_SLOS[i], 1.0)
                for i in range(16)]
    if scenario == "mix_slos_resnet":
        return [(f"resnet50@v{i}:100", _MIXED_SLOS[i], 1.0)
                for i in range(16)]
    if scenario == "mix_rates_inception":
        weights = zipf_rates(16.0, 16)
        return [(f"inception_v3@v{i}:100", 100.0, w)
                for i, w in enumerate(weights)]
    if scenario == "mix_rates_resnet":
        weights = zipf_rates(16.0, 16)
        return [(f"resnet50@v{i}:100", 100.0, w)
                for i, w in enumerate(weights)]
    if scenario == "mix_models_slos":
        out = []
        for i, model in enumerate(_EIGHT_MODELS):
            for slo in (100.0, 200.0):
                out.append((f"{model}@v{i}:100", slo, 1.0))
        return out
    raise ValueError(f"unknown scenario {scenario!r}")


SCENARIOS = (
    "mix_slos_inception",
    "mix_slos_resnet",
    "mix_rates_inception",
    "mix_rates_resnet",
    "mix_models_slos",
)


def make_mix_cluster(config: ClusterConfig, total_rate: float,
                     scenario: str) -> NexusCluster:
    cluster = NexusCluster(config)
    sessions = _sessions(scenario)
    total_w = sum(w for _, _, w in sessions)
    for i, (model_id, slo, weight) in enumerate(sessions):
        stage = QueryStage(name="m", profile=profile(model_id, config.device),
                           model_id=model_id)
        cluster.add_query(
            Query(name=f"s{i}", root=stage, slo_ms=slo),
            rate_rps=total_rate * weight / total_w,
        )
    return cluster


def run(device: str = "gtx1080ti", gpus: int = 8,
        duration_ms: float = 8_000.0, iterations: int = 8,
        scenarios: tuple[str, ...] = SCENARIOS) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 16: squishy vs batch-oblivious scheduling",
        columns=["scenario", "baseline_rps", "nexus_rps", "relative"],
        notes="16 sessions on 8 GPUs; prefix batching disabled to isolate "
              "the scheduler, as in the paper",
    )
    for scenario in scenarios:
        rates = {}
        for label, scheduler in (("baseline", "batch_oblivious"),
                                 ("nexus", "squishy")):
            config = ClusterConfig(
                device=device, max_gpus=gpus, scheduler=scheduler,
                prefix_batching=False, query_analysis=False,
            )
            rates[label] = max_rate_search(
                lambda r, c=config, s=scenario: make_mix_cluster(c, r, s),
                duration_ms=duration_ms, warmup_ms=duration_ms / 5,
                iterations=iterations, lo_rps=80.0, hi_rps=30_000.0,
            )
        result.add(scenario, round(rates["baseline"]), round(rates["nexus"]),
                   round(rates["nexus"] / max(rates["baseline"], 1e-9), 3))
    return result


if __name__ == "__main__":
    print(run(scenarios=("mix_rates_inception",)))
