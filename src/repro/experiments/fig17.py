"""Figure 17: complex query analysis vs even latency splits.

Section 7.5: a two-stage query -- SSD detection feeding Inception
recognition gamma times per frame -- on 8 GPUs, with the whole-query SLO
swept over {300, 400, 500} ms and gamma over {0.1, 1, 10}.  The baseline
splits the SLO evenly across stages; query analysis adapts the split to
the profiles and gamma.  Paper: QA yields 13-55% higher throughput.
"""

from __future__ import annotations

from ..cluster.nexus import ClusterConfig, NexusCluster
from ..core.query import Query, QueryStage
from ..models.profiler import profile
from .common import ExperimentResult, max_rate_search

__all__ = ["run", "make_qa_cluster"]


def make_qa_cluster(config: ClusterConfig, rate: float,
                    slo_ms: float, gamma: float) -> NexusCluster:
    cluster = NexusCluster(config)
    root = QueryStage("ssd", profile("ssd_vgg", config.device),
                      model_id="ssd_vgg")
    root.add_child(
        QueryStage("inception", profile("inception_v3", config.device),
                   gamma=gamma, model_id="inception_v3")
    )
    cluster.add_query(Query("qa", root, slo_ms), rate_rps=rate)
    return cluster


def run(device: str = "gtx1080ti", gpus: int = 8,
        duration_ms: float = 10_000.0, iterations: int = 10,
        slos: tuple[float, ...] = (300.0, 400.0, 500.0),
        gammas: tuple[float, ...] = (0.1, 1.0, 10.0)) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 17: query analysis vs even split (SSD -> Inception)",
        columns=["slo_ms", "gamma", "baseline_rps", "nexus_rps", "gain"],
        notes="paper: QA gives 13-55% higher throughput",
    )
    for slo in slos:
        for gamma in gammas:
            rates = {}
            for label, qa in (("baseline", False), ("nexus", True)):
                config = ClusterConfig(
                    device=device, max_gpus=gpus, query_analysis=qa,
                    prefix_batching=False,
                )
                rates[label] = max_rate_search(
                    lambda r, c=config, s=slo, g=gamma:
                        make_qa_cluster(c, r, s, g),
                    duration_ms=duration_ms, warmup_ms=duration_ms / 5,
                    iterations=iterations, hi_rps=2_000.0,
                )
            result.add(slo, gamma, round(rates["baseline"]),
                       round(rates["nexus"]),
                       round(rates["nexus"] / max(rates["baseline"], 1e-9), 3))
    return result


if __name__ == "__main__":
    print(run(slos=(400.0,), gammas=(1.0,)))
