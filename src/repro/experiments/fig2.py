"""Table 2 / Figure 2: the squishy-bin-packing worked example of section 4.1.

Reproduces both regimes:

- *saturate* (Figure 2a): models A/B/C each with enough load for whole
  GPUs -- batch 16, per-GPU throughputs 160/128/128 req/s;
- *residual* (Figure 2b): A=64, B=32, C=32 req/s -- A(batch 8) and
  B(batch 4) share a 125 ms duty cycle, C gets its own GPU.
"""

from __future__ import annotations

from ..analysis.plan_check import assert_valid_plan
from ..core.profile import TabulatedProfile
from ..core.session import Session, SessionLoad
from ..core.squishy import squishy_bin_packing
from .common import ExperimentResult

__all__ = ["run", "table2_profiles", "residual_loads"]


def table2_profiles() -> dict[str, TabulatedProfile]:
    """The exact batching profiles of Table 2."""
    return {
        "A": TabulatedProfile(name="A", points=((4, 50.0), (8, 75.0), (16, 100.0))),
        "B": TabulatedProfile(name="B", points=((4, 50.0), (8, 90.0), (16, 125.0))),
        "C": TabulatedProfile(name="C", points=((4, 60.0), (8, 95.0), (16, 125.0))),
    }


SLOS = {"A": 200.0, "B": 250.0, "C": 250.0}


def residual_loads() -> list[SessionLoad]:
    """Section 4.1's residual workload: A=64, B=C=32 req/s."""
    profiles = table2_profiles()
    rates = {"A": 64.0, "B": 32.0, "C": 32.0}
    return [
        SessionLoad(Session(m, SLOS[m]), rates[m], profiles[m])
        for m in ("A", "B", "C")
    ]


def run() -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 2: resource allocation example (Table 2 profiles)",
        columns=["regime", "gpu", "sessions", "batches", "duty_ms",
                 "occupancy", "throughput_rps"],
        notes="paper: saturate A/B/C = 160/128/128 r/s at batch 16; "
              "residual packs A(b=8)+B(b=4) in a 125 ms cycle, C alone",
    )

    # Saturate regime: peak single-GPU throughputs.
    profiles = table2_profiles()
    for m in ("A", "B", "C"):
        prof = profiles[m]
        batch = prof.max_batch_under_slo(SLOS[m])
        result.add("saturate", m, m, batch, round(prof.latency(batch), 1),
                   1.0, round(prof.throughput(batch), 1))

    # Residual regime: the packing itself (invariant-checked before we
    # report numbers from it).
    plan = assert_valid_plan(
        squishy_bin_packing(residual_loads()), context="fig2 residual"
    )
    for i, gpu in enumerate(plan.gpus):
        names = "+".join(a.session_id.split("@")[0] for a in gpu.allocations)
        batches = "+".join(str(a.batch) for a in gpu.allocations)
        tput = sum(
            gpu.throughput_rps(a.session_id) for a in gpu.allocations
        )
        result.add("residual", f"gpu{i}", names, batches,
                   round(gpu.duty_cycle_ms, 1), round(gpu.occupancy, 2),
                   round(tput, 1))
    return result


if __name__ == "__main__":
    print(run())
