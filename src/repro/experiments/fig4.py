"""Figures 3-4: average throughput of latency-split plans vs fan-out gamma.

Uses Figure 3's exact (latency, throughput) table for models X and Y and
the section 4.2 balance condition gamma*p*T_X = q*T_Y, reproducing Figure
4's nine cells.  Also runs the section 6.2 DP on the same profiles to show
it picks (one of) the best plans for each gamma.
"""

from __future__ import annotations

from ..core.profile import TabulatedProfile
from ..core.query import Query, QueryStage, plan_query
from .common import ExperimentResult

__all__ = ["run", "average_throughput_closed_form", "FIG3"]

#: Figure 3: latency budget (ms) -> per-GPU throughput (req/s).
FIG3 = {
    "X": {40.0: 200.0, 50.0: 250.0, 60.0: 300.0},
    "Y": {40.0: 300.0, 50.0: 400.0, 60.0: 500.0},
}

#: Figure 4's published cells for side-by-side reporting.
PAPER = {
    (40, 60): {0.1: 192.3, 1.0: 142.9, 10.0: 40.0},
    (50, 50): {0.1: 235.3, 1.0: 153.8, 10.0: 34.5},
    (60, 40): {0.1: 272.7, 1.0: 150.0, 10.0: 27.3},
}


def average_throughput_closed_form(tx: float, ty: float, gamma: float) -> float:
    """Section 4.2: with gamma*p*T_X = q*T_Y, average throughput is
    ``p*T_X / (p+q) = T_X*T_Y / (T_Y + gamma*T_X)``."""
    return tx * ty / (ty + gamma * tx)


def fig3_tabulated() -> tuple[TabulatedProfile, TabulatedProfile]:
    """Figure 3 as batching profiles (batch = latency * throughput)."""
    def to_profile(name: str) -> TabulatedProfile:
        pts = tuple(
            (round(lat * tput / 1000.0), lat)
            for lat, tput in sorted(FIG3[name].items())
        )
        return TabulatedProfile(name=name, points=pts)

    return to_profile("X"), to_profile("Y")


def run() -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 4: average throughput of latency split plans vs gamma",
        columns=["split_x_ms", "split_y_ms", "gamma", "avg_rps", "paper_rps"],
        notes="closed form from Figure 3's table; DP rows appended",
    )
    for (bx, by), cells in PAPER.items():
        for gamma, paper_val in cells.items():
            avg = average_throughput_closed_form(
                FIG3["X"][float(bx)], FIG3["Y"][float(by)], gamma
            )
            result.add(bx, by, gamma, round(avg, 1), paper_val)

    # Section 6.2's DP on the same profiles: which split does it pick?
    x, y = fig3_tabulated()
    for gamma in (0.1, 1.0, 10.0):
        root = QueryStage("X", x)
        root.add_child(QueryStage("Y", y, gamma=gamma))
        query = Query("xy", root, slo_ms=100.0)
        split = plan_query(query, rate_rps=1000.0, epsilon_ms=10.0)
        result.add(
            round(split.budgets_ms["X"]), round(split.budgets_ms["Y"]),
            gamma, round(split.rate_rps / split.total_gpus, 1), "DP-chosen"
        )
    return result


if __name__ == "__main__":
    print(run())
