"""Figure 5: bad rate of lazy dropping vs alpha, uniform vs Poisson.

Setup from section 4.3: latency SLO 100 ms, optimal single-GPU throughput
fixed at 500 req/s (so the optimal batch is 25 and ``beta = 50 -
25*alpha``), offered load at 90% of optimal, alpha swept over
[1.0, 1.8].  Lazy dropping collapses under Poisson arrivals when alpha is
small (beta high): forced small batches stop amortizing the fixed cost.
"""

from __future__ import annotations

from ..core.drop import LazyDropPolicy, simulate_dispatch
from ..core.profile import LinearProfile
from ..workloads.arrivals import poisson_arrivals, uniform_arrivals
from .common import ExperimentResult

__all__ = ["run", "fig5_profile", "ALPHAS"]

SLO_MS = 100.0
OPTIMAL_RPS = 500.0
LOAD_FRACTION = 0.9
ALPHAS = (1.0, 1.2, 1.4, 1.6, 1.8)


def fig5_profile(alpha: float) -> LinearProfile:
    """SLO 100 ms and 500 r/s optimal => B = 25, beta = 50 - 25*alpha."""
    optimal_batch = int(OPTIMAL_RPS * SLO_MS / 2.0 / 1000.0)
    beta = SLO_MS / 2.0 - optimal_batch * alpha
    return LinearProfile(name=f"fig5-a{alpha}", alpha=alpha, beta=beta,
                         max_batch=64)


def run(duration_ms: float = 60_000.0, seed: int = 42) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 5: lazy dropping bad rate vs alpha",
        columns=["alpha", "beta", "arrival", "bad_rate", "mean_batch"],
        notes="paper: Poisson bad rate falls from ~40% to ~0 as alpha "
              "grows; uniform stays near 0",
    )
    rate = OPTIMAL_RPS * LOAD_FRACTION
    for alpha in ALPHAS:
        prof = fig5_profile(alpha)
        for label, gen in (("uniform", uniform_arrivals),
                           ("poisson", poisson_arrivals)):
            arrivals = gen(rate, duration_ms, seed=seed)
            stats = simulate_dispatch(arrivals, prof, SLO_MS, LazyDropPolicy())
            result.add(alpha, round(prof.beta, 1), label,
                       round(stats.bad_rate, 4), round(stats.mean_batch, 1))
    return result


if __name__ == "__main__":
    print(run())
