"""Figure 9: maximal throughput of lazy vs early drop vs alpha.

Same parameterization as Figure 5; the metric is the paper's goodput: the
largest offered rate at which >= 99% of requests are served within the
SLO.  The 'optimal' line is the profile's SLO-bounded peak throughput
(500 req/s by construction).  Paper: early drop achieves up to ~25% more
than lazy at small alpha.
"""

from __future__ import annotations

from ..core.drop import EarlyDropPolicy, LazyDropPolicy, max_goodput
from ..workloads.arrivals import poisson_arrivals
from .common import ExperimentResult
from .fig5 import ALPHAS, OPTIMAL_RPS, SLO_MS, fig5_profile

__all__ = ["run"]


def run(duration_ms: float = 30_000.0, seed: int = 7,
        iterations: int = 9) -> ExperimentResult:
    result = ExperimentResult(
        name="Figure 9: max throughput, lazy vs early drop",
        columns=["alpha", "lazy_rps", "early_rps", "optimal_rps",
                 "early_gain"],
        notes="99% goodput under Poisson arrivals; paper: early drop up "
              "to ~25% higher than lazy",
    )
    for alpha in ALPHAS:
        prof = fig5_profile(alpha)
        target_batch = prof.max_batch_under_slo(SLO_MS)

        def arrivals(rate):
            return poisson_arrivals(rate, duration_ms, seed=seed)

        lazy = max_goodput(arrivals, prof, SLO_MS, LazyDropPolicy,
                           iterations=iterations)
        early = max_goodput(arrivals, prof, SLO_MS,
                            lambda: EarlyDropPolicy(target_batch),
                            iterations=iterations)
        result.add(alpha, round(lazy, 1), round(early, 1), OPTIMAL_RPS,
                   round(early / max(lazy, 1e-9), 3))
    return result


if __name__ == "__main__":
    print(run())
