"""Appendix A companion: greedy squishy packing vs the exact optimum.

The paper solves the section 6.1 integer program with CPLEX on benchmark
workloads and reports it intractable (hours for 25 sessions), justifying
the greedy algorithm.  Our exact solver (DP over subsets) plays CPLEX's
role at small n: this experiment samples random residual workloads and
reports the greedy algorithm's optimality gap.
"""

from __future__ import annotations

import numpy as np

from ..analysis.plan_check import assert_valid_plan
from ..core.ilp import exact_min_gpus
from ..core.profile import LinearProfile
from ..core.session import Session, SessionLoad
from ..core.squishy import squishy_bin_packing
from .common import ExperimentResult

__all__ = ["run", "random_instance"]


def random_instance(n: int, rng: np.random.Generator) -> list[SessionLoad]:
    """A random residual workload of n sessions."""
    loads = []
    for i in range(n):
        alpha = float(rng.uniform(0.2, 2.0))
        beta = float(rng.uniform(2.0, 30.0))
        slo = float(rng.uniform(80.0, 400.0))
        profile = LinearProfile(name=f"m{i}", alpha=alpha, beta=beta,
                                max_batch=64)
        # Keep rates residual-sized: below one GPU's peak for this SLO.
        peak = profile.peak_throughput_under_slo(slo)
        if peak <= 0:
            continue
        rate = float(rng.uniform(0.05, 0.8)) * peak
        loads.append(SessionLoad(Session(f"m{i}", slo), rate, profile))
    return loads


def run(sizes: tuple[int, ...] = (4, 6, 8, 10), trials: int = 10,
        seed: int = 0) -> ExperimentResult:
    result = ExperimentResult(
        name="Greedy squishy packing vs exact optimum (Appendix A companion)",
        columns=["n_sessions", "trials", "mean_exact", "mean_greedy",
                 "mean_gap", "worst_gap"],
        notes="gap = greedy_gpus / exact_gpus",
    )
    rng = np.random.default_rng(seed)
    for n in sizes:
        gaps, exacts, greedys = [], [], []
        for _ in range(trials):
            loads = random_instance(n, rng)
            if not loads:
                continue
            exact = exact_min_gpus(loads).num_gpus
            greedy = assert_valid_plan(
                squishy_bin_packing(loads), context=f"ilp_gap n={n}"
            ).num_gpus
            exacts.append(exact)
            greedys.append(greedy)
            gaps.append(greedy / max(exact, 1))
        result.add(n, len(gaps), round(float(np.mean(exacts)), 2),
                   round(float(np.mean(greedys)), 2),
                   round(float(np.mean(gaps)), 3),
                   round(float(np.max(gaps)), 3))
    return result


if __name__ == "__main__":
    print(run())
