"""Megascale serving: 10k-GPU, 1000-session days in simulated minutes.

The paper's deployments top out at dozens of GPUs; this experiment asks
what the simulator stack can say about *fleet*-scale serving.  The
cluster is split into independent shards -- session popularity couples
sessions to their own shard's GPUs, never across shards -- so each shard
is a self-contained :class:`~repro.cluster.nexus.NexusCluster` timeline
that a worker process can run end to end (the *federated* execution
mode; the in-process barrier-synchronized mode lives in
:mod:`repro.cluster.sharded`).

Each shard serves a slice of the sessions under a compressed synthetic
day: diurnal popularity drift (every session peaks at its own hour),
regional waves (follow-the-sun demand), and flash crowds (sudden spikes
with exponential cool-down) from :mod:`repro.workloads.traces`, plus a
seeded crash/recovery fault plan.  Workers run with summary-mode metrics
(counters + log-histograms, never per-request records) and return small
dicts; live simulator state never crosses the process boundary.

Reported per shard and in aggregate: goodput, good rate, latency tails,
plan churn (epochs), failure detections and mean detection latency, and
simulator event throughput.
"""

from __future__ import annotations

import bisect
import math
import time
from dataclasses import dataclass

from ..cluster.faults import CRASH, seeded_plan
from ..cluster.nexus import ClusterConfig, NexusCluster
from ..simulation.sharded import shard_map
from ..workloads.apps import game_query
from ..workloads.traces import DiurnalDrift, FlashCrowd, RegionalWave
from .common import ExperimentResult

__all__ = ["run", "ShardSpec", "run_shard"]


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker needs to rebuild and run one shard.

    Plain picklable data -- the worker constructs the cluster, traffic
    and fault plan from this spec, so results are a pure function of it.
    """

    shard_id: int
    gpus: int
    sessions: int
    duration_ms: float
    day_ms: float
    base_rps: float
    seed: int
    device: str = "gtx1080ti"
    crash_rate_per_min: float = 2.0
    recover_after_ms: float = 10_000.0


def _rate_fn(spec: ShardSpec, i: int):
    """Session ``i``'s demand curve: drift, wave, or flash crowd."""
    kind = i % 3
    if kind == 0:
        return DiurnalDrift(
            spec.base_rps,
            peak_hour=24.0 * i / max(1, spec.sessions),
            day_ms=spec.day_ms,
        )
    if kind == 1:
        return RegionalWave(
            2.0 * spec.base_rps, region=i % 4, n_regions=4,
            day_ms=spec.day_ms,
        )
    return FlashCrowd(
        spec.base_rps,
        start_ms=(0.2 + 0.6 * (i % 7) / 7.0) * spec.duration_ms,
        magnitude=6.0,
        ramp_ms=spec.duration_ms / 50.0,
        decay_ms=spec.duration_ms / 10.0,
    )


def run_shard(spec: ShardSpec) -> dict:
    """Build, serve and summarize one shard (module-level: picklable)."""
    cfg = ClusterConfig(
        device=spec.device,
        max_gpus=spec.gpus,
        expand_to_cluster=False,
        summary_metrics=True,
        epoch_ms=spec.duration_ms / 8.0,
        heartbeat_ms=500.0,
        lease_ms=2_000.0,
        seed=spec.seed,
    )
    cluster = NexusCluster(cfg)
    for i in range(spec.sessions):
        query = game_query(
            spec.device, game_id=spec.shard_id * spec.sessions + i
        )
        # Plan for each session's peak so flash crowds have headroom.
        rate_fn = _rate_fn(spec, i)
        peak = max(
            rate_fn(t)
            for t in (
                k * spec.duration_ms / 16.0 for k in range(17)
            )
        )
        cluster.add_query(query, rate_rps=peak, rate_fn=rate_fn)

    # Victims drawn from the slots the plan actually drafts (the fleet
    # cap may be far larger than demand); crashes against never-drafted
    # slots would be skipped and teach nothing about recovery.
    drafted = max(1, min(spec.gpus, cluster.plan().num_gpus))
    faults = seeded_plan(
        spec.seed + 7_919,
        num_backends=drafted,
        duration_ms=spec.duration_ms,
        crash_rate_per_min=spec.crash_rate_per_min,
        recover_after_ms=spec.recover_after_ms,
        start_ms=spec.duration_ms * 0.1,
    )

    wall_start = time.perf_counter()
    result = cluster.run(spec.duration_ms, faults=faults)
    wall_s = time.perf_counter() - wall_start

    # A slot can crash, recover and crash again; pair each detection
    # with the latest crash at or before it, not a dict's last-write.
    crashes_by_slot: dict[int, list[float]] = {}
    for t, kind, idx in (result.fault_log or []):
        if kind == CRASH:
            crashes_by_slot.setdefault(idx, []).append(t)
    delays = []
    for idx, declared in (result.detections or []):
        times = crashes_by_slot.get(idx, [])
        i = bisect.bisect_right(times, declared) - 1
        if i >= 0:
            delays.append(declared - times[i])
    qm = result.query_metrics
    return {
        "shard": spec.shard_id,
        "gpus": result.gpus_used,
        "sessions": spec.sessions,
        "queries": qm.total,
        "good_rate": qm.good_rate,
        "goodput_rps": qm.goodput_rps(span_ms=spec.duration_ms),
        "p99_ms": qm.latency_percentile(99.0),
        "epochs": result.epochs,
        "crashes": sum(len(v) for v in crashes_by_slot.values()),
        "detections": len(result.detections or []),
        "mean_detect_ms": (sum(delays) / len(delays)) if delays else 0.0,
        "events": result.events_processed,
        "wall_s": wall_s,
    }


def run(
    gpus: int = 10_000,
    sessions: int = 1_000,
    shards: int = 8,
    duration_s: float = 120.0,
    seed: int = 0,
    workers: int | None = None,
    base_rps: float = 10.0,
) -> ExperimentResult:
    """The megascale scenario: a compressed day on a sharded fleet.

    ``gpus`` and ``sessions`` are fleet totals, dealt evenly across
    ``shards`` independent partitions; the synthetic day is compressed
    into ``duration_s`` of virtual time.  ``workers`` fans shards across
    processes (``None`` = serial; results are identical either way).
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    duration_ms = duration_s * 1000.0
    specs = [
        ShardSpec(
            shard_id=s,
            gpus=gpus // shards,
            sessions=max(1, sessions // shards),
            duration_ms=duration_ms,
            day_ms=duration_ms,  # one compressed day per run
            base_rps=base_rps,
            seed=seed + 104_729 * s,
        )
        for s in range(shards)
    ]
    wall_start = time.perf_counter()
    rows = shard_map(run_shard, specs, workers=workers or 1)
    wall_s = time.perf_counter() - wall_start

    result = ExperimentResult(
        name=f"megascale: {gpus} GPUs, {sessions} sessions, "
             f"{shards} shards, {duration_s:.0f}s day",
        columns=[
            "shard", "gpus", "queries", "good_rate", "goodput_rps",
            "p99_ms", "epochs", "crashes", "detections",
            "mean_detect_ms", "events", "wall_s",
        ],
    )
    for row in rows:
        result.add(
            row["shard"], row["gpus"], row["queries"],
            round(row["good_rate"], 4), round(row["goodput_rps"], 1),
            round(row["p99_ms"], 1) if not math.isnan(row["p99_ms"]) else 0.0,
            row["epochs"], row["crashes"], row["detections"],
            round(row["mean_detect_ms"], 1), row["events"],
            round(row["wall_s"], 2),
        )
    total_q = sum(r["queries"] for r in rows)
    total_events = sum(r["events"] for r in rows)
    total_ok = sum(r["queries"] * r["good_rate"] for r in rows)
    detect = [r["mean_detect_ms"] for r in rows if r["detections"]]
    result.add(
        "all", sum(r["gpus"] for r in rows), total_q,
        round(total_ok / total_q, 4) if total_q else 1.0,
        round(sum(r["goodput_rps"] for r in rows), 1),
        round(max((r["p99_ms"] for r in rows
                   if not math.isnan(r["p99_ms"])), default=0.0), 1),
        sum(r["epochs"] for r in rows),
        sum(r["crashes"] for r in rows),
        sum(r["detections"] for r in rows),
        round(sum(detect) / len(detect), 1) if detect else 0.0,
        total_events, round(wall_s, 2),
    )
    result.notes = (
        f"federated shards via process fan-out (workers={workers or 1}); "
        f"aggregate {total_events / max(wall_s, 1e-9):,.0f} events/s "
        "wall-clock; plan churn = epochs (fault-driven re-packs included); "
        "summary-mode metrics (no per-request records retained)"
    )
    return result
