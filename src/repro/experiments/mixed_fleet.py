"""Mixed-fleet planning: cost-optimal heterogeneous placement vs homogeneous.

Table 1 picks the single cheapest GPU type per model by dollars per unit
throughput.  A real cluster rarely gets that choice: it owns a *fleet* --
here 1080Ti, K80 and T4 classes with fixed inventories -- and the planner
must place every session somewhere.  This experiment compares

- **homogeneous baselines**: the whole workload forced onto one class
  (unbounded packing, then checked against that class's inventory and
  per-session SLO feasibility);
- **mixed (cost mode)**: :func:`repro.core.fleet.assign_classes` picks
  the cheapest feasible class per session under the inventory bounds,
  then :func:`repro.core.squishy.pack_fleet` packs each class with its
  own profiles and memory capacity.

Two effects make the mixed plan strictly cheaper than the best feasible
homogeneous one: the cheap class (T4) has a bounded inventory, so an
all-T4 cluster cannot serve the workload at all, while the mixed plan
fills the T4s first and spills only the remainder to 1080Tis; and the
tight-SLO session is infeasible on the slow class (K80), which removes
the other same-price baseline.  A second table plans a two-stage
dataflow query with :func:`repro.core.query.plan_query_classes`
(PPipe-style pool-based stage placement): each stage lands on its own
cost-optimal class.

Every emitted plan runs through the per-class
:func:`repro.analysis.plan_check.assert_valid_plan` invariants.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.plan_check import assert_valid_plan
from ..core.fleet import Fleet, assign_classes
from ..core.query import Query, QueryStage, plan_query_classes
from ..core.session import Session, SessionLoad
from ..core.squishy import SchedulePlan, pack_fleet
from ..models.gpus import make_fleet
from ..models.profiler import profile
from .common import ExperimentResult

__all__ = ["run", "WORKLOAD", "DEFAULT_COUNTS", "plan_mixed", "plan_homogeneous"]

#: (model, slo_ms, rate_rps): a mostly compute-bound mix sized to need
#: roughly ten 1080Ti GPUs, plus one tight-SLO session (googlenet at
#: 13 ms) that no K80 can serve even at batch one.
WORKLOAD: tuple[tuple[str, float, float], ...] = (
    ("googlenet", 13.0, 150.0),
    ("inception_v4", 100.0, 1_000.0),
    ("mobilenet_v1", 25.0, 3_600.0),
    ("resnet50", 50.0, 1_800.0),
    ("vgg16", 150.0, 380.0),
)

#: The fleet on hand: plenty of the owned 1080Ti/K80 racks, but only a
#: handful of the cheap-per-request T4s.
DEFAULT_COUNTS: dict[str, int | None] = {
    "gtx1080ti": 16,
    "k80": 16,
    "t4": 4,
}


@dataclass
class FleetPlan:
    """One planning configuration's outcome."""

    label: str
    plan: SchedulePlan | None
    feasible: bool
    why_infeasible: str
    price_per_hour: float
    served_rps: float

    @property
    def dollars_per_1k(self) -> float:
        """Dollar cost of 1000 served requests (the Table-1 metric)."""
        if not self.feasible or self.served_rps <= 0:
            return float("inf")
        return self.price_per_hour / 3600.0 / self.served_rps * 1000.0


def _class_loads(
    fleet: Fleet, workload: tuple[tuple[str, float, float], ...]
) -> dict[str, list[SessionLoad]]:
    """Every workload session re-profiled on every fleet class."""
    return {
        name: [
            SessionLoad(Session(model, slo_ms), rate_rps,
                        profile(model, name), device=name)
            for model, slo_ms, rate_rps in workload
        ]
        for name in fleet.names
    }


def _served_rps(plan: SchedulePlan,
                workload: tuple[tuple[str, float, float], ...]) -> float:
    """Offered rate actually covered by the plan's capacity."""
    served = 0.0
    for model, slo_ms, rate_rps in workload:
        session_id = Session(model, slo_ms).session_id
        served += min(rate_rps, plan.capacity_rps(session_id))
    return served


def plan_homogeneous(
    class_name: str,
    counts: dict[str, int | None],
    workload: tuple[tuple[str, float, float], ...] = WORKLOAD,
) -> FleetPlan:
    """Force the whole workload onto one class; check SLOs + inventory."""
    full = make_fleet(counts)
    gpu_class = full.get(class_name)
    # Pack unbounded so the *required* GPU count is visible even when it
    # exceeds the inventory.
    unbounded = Fleet.of(
        type(gpu_class)(gpu_class.name, gpu_class.mem_capacity,
                        gpu_class.price_per_hour, None)
    )
    loads = _class_loads(unbounded, workload)[class_name]
    plan = pack_fleet(loads, unbounded)
    assert_valid_plan(plan, fleet=unbounded,
                      context=f"homogeneous {class_name}")
    if plan.infeasible:
        names = ", ".join(load.session_id for load in plan.infeasible)
        return FleetPlan(
            label=f"all-{class_name}", plan=plan, feasible=False,
            why_infeasible=f"SLO-infeasible: {names}",
            price_per_hour=plan.price_per_hour(full),
            served_rps=_served_rps(plan, workload),
        )
    inventory = counts.get(class_name)
    if inventory is not None and plan.num_gpus > inventory:
        return FleetPlan(
            label=f"all-{class_name}", plan=plan, feasible=False,
            why_infeasible=(
                f"needs {plan.num_gpus} GPUs, inventory {inventory}"
            ),
            price_per_hour=plan.price_per_hour(full),
            served_rps=_served_rps(plan, workload),
        )
    return FleetPlan(
        label=f"all-{class_name}", plan=plan, feasible=True,
        why_infeasible="",
        price_per_hour=plan.price_per_hour(full),
        served_rps=_served_rps(plan, workload),
    )


def plan_mixed(
    counts: dict[str, int | None],
    objective: str = "cost",
    workload: tuple[tuple[str, float, float], ...] = WORKLOAD,
) -> FleetPlan:
    """Cost-optimal placement across the fleet under inventory bounds."""
    fleet = make_fleet(counts)
    assignment = assign_classes(_class_loads(fleet, workload), fleet,
                                objective=objective)
    plan = pack_fleet(assignment.loads, fleet)
    assert_valid_plan(plan, fleet=fleet, context=f"mixed-{objective}")
    served = _served_rps(plan, workload)
    offered = sum(rate for _, _, rate in workload)
    feasible = not assignment.infeasible and served >= 0.999 * offered
    why = ""
    if assignment.infeasible:
        why = "SLO-infeasible: " + ", ".join(
            load.session_id for load in assignment.infeasible
        )
    elif not feasible:
        why = f"sheds load: serves {served:.0f}/{offered:.0f} rps"
    return FleetPlan(
        label=f"mixed-{objective}", plan=plan, feasible=feasible,
        why_infeasible=why, price_per_hour=plan.price_per_hour(fleet),
        served_rps=served,
    )


#: Class pool for the stage-placement demo: the cheap workhorse (T4)
#: next to a fast-but-expensive class (V100).  A tight detection budget
#: is only economical on the fast class while the relaxed recognition
#: stage stays on the cheap one -- the per-stage analogue of PPipe's
#: pool-based pipelining.
_STAGE_POOL = ("t4", "v100")


def _stage_query(slo_ms: float) -> Query:
    """A two-stage detection -> recognition dataflow query."""
    root = QueryStage("detect", profile("darknet53"), model_id="darknet53")
    root.add_child(
        QueryStage("recognize", profile("googlenet"), gamma=4.0,
                   model_id="googlenet")
    )
    return Query("pipeline", root, slo_ms)


def _stage_placement_rows(result: ExperimentResult) -> None:
    """PPipe-style per-stage class choice for a dataflow query."""
    fleet = make_fleet({name: None for name in _STAGE_POOL})
    # At a 24 ms whole-query SLO the DP hands recognition a budget below
    # the T4's batch-1 latency, so that stage must ride the V100 pool
    # while detection stays on the cheap T4s.
    query = _stage_query(slo_ms=24.0)
    class_profiles = {
        name: {
            stage.name: profile(stage.model_id, name)
            for stage, _ in query.stages()
        }
        for name in fleet.names
    }
    prices = {name: fleet.price_per_hour(name) for name in fleet.names}
    split = plan_query_classes(query, rate_rps=300.0,
                               class_profiles=class_profiles,
                               prices=prices, objective="cost")
    for stage, _ in query.stages():
        result.add(
            f"stage:{stage.name}",
            "yes",
            "-",
            split.devices[stage.name],
            round(split.price_per_hour, 2),
            "-",
            f"budget {split.budgets_ms[stage.name]:.1f} ms "
            f"(pool: {'/'.join(_STAGE_POOL)})",
        )


def run(
    counts: dict[str, int | None] | None = None,
    include_stage_placement: bool = True,
) -> ExperimentResult:
    """Compare mixed cost-optimal placement against homogeneous baselines.

    Returns one row per configuration; ``$/1k_req`` is hourly price over
    served throughput (infinite when the configuration cannot serve the
    workload), and the mixed row is checked to be strictly below the
    best feasible homogeneous baseline.
    """
    counts = dict(DEFAULT_COUNTS if counts is None else counts)
    result = ExperimentResult(
        name="Mixed fleet: cost-optimal heterogeneous placement "
             "(Table 1 generalized)",
        columns=["config", "feasible", "gpus", "by_class", "$/hr",
                 "$/1k_req", "note"],
        notes="homogeneous baselines pack unbounded, then are checked "
              "against SLO feasibility and that class's inventory; the "
              "mixed plan fills the cheap bounded T4s first and spills "
              "the rest to 1080Tis.  stage:* rows show PPipe-style "
              "per-stage class placement for a two-stage query.",
    )

    plans = [plan_homogeneous(name, counts) for name in sorted(counts)]
    mixed = plan_mixed(counts, objective="cost")
    plans.append(mixed)

    for fp in plans:
        plan = fp.plan
        by_class = (
            "+".join(f"{n}x{c}" for c, n in
                     sorted((v, k) for k, v in plan.gpus_by_class().items()))
            if plan is not None and plan.gpus else "-"
        )
        cost = fp.dollars_per_1k
        result.add(
            fp.label,
            "yes" if fp.feasible else "NO",
            plan.num_gpus if plan is not None else 0,
            by_class,
            round(fp.price_per_hour, 2),
            f"{cost:.6f}" if cost != float("inf") else "inf",
            fp.why_infeasible or
            (f"serves {fp.served_rps:.0f} rps" if fp.feasible else ""),
        )

    best_homogeneous = min(
        (fp.dollars_per_1k for fp in plans[:-1]), default=float("inf")
    )
    if mixed.feasible and mixed.dollars_per_1k < best_homogeneous:
        result.notes += (
            f"  WIN: mixed ${mixed.dollars_per_1k:.4f}/1k req vs best "
            f"homogeneous ${best_homogeneous:.4f}/1k req."
        )
    else:
        result.notes += "  WARNING: mixed plan did not beat the baselines."

    if include_stage_placement:
        _stage_placement_rows(result)
    return result


if __name__ == "__main__":
    print(run())
