"""Oracle validation: the queueing oracle vs. simulated ground truth.

The closed-form capacity oracle (:mod:`repro.core.queueing`,
docs/queueing.md) answers the planner's inner-loop capacity questions in
O(1); this experiment is its documented validation methodology.  For a
grid of profiles x arrival processes x load fractions it computes the
analytic latency estimate and replays the *same* dynamic-batching queue
over a concrete arrival stream, then reports the relative error on the
p50/p99 sojourn quantiles and the busy fraction.

Arrival processes:

- ``poisson``        the oracle's modeling assumption -- errors here
                     measure the closed form itself;
- ``mmpp``           bursty Markov-modulated Poisson (phases at 1.5x and
                     0.5x the nominal rate) -- errors here measure how
                     far reality may drift when traffic is bursty;
- ``deterministic``  evenly spaced arrivals (``uniform_arrivals`` with
                     zero jitter) -- the benign extreme.

Loads are expressed as fractions of the cap-limited sustainable
throughput.  At high fractions the oracle declines (batch-cap spillover)
and :func:`~repro.core.queueing.capacity_answer` falls back to its
seeded simulation; the ``source`` column records which engine answered,
so the table also documents the fallback envelope.

When an ambient trace buffer is active (``--trace-out``), every
comparison emits an ``oracle.compared`` event carrying both p99s and the
relative error, making oracle drift observable in traces.

Run via ``python -m repro oracle-validation``; bit-identical given the
same arguments.
"""

from __future__ import annotations

import math

from ..core.profile import BatchingProfile, LinearProfile
from ..core.queueing import capacity_answer, empirical_estimate
from ..observability.tracer import Tracer, active_trace_buffer
from ..workloads.arrivals import mmpp_arrivals, poisson_arrivals, uniform_arrivals
from .common import ExperimentResult

__all__ = ["run", "validation_profiles", "PROCESSES", "LOAD_FRACTIONS"]

#: arrival processes swept (see module docstring).
PROCESSES = ("poisson", "mmpp", "deterministic")

#: offered load as a fraction of the cap-limited sustainable throughput;
#: 0.95 sits past the oracle's spillover precondition, so its rows
#: document the fallback (``source == "simulator"``).
LOAD_FRACTIONS = (0.3, 0.5, 0.7, 0.85, 0.95)

#: batch cap used for every validation queue (half the profile maximum:
#: leaves the oracle's spillover precondition room to bind at the top of
#: the sweep, which is exactly the fallback behaviour being documented).
BATCH_CAP = 32

#: MMPP phase rates relative to the nominal rate, and the phase length.
_MMPP_FACTORS = (1.5, 0.5)
_MMPP_PHASE_MS = 500.0

#: fraction of each stream discarded as warmup before measuring.
_WARMUP_FRACTION = 0.05


def validation_profiles() -> list[BatchingProfile]:
    """The profile family swept: the repo's stand-ins for a mid-size
    classifier, a heavy detector, and a small specialized model."""
    return [
        LinearProfile(name="resnet-like", alpha=1.0, beta=25.0, max_batch=64),
        LinearProfile(name="ssd-like", alpha=2.0, beta=40.0, max_batch=64),
        LinearProfile(name="tiny-like", alpha=0.2, beta=3.0, max_batch=64),
    ]


def _arrivals(
    process: str, rate_rps: float, duration_ms: float, seed: int
) -> list[float]:
    if process == "poisson":
        return poisson_arrivals(rate_rps, duration_ms, seed=seed)
    if process == "mmpp":
        rates = [rate_rps * f for f in _MMPP_FACTORS]
        return mmpp_arrivals(rates, _MMPP_PHASE_MS, duration_ms, seed=seed)
    if process == "deterministic":
        return uniform_arrivals(rate_rps, duration_ms, seed=seed, jitter=0.0)
    raise ValueError(f"unknown arrival process {process!r}")


def _err_pct(estimate: float, truth: float) -> float:
    if not math.isfinite(estimate) or truth <= 0:
        return math.nan
    return (estimate - truth) / truth * 100.0


def run(duration_ms: float = 120_000.0, seed: int = 0) -> ExperimentResult:
    """Sweep the validation grid; returns one row per comparison."""
    result = ExperimentResult(
        name="Oracle validation: analytic capacity oracle vs simulation",
        columns=[
            "profile", "process", "load_frac", "rate_rps", "source",
            "oracle_p50_ms", "sim_p50_ms", "p50_err_pct",
            "oracle_p99_ms", "sim_p99_ms", "p99_err_pct",
            "oracle_util", "sim_util",
        ],
        notes="p50/p99 relative errors of the closed-form oracle against "
              "a replayed dynamic-batching queue; 'source' shows where "
              "the oracle declined and the fallback simulation answered "
              "(docs/queueing.md documents the acceptance thresholds)",
    )
    buffer = active_trace_buffer()
    tracer = Tracer([buffer]) if buffer is not None else None
    for profile in validation_profiles():
        tables = profile.tables()
        sustainable = max(tables.throughput_rps[:BATCH_CAP])
        for process in PROCESSES:
            for frac in LOAD_FRACTIONS:
                rate = sustainable * frac
                oracle = capacity_answer(
                    profile, rate, batch_cap=BATCH_CAP, seed=seed,
                )
                arrivals = _arrivals(process, rate, duration_ms, seed)
                truth = empirical_estimate(
                    arrivals, profile, batch_cap=BATCH_CAP,
                    warmup_ms=duration_ms * _WARMUP_FRACTION,
                )
                result.add(
                    profile.name, process, frac, round(rate, 1),
                    oracle.source,
                    round(oracle.p50_ms, 2), round(truth.p50_ms, 2),
                    round(_err_pct(oracle.p50_ms, truth.p50_ms), 1),
                    round(oracle.p99_ms, 2), round(truth.p99_ms, 2),
                    round(_err_pct(oracle.p99_ms, truth.p99_ms), 1),
                    round(oracle.utilization, 3),
                    round(truth.utilization, 3),
                )
                if tracer is not None:
                    tracer.oracle_compared(
                        0.0, profile.name, BATCH_CAP,
                        oracle.p99_ms, truth.p99_ms,
                        detail={
                            "process": process, "load_frac": frac,
                            "source": oracle.source,
                        },
                    )
    return result


if __name__ == "__main__":
    from .common import format_table

    _r = run()
    print(format_table(_r.name, _r.columns, _r.rows, _r.notes))
