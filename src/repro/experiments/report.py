"""Report generation: run a set of experiments and emit one document.

``python -m repro.experiments.report`` regenerates the cheap artifacts
(everything that runs in seconds) into a single markdown report — the
quick way to sanity-check a fresh checkout or a substrate change without
the multi-minute cluster searches.
"""

from __future__ import annotations

import importlib
import io
import time

from ..analysis.plan_check import PlanCheckError, plans_checked
from .common import ExperimentResult

__all__ = ["FAST_EXPERIMENTS", "generate_report"]

#: Experiments cheap enough for an interactive report, with kwargs.
FAST_EXPERIMENTS: list[tuple[str, dict]] = [
    ("table1", {}),
    ("fig2", {}),
    ("fig4", {}),
    ("fig5", {"duration_ms": 30_000.0}),
    ("fig9", {"duration_ms": 15_000.0, "iterations": 7}),
    ("fig15", {}),
    ("ilp_gap", {"sizes": (4, 6, 8), "trials": 6}),
    ("utilization", {"duration_ms": 15_000.0}),
    ("fault_recovery", {"duration_ms": 60_000.0, "kill_at_ms": 20_000.0,
                        "warmup_ms": 5_000.0}),
]


def generate_report(
    experiments: list[tuple[str, dict]] | None = None,
    trace_dir: str | None = None,
) -> str:
    """Run the listed experiments and render a markdown report.

    With ``trace_dir``, every experiment's cluster runs are traced and
    each figure's underlying event stream is exported next to the report:
    ``<trace_dir>/<name>.trace.json`` (Chrome trace_event) and
    ``<trace_dir>/<name>.metrics.txt`` (Prometheus snapshot).
    """
    if trace_dir is not None:
        import os

        from ..observability import (
            capture_trace,
            write_chrome_trace,
            write_prometheus_snapshot,
        )

        os.makedirs(trace_dir, exist_ok=True)
    out = io.StringIO()
    out.write("# Reproduction report\n\n")
    out.write("Regenerated tables/figures (fast subset; see EXPERIMENTS.md "
              "for the headline runs and paper-vs-measured analysis).\n")
    for name, kwargs in experiments or FAST_EXPERIMENTS:
        module = importlib.import_module(f"repro.experiments.{name}")
        t0 = time.perf_counter()
        if trace_dir is not None:
            with capture_trace() as buffer:
                result = module.run(**kwargs)
            base = f"{trace_dir}/{name}"
            write_chrome_trace(buffer.events, f"{base}.trace.json")
            write_prometheus_snapshot(buffer.events, f"{base}.metrics.txt")
        else:
            result = module.run(**kwargs)
        elapsed = time.perf_counter() - t0
        if isinstance(result, tuple):  # fig13-style (table, extras)
            result = result[0]
        assert isinstance(result, ExperimentResult)
        out.write(f"\n## {name} ({elapsed:.1f}s)\n\n```\n{result}\n```\n")
    out.write(
        f"\n---\n{plans_checked()} GPU plans validated against the "
        "Algorithm-1 invariants while producing this report "
        "(repro.analysis.plan_check).\n"
    )
    return out.getvalue()


if __name__ == "__main__":
    import argparse
    import sys

    _parser = argparse.ArgumentParser(
        description="regenerate the fast-subset reproduction report"
    )
    _parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="also export each figure's event trace (Chrome JSON) and "
             "metrics snapshot into DIR",
    )
    try:
        print(generate_report(trace_dir=_parser.parse_args().trace_dir))
    except PlanCheckError as exc:
        # A figure was about to be produced from an invariant-violating
        # plan: fail loudly so CI (and readers) cannot miss it.
        print(f"plan validation failed:\n{exc}", file=sys.stderr)
        sys.exit(1)
