"""Report generation: run a set of experiments and emit one document.

``python -m repro.experiments.report`` regenerates the cheap artifacts
(everything that runs in seconds) into a single markdown report — the
quick way to sanity-check a fresh checkout or a substrate change without
the multi-minute cluster searches.

Pass ``--workers N`` to fan the independent figure runs across a process
pool (see :func:`repro.experiments.common.run_experiments`): each run is
a pure function of its name and seeded kwargs, so the parallel report is
identical to the serial one apart from the per-figure wall-clock timings
(suppress those with ``--no-timing`` for byte-identical output).
"""

from __future__ import annotations

import io

from ..analysis.plan_check import PlanCheckError
from .common import run_experiments

__all__ = ["FAST_EXPERIMENTS", "generate_report"]

#: Experiments cheap enough for an interactive report, with kwargs.
FAST_EXPERIMENTS: list[tuple[str, dict]] = [
    ("table1", {}),
    ("fig2", {}),
    ("fig4", {}),
    ("fig5", {"duration_ms": 30_000.0}),
    ("fig9", {"duration_ms": 15_000.0, "iterations": 7}),
    ("fig15", {}),
    ("ilp_gap", {"sizes": (4, 6, 8), "trials": 6}),
    ("utilization", {"duration_ms": 15_000.0}),
    ("fault_recovery", {"duration_ms": 60_000.0, "kill_at_ms": 20_000.0,
                        "warmup_ms": 5_000.0}),
]


def generate_report(
    experiments: list[tuple[str, dict]] | None = None,
    trace_dir: str | None = None,
    workers: int | None = None,
    include_timing: bool = True,
) -> str:
    """Run the listed experiments and render a markdown report.

    Args:
        experiments: ``(name, kwargs)`` pairs; default the fast subset.
        trace_dir: with a directory, every experiment's cluster runs are
            traced and each figure's underlying event stream is exported
            next to the report: ``<trace_dir>/<name>.trace.json`` (Chrome
            trace_event) and ``<trace_dir>/<name>.metrics.txt``
            (Prometheus snapshot).  Tracing captures an in-process event
            buffer, so it forces the serial path.
        workers: fan independent figure runs across this many worker
            processes (None/<=1 = serial).  Output is identical to the
            serial report on the same seeds.
        include_timing: include per-figure wall-clock seconds in the
            section headers.  Disable for byte-comparable reports
            (timings are measurements of the harness, not content).
    """
    experiments = experiments or FAST_EXPERIMENTS
    if trace_dir is not None and workers is not None and workers > 1:
        raise ValueError(
            "trace_dir captures an in-process event buffer; tracing and "
            "workers > 1 are mutually exclusive"
        )
    out = io.StringIO()
    out.write("# Reproduction report\n\n")
    out.write("Regenerated tables/figures (fast subset; see EXPERIMENTS.md "
              "for the headline runs and paper-vs-measured analysis).\n")
    if trace_dir is not None:
        runs = _run_traced(experiments, trace_dir)
    else:
        runs = run_experiments(experiments, workers=workers)
    for run in runs:
        timing = f" ({run.elapsed_s:.1f}s)" if include_timing else ""
        out.write(f"\n## {run.name}{timing}\n\n```\n{run.result}\n```\n")
    total_plans = sum(run.plans_checked for run in runs)
    out.write(
        f"\n---\n{total_plans} GPU plans validated against the "
        "Algorithm-1 invariants while producing this report "
        "(repro.analysis.plan_check).\n"
    )
    return out.getvalue()


def _run_traced(experiments: list[tuple[str, dict]], trace_dir: str) -> list:
    """Serial path with per-figure event-trace export."""
    import os

    from ..observability import (
        capture_trace,
        write_chrome_trace,
        write_prometheus_snapshot,
    )
    from .common import run_experiment

    os.makedirs(trace_dir, exist_ok=True)
    runs = []
    for name, kwargs in experiments:
        with capture_trace() as buffer:
            run = run_experiment(name, kwargs)
        base = f"{trace_dir}/{name}"
        write_chrome_trace(buffer.events, f"{base}.trace.json")
        write_prometheus_snapshot(buffer.events, f"{base}.metrics.txt")
        runs.append(run)
    return runs


if __name__ == "__main__":
    import argparse
    import sys

    _parser = argparse.ArgumentParser(
        description="regenerate the fast-subset reproduction report"
    )
    _parser.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="also export each figure's event trace (Chrome JSON) and "
             "metrics snapshot into DIR (forces the serial path)",
    )
    _parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="fan independent figure runs across N worker processes",
    )
    _parser.add_argument(
        "--no-timing", action="store_true",
        help="omit per-figure wall-clock timings (byte-comparable output)",
    )
    _args = _parser.parse_args()
    try:
        print(generate_report(
            trace_dir=_args.trace_dir,
            workers=_args.workers,
            include_timing=not _args.no_timing,
        ))
    except PlanCheckError as exc:
        # A figure was about to be produced from an invariant-violating
        # plan: fail loudly so CI (and readers) cannot miss it.
        print(f"plan validation failed:\n{exc}", file=sys.stderr)
        sys.exit(1)
