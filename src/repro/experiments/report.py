"""Report generation: run a set of experiments and emit one document.

``python -m repro.experiments.report`` regenerates the cheap artifacts
(everything that runs in seconds) into a single markdown report — the
quick way to sanity-check a fresh checkout or a substrate change without
the multi-minute cluster searches.
"""

from __future__ import annotations

import importlib
import io
import time

from .common import ExperimentResult

__all__ = ["FAST_EXPERIMENTS", "generate_report"]

#: Experiments cheap enough for an interactive report, with kwargs.
FAST_EXPERIMENTS: list[tuple[str, dict]] = [
    ("table1", {}),
    ("fig2", {}),
    ("fig4", {}),
    ("fig5", {"duration_ms": 30_000.0}),
    ("fig9", {"duration_ms": 15_000.0, "iterations": 7}),
    ("fig15", {}),
    ("ilp_gap", {"sizes": (4, 6, 8), "trials": 6}),
    ("utilization", {"duration_ms": 15_000.0}),
]


def generate_report(
    experiments: list[tuple[str, dict]] | None = None,
) -> str:
    """Run the listed experiments and render a markdown report."""
    out = io.StringIO()
    out.write("# Reproduction report\n\n")
    out.write("Regenerated tables/figures (fast subset; see EXPERIMENTS.md "
              "for the headline runs and paper-vs-measured analysis).\n")
    for name, kwargs in experiments or FAST_EXPERIMENTS:
        module = importlib.import_module(f"repro.experiments.{name}")
        t0 = time.perf_counter()
        result = module.run(**kwargs)
        elapsed = time.perf_counter() - t0
        if isinstance(result, tuple):  # fig13-style (table, extras)
            result = result[0]
        assert isinstance(result, ExperimentResult)
        out.write(f"\n## {name} ({elapsed:.1f}s)\n\n```\n{result}\n```\n")
    return out.getvalue()


if __name__ == "__main__":
    print(generate_report())
