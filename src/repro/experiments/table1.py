"""Table 1: DNN execution latencies and estimated costs per 1000 invocations.

Paper columns: CPU latency, GPU (V100) latency, and lower-bound dollar
costs per 1000 invocations on CPU (0.1 TF peak), TPU (180 TF) and V100
(125 TF), assuming peak-speed execution.
"""

from __future__ import annotations

from ..models.gpus import CPU_C5, TPU_V2, V100, cost_per_1000_invocations
from ..models.profiler import profile_model
from ..models.zoo import get_model
from .common import ExperimentResult

__all__ = ["run", "MODELS"]

#: Table 1's rows.  ``vgg7``'s published numbers use a CIFAR-scale input;
#: darknet53 runs at 416x416 as in the paper's YOLO configuration.
MODELS = ["lenet5", "vgg7", "resnet50", "inception_v4", "darknet53"]

#: The paper's measurements, for side-by-side reporting in EXPERIMENTS.md.
PAPER = {
    #            cpu_ms  gpu_ms  cpu_$   tpu_$   gpu_$
    "lenet5":       (6.0, 0.1, 0.01, 0.00, 0.00),
    "vgg7":        (44.0, 1.0, 0.13, 0.01, 0.01),
    "resnet50":  (1130.0, 6.2, 4.22, 0.48, 0.12),
    "inception_v4": (2110.0, 7.0, 8.09, 0.93, 0.23),
    "darknet53": (7210.0, 26.3, 24.74, 2.85, 0.70),
}


def run() -> ExperimentResult:
    result = ExperimentResult(
        name="Table 1: DNN execution latencies and costs per 1000 invocations",
        columns=["model", "cpu_lat_ms", "gpu_lat_ms",
                 "cpu_cost_$", "tpu_cost_$", "gpu_cost_$"],
        notes="costs lower-bounded at peak speed; our absolute $ values "
              "are smaller than the paper's cells (whose units do not "
              "reconcile with its own latency x price data) but preserve "
              "the CPU >> TPU > GPU ordering and relative gaps",
    )
    for name in MODELS:
        model = get_model(name)
        flops = model.total_flops()
        result.add(
            name,
            round(profile_model(model, CPU_C5).latency(1), 1),
            round(profile_model(model, V100).latency(1), 2),
            round(cost_per_1000_invocations(flops, CPU_C5), 5),
            round(cost_per_1000_invocations(flops, TPU_V2), 6),
            round(cost_per_1000_invocations(flops, V100), 6),
        )
    return result


if __name__ == "__main__":
    print(run())
