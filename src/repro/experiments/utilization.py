"""Section 7.4's utilization study: Nexus vs the theoretical lower bound.

"Nexus achieved a bad rate of less than 1% consistently and used 11.7
GPUs on average ... the theoretical lower bound for this workload is 9.8
GPUs on average ... the Nexus scheduler can achieve 84% of GPU efficiency
compared to the theoretical lower bound."

The lower bound assumes every session's model is fully batchable at the
optimal batch size and schedulable back-to-back -- i.e. GPUs needed =
sum over sessions of rate / optimal-throughput (no SLO, no duty-cycle
slack, no fragmentation).
"""

from __future__ import annotations

from ..cluster.nexus import ClusterConfig, NexusCluster
from ..workloads.apps import all_apps
from .common import ExperimentResult

__all__ = ["run", "theoretical_lower_bound"]


def theoretical_lower_bound(cluster: NexusCluster) -> float:
    """Fractional GPUs assuming optimal-batch back-to-back execution."""
    loads = cluster.build_session_loads()
    total = 0.0
    for load in loads:
        prof = load.profile
        optimal = prof.throughput(prof.max_batch)
        total += load.rate_rps / optimal
    return total


def run(device: str = "gtx1080ti", total_rps: float = 800.0,
        num_games: int = 4, duration_ms: float = 30_000.0,
        seed: int = 0) -> ExperimentResult:
    config = ClusterConfig(device=device, expand_to_cluster=False, seed=seed)
    cluster = NexusCluster(config)
    queries = all_apps(device, num_games=num_games)
    for query in queries:
        cluster.add_query(query, rate_rps=total_rps / len(queries))

    bound = theoretical_lower_bound(cluster)
    res = cluster.run(duration_ms, warmup_ms=duration_ms / 10)
    efficiency = bound / max(res.gpus_used, 1)

    result = ExperimentResult(
        name="Section 7.4: GPU allocation vs theoretical lower bound",
        columns=["metric", "value", "paper"],
        notes="paper: 11.7 GPUs used vs 9.8 bound = 84% efficiency, "
              "bad rate < 1%",
    )
    result.add("gpus_used", res.gpus_used, 11.7)
    result.add("lower_bound_gpus", round(bound, 1), 9.8)
    result.add("efficiency", round(efficiency, 3), 0.84)
    result.add("request_bad_rate", round(res.invocation_metrics.bad_rate, 4),
               "<0.01")
    result.add("query_bad_rate", round(res.bad_rate, 4), "n/a")
    return result


if __name__ == "__main__":
    print(run())
