"""Metrics: request outcomes, goodput, utilization, Figure-13 timelines."""

from .collector import MetricsCollector, RequestRecord, TimeSeries
from .render import render_figure13, render_gantt, render_series

__all__ = ["MetricsCollector", "RequestRecord", "TimeSeries",
           "render_figure13", "render_gantt", "render_series"]
