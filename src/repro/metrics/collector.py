"""Metrics collection: request outcomes, goodput, utilization, timelines.

Everything the evaluation reports reduces to per-request outcome records:
the paper's *throughput* is the max offered rate with >= 99% of requests
served within SLO; the *bad rate* is the complement; Figure 13 plots
windowed workload / GPU usage / bad-rate series.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

__all__ = ["RequestRecord", "MetricsCollector", "TimeSeries"]


@dataclass(slots=True)
class RequestRecord:
    """Outcome of one request (or one whole query)."""

    request_id: int
    session_id: str
    arrival_ms: float
    deadline_ms: float
    completion_ms: float | None  # None = dropped
    dropped: bool = False

    @property
    def ok(self) -> bool:
        return (
            not self.dropped
            and self.completion_ms is not None
            and self.completion_ms <= self.deadline_ms
        )

    @property
    def latency_ms(self) -> float | None:
        if self.completion_ms is None:
            return None
        return self.completion_ms - self.arrival_ms


@dataclass
class TimeSeries:
    """Windowed time series: (window start, value) pairs."""

    window_ms: float
    times_ms: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def points(self) -> list[tuple[float, float]]:
        return list(zip(self.times_ms, self.values))


class MetricsCollector:
    """Accumulates request records and derives the paper's metrics.

    ``keep_records=False`` switches to *summary mode* for megascale runs:
    instead of retaining every :class:`RequestRecord` (gigabytes at 10k
    GPUs), the collector folds each record into running counters,
    per-session stats, and a log-spaced latency histogram at record time.
    Timeline methods that need raw records are unavailable in summary
    mode; everything scalar (totals, rates, goodput, approximate
    percentiles) keeps working.  ``min_arrival_ms`` drops warmup-window
    arrivals at record time (summary mode cannot filter after the fact).
    """

    #: log-spaced latency histogram: 0.1 ms .. ~100 s in 5% steps.
    _HIST_BASE_MS = 0.1
    _HIST_GROWTH = 1.05
    _HIST_BUCKETS = 284

    def __init__(
        self, keep_records: bool = True, min_arrival_ms: float = 0.0
    ) -> None:
        self.keep_records = keep_records
        self.min_arrival_ms = min_arrival_ms
        self.records: list[RequestRecord] = []
        self.gpu_busy_ms: dict[int, float] = {}
        self._gpu_count_samples: list[tuple[float, int]] = []
        # Summary-mode accumulators.
        self._total = 0
        self._ok = 0
        self._dropped = 0
        self._late = 0
        self._first_arrival_ms = math.inf
        self._last_completion_ms = -math.inf
        self._latency_hist: list[int] = []
        self._session_stats: dict[str, dict[str, float]] = {}

    # -------------------------------------------------------------- feeding

    def record(self, rec: RequestRecord) -> None:
        if rec.arrival_ms < self.min_arrival_ms:
            return
        if self.keep_records:
            self.records.append(rec)
            return
        self._total += 1
        self._first_arrival_ms = min(self._first_arrival_ms, rec.arrival_ms)
        self._last_completion_ms = max(
            self._last_completion_ms, rec.completion_ms or rec.arrival_ms
        )
        stats = self._session_stats.setdefault(
            rec.session_id, {"total": 0, "ok": 0, "dropped": 0, "late": 0}
        )
        stats["total"] += 1
        if rec.ok:
            self._ok += 1
            stats["ok"] += 1
        elif rec.dropped:
            self._dropped += 1
            stats["dropped"] += 1
        else:
            self._late += 1
            stats["late"] += 1
        lat = rec.latency_ms
        if lat is not None:
            if not self._latency_hist:
                self._latency_hist = [0] * (self._HIST_BUCKETS + 1)
            if lat <= self._HIST_BASE_MS:
                bucket = 0
            else:
                bucket = min(
                    self._HIST_BUCKETS,
                    int(
                        math.log(lat / self._HIST_BASE_MS)
                        / math.log(self._HIST_GROWTH)
                    )
                    + 1,
                )
            self._latency_hist[bucket] += 1

    def record_gpu_busy(self, gpu_id: int, busy_ms: float) -> None:
        self.gpu_busy_ms[gpu_id] = self.gpu_busy_ms.get(gpu_id, 0.0) + busy_ms

    def sample_gpu_count(self, time_ms: float, count: int) -> None:
        self._gpu_count_samples.append((time_ms, count))

    # ------------------------------------------------------------- summary

    @property
    def total(self) -> int:
        if not self.keep_records:
            return self._total
        return len(self.records)

    @property
    def ok_count(self) -> int:
        if not self.keep_records:
            return self._ok
        return sum(1 for r in self.records if r.ok)

    @property
    def dropped_count(self) -> int:
        if not self.keep_records:
            return self._dropped
        return sum(1 for r in self.records if r.dropped)

    @property
    def late_count(self) -> int:
        if not self.keep_records:
            return self._late
        return sum(
            1 for r in self.records if not r.dropped and not r.ok
        )

    @property
    def good_rate(self) -> float:
        if not self.total:
            return 1.0
        return self.ok_count / self.total

    @property
    def bad_rate(self) -> float:
        return 1.0 - self.good_rate

    def goodput_rps(self, span_ms: float | None = None) -> float:
        if not self.total:
            return 0.0
        if span_ms is None:
            if self.keep_records:
                start = min(r.arrival_ms for r in self.records)
                end = max(
                    r.completion_ms or r.arrival_ms for r in self.records
                )
            else:
                start = self._first_arrival_ms
                end = self._last_completion_ms
            span_ms = max(end - start, 1e-9)
        return self.ok_count / span_ms * 1000.0

    def latency_percentile(self, pct: float) -> float:
        """Latency percentile over served (not dropped) requests.

        Exact over retained records; in summary mode, the upper edge of
        the log-spaced histogram bucket holding the percentile (<= 5%
        relative error).
        """
        if not 0 <= pct <= 100:
            raise ValueError(f"pct must be in [0, 100], got {pct}")
        if not self.keep_records:
            n = sum(self._latency_hist)
            if not n:
                return math.nan
            rank = max(1, int(math.ceil(pct / 100.0 * n)))
            seen = 0
            for bucket, count in enumerate(self._latency_hist):
                seen += count
                if seen >= rank:
                    return self._HIST_BASE_MS * self._HIST_GROWTH ** bucket
            return self._HIST_BASE_MS * self._HIST_GROWTH ** self._HIST_BUCKETS
        lats = sorted(
            r.latency_ms for r in self.records if r.latency_ms is not None
        )
        if not lats:
            return math.nan
        idx = min(len(lats) - 1, int(math.ceil(pct / 100.0 * len(lats))) - 1)
        return lats[max(0, idx)]

    def utilization(self, num_gpus: int, span_ms: float) -> float:
        if num_gpus <= 0 or span_ms <= 0:
            return 0.0
        busy = sum(self.gpu_busy_ms.values())
        return min(1.0, busy / (num_gpus * span_ms))

    # ------------------------------------------------------------ timelines

    def _sorted_by_arrival(self) -> list[RequestRecord]:
        return sorted(self.records, key=lambda r: r.arrival_ms)

    def workload_series(self, window_ms: float, end_ms: float) -> TimeSeries:
        """Offered requests/second per window (Figure 13 top panel)."""
        series = TimeSeries(window_ms)
        recs = self._sorted_by_arrival()
        arrivals = [r.arrival_ms for r in recs]
        t = 0.0
        while t < end_ms:
            lo = bisect.bisect_left(arrivals, t)
            hi = bisect.bisect_left(arrivals, t + window_ms)
            series.times_ms.append(t)
            series.values.append((hi - lo) / window_ms * 1000.0)
            t += window_ms
        return series

    def bad_rate_series(self, window_ms: float, end_ms: float) -> TimeSeries:
        """Bad rate per window (Figure 13 bottom panel)."""
        series = TimeSeries(window_ms)
        recs = self._sorted_by_arrival()
        arrivals = [r.arrival_ms for r in recs]
        t = 0.0
        while t < end_ms:
            lo = bisect.bisect_left(arrivals, t)
            hi = bisect.bisect_left(arrivals, t + window_ms)
            window = recs[lo:hi]
            bad = sum(1 for r in window if not r.ok)
            series.times_ms.append(t)
            series.values.append(bad / len(window) if window else 0.0)
            t += window_ms
        return series

    def gpu_count_series(self, window_ms: float, end_ms: float) -> TimeSeries:
        """GPUs allocated over time (Figure 13 middle panel)."""
        series = TimeSeries(window_ms)
        samples = sorted(self._gpu_count_samples)
        t = 0.0
        current = samples[0][1] if samples else 0
        idx = 0
        while t < end_ms:
            while idx < len(samples) and samples[idx][0] <= t:
                current = samples[idx][1]
                idx += 1
            series.times_ms.append(t)
            series.values.append(float(current))
            t += window_ms
        return series

    def per_session_stats(self) -> dict[str, dict[str, float]]:
        """Per-session totals: count, ok, dropped, bad rate."""
        out: dict[str, dict[str, float]] = {}
        if not self.keep_records:
            for sid, stats in self._session_stats.items():
                s = dict(stats)
                s["bad_rate"] = (
                    1.0 - (s["ok"] / s["total"] if s["total"] else 1.0)
                )
                out[sid] = s
            return out
        for rec in self.records:
            s = out.setdefault(
                rec.session_id,
                {"total": 0, "ok": 0, "dropped": 0, "late": 0},
            )
            s["total"] += 1
            if rec.ok:
                s["ok"] += 1
            elif rec.dropped:
                s["dropped"] += 1
            else:
                s["late"] += 1
        for s in out.values():
            s["bad_rate"] = 1.0 - (s["ok"] / s["total"] if s["total"] else 1.0)
        return out
