"""Metrics collection: request outcomes, goodput, utilization, timelines.

Everything the evaluation reports reduces to per-request outcome records:
the paper's *throughput* is the max offered rate with >= 99% of requests
served within SLO; the *bad rate* is the complement; Figure 13 plots
windowed workload / GPU usage / bad-rate series.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field

__all__ = ["RequestRecord", "MetricsCollector", "TimeSeries"]


@dataclass(slots=True)
class RequestRecord:
    """Outcome of one request (or one whole query)."""

    request_id: int
    session_id: str
    arrival_ms: float
    deadline_ms: float
    completion_ms: float | None  # None = dropped
    dropped: bool = False

    @property
    def ok(self) -> bool:
        return (
            not self.dropped
            and self.completion_ms is not None
            and self.completion_ms <= self.deadline_ms
        )

    @property
    def latency_ms(self) -> float | None:
        if self.completion_ms is None:
            return None
        return self.completion_ms - self.arrival_ms


@dataclass
class TimeSeries:
    """Windowed time series: (window start, value) pairs."""

    window_ms: float
    times_ms: list[float] = field(default_factory=list)
    values: list[float] = field(default_factory=list)

    def points(self) -> list[tuple[float, float]]:
        return list(zip(self.times_ms, self.values))


class MetricsCollector:
    """Accumulates request records and derives the paper's metrics."""

    def __init__(self) -> None:
        self.records: list[RequestRecord] = []
        self.gpu_busy_ms: dict[int, float] = {}
        self._gpu_count_samples: list[tuple[float, int]] = []

    # -------------------------------------------------------------- feeding

    def record(self, rec: RequestRecord) -> None:
        self.records.append(rec)

    def record_gpu_busy(self, gpu_id: int, busy_ms: float) -> None:
        self.gpu_busy_ms[gpu_id] = self.gpu_busy_ms.get(gpu_id, 0.0) + busy_ms

    def sample_gpu_count(self, time_ms: float, count: int) -> None:
        self._gpu_count_samples.append((time_ms, count))

    # ------------------------------------------------------------- summary

    @property
    def total(self) -> int:
        return len(self.records)

    @property
    def ok_count(self) -> int:
        return sum(1 for r in self.records if r.ok)

    @property
    def dropped_count(self) -> int:
        return sum(1 for r in self.records if r.dropped)

    @property
    def late_count(self) -> int:
        return sum(
            1 for r in self.records if not r.dropped and not r.ok
        )

    @property
    def good_rate(self) -> float:
        if not self.records:
            return 1.0
        return self.ok_count / self.total

    @property
    def bad_rate(self) -> float:
        return 1.0 - self.good_rate

    def goodput_rps(self, span_ms: float | None = None) -> float:
        if not self.records:
            return 0.0
        if span_ms is None:
            start = min(r.arrival_ms for r in self.records)
            end = max(
                r.completion_ms or r.arrival_ms for r in self.records
            )
            span_ms = max(end - start, 1e-9)
        return self.ok_count / span_ms * 1000.0

    def latency_percentile(self, pct: float) -> float:
        """Latency percentile over served (not dropped) requests."""
        lats = sorted(
            r.latency_ms for r in self.records if r.latency_ms is not None
        )
        if not lats:
            return math.nan
        if not 0 <= pct <= 100:
            raise ValueError(f"pct must be in [0, 100], got {pct}")
        idx = min(len(lats) - 1, int(math.ceil(pct / 100.0 * len(lats))) - 1)
        return lats[max(0, idx)]

    def utilization(self, num_gpus: int, span_ms: float) -> float:
        if num_gpus <= 0 or span_ms <= 0:
            return 0.0
        busy = sum(self.gpu_busy_ms.values())
        return min(1.0, busy / (num_gpus * span_ms))

    # ------------------------------------------------------------ timelines

    def _sorted_by_arrival(self) -> list[RequestRecord]:
        return sorted(self.records, key=lambda r: r.arrival_ms)

    def workload_series(self, window_ms: float, end_ms: float) -> TimeSeries:
        """Offered requests/second per window (Figure 13 top panel)."""
        series = TimeSeries(window_ms)
        recs = self._sorted_by_arrival()
        arrivals = [r.arrival_ms for r in recs]
        t = 0.0
        while t < end_ms:
            lo = bisect.bisect_left(arrivals, t)
            hi = bisect.bisect_left(arrivals, t + window_ms)
            series.times_ms.append(t)
            series.values.append((hi - lo) / window_ms * 1000.0)
            t += window_ms
        return series

    def bad_rate_series(self, window_ms: float, end_ms: float) -> TimeSeries:
        """Bad rate per window (Figure 13 bottom panel)."""
        series = TimeSeries(window_ms)
        recs = self._sorted_by_arrival()
        arrivals = [r.arrival_ms for r in recs]
        t = 0.0
        while t < end_ms:
            lo = bisect.bisect_left(arrivals, t)
            hi = bisect.bisect_left(arrivals, t + window_ms)
            window = recs[lo:hi]
            bad = sum(1 for r in window if not r.ok)
            series.times_ms.append(t)
            series.values.append(bad / len(window) if window else 0.0)
            t += window_ms
        return series

    def gpu_count_series(self, window_ms: float, end_ms: float) -> TimeSeries:
        """GPUs allocated over time (Figure 13 middle panel)."""
        series = TimeSeries(window_ms)
        samples = sorted(self._gpu_count_samples)
        t = 0.0
        current = samples[0][1] if samples else 0
        idx = 0
        while t < end_ms:
            while idx < len(samples) and samples[idx][0] <= t:
                current = samples[idx][1]
                idx += 1
            series.times_ms.append(t)
            series.values.append(float(current))
            t += window_ms
        return series

    def per_session_stats(self) -> dict[str, dict[str, float]]:
        """Per-session totals: count, ok, dropped, bad rate."""
        out: dict[str, dict[str, float]] = {}
        for rec in self.records:
            s = out.setdefault(
                rec.session_id,
                {"total": 0, "ok": 0, "dropped": 0, "late": 0},
            )
            s["total"] += 1
            if rec.ok:
                s["ok"] += 1
            elif rec.dropped:
                s["dropped"] += 1
            else:
                s["late"] += 1
        for s in out.values():
            s["bad_rate"] = 1.0 - (s["ok"] / s["total"] if s["total"] else 1.0)
        return out
