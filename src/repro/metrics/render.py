"""Plain-text rendering for timelines and GPU traces.

Terminal-friendly views of what a run did: sparkline-style series (the
Figure-13 panels), and Gantt strips of per-GPU execution spans (from
:attr:`repro.cluster.backend.Backend.trace`).  No plotting dependencies;
everything renders to strings.
"""

from __future__ import annotations

import math

from .collector import TimeSeries

__all__ = ["render_series", "render_gantt", "render_figure13"]

_BARS = " .:-=+*#%@"


def render_series(
    series: TimeSeries,
    title: str = "",
    width: int | None = None,
    value_format: str = "{:.1f}",
) -> str:
    """Render a time series as one line of density characters.

    Values are scaled to the series' own min/max; the line is annotated
    with the range so absolute levels stay readable.
    """
    values = series.values
    if not values:
        return f"{title}: (empty)"
    if width is not None and width < len(values):
        # Downsample by averaging buckets.
        bucket = len(values) / width
        values = [
            sum(values[int(i * bucket):max(int((i + 1) * bucket), int(i * bucket) + 1)])
            / max(1, len(values[int(i * bucket):max(int((i + 1) * bucket), int(i * bucket) + 1)]))
            for i in range(width)
        ]
    lo, hi = min(values), max(values)
    span = hi - lo
    chars = []
    for v in values:
        frac = 0.0 if span <= 0 else (v - lo) / span
        chars.append(_BARS[min(len(_BARS) - 1, int(frac * (len(_BARS) - 1)))])
    lo_s = value_format.format(lo)
    hi_s = value_format.format(hi)
    label = f"{title} " if title else ""
    return f"{label}[{lo_s}..{hi_s}] {''.join(chars)}"


def render_figure13(workload: TimeSeries, gpus: TimeSeries,
                    bad_rate: TimeSeries) -> str:
    """The three Figure-13 panels as aligned text rows."""
    lines = [
        render_series(workload, title="workload r/s"),
        render_series(gpus, title="GPUs        ", value_format="{:.0f}"),
        render_series(bad_rate, title="bad rate    ",
                      value_format="{:.3f}"),
    ]
    return "\n".join(lines)


def render_gantt(
    spans,
    start_ms: float | None = None,
    end_ms: float | None = None,
    width: int = 80,
) -> str:
    """Render execution spans as one text strip per GPU.

    Each GPU row shows letters identifying sessions (assigned in first-seen
    order), ``.`` for idle time, with a legend mapping letters to session
    ids.  Overlapping spans on one GPU would indicate a scheduler bug and
    raise ValueError.
    """
    spans = sorted(spans, key=lambda s: (s.gpu_id, s.start_ms))
    if not spans:
        return "(no spans)"
    t0 = start_ms if start_ms is not None else min(s.start_ms for s in spans)
    t1 = end_ms if end_ms is not None else max(s.end_ms for s in spans)
    if t1 <= t0:
        raise ValueError(f"empty window [{t0}, {t1}]")
    scale = width / (t1 - t0)

    letters: dict[str, str] = {}

    def letter(session_id: str) -> str:
        if session_id not in letters:
            alphabet = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
            letters[session_id] = alphabet[len(letters) % len(alphabet)]
        return letters[session_id]

    rows: dict[int, list[str]] = {}
    last_end: dict[int, float] = {}
    for span in spans:
        if span.end_ms <= t0 or span.start_ms >= t1:
            continue
        if span.gpu_id in last_end and span.start_ms < last_end[span.gpu_id] - 1e-6:
            raise ValueError(
                f"overlapping spans on gpu{span.gpu_id} at {span.start_ms}"
            )
        last_end[span.gpu_id] = span.end_ms
        row = rows.setdefault(span.gpu_id, ["."] * width)
        a = max(0, int((span.start_ms - t0) * scale))
        b = min(width, max(a + 1, int(math.ceil((span.end_ms - t0) * scale))))
        ch = letter(span.session_id)
        for i in range(a, b):
            row[i] = ch

    lines = [f"gpu{gpu_id:<3d} |{''.join(row)}|"
             for gpu_id, row in sorted(rows.items())]
    legend = ", ".join(f"{v}={k}" for k, v in letters.items())
    lines.append(f"legend: {legend}")
    lines.append(f"window: {t0:.0f}..{t1:.0f} ms")
    return "\n".join(lines)
