"""DNN model substrate: layer algebra, model zoo, devices, analytic profiler."""

from .gpus import DEVICES, DeviceSpec, get_device
from .graph import GraphBuilder, ModelGraph
from .profiler import profile, profile_model, prefix_suffix_profiles
from .specialize import make_variants, specialize
from .zoo import MODEL_BUILDERS, get_model

__all__ = [
    "DEVICES",
    "DeviceSpec",
    "get_device",
    "GraphBuilder",
    "ModelGraph",
    "profile",
    "profile_model",
    "prefix_suffix_profiles",
    "make_variants",
    "specialize",
    "MODEL_BUILDERS",
    "get_model",
]
