"""Model database: the management plane's model store (paper section 5).

"Models are stored in a model database and may be accompanied by either a
sample data set or a batching profile.  Nexus uses the sample dataset, if
available, to derive a batching profile.  A profiler measures the
execution latency and memory use for different batch sizes when the
models are uploaded ... Nexus computes the hash of every sub-tree of the
model schema and compares it with the existing models in the database to
identify common sub-trees when a model is uploaded" (sections 5, 6.3).

:class:`ModelDatabase` implements that ingest path:

- uploading a model graph profiles it for every registered device (the
  analytic profiler standing in for measurement);
- explicit batching profiles can be supplied instead, e.g. measured
  tables;
- on upload, prefix hashes are matched against every resident model and a
  *prefix index* is maintained, so the scheduler can ask "which models can
  be batched with this one?" in O(1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.profile import BatchingProfile
from .gpus import DeviceSpec, get_device
from .graph import ModelGraph
from .profiler import prefix_suffix_profiles, profile_model
from .zoo import get_model

__all__ = ["ModelEntry", "ModelDatabase"]


@dataclass
class ModelEntry:
    """One ingested model: its graph, per-device profiles, prefix links."""

    model_id: str
    graph: ModelGraph
    profiles: dict[str, BatchingProfile] = field(default_factory=dict)
    #: other model_ids sharing a substantial prefix, with shared length.
    prefix_peers: dict[str, int] = field(default_factory=dict)

    def profile(self, device_name: str) -> BatchingProfile:
        try:
            return self.profiles[device_name]
        except KeyError:
            raise KeyError(
                f"{self.model_id} has no profile for {device_name!r}; "
                f"profiled devices: {sorted(self.profiles)}"
            ) from None


class ModelDatabase:
    """The cluster's model store + prefix index.

    Args:
        devices: device names to profile uploads against.
        min_shared_frac: fraction of FLOPs two models must share for the
            prefix index to link them (trivially-shared stems are not
            worth prefix-batching).
    """

    def __init__(self, devices: list[str] | None = None,
                 min_shared_frac: float = 0.5):
        if not 0.0 < min_shared_frac <= 1.0:
            raise ValueError(
                f"min_shared_frac must be in (0, 1], got {min_shared_frac}"
            )
        self.devices = [get_device(d) for d in (devices or ["gtx1080ti"])]
        self.min_shared_frac = min_shared_frac
        self._entries: dict[str, ModelEntry] = {}

    # --------------------------------------------------------------- ingest

    def ingest(
        self,
        model: ModelGraph | str,
        model_id: str | None = None,
        profiles: dict[str, BatchingProfile] | None = None,
    ) -> ModelEntry:
        """Upload a model: profile it and index its prefixes.

        Args:
            model: a built graph, or a zoo name (``"resnet50@task:40"``).
            model_id: store key; defaults to the graph's name.
            profiles: pre-measured batching profiles per device name; any
                device not covered gets an analytically derived profile.
        """
        if isinstance(model, str):
            graph = get_model(model)
            model_id = model_id or model
        else:
            graph = model
            model_id = model_id or graph.name
        if model_id in self._entries:
            raise ValueError(f"model {model_id!r} already ingested")

        entry = ModelEntry(model_id=model_id, graph=graph)
        for device in self.devices:
            if profiles and device.name in profiles:
                entry.profiles[device.name] = profiles[device.name]
            else:
                entry.profiles[device.name] = profile_model(graph, device)

        # Prefix matching against every resident model (section 6.3).
        for other_id, other in self._entries.items():
            shared = graph.common_prefix_len(other.graph)
            shared_flops = graph.prefix_flops(shared)
            if (
                shared_flops >= self.min_shared_frac * graph.total_flops()
                and shared_flops
                >= self.min_shared_frac * other.graph.total_flops()
            ):
                entry.prefix_peers[other_id] = shared
                other.prefix_peers[model_id] = shared

        self._entries[model_id] = entry
        return entry

    def remove(self, model_id: str) -> None:
        entry = self._entries.pop(model_id, None)
        if entry is None:
            raise KeyError(f"unknown model {model_id!r}")
        for peer_id in entry.prefix_peers:
            self._entries[peer_id].prefix_peers.pop(model_id, None)

    # --------------------------------------------------------------- lookup

    def __contains__(self, model_id: str) -> bool:
        return model_id in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, model_id: str) -> ModelEntry:
        try:
            return self._entries[model_id]
        except KeyError:
            raise KeyError(
                f"unknown model {model_id!r}; "
                f"ingested: {sorted(self._entries)}"
            ) from None

    def model_ids(self) -> list[str]:
        return sorted(self._entries)

    def profile(self, model_id: str, device_name: str) -> BatchingProfile:
        return self.get(model_id).profile(device_name)

    # --------------------------------------------------------------- prefix

    def prefix_family(self, model_id: str) -> list[str]:
        """The maximal mutually-prefix-sharing group containing the model.

        Members must share a prefix with *every* other member (prefix
        sharing is not transitive across different specializations of
        different trunks).
        """
        entry = self.get(model_id)
        family = [model_id]
        for peer_id in sorted(entry.prefix_peers):
            peer = self._entries[peer_id]
            if all(m == model_id or m in peer.prefix_peers for m in family):
                family.append(peer_id)
        return family

    def prefix_groups(self) -> list[list[str]]:
        """Partition all resident models into prefix families."""
        remaining = set(self._entries)
        groups: list[list[str]] = []
        for model_id in sorted(self._entries):
            if model_id not in remaining:
                continue
            family = [m for m in self.prefix_family(model_id)
                      if m in remaining]
            remaining.difference_update(family)
            groups.append(family)
        return groups

    def fused_profiles(
        self, model_ids: list[str], device_name: str
    ) -> tuple[BatchingProfile, list[BatchingProfile], int]:
        """Prefix/suffix profiles for a family, ready for fusion."""
        graphs = [self.get(m).graph for m in model_ids]
        device = get_device(device_name)
        return prefix_suffix_profiles(graphs, device)

    # -------------------------------------------------------------- reports

    def summary(self) -> list[dict]:
        """One row per model: sizes, profiles, prefix links (for tooling)."""
        out = []
        for model_id in self.model_ids():
            entry = self._entries[model_id]
            out.append({
                "model_id": model_id,
                "layers": entry.graph.num_layers(),
                "gflops": round(entry.graph.total_flops() / 1e9, 2),
                "param_mb": round(entry.graph.total_param_bytes() / 1e6, 1),
                "devices": sorted(entry.profiles),
                "prefix_peers": len(entry.prefix_peers),
            })
        return out
