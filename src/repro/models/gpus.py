"""Device specifications and the dollar-cost model behind Table 1.

The paper's scheduling layer never touches real silicon: it consumes
*batching profiles* measured per (model, GPU) pair.  We replace the
measurement step with an analytic device model (see
:mod:`repro.models.profiler`); this module holds the per-device constants
that model needs, calibrated so that batch-1 latencies and batching gains
land near the paper's published numbers (Table 1; section 2.2 "batching
improves throughput by 4.7-13.3x for batch sizes of 32" on a GTX 1080).

Two latency regimes drive everything:

- ``effective_flops``: sustained FLOP/s for large, well-batched kernels
  (peak x a utilization factor); sets the marginal per-input cost ``alpha``.
- ``per_layer_overhead_ms``: fixed per-kernel cost charged once per batch
  per weighted layer.  Physically this is launch latency plus the
  low-occupancy tail of small kernels; it is what batching amortizes and is
  the source of the ``beta`` term in the paper's Equation 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.fleet import Fleet, GpuClass

__all__ = [
    "DeviceSpec",
    "GTX1080",
    "GTX1080TI",
    "K80",
    "V100",
    "TPU_V2",
    "T4",
    "A100",
    "CPU_C5",
    "DEVICES",
    "get_device",
    "cost_per_1000_invocations",
    "make_fleet",
]


@dataclass(frozen=True)
class DeviceSpec:
    """A compute device as seen by the analytic profiler.

    Attributes:
        name: short id used throughout the experiments.
        peak_flops: advertised peak FLOP/s (marketing number, used only for
            the Table-1 lower-bound cost computation).
        effective_flops: sustained FLOP/s achieved by large batched kernels;
            sets the slope ``alpha`` of the batch-latency line.
        mem_bandwidth: bytes/s of device memory bandwidth; weight reads are
            charged once per batch at this rate.
        mem_capacity: bytes of device memory, the packing constraint for
            model placement.
        per_layer_overhead_ms: fixed per-weighted-layer cost per batch (ms).
        price_per_hour: on-demand cloud price in dollars (Table 1 footnote).
        is_accelerator: False for CPUs (no batching gain modeled).
    """

    name: str
    peak_flops: float
    effective_flops: float
    mem_bandwidth: float
    mem_capacity: float
    per_layer_overhead_ms: float
    price_per_hour: float
    is_accelerator: bool = True
    #: host-to-device copy bandwidth (PCIe), bytes/s; governs model-load
    #: latency when the scheduler moves models between GPUs (section 2.2:
    #: "loading models into memory can cost hundreds of milliseconds to
    #: seconds").
    pcie_bandwidth: float = 12e9

    def model_load_ms(self, param_bytes: int) -> float:
        """Latency to place a model of the given weight size on this GPU,
        including a fixed framework initialization cost."""
        return 50.0 + param_bytes / self.pcie_bandwidth * 1000.0


#: NVIDIA GTX 1080 -- the device of the paper's section 2.2 batching study.
GTX1080 = DeviceSpec(
    name="gtx1080",
    peak_flops=8.9e12,
    effective_flops=5.0e12,
    mem_bandwidth=320e9,
    mem_capacity=8 * 1024**3,
    per_layer_overhead_ms=0.07,
    price_per_hour=0.70,
)

#: NVIDIA GTX 1080Ti -- the paper's 16-GPU cluster (section 7.4).
GTX1080TI = DeviceSpec(
    name="gtx1080ti",
    peak_flops=11.3e12,
    effective_flops=6.5e12,
    mem_bandwidth=484e9,
    mem_capacity=11 * 1024**3,
    per_layer_overhead_ms=0.055,
    price_per_hour=0.90,
)

#: NVIDIA K80 (one GK210 die) -- the paper's 100-GPU deployment, p2.xlarge.
K80 = DeviceSpec(
    name="k80",
    peak_flops=4.1e12,
    effective_flops=2.4e12,
    mem_bandwidth=240e9,
    mem_capacity=12 * 1024**3,
    per_layer_overhead_ms=0.10,
    price_per_hour=0.90,
)

#: NVIDIA V100 -- Table 1's GPU column (p3.2xlarge), 125 TFLOPS tensor peak.
V100 = DeviceSpec(
    name="v100",
    peak_flops=125e12,
    effective_flops=15.0e12,
    mem_bandwidth=900e9,
    mem_capacity=16 * 1024**3,
    per_layer_overhead_ms=0.02,
    price_per_hour=3.06,
)

#: Google Cloud TPU v2 -- Table 1's TPU column (180 TFLOPS peak).
TPU_V2 = DeviceSpec(
    name="tpu_v2",
    peak_flops=180e12,
    effective_flops=22.0e12,
    mem_bandwidth=600e9,
    mem_capacity=8 * 1024**3,
    per_layer_overhead_ms=0.02,
    price_per_hour=4.50,
)

#: NVIDIA T4 -- the common post-paper inference GPU (g4dn.xlarge).
T4 = DeviceSpec(
    name="t4",
    peak_flops=65e12,
    effective_flops=7.5e12,
    mem_bandwidth=320e9,
    mem_capacity=16 * 1024**3,
    per_layer_overhead_ms=0.05,
    price_per_hour=0.526,
)

#: NVIDIA A100 40GB -- a modern datacenter reference point (p4d share).
A100 = DeviceSpec(
    name="a100",
    peak_flops=312e12,
    effective_flops=40.0e12,
    mem_bandwidth=1555e9,
    mem_capacity=40 * 1024**3,
    per_layer_overhead_ms=0.015,
    price_per_hour=4.10,
)

#: AWS c5.large CPU (AVX-512) -- Table 1's CPU column, 0.1 TFLOPS peak.
CPU_C5 = DeviceSpec(
    name="cpu_c5",
    peak_flops=0.1e12,
    effective_flops=0.008e12,
    mem_bandwidth=20e9,
    mem_capacity=4 * 1024**3,
    per_layer_overhead_ms=0.05,
    price_per_hour=0.085,
    is_accelerator=False,
)

DEVICES: dict[str, DeviceSpec] = {
    d.name: d
    for d in (GTX1080, GTX1080TI, K80, V100, TPU_V2, T4, A100, CPU_C5)
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device spec by name, with a helpful error."""
    try:
        return DEVICES[name]
    except KeyError:
        raise KeyError(
            f"unknown device {name!r}; known: {sorted(DEVICES)}"
        ) from None


def cost_per_1000_invocations(model_flops: float, device: DeviceSpec) -> float:
    """Table 1's lower-bound dollar cost for 1000 invocations.

    The paper "lower-bounds the cost of executing a model by assuming that
    models can be executed at peak speed on each platform": cost is simply
    1000 x (seconds per invocation at peak) x (price per second).
    """
    seconds_per_invocation = model_flops / device.peak_flops
    price_per_second = device.price_per_hour / 3600.0
    return 1000.0 * seconds_per_invocation * price_per_second


def make_fleet(counts: dict[str, int | None]) -> Fleet:
    """Build a :class:`~repro.core.fleet.Fleet` from calibrated specs.

    ``counts`` maps device names (keys of :data:`DEVICES`) to inventory
    counts (None = unbounded).  Memory capacities and hourly prices come
    from the specs, so planning and Table-1-style cost accounting agree.
    """
    classes = []
    for name in sorted(counts):
        spec = get_device(name)
        classes.append(GpuClass(
            name=name,
            mem_capacity=int(spec.mem_capacity),
            price_per_hour=spec.price_per_hour,
            count=counts[name],
        ))
    return Fleet(tuple(classes))
