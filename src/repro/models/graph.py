"""Model graphs: DAGs of layers with shape inference and prefix hashing.

A :class:`ModelGraph` is what Nexus's model database stores for each
uploaded model (paper section 5, "management plane").  Two facilities
matter downstream:

- cost accounting (:meth:`ModelGraph.total_flops`,
  :meth:`ModelGraph.total_param_bytes`), consumed by the analytic profiler;
- *prefix hashes* (:meth:`ModelGraph.prefix_hashes`), consumed by the
  prefix-batching machinery of section 6.3: "Nexus computes the hash of
  every sub-tree of the model schema and compares it with the existing
  models in the database to identify common sub-trees".

The graph is built linearly with optional branches (sufficient for every
model in the zoo); nodes are topologically ordered by construction.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

from .layers import Concat, Add, Input, Layer, Shape

__all__ = ["Node", "ModelGraph", "GraphBuilder"]


@dataclass
class Node:
    """One layer instance wired into a graph."""

    index: int
    layer: Layer
    preds: tuple[int, ...]
    out_shape: Shape
    flops: int

    @property
    def name(self) -> str:
        return self.layer.name


class ModelGraph:
    """An immutable DAG of layers with resolved shapes and costs.

    Build via :class:`GraphBuilder` (or the zoo helpers); direct
    construction takes a fully-resolved node list.
    """

    def __init__(self, name: str, nodes: list[Node]):
        if not nodes:
            raise ValueError("empty model graph")
        if not isinstance(nodes[0].layer, Input):
            raise ValueError("first node must be an Input layer")
        self.name = name
        self.nodes = nodes
        self._prefix_hashes: list[str] | None = None

    # ------------------------------------------------------------------ cost

    def total_flops(self) -> int:
        """FLOPs to run one input through the whole model."""
        return sum(n.flops for n in self.nodes)

    def total_param_count(self) -> int:
        return sum(n.layer.param_count() for n in self.nodes)

    def total_param_bytes(self) -> int:
        return sum(n.layer.param_bytes() for n in self.nodes)

    def peak_activation_bytes(self) -> int:
        """Upper bound on live activation bytes for one input.

        We use the sum of the two largest consecutive activations, a
        standard approximation for feed-forward inference memory.
        """
        sizes = sorted(
            (n.layer.activation_bytes(self._in_shape(n)) for n in self.nodes),
            reverse=True,
        )
        return sizes[0] + (sizes[1] if len(sizes) > 1 else 0)

    def num_layers(self) -> int:
        return len(self.nodes)

    def num_weighted_layers(self) -> int:
        """Layers carrying parameters -- proxy for kernel-launch count."""
        return sum(1 for n in self.nodes if n.layer.param_count() > 0)

    @property
    def input_shape(self) -> Shape:
        return self.nodes[0].out_shape

    @property
    def output_shape(self) -> Shape:
        return self.nodes[-1].out_shape

    def _in_shape(self, node: Node) -> Shape:
        if not node.preds:
            return node.out_shape
        return self.nodes[node.preds[0]].out_shape

    # ---------------------------------------------------------------- prefix

    def prefix_hashes(self) -> list[str]:
        """Rolling structural hash after each node, in topological order.

        ``prefix_hashes()[i]`` identifies the sub-graph consisting of nodes
        ``0..i`` inclusive, including wiring.  Two models whose hashes agree
        at position ``i`` are guaranteed (up to hash collision) to share
        that prefix and can be prefix-batched through it.
        """
        if self._prefix_hashes is None:
            hashes: list[str] = []
            h = hashlib.sha256()
            for node in self.nodes:
                h.update(repr(node.layer.structural_key()).encode())
                h.update(repr(node.preds).encode())
                hashes.append(h.hexdigest())
            self._prefix_hashes = hashes
        return self._prefix_hashes

    def common_prefix_len(self, other: "ModelGraph") -> int:
        """Number of leading nodes shared (structurally) with ``other``."""
        mine, theirs = self.prefix_hashes(), other.prefix_hashes()
        n = 0
        for a, b in zip(mine, theirs):
            if a != b:
                break
            n += 1
        return n

    def prefix_flops(self, length: int) -> int:
        """FLOPs of the first ``length`` nodes."""
        return sum(n.flops for n in self.nodes[:length])

    def suffix_flops(self, length: int) -> int:
        """FLOPs of everything after the first ``length`` nodes."""
        return sum(n.flops for n in self.nodes[length:])

    def prefix_param_bytes(self, length: int) -> int:
        return sum(n.layer.param_bytes() for n in self.nodes[:length])

    def suffix_param_bytes(self, length: int) -> int:
        return sum(n.layer.param_bytes() for n in self.nodes[length:])

    def suffix_weighted_layers(self, length: int) -> int:
        return sum(1 for n in self.nodes[length:] if n.layer.param_count() > 0)

    def __repr__(self) -> str:
        return (
            f"ModelGraph({self.name!r}, layers={self.num_layers()}, "
            f"flops={self.total_flops() / 1e9:.2f}G, "
            f"params={self.total_param_bytes() / 1e6:.1f}MB)"
        )


class GraphBuilder:
    """Incremental builder used by the model zoo.

    Supports a linear spine with fork/join for Inception-style branches and
    ResNet residual blocks::

        b = GraphBuilder("toy", input_shape=(3, 32, 32))
        b.add(Conv2d("c1", out_channels=8, kernel=3, padding=1))
        fork = b.fork()
        a = b.add(Conv2d("b1", out_channels=8, kernel=1), from_node=fork)
        c = b.add(Conv2d("b2", out_channels=8, kernel=1), from_node=fork)
        b.join(Concat("cat"), [a, c])
        model = b.build()
    """

    def __init__(self, name: str, input_shape: Shape = (3, 224, 224)):
        self.name = name
        self._nodes: list[Node] = []
        inp = Input("input", shape=input_shape)
        self._nodes.append(Node(0, inp, (), input_shape, 0))
        self._head = 0

    @property
    def head(self) -> int:
        """Index of the node new layers attach to by default."""
        return self._head

    def fork(self) -> int:
        """Mark the current head as a branch point and return its index."""
        return self._head

    def add(self, layer: Layer, from_node: int | None = None) -> int:
        """Append ``layer`` after ``from_node`` (default: current head)."""
        pred = self._head if from_node is None else from_node
        in_shape = self._nodes[pred].out_shape
        bound = layer.bound(in_shape) if hasattr(layer, "bound") else layer
        out_shape = bound.out_shape(in_shape)
        flops = bound.flops(in_shape)
        node = Node(len(self._nodes), bound, (pred,), out_shape, flops)
        self._nodes.append(node)
        self._head = node.index
        return node.index

    def add_chain(self, layers: list[Layer], from_node: int | None = None) -> int:
        """Append a list of layers sequentially; returns last index."""
        idx = self._head if from_node is None else from_node
        for layer in layers:
            idx = self.add(layer, from_node=idx)
        return idx

    def join(self, layer: Concat | Add, branch_heads: list[int]) -> int:
        """Merge parallel branches with a Concat or Add node."""
        shapes = [self._nodes[i].out_shape for i in branch_heads]
        out_shape = layer.out_shapes(shapes)
        flops = layer.flops(out_shape)
        node = Node(len(self._nodes), layer, tuple(branch_heads), out_shape, flops)
        self._nodes.append(node)
        self._head = node.index
        return node.index

    def build(self) -> ModelGraph:
        return ModelGraph(self.name, self._nodes)
