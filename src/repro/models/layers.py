"""Layer algebra for the DNN model substrate.

Nexus never executes real kernels: every scheduling decision it makes
consumes only (a) a model's *cost* -- FLOPs, parameter bytes, activation
bytes -- and (b) its *structure*, used to detect shared prefixes between
specialized models (paper section 6.3).  This module provides the layer
types from which :mod:`repro.models.zoo` assembles those structures, with
analytically-correct FLOP and parameter counts.

Conventions
-----------
- Spatial tensors are ``(channels, height, width)``; vectors are ``(n,)``.
- A multiply-accumulate counts as 2 FLOPs, the usual convention used by
  papers reporting e.g. "ResNet-50 = 4.1 GFLOPs per image".
- Parameter and activation sizes are in **bytes**, assuming fp32 (4 bytes)
  unless a layer overrides :attr:`Layer.dtype_bytes`.
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field

__all__ = [
    "Shape",
    "Layer",
    "Input",
    "Conv2d",
    "DepthwiseConv2d",
    "Dense",
    "Pool2d",
    "GlobalPool",
    "BatchNorm",
    "Activation",
    "Flatten",
    "Concat",
    "Add",
    "Softmax",
    "DetectionHead",
]


Shape = tuple[int, ...]


def _volume(shape: Shape) -> int:
    """Number of scalar elements in a tensor of the given shape."""
    n = 1
    for d in shape:
        n *= d
    return n


def _conv_out_hw(h: int, w: int, kernel: int, stride: int, padding: int) -> tuple[int, int]:
    out_h = (h + 2 * padding - kernel) // stride + 1
    out_w = (w + 2 * padding - kernel) // stride + 1
    if out_h <= 0 or out_w <= 0:
        raise ValueError(
            f"conv reduces {h}x{w} to non-positive output "
            f"(kernel={kernel}, stride={stride}, padding={padding})"
        )
    return out_h, out_w


@dataclass(frozen=True)
class Layer:
    """Base class for all layers.

    Subclasses implement :meth:`out_shape`, :meth:`flops` and
    :meth:`param_count` against a concrete input shape.  Layers are frozen
    dataclasses so they hash structurally, which the prefix detector relies
    on: two specialized models share a prefix iff the layer objects (and
    wiring) along that prefix compare equal.
    """

    name: str

    #: bytes per scalar; fp32 by default.
    dtype_bytes: int = field(default=4, kw_only=True)

    def out_shape(self, in_shape: Shape) -> Shape:
        raise NotImplementedError

    def flops(self, in_shape: Shape) -> int:
        """FLOPs to process ONE input through this layer."""
        raise NotImplementedError

    def param_count(self) -> int:
        """Number of learned scalars held by this layer."""
        return 0

    def param_bytes(self) -> int:
        return self.param_count() * self.dtype_bytes

    def activation_bytes(self, in_shape: Shape) -> int:
        """Bytes of output activation produced for one input."""
        return _volume(self.out_shape(in_shape)) * self.dtype_bytes

    def structural_key(self) -> tuple:
        """Hashable identity used for prefix matching.

        Excludes :attr:`name` so that e.g. ``conv1`` in two separately
        constructed ResNet-50 instances still matches.
        """
        fields = []
        for f in dataclasses.fields(self):
            if f.name == "name":
                continue
            fields.append((f.name, getattr(self, f.name)))
        return (type(self).__name__, tuple(fields))


@dataclass(frozen=True)
class Input(Layer):
    """Source pseudo-layer fixing the model's input shape."""

    shape: Shape = (3, 224, 224)

    def out_shape(self, in_shape: Shape) -> Shape:
        return self.shape

    def flops(self, in_shape: Shape) -> int:
        return 0


@dataclass(frozen=True)
class Conv2d(Layer):
    """Standard 2-D convolution over (C, H, W) tensors."""

    out_channels: int = 64
    kernel: int = 3
    stride: int = 1
    padding: int = 0
    bias: bool = True
    # filled in when bound to a graph; stored so param_count needs no shape
    in_channels: int = 0

    def bound(self, in_shape: Shape) -> "Conv2d":
        """Return a copy with :attr:`in_channels` resolved from the input."""
        return dataclasses.replace(self, in_channels=in_shape[0])

    def out_shape(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        out_h, out_w = _conv_out_hw(h, w, self.kernel, self.stride, self.padding)
        return (self.out_channels, out_h, out_w)

    def flops(self, in_shape: Shape) -> int:
        c, h, w = in_shape
        out_h, out_w = _conv_out_hw(h, w, self.kernel, self.stride, self.padding)
        macs = self.kernel * self.kernel * c * self.out_channels * out_h * out_w
        return 2 * macs

    def param_count(self) -> int:
        weights = self.kernel * self.kernel * self.in_channels * self.out_channels
        return weights + (self.out_channels if self.bias else 0)


@dataclass(frozen=True)
class DepthwiseConv2d(Layer):
    """Depthwise (per-channel) convolution, as used by MobileNet."""

    kernel: int = 3
    stride: int = 1
    padding: int = 1
    in_channels: int = 0

    def bound(self, in_shape: Shape) -> "DepthwiseConv2d":
        return dataclasses.replace(self, in_channels=in_shape[0])

    def out_shape(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        out_h, out_w = _conv_out_hw(h, w, self.kernel, self.stride, self.padding)
        return (c, out_h, out_w)

    def flops(self, in_shape: Shape) -> int:
        c, h, w = in_shape
        out_h, out_w = _conv_out_hw(h, w, self.kernel, self.stride, self.padding)
        macs = self.kernel * self.kernel * c * out_h * out_w
        return 2 * macs

    def param_count(self) -> int:
        return self.kernel * self.kernel * self.in_channels


@dataclass(frozen=True)
class Dense(Layer):
    """Fully connected layer on flattened input."""

    out_features: int = 1000
    bias: bool = True
    in_features: int = 0

    def bound(self, in_shape: Shape) -> "Dense":
        return dataclasses.replace(self, in_features=_volume(in_shape))

    def out_shape(self, in_shape: Shape) -> Shape:
        return (self.out_features,)

    def flops(self, in_shape: Shape) -> int:
        return 2 * _volume(in_shape) * self.out_features

    def param_count(self) -> int:
        return self.in_features * self.out_features + (
            self.out_features if self.bias else 0
        )


@dataclass(frozen=True)
class Pool2d(Layer):
    """Max/avg pooling; parameter-free, cheap."""

    kernel: int = 2
    stride: int = 2
    padding: int = 0
    mode: str = "max"

    def out_shape(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        out_h, out_w = _conv_out_hw(h, w, self.kernel, self.stride, self.padding)
        return (c, out_h, out_w)

    def flops(self, in_shape: Shape) -> int:
        c, h, w = in_shape
        out_h, out_w = _conv_out_hw(h, w, self.kernel, self.stride, self.padding)
        return self.kernel * self.kernel * c * out_h * out_w


@dataclass(frozen=True)
class GlobalPool(Layer):
    """Global average pooling to a (C,) vector."""

    def out_shape(self, in_shape: Shape) -> Shape:
        return (in_shape[0],)

    def flops(self, in_shape: Shape) -> int:
        return _volume(in_shape)


@dataclass(frozen=True)
class BatchNorm(Layer):
    """Batch normalization; 2 FLOPs/element at inference, 2C params."""

    channels: int = 0

    def bound(self, in_shape: Shape) -> "BatchNorm":
        return dataclasses.replace(self, channels=in_shape[0])

    def out_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def flops(self, in_shape: Shape) -> int:
        return 2 * _volume(in_shape)

    def param_count(self) -> int:
        return 2 * self.channels


@dataclass(frozen=True)
class Activation(Layer):
    """Pointwise nonlinearity (relu/sigmoid/leaky...)."""

    kind: str = "relu"

    def out_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def flops(self, in_shape: Shape) -> int:
        return _volume(in_shape)


@dataclass(frozen=True)
class Flatten(Layer):
    def out_shape(self, in_shape: Shape) -> Shape:
        return (_volume(in_shape),)

    def flops(self, in_shape: Shape) -> int:
        return 0


@dataclass(frozen=True)
class Concat(Layer):
    """Channel-wise concatenation of parallel branches (Inception)."""

    def out_shapes(self, in_shapes: list[Shape]) -> Shape:
        if not in_shapes:
            raise ValueError("Concat needs at least one input")
        if len({s[1:] for s in in_shapes}) != 1:
            raise ValueError(f"Concat spatial dims mismatch: {in_shapes}")
        return (sum(s[0] for s in in_shapes),) + in_shapes[0][1:]

    def out_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def flops(self, in_shape: Shape) -> int:
        return 0


@dataclass(frozen=True)
class Add(Layer):
    """Elementwise residual addition (ResNet shortcut joins)."""

    def out_shapes(self, in_shapes: list[Shape]) -> Shape:
        if len(set(in_shapes)) != 1:
            raise ValueError(f"Add shape mismatch: {in_shapes}")
        return in_shapes[0]

    def out_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def flops(self, in_shape: Shape) -> int:
        return _volume(in_shape)


@dataclass(frozen=True)
class Softmax(Layer):
    def out_shape(self, in_shape: Shape) -> Shape:
        return in_shape

    def flops(self, in_shape: Shape) -> int:
        # exp + sum + divide
        return 3 * _volume(in_shape)


@dataclass(frozen=True)
class DetectionHead(Layer):
    """Multi-box detection head (SSD): per-anchor class+box regression.

    Modeled as a bank of 3x3 convs over the feature map producing
    ``anchors * (classes + 4)`` outputs per location.
    """

    anchors: int = 6
    classes: int = 21
    in_channels: int = 0

    def bound(self, in_shape: Shape) -> "DetectionHead":
        return dataclasses.replace(self, in_channels=in_shape[0])

    def out_shape(self, in_shape: Shape) -> Shape:
        c, h, w = in_shape
        return (self.anchors * (self.classes + 4), h, w)

    def flops(self, in_shape: Shape) -> int:
        c, h, w = in_shape
        out_c = self.anchors * (self.classes + 4)
        return 2 * 9 * c * out_c * h * w

    def param_count(self) -> int:
        out_c = self.anchors * (self.classes + 4)
        return 9 * self.in_channels * out_c + out_c


def gigaflops(flops: int) -> float:
    """Convenience: FLOPs -> GFLOPs."""
    return flops / 1e9


def mib(nbytes: int) -> float:
    """Convenience: bytes -> MiB."""
    return nbytes / (1024 * 1024)


def human_size(nbytes: int) -> str:
    """Render a byte count as a short human string (for reports)."""
    if nbytes < 1024:
        return f"{nbytes} B"
    units = ["KiB", "MiB", "GiB", "TiB"]
    value = float(nbytes)
    for unit in units:
        value /= 1024.0
        if value < 1024.0:
            return f"{value:.1f} {unit}"
    return f"{value:.1f} PiB"


def human_flops(flops: float) -> str:
    """Render a FLOP count as a short human string (for reports)."""
    if flops < 1e6:
        return f"{flops / 1e3:.1f} KFLOPs"
    if flops < 1e9:
        return f"{flops / 1e6:.1f} MFLOPs"
    if flops < 1e12:
        return f"{flops / 1e9:.2f} GFLOPs"
    return f"{flops / 1e12:.2f} TFLOPs"
