"""Analytic profiler: (model graph, device) -> batching profile.

The real Nexus management plane runs each uploaded model on the target GPU
at every batch size and records the latency curve (paper section 5,
"a profiler measures the execution latency and memory use for different
batch sizes").  We have no GPUs, so we *derive* the curve from first
principles -- the substitution documented in DESIGN.md section 2:

- the slope ``alpha`` is compute-bound: model FLOPs divided by the
  device's sustained FLOP/s for batched kernels;
- the intercept ``beta`` is the once-per-batch cost: a per-weighted-layer
  kernel overhead (launch latency + low-occupancy warm-up, the quantity
  that batching amortizes) plus one pass of the weights through device
  memory.

The resulting curves land near the paper's published anchors (Table 1
batch-1 latencies; the 4.7-13.3x batch-32 gains of section 2.2), which
:mod:`tests.test_profiler_calibration` checks.
"""

from __future__ import annotations

import functools

from ..core.profile import LinearProfile
from .gpus import DeviceSpec, get_device
from .graph import ModelGraph
from .zoo import get_model

__all__ = ["profile_model", "profile", "prefix_suffix_profiles", "cpu_latency_ms"]


#: CPU worker pool assumed per GPU; section 6.3: "it usually takes 4 to 5
#: CPU cores to saturate GPU throughput".  Raw per-input CPU costs are
#: divided by this before entering the profile.
CPU_WORKERS_PER_GPU = 5

#: Raw single-core pre-processing ms per input, by input area.  Decoding a
#: frame region and resizing it scales with pixels; the constant is pinned
#: to the paper's game case study ("relatively high preprocessing times,
#: roughly 10ms" for 224x224 crops from stream frames).
_PRE_MS_PER_MEGAPIXEL = 60.0
_PRE_MS_BASE = 1.5

#: Raw single-core post-processing ms per input (argmax / NMS / packaging).
_POST_MS_BASE = 0.4

#: Fraction of one input's compute charged per batch as pipeline fill
#: (see ``profile_model``).  Calibrated so SSD-class detectors show the
#: batching gains the paper measures while small models stay
#: launch-dominated.
_PIPELINE_FILL_FRAC = 0.5


def _pre_ms(model: ModelGraph) -> float:
    """RAW single-core per-input CPU pre-processing cost."""
    c, *rest = model.input_shape
    pixels = 1
    for d in rest:
        pixels *= d
    return _PRE_MS_BASE + _PRE_MS_PER_MEGAPIXEL * pixels / 1e6


def _post_ms(model: ModelGraph) -> float:
    raw = _POST_MS_BASE
    if "ssd" in model.name or "darknet" in model.name:
        raw += 2.0  # NMS over anchor boxes
    return raw


def profile_model(model: ModelGraph, device: DeviceSpec) -> LinearProfile:
    """Derive the Equation-1 batching profile of ``model`` on ``device``.

    Also computes the memory terms used by the packing constraint: weights
    are resident per model; activations scale with batch size.
    """
    flops = model.total_flops()
    alpha = flops / device.effective_flops * 1000.0  # ms per input

    launch = model.num_weighted_layers() * device.per_layer_overhead_ms
    weight_read = model.total_param_bytes() / device.mem_bandwidth * 1000.0
    # Pipeline fill: the first input of a batch pays layer-to-layer
    # dependencies at partial device occupancy; later inputs stream
    # through.  Charged once per batch as a fraction of one input's
    # compute -- negligible for launch-dominated models, but it is what
    # gives compute-heavy detectors (SSD) their measured batching gains.
    pipeline_fill = _PIPELINE_FILL_FRAC * alpha
    beta = launch + weight_read + pipeline_fill

    if not device.is_accelerator:
        # CPUs gain nothing from batching: fold the amortizable cost into
        # the per-input slope so latency is ~linear from batch 1.
        alpha += beta
        beta = launch * 0.1

    act_bytes = model.peak_activation_bytes()
    max_batch = _max_batch_for_memory(model, device, act_bytes)

    return LinearProfile(
        name=f"{model.name}:{device.name}",
        alpha=alpha,
        beta=beta,
        max_batch=max_batch,
        pre_ms=_pre_ms(model),
        post_ms=_post_ms(model),
        cpu_workers=CPU_WORKERS_PER_GPU,
        memory_model_bytes=model.total_param_bytes(),
        memory_per_input_bytes=act_bytes,
    )


def _max_batch_for_memory(model: ModelGraph, device: DeviceSpec,
                          act_bytes: int) -> int:
    """Largest batch whose activations fit beside the weights in memory.

    Leaves half the device for other co-located models and framework
    overhead, then caps at the framework default of 256.
    """
    budget = device.mem_capacity / 2 - model.total_param_bytes()
    if budget <= act_bytes:
        return 1
    return max(1, min(256, int(budget // act_bytes)))


@functools.lru_cache(maxsize=None)
def profile(model_name: str, device_name: str = "gtx1080ti") -> LinearProfile:
    """Cached convenience: profile a zoo model by name on a device by name."""
    return profile_model(get_model(model_name), get_device(device_name))


def prefix_suffix_profiles(
    models: list[ModelGraph], device: DeviceSpec
) -> tuple[LinearProfile, list[LinearProfile], int]:
    """Split a family of specialized models into prefix + suffix profiles.

    Used by prefix batching (section 6.3): the shared prefix executes as
    one batched model; each suffix executes sequentially on its own
    sub-batch.  Returns ``(prefix_profile, suffix_profiles, prefix_len)``
    where ``prefix_len`` is the number of shared leading graph nodes.

    Raises ValueError if the models share no prefix beyond the input node.
    """
    if len(models) < 2:
        raise ValueError("need at least two models to prefix-batch")
    prefix_len = models[0].common_prefix_len(models[1])
    for m in models[2:]:
        prefix_len = min(prefix_len, models[0].common_prefix_len(m))
    if prefix_len <= 1:
        raise ValueError(
            "models share no common prefix beyond the input node: "
            + ", ".join(m.name for m in models)
        )

    base = models[0]
    prefix_flops = base.prefix_flops(prefix_len)
    prefix_params = base.prefix_param_bytes(prefix_len)
    prefix_layers = sum(
        1 for n in base.nodes[:prefix_len] if n.layer.param_count() > 0
    )
    prefix_alpha = prefix_flops / device.effective_flops * 1000.0
    prefix_profile = LinearProfile(
        name=f"{base.name}[:{prefix_len}]:{device.name}",
        alpha=prefix_alpha,
        beta=(prefix_layers * device.per_layer_overhead_ms
              + prefix_params / device.mem_bandwidth * 1000.0
              + _PIPELINE_FILL_FRAC * prefix_alpha),
        max_batch=256,
        pre_ms=_pre_ms(base),
        post_ms=0.0,
        cpu_workers=CPU_WORKERS_PER_GPU,
        memory_model_bytes=prefix_params,
        memory_per_input_bytes=base.peak_activation_bytes(),
    )

    suffix_profiles = []
    for m in models:
        suffix_flops = m.suffix_flops(prefix_len)
        suffix_params = m.suffix_param_bytes(prefix_len)
        suffix_layers = m.suffix_weighted_layers(prefix_len)
        suffix_profiles.append(
            LinearProfile(
                name=f"{m.name}[{prefix_len}:]:{device.name}",
                alpha=max(1e-6, suffix_flops / device.effective_flops * 1000.0),
                beta=(suffix_layers * device.per_layer_overhead_ms
                      + suffix_params / device.mem_bandwidth * 1000.0),
                max_batch=256,
                pre_ms=0.0,
                post_ms=_post_ms(m),
                cpu_workers=CPU_WORKERS_PER_GPU,
                memory_model_bytes=suffix_params,
                memory_per_input_bytes=4096,
            )
        )
    return prefix_profile, suffix_profiles, prefix_len


def cpu_latency_ms(model: ModelGraph, device: DeviceSpec | None = None) -> float:
    """Batch-1 latency on a CPU device (Table 1's CPU column)."""
    from .gpus import CPU_C5

    dev = device or CPU_C5
    return profile_model(model, dev).latency(1)
