"""Transfer-learning specialization: re-train only the suffix of a model.

Paper section 2.2: "It has become common practice to use smaller models
specialized (using transfer learning) to the few objects, faces, etc.
relevant to an application by altering ('re-training') just the output
layers of the models."  Section 6.3 then batches the shared prefix across
such variants.

:func:`specialize` clones a zoo model and replaces its trailing dense
layers (and softmax) with fresh ones tagged by the variant name.  Because
:meth:`Layer.structural_key` ignores layer *names* but a re-trained dense
layer gets a distinct ``variant`` field, the prefix hash diverges exactly
at the first replaced layer -- which is what lets
:mod:`repro.core.prefix` find the shared trunk.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .graph import ModelGraph, Node
from .layers import Dense, Layer, Shape, Softmax

__all__ = ["SpecializedDense", "specialize", "make_variants"]


@dataclass(frozen=True)
class SpecializedDense(Dense):
    """A dense layer whose weights were re-trained for a specific task.

    The ``variant`` tag participates in :meth:`structural_key`, so two
    specializations of the same base model stop matching at this layer.
    """

    variant: str = ""


def specialize(
    base: ModelGraph,
    variant: str,
    num_classes: int | None = None,
    suffix_layers: int = 1,
) -> ModelGraph:
    """Create a transfer-learning variant of ``base``.

    Args:
        base: the pretrained model to specialize.
        variant: tag naming the new task (e.g. ``"game3_font"``); embedded
            in the replaced layers' structural identity.
        num_classes: output width of the new classifier; defaults to the
            base model's.
        suffix_layers: how many trailing *dense* layers to re-train.  The
            paper's Figure 15 sweeps 1-3 FC suffix layers ("1 FC", "2 FC",
            "3 FC"); when the base model has fewer dense layers than
            requested, fresh hidden dense layers are inserted before the
            classifier (the common fine-tuning head pattern).

    Returns:
        A new :class:`ModelGraph` named ``"<base>@<variant>"`` sharing all
        but the replaced suffix with ``base``.
    """
    if suffix_layers < 1:
        raise ValueError("suffix_layers must be >= 1")

    dense_positions = [
        i for i, node in enumerate(base.nodes) if isinstance(node.layer, Dense)
    ]
    if not dense_positions:
        raise ValueError(
            f"model {base.name!r} has no dense layers to specialize"
        )
    replace_from = dense_positions[-min(suffix_layers, len(dense_positions))]
    extra_fc = max(0, suffix_layers - len(dense_positions))

    new_nodes: list[Node] = []
    index_map: dict[int, int] = {}  # old index -> new index

    def append(layer: Layer, preds: tuple[int, ...]) -> Node:
        node = Node(len(new_nodes), layer, preds, (), 0)
        new_nodes.append(node)
        return node

    for i, node in enumerate(base.nodes):
        layer: Layer = node.layer
        preds = tuple(index_map[p] for p in node.preds)
        if i >= replace_from:
            if isinstance(layer, Dense):
                is_last_dense = i == dense_positions[-1]
                if is_last_dense and extra_fc:
                    # Insert fresh hidden FC layers (width = the classifier
                    # input) ahead of the re-trained classifier.
                    pred = preds[0]
                    for j in range(extra_fc):
                        hidden = append(
                            SpecializedDense(
                                f"{layer.name}.extra{j}",
                                out_features=layer.out_features,
                                variant=variant,
                            ),
                            (pred,),
                        )
                        pred = hidden.index
                    preds = (pred,)
                out = (
                    num_classes
                    if (num_classes is not None and is_last_dense)
                    else layer.out_features
                )
                layer = SpecializedDense(
                    layer.name,
                    out_features=out,
                    bias=layer.bias,
                    in_features=layer.in_features,
                    variant=variant,
                )
        new = append(layer, preds)
        index_map[i] = new.index

    # Resolve shapes/flops over the rebuilt graph: the shared prefix keeps
    # the base's numbers (so hashes over it stay identical); the suffix is
    # re-derived because class counts and inserted layers change shapes.
    for i, node in enumerate(new_nodes):
        if not node.preds:
            # Input node: copy through from the base.
            src = base.nodes[0]
            new_nodes[i] = Node(i, node.layer, (), src.out_shape, src.flops)
            continue
        in_shapes = [new_nodes[p].out_shape for p in node.preds]
        layer = node.layer
        if hasattr(layer, "bound"):
            layer = layer.bound(in_shapes[0])
        if hasattr(layer, "out_shapes"):
            out_shape: Shape = layer.out_shapes(in_shapes)
        else:
            out_shape = layer.out_shape(in_shapes[0])
        new_nodes[i] = Node(i, layer, node.preds, out_shape,
                            layer.flops(in_shapes[0]))

    return ModelGraph(f"{base.name}@{variant}", new_nodes)


def make_variants(
    base: ModelGraph,
    count: int,
    prefix: str = "task",
    num_classes: int | None = None,
    suffix_layers: int = 1,
) -> list[ModelGraph]:
    """Produce ``count`` distinct specializations of ``base``.

    Used by the prefix-batching experiments (Figure 15: 2-10 ResNet-50
    variants differing only in the last layer[s]).
    """
    return [
        specialize(base, f"{prefix}{i}", num_classes=num_classes,
                   suffix_layers=suffix_layers)
        for i in range(count)
    ]
