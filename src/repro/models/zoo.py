"""Model zoo: the DNN architectures used across the paper's evaluation.

Each builder returns a :class:`~repro.models.graph.ModelGraph` with layer
structure, FLOPs, and parameter counts close to the published
architectures.  These feed two consumers:

- the analytic profiler (latency/cost model -- Table 1, batching profiles);
- the prefix detector (specialized variants share every layer except a
  re-trained suffix -- section 6.3).

Models referenced by the paper:

====================  =======================================================
``lenet5``            game digit/text recognition (specialized per font)
``vgg7``              Table 1 small conv net
``vgg16``             backbone for SSD and VGG-Face
``vgg_face``          traffic app face recognition [29]
``resnet50``          game icon recognition, generic object recognition
``googlenet``         GoogleNet-car make/model recognition [39]
``inception_v3/v4``   multiplexing/table-1 benchmarks
``darknet53``         Table 1 large model
``ssd_vgg``           traffic/amber object detection [4]
``mobilenet_v1``      light-weight heads (gaze/age/sex in the bb app)
====================  =======================================================

Use :func:`get_model` for cached lookup by name, including specialized
variants (``"lenet5@game3"``) built through
:mod:`repro.models.specialize`.
"""

from __future__ import annotations

import functools

from .graph import GraphBuilder, ModelGraph
from .layers import (
    Activation,
    Add,
    BatchNorm,
    Concat,
    Conv2d,
    Dense,
    DepthwiseConv2d,
    DetectionHead,
    Flatten,
    GlobalPool,
    Pool2d,
    Softmax,
)

__all__ = [
    "lenet5",
    "alexnet",
    "vgg7",
    "vgg16",
    "vgg_face",
    "resnet18",
    "resnet50",
    "resnet101",
    "googlenet",
    "inception_v3",
    "inception_v4",
    "darknet53",
    "yolo_v3",
    "ssd_vgg",
    "ssd_mobilenet",
    "squeezenet",
    "mobilenet_v1",
    "get_model",
    "MODEL_BUILDERS",
]


def _conv_bn_relu(
    b: GraphBuilder,
    name: str,
    out_channels: int,
    kernel: int,
    stride: int = 1,
    padding: int | None = None,
    from_node: int | None = None,
) -> int:
    """Conv -> BN -> ReLU triple, the workhorse of modern backbones."""
    if padding is None:
        padding = kernel // 2
    idx = b.add(
        Conv2d(name, out_channels=out_channels, kernel=kernel, stride=stride,
               padding=padding, bias=False),
        from_node=from_node,
    )
    idx = b.add(BatchNorm(f"{name}.bn"), from_node=idx)
    return b.add(Activation(f"{name}.relu"), from_node=idx)


# --------------------------------------------------------------------- LeNet


def lenet5(num_classes: int = 10) -> ModelGraph:
    """LeNet-5 on 28x28 grayscale input (~0.8 MFLOPs, 20 MOPs in the paper's
    rounding). The game app uses per-font specializations of this model."""
    b = GraphBuilder(f"lenet5-{num_classes}", input_shape=(1, 28, 28))
    b.add(Conv2d("conv1", out_channels=6, kernel=5, padding=2))
    b.add(Activation("relu1"))
    b.add(Pool2d("pool1", kernel=2, stride=2))
    b.add(Conv2d("conv2", out_channels=16, kernel=5))
    b.add(Activation("relu2"))
    b.add(Pool2d("pool2", kernel=2, stride=2))
    b.add(Flatten("flatten"))
    b.add(Dense("fc1", out_features=120))
    b.add(Activation("relu3"))
    b.add(Dense("fc2", out_features=84))
    b.add(Activation("relu4"))
    b.add(Dense("fc3", out_features=num_classes))
    b.add(Softmax("prob"))
    return b.build()


def alexnet(num_classes: int = 1000) -> ModelGraph:
    """AlexNet on 224x224 input (~1.4 GFLOPs); the classic five-conv net."""
    b = GraphBuilder(f"alexnet-{num_classes}", input_shape=(3, 224, 224))
    b.add(Conv2d("conv1", out_channels=96, kernel=11, stride=4, padding=2))
    b.add(Activation("relu1"))
    b.add(Pool2d("pool1", kernel=3, stride=2))
    b.add(Conv2d("conv2", out_channels=256, kernel=5, padding=2))
    b.add(Activation("relu2"))
    b.add(Pool2d("pool2", kernel=3, stride=2))
    b.add(Conv2d("conv3", out_channels=384, kernel=3, padding=1))
    b.add(Activation("relu3"))
    b.add(Conv2d("conv4", out_channels=384, kernel=3, padding=1))
    b.add(Activation("relu4"))
    b.add(Conv2d("conv5", out_channels=256, kernel=3, padding=1))
    b.add(Activation("relu5"))
    b.add(Pool2d("pool5", kernel=3, stride=2))
    b.add(Flatten("flatten"))
    b.add(Dense("fc6", out_features=4096))
    b.add(Activation("relu6"))
    b.add(Dense("fc7", out_features=4096))
    b.add(Activation("relu7"))
    b.add(Dense("fc8", out_features=num_classes))
    b.add(Softmax("prob"))
    return b.build()


# ----------------------------------------------------------------------- VGG


def vgg7(num_classes: int = 10) -> ModelGraph:
    """The 7-weight-layer VGG variant of Table 1 (CIFAR-style input)."""
    b = GraphBuilder(f"vgg7-{num_classes}", input_shape=(3, 32, 32))
    for i, ch in enumerate((64, 128), start=1):
        b.add(Conv2d(f"conv{i}_1", out_channels=ch, kernel=3, padding=1))
        b.add(Activation(f"relu{i}_1"))
        b.add(Conv2d(f"conv{i}_2", out_channels=ch, kernel=3, padding=1))
        b.add(Activation(f"relu{i}_2"))
        b.add(Pool2d(f"pool{i}", kernel=2, stride=2))
    b.add(Flatten("flatten"))
    b.add(Dense("fc1", out_features=1024))
    b.add(Activation("relu_fc1"))
    b.add(Dense("fc2", out_features=512))
    b.add(Activation("relu_fc2"))
    b.add(Dense("fc3", out_features=num_classes))
    b.add(Softmax("prob"))
    return b.build()


_VGG16_CFG = (
    (64, 2), (128, 2), (256, 3), (512, 3), (512, 3),
)


def _vgg16_trunk(b: GraphBuilder) -> int:
    idx = b.head
    for block, (ch, reps) in enumerate(_VGG16_CFG, start=1):
        for rep in range(1, reps + 1):
            idx = b.add(Conv2d(f"conv{block}_{rep}", out_channels=ch,
                               kernel=3, padding=1), from_node=idx)
            idx = b.add(Activation(f"relu{block}_{rep}"), from_node=idx)
        idx = b.add(Pool2d(f"pool{block}", kernel=2, stride=2), from_node=idx)
    return idx


def vgg16(num_classes: int = 1000) -> ModelGraph:
    """VGG-16 on 224x224 input (~31 GFLOPs with the 2x-MAC convention)."""
    b = GraphBuilder(f"vgg16-{num_classes}", input_shape=(3, 224, 224))
    _vgg16_trunk(b)
    b.add(Flatten("flatten"))
    b.add(Dense("fc6", out_features=4096))
    b.add(Activation("relu6"))
    b.add(Dense("fc7", out_features=4096))
    b.add(Activation("relu7"))
    b.add(Dense("fc8", out_features=num_classes))
    b.add(Softmax("prob"))
    return b.build()


def vgg_face(num_identities: int = 2622) -> ModelGraph:
    """VGG-Face [29]: VGG-16 trained for face identification."""
    g = vgg16(num_classes=num_identities)
    g.name = f"vgg_face-{num_identities}"
    return g


# -------------------------------------------------------------------- ResNet


def _bottleneck(b: GraphBuilder, name: str, mid: int, out: int,
                stride: int = 1, project: bool = False) -> int:
    """ResNet bottleneck: 1x1 down, 3x3, 1x1 up, with identity shortcut."""
    entry = b.head
    idx = _conv_bn_relu(b, f"{name}.a", mid, kernel=1, stride=stride,
                        padding=0, from_node=entry)
    idx = _conv_bn_relu(b, f"{name}.b", mid, kernel=3, from_node=idx)
    idx = b.add(Conv2d(f"{name}.c", out_channels=out, kernel=1, padding=0,
                       bias=False), from_node=idx)
    idx = b.add(BatchNorm(f"{name}.c.bn"), from_node=idx)
    if project:
        short = b.add(
            Conv2d(f"{name}.proj", out_channels=out, kernel=1,
                   stride=stride, padding=0, bias=False),
            from_node=entry,
        )
        short = b.add(BatchNorm(f"{name}.proj.bn"), from_node=short)
    else:
        short = entry
    idx = b.join(Add(f"{name}.add"), [idx, short])
    return b.add(Activation(f"{name}.relu"), from_node=idx)


def resnet50(num_classes: int = 1000) -> ModelGraph:
    """ResNet-50 [15] (~8 GFLOPs with the 2x-MAC convention)."""
    b = GraphBuilder(f"resnet50-{num_classes}", input_shape=(3, 224, 224))
    _conv_bn_relu(b, "conv1", 64, kernel=7, stride=2, padding=3)
    b.add(Pool2d("pool1", kernel=3, stride=2, padding=1))
    stage_cfg = ((64, 256, 3), (128, 512, 4), (256, 1024, 6), (512, 2048, 3))
    for stage, (mid, out, blocks) in enumerate(stage_cfg, start=2):
        for i in range(blocks):
            stride = 2 if (i == 0 and stage > 2) else 1
            _bottleneck(b, f"res{stage}{chr(ord('a') + i)}", mid, out,
                        stride=stride, project=(i == 0))
    b.add(GlobalPool("avgpool"))
    b.add(Dense("fc", out_features=num_classes))
    b.add(Softmax("prob"))
    return b.build()


def _basic_block(b: GraphBuilder, name: str, channels: int,
                 stride: int = 1, project: bool = False) -> int:
    """ResNet-18/34 basic block: two 3x3 convs with identity shortcut."""
    entry = b.head
    idx = _conv_bn_relu(b, f"{name}.a", channels, kernel=3, stride=stride,
                        from_node=entry)
    idx = b.add(Conv2d(f"{name}.b", out_channels=channels, kernel=3,
                       padding=1, bias=False), from_node=idx)
    idx = b.add(BatchNorm(f"{name}.b.bn"), from_node=idx)
    if project:
        short = b.add(
            Conv2d(f"{name}.proj", out_channels=channels, kernel=1,
                   stride=stride, padding=0, bias=False),
            from_node=entry,
        )
        short = b.add(BatchNorm(f"{name}.proj.bn"), from_node=short)
    else:
        short = entry
    idx = b.join(Add(f"{name}.add"), [idx, short])
    return b.add(Activation(f"{name}.relu"), from_node=idx)


def resnet18(num_classes: int = 1000) -> ModelGraph:
    """ResNet-18 [15] (~3.6 GFLOPs with the 2x-MAC convention)."""
    b = GraphBuilder(f"resnet18-{num_classes}", input_shape=(3, 224, 224))
    _conv_bn_relu(b, "conv1", 64, kernel=7, stride=2, padding=3)
    b.add(Pool2d("pool1", kernel=3, stride=2, padding=1))
    for stage, channels in enumerate((64, 128, 256, 512), start=2):
        for i in range(2):
            stride = 2 if (i == 0 and stage > 2) else 1
            _basic_block(b, f"res{stage}{chr(ord('a') + i)}", channels,
                         stride=stride, project=(i == 0 and stage > 2))
    b.add(GlobalPool("avgpool"))
    b.add(Dense("fc", out_features=num_classes))
    b.add(Softmax("prob"))
    return b.build()


def resnet101(num_classes: int = 1000) -> ModelGraph:
    """ResNet-101 [15] (~15 GFLOPs with the 2x-MAC convention)."""
    b = GraphBuilder(f"resnet101-{num_classes}", input_shape=(3, 224, 224))
    _conv_bn_relu(b, "conv1", 64, kernel=7, stride=2, padding=3)
    b.add(Pool2d("pool1", kernel=3, stride=2, padding=1))
    stage_cfg = ((64, 256, 3), (128, 512, 4), (256, 1024, 23), (512, 2048, 3))
    for stage, (mid, out, blocks) in enumerate(stage_cfg, start=2):
        for i in range(blocks):
            stride = 2 if (i == 0 and stage > 2) else 1
            _bottleneck(b, f"res{stage}_{i}", mid, out,
                        stride=stride, project=(i == 0))
    b.add(GlobalPool("avgpool"))
    b.add(Dense("fc", out_features=num_classes))
    b.add(Softmax("prob"))
    return b.build()


def squeezenet(num_classes: int = 1000) -> ModelGraph:
    """SqueezeNet 1.1 (~0.7 GFLOPs, ~1.2M params): fire modules."""
    b = GraphBuilder(f"squeezenet-{num_classes}", input_shape=(3, 224, 224))
    _conv_bn_relu(b, "conv1", 64, kernel=3, stride=2, padding=0)
    b.add(Pool2d("pool1", kernel=3, stride=2))

    def fire(name: str, squeeze: int, expand: int) -> None:
        _conv_bn_relu(b, f"{name}.squeeze", squeeze, kernel=1, padding=0)
        entry = b.fork()
        e1 = _conv_bn_relu(b, f"{name}.e1", expand, kernel=1, padding=0,
                           from_node=entry)
        e3 = _conv_bn_relu(b, f"{name}.e3", expand, kernel=3,
                           from_node=entry)
        b.join(Concat(f"{name}.cat"), [e1, e3])

    fire("fire2", 16, 64)
    fire("fire3", 16, 64)
    b.add(Pool2d("pool3", kernel=3, stride=2))
    fire("fire4", 32, 128)
    fire("fire5", 32, 128)
    b.add(Pool2d("pool5", kernel=3, stride=2))
    fire("fire6", 48, 192)
    fire("fire7", 48, 192)
    fire("fire8", 64, 256)
    fire("fire9", 64, 256)
    b.add(Conv2d("conv10", out_channels=num_classes, kernel=1, padding=0))
    b.add(GlobalPool("avgpool"))
    b.add(Softmax("prob"))
    return b.build()


# ----------------------------------------------------------------- Inception


def _inception_module(b: GraphBuilder, name: str,
                      ch1: int, ch3r: int, ch3: int,
                      ch5r: int, ch5: int, pool_proj: int) -> int:
    """GoogLeNet-style inception module with four parallel branches."""
    entry = b.fork()
    b1 = _conv_bn_relu(b, f"{name}.1x1", ch1, kernel=1, padding=0,
                       from_node=entry)
    b3 = _conv_bn_relu(b, f"{name}.3x3r", ch3r, kernel=1, padding=0,
                       from_node=entry)
    b3 = _conv_bn_relu(b, f"{name}.3x3", ch3, kernel=3, from_node=b3)
    b5 = _conv_bn_relu(b, f"{name}.5x5r", ch5r, kernel=1, padding=0,
                       from_node=entry)
    b5 = _conv_bn_relu(b, f"{name}.5x5", ch5, kernel=5, from_node=b5)
    bp = b.add(Pool2d(f"{name}.pool", kernel=3, stride=1, padding=1),
               from_node=entry)
    bp = _conv_bn_relu(b, f"{name}.poolproj", pool_proj, kernel=1,
                       padding=0, from_node=bp)
    return b.join(Concat(f"{name}.concat"), [b1, b3, b5, bp])


_GOOGLENET_MODULES = (
    ("3a", 64, 96, 128, 16, 32, 32),
    ("3b", 128, 128, 192, 32, 96, 64),
    ("4a", 192, 96, 208, 16, 48, 64),
    ("4b", 160, 112, 224, 24, 64, 64),
    ("4c", 128, 128, 256, 24, 64, 64),
    ("4d", 112, 144, 288, 32, 64, 64),
    ("4e", 256, 160, 320, 32, 128, 128),
    ("5a", 256, 160, 320, 32, 128, 128),
    ("5b", 384, 192, 384, 48, 128, 128),
)


def googlenet(num_classes: int = 1000) -> ModelGraph:
    """GoogLeNet / Inception-v1; the car make+model recognizer of [39] is a
    specialization of this backbone ("GoogleNet-car")."""
    b = GraphBuilder(f"googlenet-{num_classes}", input_shape=(3, 224, 224))
    _conv_bn_relu(b, "conv1", 64, kernel=7, stride=2, padding=3)
    b.add(Pool2d("pool1", kernel=3, stride=2, padding=1))
    _conv_bn_relu(b, "conv2r", 64, kernel=1, padding=0)
    _conv_bn_relu(b, "conv2", 192, kernel=3)
    b.add(Pool2d("pool2", kernel=3, stride=2, padding=1))
    for mod in _GOOGLENET_MODULES:
        name, args = mod[0], mod[1:]
        _inception_module(b, f"inception{name}", *args)
        if name in ("3b", "4e"):
            b.add(Pool2d(f"pool_{name}", kernel=3, stride=2, padding=1))
    b.add(GlobalPool("avgpool"))
    b.add(Dense("fc", out_features=num_classes))
    b.add(Softmax("prob"))
    return b.build()


def _inception_v3_module(b: GraphBuilder, name: str, width: int) -> int:
    """Simplified Inception-v3/v4 module parameterized by a width knob."""
    entry = b.fork()
    b1 = _conv_bn_relu(b, f"{name}.1x1", width, kernel=1, padding=0,
                       from_node=entry)
    b3 = _conv_bn_relu(b, f"{name}.3r", width // 2, kernel=1, padding=0,
                       from_node=entry)
    b3 = _conv_bn_relu(b, f"{name}.3", width, kernel=3, from_node=b3)
    b7 = _conv_bn_relu(b, f"{name}.7r", width // 2, kernel=1, padding=0,
                       from_node=entry)
    b7 = _conv_bn_relu(b, f"{name}.7a", width // 2, kernel=3, from_node=b7)
    b7 = _conv_bn_relu(b, f"{name}.7b", width, kernel=3, from_node=b7)
    bp = b.add(Pool2d(f"{name}.pool", kernel=3, stride=1, padding=1),
               from_node=entry)
    bp = _conv_bn_relu(b, f"{name}.poolp", width // 2, kernel=1, padding=0,
                       from_node=bp)
    return b.join(Concat(f"{name}.concat"), [b1, b3, b7, bp])


def _inception_stem(b: GraphBuilder) -> None:
    _conv_bn_relu(b, "stem1", 32, kernel=3, stride=2, padding=0)
    _conv_bn_relu(b, "stem2", 32, kernel=3, padding=0)
    _conv_bn_relu(b, "stem3", 64, kernel=3)
    b.add(Pool2d("stem_pool1", kernel=3, stride=2))
    _conv_bn_relu(b, "stem4", 80, kernel=1, padding=0)
    _conv_bn_relu(b, "stem5", 192, kernel=3, padding=0)
    b.add(Pool2d("stem_pool2", kernel=3, stride=2))


def inception_v3(num_classes: int = 1000) -> ModelGraph:
    """Inception-v3 (simplified modules; ~11 GFLOPs)."""
    b = GraphBuilder(f"inception_v3-{num_classes}", input_shape=(3, 299, 299))
    _inception_stem(b)
    for i in range(3):
        _inception_v3_module(b, f"mixed5{chr(ord('b') + i)}", 96)
    b.add(Pool2d("reduce1", kernel=3, stride=2))
    for i in range(4):
        _inception_v3_module(b, f"mixed6{chr(ord('a') + i)}", 160)
    b.add(Pool2d("reduce2", kernel=3, stride=2))
    for i in range(2):
        _inception_v3_module(b, f"mixed7{chr(ord('a') + i)}", 256)
    b.add(GlobalPool("avgpool"))
    b.add(Dense("fc", out_features=num_classes))
    b.add(Softmax("prob"))
    return b.build()


def inception_v4(num_classes: int = 1000) -> ModelGraph:
    """Inception-v4 (simplified; deeper/wider than v3, ~24 GFLOPs)."""
    b = GraphBuilder(f"inception_v4-{num_classes}", input_shape=(3, 299, 299))
    _inception_stem(b)
    for i in range(4):
        _inception_v3_module(b, f"A{i}", 128)
    b.add(Pool2d("reduceA", kernel=3, stride=2))
    for i in range(7):
        _inception_v3_module(b, f"B{i}", 192)
    b.add(Pool2d("reduceB", kernel=3, stride=2))
    for i in range(3):
        _inception_v3_module(b, f"C{i}", 288)
    b.add(GlobalPool("avgpool"))
    b.add(Dense("fc", out_features=num_classes))
    b.add(Softmax("prob"))
    return b.build()


# ------------------------------------------------------------------- Darknet


def _darknet_residual(b: GraphBuilder, name: str, channels: int) -> int:
    entry = b.head
    idx = _conv_bn_relu(b, f"{name}.1", channels // 2, kernel=1, padding=0,
                        from_node=entry)
    idx = _conv_bn_relu(b, f"{name}.2", channels, kernel=3, from_node=idx)
    return b.join(Add(f"{name}.add"), [idx, entry])


def darknet53(num_classes: int = 1000) -> ModelGraph:
    """Darknet-53 [32] on 416x416 input, the YOLOv3 backbone
    (~65 GFLOPs with the 2x-MAC convention)."""
    b = GraphBuilder(f"darknet53-{num_classes}", input_shape=(3, 416, 416))
    _conv_bn_relu(b, "conv0", 32, kernel=3)
    stage_cfg = ((64, 1), (128, 2), (256, 8), (512, 8), (1024, 4))
    for stage, (ch, blocks) in enumerate(stage_cfg, start=1):
        _conv_bn_relu(b, f"down{stage}", ch, kernel=3, stride=2)
        for i in range(blocks):
            _darknet_residual(b, f"res{stage}_{i}", ch)
    b.add(GlobalPool("avgpool"))
    b.add(Dense("fc", out_features=num_classes))
    b.add(Softmax("prob"))
    return b.build()


def yolo_v3(num_classes: int = 80) -> ModelGraph:
    """YOLOv3: Darknet-53 backbone plus a detection head at 416x416."""
    b = GraphBuilder(f"yolo_v3-{num_classes}", input_shape=(3, 416, 416))
    _conv_bn_relu(b, "conv0", 32, kernel=3)
    stage_cfg = ((64, 1), (128, 2), (256, 8), (512, 8), (1024, 4))
    for stage, (ch, blocks) in enumerate(stage_cfg, start=1):
        _conv_bn_relu(b, f"down{stage}", ch, kernel=3, stride=2)
        for i in range(blocks):
            _darknet_residual(b, f"res{stage}_{i}", ch)
    for i in range(3):
        _conv_bn_relu(b, f"head{i}.1", 512, kernel=1, padding=0)
        _conv_bn_relu(b, f"head{i}.2", 1024, kernel=3)
    b.add(DetectionHead("detect", anchors=3, classes=num_classes))
    return b.build()


# ----------------------------------------------------------------------- SSD


def ssd_vgg(num_classes: int = 21) -> ModelGraph:
    """SSD-512 with VGG-16 backbone [4]: the traffic/amber object detector.

    Single-path approximation: backbone + extra feature convs + one pooled
    detection head per scale, appended sequentially (prefix detection needs
    only structural equality, not exact multi-head wiring).  The 512-pixel
    configuration puts batch-1 latency near the paper's measured 47 ms on
    a GTX 1080Ti, which is what makes query analysis matter: the detector
    dominates the query cost, so even latency splits starve it.
    """
    b = GraphBuilder(f"ssd_vgg-{num_classes}", input_shape=(3, 512, 512))
    _vgg16_trunk(b)
    _conv_bn_relu(b, "fc6_conv", 1024, kernel=3)
    _conv_bn_relu(b, "fc7_conv", 1024, kernel=1, padding=0)
    b.add(DetectionHead("head_fc7", anchors=6, classes=num_classes))
    extra_cfg = ((256, 512), (128, 256), (128, 256))
    for i, (mid, out) in enumerate(extra_cfg, start=8):
        _conv_bn_relu(b, f"conv{i}_1", mid, kernel=1, padding=0)
        _conv_bn_relu(b, f"conv{i}_2", out, kernel=3, stride=2)
        b.add(DetectionHead(f"head_conv{i}", anchors=6, classes=num_classes))
    return b.build()


def ssd_mobilenet(num_classes: int = 21) -> ModelGraph:
    """SSD-Lite: MobileNet backbone + detection heads at 300x300 -- the
    light detector option for edge-style deployments."""
    b = GraphBuilder(f"ssd_mobilenet-{num_classes}", input_shape=(3, 300, 300))
    _conv_bn_relu(b, "conv0", 32, kernel=3, stride=2)
    cfg = ((64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
           (512, 1), (512, 1), (1024, 2))
    for i, (out, stride) in enumerate(cfg, start=1):
        idx = b.add(DepthwiseConv2d(f"dw{i}", kernel=3, stride=stride))
        idx = b.add(BatchNorm(f"dw{i}.bn"), from_node=idx)
        idx = b.add(Activation(f"dw{i}.relu"), from_node=idx)
        _conv_bn_relu(b, f"pw{i}", out, kernel=1, padding=0)
    b.add(DetectionHead("head0", anchors=6, classes=num_classes))
    for i, (mid, out) in enumerate(((256, 512), (128, 256)), start=1):
        _conv_bn_relu(b, f"extra{i}.1", mid, kernel=1, padding=0)
        _conv_bn_relu(b, f"extra{i}.2", out, kernel=3, stride=2)
        b.add(DetectionHead(f"head{i}", anchors=6, classes=num_classes))
    return b.build()


# ------------------------------------------------------------------ MobileNet


def mobilenet_v1(num_classes: int = 1000, width: float = 1.0) -> ModelGraph:
    """MobileNet-v1: depthwise-separable backbone for lightweight heads
    (the bb app's gaze/age/sex recognizers are specializations of this)."""

    def ch(c: int) -> int:
        return max(8, int(c * width))

    b = GraphBuilder(f"mobilenet_v1-{num_classes}", input_shape=(3, 224, 224))
    _conv_bn_relu(b, "conv0", ch(32), kernel=3, stride=2)
    cfg = ((64, 1), (128, 2), (128, 1), (256, 2), (256, 1), (512, 2),
           (512, 1), (512, 1), (512, 1), (512, 1), (512, 1), (1024, 2),
           (1024, 1))
    for i, (out, stride) in enumerate(cfg, start=1):
        idx = b.add(DepthwiseConv2d(f"dw{i}", kernel=3, stride=stride))
        idx = b.add(BatchNorm(f"dw{i}.bn"), from_node=idx)
        idx = b.add(Activation(f"dw{i}.relu"), from_node=idx)
        _conv_bn_relu(b, f"pw{i}", ch(out), kernel=1, padding=0)
    b.add(GlobalPool("avgpool"))
    b.add(Dense("fc", out_features=num_classes))
    b.add(Softmax("prob"))
    return b.build()


# -------------------------------------------------------------------- lookup

MODEL_BUILDERS = {
    "lenet5": lenet5,
    "alexnet": alexnet,
    "vgg7": vgg7,
    "vgg16": vgg16,
    "vgg_face": vgg_face,
    "resnet18": resnet18,
    "resnet50": resnet50,
    "resnet101": resnet101,
    "googlenet": googlenet,
    "inception_v3": inception_v3,
    "inception_v4": inception_v4,
    "darknet53": darknet53,
    "yolo_v3": yolo_v3,
    "ssd_vgg": ssd_vgg,
    "ssd_mobilenet": ssd_mobilenet,
    "squeezenet": squeezenet,
    "mobilenet_v1": mobilenet_v1,
}


@functools.lru_cache(maxsize=None)
def get_model(name: str) -> ModelGraph:
    """Build (and cache) a zoo model by name.

    Names of the form ``"<base>@<variant>"`` produce a transfer-learning
    specialization of ``<base>`` via
    :func:`repro.models.specialize.specialize`: same graph except the final
    classifier layer, re-trained for the variant's task.  The variant tag
    may carry a class count suffix, e.g. ``"resnet50@icons:40"``.
    """
    if "@" in name:
        from .specialize import specialize

        base_name, variant = name.split("@", 1)
        num_classes = None
        if ":" in variant:
            variant, classes_str = variant.rsplit(":", 1)
            num_classes = int(classes_str)
        base = get_model(base_name)
        return specialize(base, variant, num_classes=num_classes)
    if name not in MODEL_BUILDERS:
        raise KeyError(f"unknown model {name!r}; known: {sorted(MODEL_BUILDERS)}")
    return MODEL_BUILDERS[name]()
