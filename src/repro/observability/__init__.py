"""Observability: structured tracing, metrics export, trace analysis.

The cluster runtime emits typed :class:`TraceEvent` records through a
:class:`Tracer` (a no-op by default); sinks consume the stream:

- :class:`MetricsSink` feeds the existing
  :class:`~repro.metrics.collector.MetricsCollector` -- the paper's
  numbers derive from the same events every exporter sees;
- :class:`TraceBuffer` records the full stream for export
  (:func:`chrome_trace` for ``chrome://tracing`` / Perfetto,
  :func:`prometheus_snapshot` for counters/gauges, :func:`csv_dump` for
  figure scripts) and analysis (:mod:`repro.observability.analysis`).

Entry points: ``NexusCluster.run(trace=True)``, the CLI's
``--trace-out`` / ``--metrics-out`` / ``--trace-csv`` flags, or
:func:`capture_trace` around any experiment.  See docs/observability.md.
"""

from .analysis import (
    batch_size_histogram,
    busy_intervals,
    drop_reasons,
    filter_events,
    gpu_busy_ms,
    session_cycle_stats,
)
from .events import (
    BATCH_EXECUTED,
    EPOCH_PLANNED,
    LIFECYCLE_KINDS,
    OUTCOME_KINDS,
    PLAN_APPLIED,
    QUERY_COMPLETED,
    QUERY_SUBMITTED,
    REQUEST_ADMITTED,
    REQUEST_COMPLETED,
    REQUEST_DROPPED,
    ROUTE_FAILED,
    SESSION_PLACED,
    SESSION_RELOCATED,
    SESSION_REMOVED,
    SIM_WINDOW,
    TraceEvent,
)
from .exporters import (
    chrome_trace,
    csv_dump,
    prometheus_snapshot,
    write_chrome_trace,
    write_csv,
    write_prometheus_snapshot,
)
from .tracer import (
    NULL_TRACER,
    MetricsSink,
    NullTracer,
    TraceBuffer,
    Tracer,
    active_trace_buffer,
    capture_trace,
    set_active_trace_buffer,
    tracer_for_collector,
)

__all__ = [
    # events
    "TraceEvent",
    "BATCH_EXECUTED", "EPOCH_PLANNED", "PLAN_APPLIED", "QUERY_COMPLETED",
    "QUERY_SUBMITTED", "REQUEST_ADMITTED", "REQUEST_COMPLETED",
    "REQUEST_DROPPED", "ROUTE_FAILED", "SESSION_PLACED",
    "SESSION_RELOCATED", "SESSION_REMOVED", "SIM_WINDOW",
    "OUTCOME_KINDS", "LIFECYCLE_KINDS",
    # tracer
    "Tracer", "NullTracer", "TraceBuffer", "MetricsSink", "NULL_TRACER",
    "tracer_for_collector", "capture_trace", "active_trace_buffer",
    "set_active_trace_buffer",
    # exporters
    "chrome_trace", "write_chrome_trace", "prometheus_snapshot",
    "write_prometheus_snapshot", "csv_dump", "write_csv",
    # analysis
    "filter_events", "busy_intervals", "gpu_busy_ms",
    "batch_size_histogram", "drop_reasons", "session_cycle_stats",
]
