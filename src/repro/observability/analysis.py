"""Programmatic trace querying: the helpers exporters and tests share.

Everything here is a pure function over a ``list[TraceEvent]``; pair with
``NexusCluster.run(trace=True)`` (see ``examples/trace_inspection.py``)
or a CSV re-import.
"""

from __future__ import annotations

from .events import (
    BATCH_EXECUTED,
    REQUEST_DROPPED,
    TraceEvent,
)

__all__ = [
    "filter_events",
    "busy_intervals",
    "gpu_busy_ms",
    "batch_size_histogram",
    "drop_reasons",
    "session_cycle_stats",
]


def filter_events(
    events: list[TraceEvent],
    kind: str | None = None,
    session_id: str | None = None,
    gpu_id: int | None = None,
) -> list[TraceEvent]:
    """Events matching every given criterion (None = wildcard)."""
    return [
        e for e in events
        if (kind is None or e.kind == kind)
        and (session_id is None or e.session_id == session_id)
        and (gpu_id is None or e.gpu_id == gpu_id)
    ]


def busy_intervals(events: list[TraceEvent]) -> dict[int, list[tuple[float, float]]]:
    """Per-GPU sorted ``(start_ms, end_ms)`` busy intervals."""
    out: dict[int, list[tuple[float, float]]] = {}
    for ev in events:
        if ev.kind == BATCH_EXECUTED:
            out.setdefault(ev.gpu_id, []).append((ev.ts_ms, ev.end_ms))
    for intervals in out.values():
        intervals.sort()
    return out


def gpu_busy_ms(events: list[TraceEvent]) -> dict[int, float]:
    """Total traced busy time per GPU (sums ``batch.executed`` spans)."""
    out: dict[int, float] = {}
    for ev in events:
        if ev.kind == BATCH_EXECUTED:
            out[ev.gpu_id] = out.get(ev.gpu_id, 0.0) + (ev.dur_ms or 0.0)
    return out


def batch_size_histogram(events: list[TraceEvent]) -> dict[int, int]:
    """batch size -> number of executions."""
    out: dict[int, int] = {}
    for ev in events:
        if ev.kind == BATCH_EXECUTED:
            out[ev.batch] = out.get(ev.batch, 0) + 1
    return dict(sorted(out.items()))


def drop_reasons(events: list[TraceEvent]) -> dict[str, int]:
    """drop reason -> count."""
    out: dict[str, int] = {}
    for ev in events:
        if ev.kind == REQUEST_DROPPED:
            reason = ev.reason or "unknown"
            out[reason] = out.get(reason, 0) + 1
    return dict(sorted(out.items()))


def session_cycle_stats(
    events: list[TraceEvent],
) -> dict[tuple[int, str], dict[str, float]]:
    """Per (gpu, session) duty-cycle statistics from the batch spans.

    Returns, for every session slot, the number of batches, the maximum
    gap between consecutive batch *starts* (the realized duty cycle), and
    ``worst_case_ms = max_gap + max_exec`` -- the realized analogue of
    section 4.1's ``duty_cycle + l(b)`` worst-case formula.  It is a
    conservative composition: skipped cycles (empty queue) and cycle
    drift can push it past the analytic value even while every *served
    request* stays within its SLO (early drop enforces that).  Compare
    per-request latencies from ``request.completed`` events for the hard
    guarantee; use this to gauge how tightly the schedule runs.
    """
    starts: dict[tuple[int, str], list[tuple[float, float]]] = {}
    for ev in events:
        if ev.kind == BATCH_EXECUTED and ev.reason != "deferred":
            starts.setdefault((ev.gpu_id, ev.session_id), []).append(
                (ev.ts_ms, ev.dur_ms or 0.0)
            )
    out: dict[tuple[int, str], dict[str, float]] = {}
    for key, spans in starts.items():
        spans.sort()
        gaps = [b[0] - a[0] for a, b in zip(spans, spans[1:])]
        max_gap = max(gaps) if gaps else 0.0
        max_exec = max(d for _, d in spans)
        out[key] = {
            "batches": float(len(spans)),
            "max_start_gap_ms": max_gap,
            "max_exec_ms": max_exec,
            "worst_case_ms": max_gap + max_exec,
        }
    return out
