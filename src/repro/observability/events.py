"""Typed trace events: the vocabulary of the observability layer.

One flat record type (:class:`TraceEvent`) carries every kind of event the
cluster engine emits; the ``kind`` field selects which of the optional
fields are meaningful.  A flat record keeps the hot emission path to a
single allocation and makes the exporters (Chrome trace, Prometheus
snapshot, CSV) trivial table scans.

Event taxonomy (see docs/observability.md for the full reference):

========================  =====================================================
kind                      meaning
========================  =====================================================
``request.admitted``      a request entered a backend's session queue
``request.dropped``       admission control / routing shed a request
                          (``reason`` distinguishes why)
``request.completed``     a batched execution delivered a request
                          (``ok`` = within SLO)
``batch.executed``        one batched execution span on a GPU
                          (``ts_ms`` = start, ``dur_ms`` = occupancy)
``query.submitted``       a whole multi-stage query entered a frontend
``query.completed``       a query finished (``ok`` = every stage beat the SLO)
``route.failed``          a frontend found no backend for a session
``session.placed``        the control plane placed a session on a GPU
``session.removed``       the control plane removed a session from a GPU
``session.relocated``     a session moved between GPUs across plans
``plan.applied``          a schedule plan was deployed (``detail["gpus"]``)
``epoch.planned``         the epoch control loop re-planned from observed load
``backend.failed``        a backend crashed (``detail["cause"]="crash"``) or
                          its lease expired at the global scheduler
                          (``detail["cause"]="lease_expired"``)
``backend.recovered``     a failed backend came back / was detected healthy
``backend.slowdown``      a backend's execution speed changed
                          (``detail["factor"]``; 1.0 = restored)
``request.retried``       a frontend re-dispatched a request lost to a
                          backend failure (``detail["attempt"]``)
``sim.window``            one simulator ``run_until`` window (events processed)
``oracle.compared``       one queueing-oracle estimate checked against a
                          simulated ground truth (``detail`` carries the
                          p99s and relative error; validation runs emit
                          these so oracle drift is observable)
========================  =====================================================

The outcome kinds (``request.completed``, ``request.dropped``,
``batch.executed``, ``query.completed``, ``plan.applied``) double as the
feed for :class:`~repro.metrics.collector.MetricsCollector`: the collector
is just one more sink on the same stream (see
:class:`~repro.observability.tracer.MetricsSink`).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = [
    "TraceEvent",
    "REQUEST_ADMITTED",
    "REQUEST_DROPPED",
    "REQUEST_COMPLETED",
    "BATCH_EXECUTED",
    "QUERY_SUBMITTED",
    "QUERY_COMPLETED",
    "ROUTE_FAILED",
    "SESSION_PLACED",
    "SESSION_REMOVED",
    "SESSION_RELOCATED",
    "PLAN_APPLIED",
    "EPOCH_PLANNED",
    "BACKEND_FAILED",
    "BACKEND_RECOVERED",
    "BACKEND_SLOWDOWN",
    "REQUEST_RETRIED",
    "SIM_WINDOW",
    "ORACLE_COMPARED",
    "OUTCOME_KINDS",
    "LIFECYCLE_KINDS",
    "DROP_MISROUTED",
    "DROP_EARLY",
    "DROP_UNSCHEDULED",
    "DROP_UNROUTABLE",
    "DROP_BACKEND_FAILED",
]

# ------------------------------------------------------------- event kinds

REQUEST_ADMITTED = "request.admitted"
REQUEST_DROPPED = "request.dropped"
REQUEST_COMPLETED = "request.completed"
BATCH_EXECUTED = "batch.executed"
QUERY_SUBMITTED = "query.submitted"
QUERY_COMPLETED = "query.completed"
ROUTE_FAILED = "route.failed"
SESSION_PLACED = "session.placed"
SESSION_REMOVED = "session.removed"
SESSION_RELOCATED = "session.relocated"
PLAN_APPLIED = "plan.applied"
EPOCH_PLANNED = "epoch.planned"
BACKEND_FAILED = "backend.failed"
BACKEND_RECOVERED = "backend.recovered"
BACKEND_SLOWDOWN = "backend.slowdown"
REQUEST_RETRIED = "request.retried"
SIM_WINDOW = "sim.window"
ORACLE_COMPARED = "oracle.compared"

#: kinds the metrics pipeline depends on -- always emitted when any sink
#: is attached, because :class:`MetricsSink` derives the paper's numbers
#: from them.
OUTCOME_KINDS = frozenset({
    REQUEST_DROPPED,
    REQUEST_COMPLETED,
    BATCH_EXECUTED,
    QUERY_COMPLETED,
    PLAN_APPLIED,
})

#: purely observational kinds -- skipped entirely (no allocation) unless a
#: recording sink asked for them, so the default metrics-only path pays
#: nothing for them.
LIFECYCLE_KINDS = frozenset({
    REQUEST_ADMITTED,
    QUERY_SUBMITTED,
    ROUTE_FAILED,
    SESSION_PLACED,
    SESSION_REMOVED,
    SESSION_RELOCATED,
    EPOCH_PLANNED,
    BACKEND_FAILED,
    BACKEND_RECOVERED,
    BACKEND_SLOWDOWN,
    REQUEST_RETRIED,
    SIM_WINDOW,
    ORACLE_COMPARED,
})

# ------------------------------------------------------------ drop reasons

#: the backend received a request for a session it does not serve (e.g.
#: the schedule changed while the request was in flight).
DROP_MISROUTED = "misrouted"
#: the drop policy shed the request at batch-formation time (early drop /
#: expired deadline).
DROP_EARLY = "early_drop"
#: the session was removed from the backend's schedule with requests
#: still queued.
DROP_UNSCHEDULED = "unscheduled"
#: the frontend found no route for the session.
DROP_UNROUTABLE = "unroutable"
#: the request was lost to a backend failure (crash while queued or
#: in flight, or every retry landed on a dead backend / ran out of
#: deadline budget).
DROP_BACKEND_FAILED = "backend_failed"


@dataclass(slots=True)
class TraceEvent:
    """One structured event on the cluster timeline.

    ``ts_ms`` is virtual time (the simulator clock).  Span kinds
    (``batch.executed``, ``sim.window``) set ``dur_ms``; point kinds leave
    it ``None``.  ``detail`` holds rare structured extras and stays
    ``None`` on the hot paths.
    """

    ts_ms: float
    kind: str
    gpu_id: int | None = None
    session_id: str | None = None
    request_id: int | None = None
    dur_ms: float | None = None
    arrival_ms: float | None = None
    deadline_ms: float | None = None
    batch: int | None = None
    ok: bool | None = None
    reason: str | None = None
    detail: dict | None = field(default=None)

    @property
    def end_ms(self) -> float:
        """Span end (== ``ts_ms`` for point events)."""
        return self.ts_ms + (self.dur_ms or 0.0)
