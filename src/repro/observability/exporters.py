"""Exporters: Chrome trace_event JSON, Prometheus text snapshot, CSV.

Three views over the same :class:`~repro.observability.events.TraceEvent`
stream:

- :func:`chrome_trace` / :func:`write_chrome_trace` -- the Chrome
  ``trace_event`` format (the ``{"traceEvents": [...]}`` flavor), openable
  directly in ``chrome://tracing`` or https://ui.perfetto.dev.  Each GPU
  becomes a process; each session hosted on it becomes a thread, so the
  per-GPU duty-cycle multiplexing reads as stacked lanes.
- :func:`prometheus_snapshot` -- a Prometheus text-exposition snapshot of
  the run's counters and gauges (request/query outcomes, drop reasons,
  batch-size histogram, per-GPU busy time and occupancy, goodput).
- :func:`csv_dump` -- the raw event table for pandas / the ``benchmarks``
  figure scripts.

All exporters are pure functions of the event list; they never touch the
runtime.
"""

from __future__ import annotations

import csv
import io
import json

from .events import (
    BACKEND_FAILED,
    BACKEND_RECOVERED,
    BACKEND_SLOWDOWN,
    BATCH_EXECUTED,
    EPOCH_PLANNED,
    PLAN_APPLIED,
    QUERY_COMPLETED,
    QUERY_SUBMITTED,
    REQUEST_ADMITTED,
    REQUEST_COMPLETED,
    REQUEST_DROPPED,
    REQUEST_RETRIED,
    ROUTE_FAILED,
    SESSION_PLACED,
    SESSION_RELOCATED,
    SESSION_REMOVED,
    TraceEvent,
)

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_snapshot",
    "write_prometheus_snapshot",
    "csv_dump",
    "write_csv",
    "CSV_COLUMNS",
]

#: Chrome trace pid reserved for cluster-level (non-GPU) events.
_CLUSTER_PID = 0


def _gpu_pid(gpu_id: int) -> int:
    # pid 0 is the cluster control plane; GPUs start at 1.
    return int(gpu_id) + 1


def chrome_trace(events: list[TraceEvent]) -> dict:
    """Render events as a Chrome ``trace_event`` JSON object.

    Timestamps are microseconds (the format's unit); ``dur`` spans come
    from ``batch.executed`` events, everything else becomes instant or
    counter events.  Deterministic: output order depends only on input
    order.
    """
    trace: list[dict] = []
    # Stable thread ids: (pid, session_id) -> tid, assigned first-seen.
    tids: dict[tuple[int, str], int] = {}
    named_pids: set[int] = set()

    def tid_for(pid: int, session_id: str) -> int:
        key = (pid, session_id)
        if key not in tids:
            tid = 1 + sum(1 for (p, _s) in tids if p == pid)
            tids[key] = tid
            trace.append({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": session_id},
            })
        return tids[key]

    def ensure_pid(pid: int, name: str) -> None:
        if pid not in named_pids:
            named_pids.add(pid)
            trace.append({
                "ph": "M", "name": "process_name", "pid": pid, "tid": 0,
                "args": {"name": name},
            })

    ensure_pid(_CLUSTER_PID, "cluster")

    for ev in events:
        ts_us = ev.ts_ms * 1000.0
        if ev.kind == BATCH_EXECUTED:
            pid = _gpu_pid(ev.gpu_id)
            ensure_pid(pid, f"gpu{ev.gpu_id}")
            args = {"batch": ev.batch}
            if ev.reason == "deferred":
                args["deferred"] = True
            trace.append({
                "name": ev.session_id, "cat": "batch", "ph": "X",
                "ts": ts_us, "dur": (ev.dur_ms or 0.0) * 1000.0,
                "pid": pid, "tid": tid_for(pid, ev.session_id),
                "args": args,
            })
        elif ev.kind in (REQUEST_DROPPED, REQUEST_ADMITTED,
                         REQUEST_COMPLETED):
            pid = _CLUSTER_PID if ev.gpu_id is None else _gpu_pid(ev.gpu_id)
            if pid != _CLUSTER_PID:
                ensure_pid(pid, f"gpu{ev.gpu_id}")
            args: dict = {"request_id": ev.request_id}
            if ev.reason:
                args["reason"] = ev.reason
            if ev.ok is not None:
                args["ok"] = ev.ok
            trace.append({
                "name": f"{ev.kind}:{ev.session_id}", "cat": "request",
                "ph": "i", "s": "t", "ts": ts_us, "pid": pid,
                "tid": tid_for(pid, ev.session_id), "args": args,
            })
        elif ev.kind == PLAN_APPLIED:
            gpus = (ev.detail or {}).get("gpus", 0)
            trace.append({
                "name": "gpus_in_use", "cat": "control", "ph": "C",
                "ts": ts_us, "pid": _CLUSTER_PID,
                "args": {"gpus": gpus},
            })
        elif ev.kind in (BACKEND_FAILED, BACKEND_RECOVERED,
                         BACKEND_SLOWDOWN):
            # Fault events land on the affected GPU's own lane so the
            # crash window frames that process's batch spans.
            pid = _gpu_pid(ev.gpu_id)
            ensure_pid(pid, f"gpu{ev.gpu_id}")
            args = dict(ev.detail or {})
            trace.append({
                "name": ev.kind, "cat": "fault", "ph": "i", "s": "p",
                "ts": ts_us, "pid": pid, "tid": 0, "args": args,
            })
        elif ev.kind in (SESSION_PLACED, SESSION_REMOVED,
                         SESSION_RELOCATED, EPOCH_PLANNED, ROUTE_FAILED,
                         QUERY_SUBMITTED, QUERY_COMPLETED,
                         REQUEST_RETRIED):
            args = {}
            if ev.session_id is not None:
                args["session"] = ev.session_id
            if ev.gpu_id is not None:
                args["gpu"] = ev.gpu_id
            if ev.ok is not None:
                args["ok"] = ev.ok
            if ev.request_id is not None and ev.kind == REQUEST_RETRIED:
                args["request_id"] = ev.request_id
            if ev.detail:
                args.update(ev.detail)
            trace.append({
                "name": ev.kind, "cat": "control", "ph": "i", "s": "g",
                "ts": ts_us, "pid": _CLUSTER_PID, "tid": 0, "args": args,
            })
        # sim.window and unknown kinds are deliberately omitted from the
        # timeline view; they remain available via csv_dump.

    return {"traceEvents": trace, "displayTimeUnit": "ms"}


def write_chrome_trace(events: list[TraceEvent], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(chrome_trace(events), fh)


# --------------------------------------------------------------- prometheus

#: batch-size histogram bucket upper bounds (powers of two cover every
#: profile's max_batch in the zoo).
_BATCH_BUCKETS = (1, 2, 4, 8, 16, 32, 64)


def prometheus_snapshot(events: list[TraceEvent],
                        prefix: str = "nexus") -> str:
    """Render the run's counters/gauges in Prometheus text exposition.

    A *snapshot*, not a live endpoint: the simulator finishes before the
    scrape, so the whole run reduces to final counter values (plus
    whole-run gauges such as occupancy and goodput).
    """
    requests = {"ok": 0, "late": 0, "dropped": 0}
    drops: dict[str, int] = {}
    queries = {"ok": 0, "failed": 0}
    batch_hist = [0] * (len(_BATCH_BUCKETS) + 1)  # +Inf tail
    batch_sum = 0
    batch_count = 0
    busy_ms: dict[int, float] = {}
    batches: dict[int, int] = {}
    t_min, t_max = None, None
    ok_queries_latency: list[float] = []
    backend_failures: dict[str, int] = {}
    backend_recoveries = 0
    retries = 0

    for ev in events:
        t_min = ev.ts_ms if t_min is None else min(t_min, ev.ts_ms)
        t_max = ev.end_ms if t_max is None else max(t_max, ev.end_ms)
        if ev.kind == REQUEST_COMPLETED:
            requests["ok" if ev.ok else "late"] += 1
        elif ev.kind == REQUEST_DROPPED:
            requests["dropped"] += 1
            reason = ev.reason or "unknown"
            drops[reason] = drops.get(reason, 0) + 1
        elif ev.kind == QUERY_COMPLETED:
            queries["ok" if ev.ok else "failed"] += 1
            if ev.ok and ev.arrival_ms is not None:
                ok_queries_latency.append(ev.ts_ms - ev.arrival_ms)
        elif ev.kind == BATCH_EXECUTED:
            b = ev.batch or 0
            batch_sum += b
            batch_count += 1
            for i, le in enumerate(_BATCH_BUCKETS):
                if b <= le:
                    batch_hist[i] += 1
                    break
            else:
                batch_hist[-1] += 1
            busy_ms[ev.gpu_id] = busy_ms.get(ev.gpu_id, 0.0) + (ev.dur_ms or 0.0)
            batches[ev.gpu_id] = batches.get(ev.gpu_id, 0) + 1
        elif ev.kind == BACKEND_FAILED:
            cause = (ev.detail or {}).get("cause", "crash")
            backend_failures[cause] = backend_failures.get(cause, 0) + 1
        elif ev.kind == BACKEND_RECOVERED:
            backend_recoveries += 1
        elif ev.kind == REQUEST_RETRIED:
            retries += 1

    span_ms = (t_max - t_min) if (t_min is not None and t_max is not None) else 0.0
    total_requests = sum(requests.values())
    total_queries = sum(queries.values())

    out = io.StringIO()

    def header(name: str, help_text: str, kind: str) -> None:
        out.write(f"# HELP {prefix}_{name} {help_text}\n")
        out.write(f"# TYPE {prefix}_{name} {kind}\n")

    header("requests_total", "Model invocations by outcome.", "counter")
    for outcome in ("ok", "late", "dropped"):
        out.write(f'{prefix}_requests_total{{outcome="{outcome}"}} '
                  f'{requests[outcome]}\n')

    header("drops_total", "Dropped invocations by reason.", "counter")
    for reason in sorted(drops):
        out.write(f'{prefix}_drops_total{{reason="{reason}"}} '
                  f'{drops[reason]}\n')

    header("queries_total", "Whole queries by outcome.", "counter")
    for outcome in ("ok", "failed"):
        out.write(f'{prefix}_queries_total{{outcome="{outcome}"}} '
                  f'{queries[outcome]}\n')

    header("bad_rate", "Fraction of queries not served within SLO.", "gauge")
    bad = (queries["failed"] / total_queries) if total_queries else 0.0
    out.write(f"{prefix}_bad_rate {bad:.6f}\n")

    header("goodput_rps", "Queries served within SLO per second of trace.",
           "gauge")
    goodput = queries["ok"] / span_ms * 1000.0 if span_ms > 0 else 0.0
    out.write(f"{prefix}_goodput_rps {goodput:.6f}\n")

    header("request_bad_rate",
           "Fraction of invocations not served within SLO.", "gauge")
    req_bad = (
        (requests["late"] + requests["dropped"]) / total_requests
        if total_requests else 0.0
    )
    out.write(f"{prefix}_request_bad_rate {req_bad:.6f}\n")

    header("batch_size", "Executed batch sizes.", "histogram")
    cumulative = 0
    for i, le in enumerate(_BATCH_BUCKETS):
        cumulative += batch_hist[i]
        out.write(f'{prefix}_batch_size_bucket{{le="{le}"}} {cumulative}\n')
    cumulative += batch_hist[-1]
    out.write(f'{prefix}_batch_size_bucket{{le="+Inf"}} {cumulative}\n')
    out.write(f"{prefix}_batch_size_sum {batch_sum}\n")
    out.write(f"{prefix}_batch_size_count {batch_count}\n")

    header("gpu_busy_ms_total", "GPU busy time (virtual ms).", "counter")
    for gpu in sorted(busy_ms):
        out.write(f'{prefix}_gpu_busy_ms_total{{gpu="{gpu}"}} '
                  f'{busy_ms[gpu]:.3f}\n')

    header("gpu_batches_total", "Batches executed per GPU.", "counter")
    for gpu in sorted(batches):
        out.write(f'{prefix}_gpu_batches_total{{gpu="{gpu}"}} '
                  f'{batches[gpu]}\n')

    header("gpu_occupancy",
           "Busy fraction of the trace window per GPU.", "gauge")
    for gpu in sorted(busy_ms):
        occ = busy_ms[gpu] / span_ms if span_ms > 0 else 0.0
        out.write(f'{prefix}_gpu_occupancy{{gpu="{gpu}"}} '
                  f'{min(1.0, occ):.6f}\n')

    header("backend_failures_total",
           "Backend failures observed (crash or lease expiry).", "counter")
    for cause in sorted(backend_failures):
        out.write(f'{prefix}_backend_failures_total{{cause="{cause}"}} '
                  f'{backend_failures[cause]}\n')

    header("backend_recoveries_total",
           "Backends that returned to service.", "counter")
    out.write(f"{prefix}_backend_recoveries_total {backend_recoveries}\n")

    header("request_retries_total",
           "Requests re-dispatched after a backend failure.", "counter")
    out.write(f"{prefix}_request_retries_total {retries}\n")

    header("query_latency_ms_mean",
           "Mean latency of queries served within SLO.", "gauge")
    mean_lat = (
        sum(ok_queries_latency) / len(ok_queries_latency)
        if ok_queries_latency else 0.0
    )
    out.write(f"{prefix}_query_latency_ms_mean {mean_lat:.3f}\n")

    return out.getvalue()


def write_prometheus_snapshot(events: list[TraceEvent], path: str,
                              prefix: str = "nexus") -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(prometheus_snapshot(events, prefix=prefix))


# --------------------------------------------------------------------- csv

CSV_COLUMNS = (
    "ts_ms", "kind", "gpu_id", "session_id", "request_id", "dur_ms",
    "arrival_ms", "deadline_ms", "batch", "ok", "reason", "detail",
)


def csv_dump(events: list[TraceEvent]) -> str:
    """The raw event table as CSV (``detail`` JSON-encoded)."""
    out = io.StringIO()
    writer = csv.writer(out, lineterminator="\n")
    writer.writerow(CSV_COLUMNS)
    for ev in events:
        writer.writerow([
            ev.ts_ms, ev.kind,
            "" if ev.gpu_id is None else ev.gpu_id,
            "" if ev.session_id is None else ev.session_id,
            "" if ev.request_id is None else ev.request_id,
            "" if ev.dur_ms is None else ev.dur_ms,
            "" if ev.arrival_ms is None else ev.arrival_ms,
            "" if ev.deadline_ms is None else ev.deadline_ms,
            "" if ev.batch is None else ev.batch,
            "" if ev.ok is None else int(ev.ok),
            ev.reason or "",
            json.dumps(ev.detail, sort_keys=True) if ev.detail else "",
        ])
    return out.getvalue()


def write_csv(events: list[TraceEvent], path: str) -> None:
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(csv_dump(events))
