"""The tracer: low-overhead structured event emission with pluggable sinks.

Design (mirrors how production tracing layers are shaped):

- A :class:`Tracer` owns a list of sinks and exposes one typed ``emit_*``
  method per event kind.  Call sites always talk to a tracer -- there is
  no ``if tracing:`` sprinkled through the runtime.
- With **no sinks** every emit method returns before allocating anything:
  the shared :data:`NULL_TRACER` is the default for standalone components
  and costs one attribute load + one branch per call.
- With only a :class:`MetricsSink` (the normal cluster run), *outcome*
  events still flow -- they are how the
  :class:`~repro.metrics.collector.MetricsCollector` is fed -- but
  *lifecycle* events (admissions, placements, route failures) are skipped
  without allocation, and outcome events take a typed fast path that
  feeds the sink without building a :class:`TraceEvent`, so metrics-only
  runs match the pre-tracing cost.
- Attaching a :class:`TraceBuffer` (``NexusCluster.run(trace=True)``, the
  CLI's ``--trace-out``, or :func:`capture_trace`) turns on the full
  stream.

Sink protocol: any object with ``emit(event: TraceEvent)``.  Sinks that
only need outcome events set ``wants_lifecycle = False``.
"""

from __future__ import annotations

import contextlib
from typing import Iterator

from ..metrics.collector import MetricsCollector, RequestRecord
from .events import (
    BACKEND_FAILED,
    BACKEND_RECOVERED,
    BACKEND_SLOWDOWN,
    BATCH_EXECUTED,
    EPOCH_PLANNED,
    ORACLE_COMPARED,
    PLAN_APPLIED,
    QUERY_COMPLETED,
    QUERY_SUBMITTED,
    REQUEST_ADMITTED,
    REQUEST_COMPLETED,
    REQUEST_DROPPED,
    REQUEST_RETRIED,
    ROUTE_FAILED,
    SESSION_PLACED,
    SESSION_RELOCATED,
    SESSION_REMOVED,
    SIM_WINDOW,
    TraceEvent,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "TraceBuffer",
    "MetricsSink",
    "NULL_TRACER",
    "tracer_for_collector",
    "capture_trace",
    "active_trace_buffer",
    "set_active_trace_buffer",
]


class TraceBuffer:
    """A sink that records every event in emission order."""

    wants_lifecycle = True

    def __init__(self) -> None:
        self.events: list[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def __len__(self) -> int:
        return len(self.events)

    def by_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]


class MetricsSink:
    """Feeds a :class:`MetricsCollector` from the event stream.

    This replaces the runtime's former ad-hoc ``collector.record(...)``
    calls: request/query outcomes, GPU busy time, and GPU-count samples
    all derive from the same events every other exporter sees.
    """

    wants_lifecycle = False

    def __init__(
        self,
        invocation: MetricsCollector | None = None,
        query: MetricsCollector | None = None,
    ) -> None:
        self.invocation = invocation
        self.query = query

    def emit(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind == REQUEST_COMPLETED or kind == REQUEST_DROPPED:
            if self.invocation is not None:
                self.invocation.record(RequestRecord(
                    request_id=event.request_id,
                    session_id=event.session_id,
                    arrival_ms=event.arrival_ms,
                    deadline_ms=event.deadline_ms,
                    completion_ms=(
                        event.ts_ms if kind == REQUEST_COMPLETED else None
                    ),
                    dropped=kind == REQUEST_DROPPED,
                ))
        elif kind == BATCH_EXECUTED:
            if self.invocation is not None:
                self.invocation.record_gpu_busy(event.gpu_id, event.dur_ms)
        elif kind == QUERY_COMPLETED:
            if self.query is not None:
                self.query.record(RequestRecord(
                    request_id=event.request_id,
                    session_id=event.session_id,
                    arrival_ms=event.arrival_ms,
                    deadline_ms=event.deadline_ms,
                    completion_ms=event.ts_ms if event.ok else None,
                    dropped=not event.ok,
                ))
        elif kind == PLAN_APPLIED:
            count = (event.detail or {}).get("gpus", 0)
            if self.invocation is not None:
                self.invocation.sample_gpu_count(event.ts_ms, count)

    # Typed fast path: semantically identical to ``emit`` on the matching
    # TraceEvent, but callable without allocating one.  The Tracer uses
    # these when every attached sink provides them and nothing records
    # lifecycle events, which keeps metrics-only runs at pre-tracing cost.

    def fast_request_completed(
        self, ts_ms: float, session_id: str, request_id: int,
        arrival_ms: float, deadline_ms: float, ok: bool,
        gpu_id: int | None,
    ) -> None:
        # Positional RequestRecord construction: these two run once per
        # simulated request.  Routed through record() so summary-mode
        # collectors fold instead of retaining.
        if self.invocation is not None:
            self.invocation.record(RequestRecord(
                request_id, session_id, arrival_ms, deadline_ms, ts_ms, False,
            ))

    def fast_request_dropped(
        self, ts_ms: float, session_id: str, request_id: int,
        arrival_ms: float, deadline_ms: float, reason: str,
        gpu_id: int | None,
    ) -> None:
        if self.invocation is not None:
            self.invocation.record(RequestRecord(
                request_id, session_id, arrival_ms, deadline_ms, None, True,
            ))

    def fast_batch_executed(
        self, start_ms: float, dur_ms: float, gpu_id: int, session_id: str,
        batch: int, deferred: bool,
    ) -> None:
        if self.invocation is not None:
            self.invocation.record_gpu_busy(gpu_id, dur_ms)

    def fast_query_completed(
        self, ts_ms: float, query_name: str, query_id: int,
        arrival_ms: float, deadline_ms: float, ok: bool,
    ) -> None:
        if self.query is not None:
            self.query.record(RequestRecord(
                query_id, query_name, arrival_ms, deadline_ms,
                ts_ms if ok else None, not ok,
            ))

    def fast_plan_applied(self, ts_ms: float, gpus: int) -> None:
        if self.invocation is not None:
            self.invocation.sample_gpu_count(ts_ms, gpus)


class Tracer:
    """Dispatches typed events to sinks; a no-op without sinks.

    ``enabled`` ("any sink listening?") and ``recording`` ("does anything
    want the lifecycle stream?") are plain attributes, not properties:
    hot call sites in ``Backend``/``Frontend`` gate per-request emits on
    them so a disabled tracer costs one attribute load + one branch.
    """

    __slots__ = ("_sinks", "enabled", "recording", "_fast", "_frozen")

    def __init__(
        self, sinks: list[object] | tuple[object, ...] = (),
        frozen: bool = False,
    ) -> None:
        self._sinks = list(sinks)
        self._frozen = frozen
        self._refresh()

    def _refresh(self) -> None:
        #: any sink listening at all?
        self.enabled = bool(self._sinks)
        #: is the full (lifecycle-inclusive) stream being consumed?
        self.recording = any(
            getattr(s, "wants_lifecycle", True) for s in self._sinks
        )
        # Outcome events skip TraceEvent allocation entirely when nothing
        # records lifecycle and every sink speaks the typed fast protocol.
        self._fast = self.enabled and not self.recording and all(
            hasattr(s, "fast_request_completed") for s in self._sinks
        )

    # ---------------------------------------------------------- management

    def add_sink(self, sink: object) -> None:
        if self._frozen:
            raise RuntimeError(
                "cannot attach sinks to the shared NULL_TRACER; "
                "construct a Tracer instead"
            )
        self._sinks.append(sink)
        self._refresh()

    def emit(self, event: TraceEvent) -> None:
        for sink in self._sinks:
            sink.emit(event)

    # ------------------------------------------------------ outcome events
    # Always emitted when any sink is attached: the metrics pipeline
    # depends on them.

    def request_completed(
        self, ts_ms: float, session_id: str, request_id: int,
        arrival_ms: float, deadline_ms: float, ok: bool,
        gpu_id: int | None = None,
    ) -> None:
        if not self._sinks:
            return
        if self._fast:
            for sink in self._sinks:
                sink.fast_request_completed(
                    ts_ms, session_id, request_id, arrival_ms, deadline_ms,
                    ok, gpu_id)
            return
        self.emit(TraceEvent(
            ts_ms, REQUEST_COMPLETED, gpu_id=gpu_id, session_id=session_id,
            request_id=request_id, arrival_ms=arrival_ms,
            deadline_ms=deadline_ms, ok=ok,
        ))

    def request_dropped(
        self, ts_ms: float, session_id: str, request_id: int,
        arrival_ms: float, deadline_ms: float, reason: str,
        gpu_id: int | None = None,
    ) -> None:
        if not self._sinks:
            return
        if self._fast:
            for sink in self._sinks:
                sink.fast_request_dropped(
                    ts_ms, session_id, request_id, arrival_ms, deadline_ms,
                    reason, gpu_id)
            return
        self.emit(TraceEvent(
            ts_ms, REQUEST_DROPPED, gpu_id=gpu_id, session_id=session_id,
            request_id=request_id, arrival_ms=arrival_ms,
            deadline_ms=deadline_ms, ok=False, reason=reason,
        ))

    def batch_executed(
        self, start_ms: float, dur_ms: float, gpu_id: int, session_id: str,
        batch: int, deferred: bool = False,
    ) -> None:
        if not self._sinks:
            return
        if self._fast:
            for sink in self._sinks:
                sink.fast_batch_executed(
                    start_ms, dur_ms, gpu_id, session_id, batch, deferred)
            return
        self.emit(TraceEvent(
            start_ms, BATCH_EXECUTED, gpu_id=gpu_id, session_id=session_id,
            dur_ms=dur_ms, batch=batch,
            reason="deferred" if deferred else None,
        ))

    def query_completed(
        self, ts_ms: float, query_name: str, query_id: int,
        arrival_ms: float, deadline_ms: float, ok: bool,
    ) -> None:
        if not self._sinks:
            return
        if self._fast:
            for sink in self._sinks:
                sink.fast_query_completed(
                    ts_ms, query_name, query_id, arrival_ms, deadline_ms, ok)
            return
        self.emit(TraceEvent(
            ts_ms, QUERY_COMPLETED, session_id=query_name,
            request_id=query_id, arrival_ms=arrival_ms,
            deadline_ms=deadline_ms, ok=ok,
        ))

    def plan_applied(self, ts_ms: float, gpus: int,
                     detail: dict[str, object] | None = None) -> None:
        if not self._sinks:
            return
        if self._fast:
            for sink in self._sinks:
                sink.fast_plan_applied(ts_ms, gpus)
            return
        info: dict[str, object] = {"gpus": gpus}
        if detail:
            info.update(detail)
        self.emit(TraceEvent(ts_ms, PLAN_APPLIED, detail=info))

    # ---------------------------------------------------- lifecycle events
    # Skipped without allocation unless a recording sink wants them.

    def request_admitted(
        self, ts_ms: float, session_id: str, request_id: int,
        deadline_ms: float, gpu_id: int | None = None,
    ) -> None:
        if not self.recording:
            return
        self.emit(TraceEvent(
            ts_ms, REQUEST_ADMITTED, gpu_id=gpu_id, session_id=session_id,
            request_id=request_id, arrival_ms=ts_ms, deadline_ms=deadline_ms,
        ))

    def query_submitted(
        self, ts_ms: float, query_name: str, query_id: int,
        deadline_ms: float,
    ) -> None:
        if not self.recording:
            return
        self.emit(TraceEvent(
            ts_ms, QUERY_SUBMITTED, session_id=query_name,
            request_id=query_id, arrival_ms=ts_ms, deadline_ms=deadline_ms,
        ))

    def route_failed(self, ts_ms: float, session_id: str) -> None:
        if not self.recording:
            return
        self.emit(TraceEvent(ts_ms, ROUTE_FAILED, session_id=session_id))

    def session_placed(self, ts_ms: float, gpu_id: int, session_id: str,
                       load_ms: float = 0.0) -> None:
        if not self.recording:
            return
        self.emit(TraceEvent(
            ts_ms, SESSION_PLACED, gpu_id=gpu_id, session_id=session_id,
            dur_ms=load_ms or None,
        ))

    def session_removed(self, ts_ms: float, gpu_id: int,
                        session_id: str) -> None:
        if not self.recording:
            return
        self.emit(TraceEvent(
            ts_ms, SESSION_REMOVED, gpu_id=gpu_id, session_id=session_id,
        ))

    def session_relocated(self, ts_ms: float, gpu_id: int, session_id: str,
                          from_gpu: int) -> None:
        if not self.recording:
            return
        self.emit(TraceEvent(
            ts_ms, SESSION_RELOCATED, gpu_id=gpu_id, session_id=session_id,
            detail={"from_gpu": from_gpu},
        ))

    def backend_failed(self, ts_ms: float, gpu_id: int,
                       cause: str = "crash") -> None:
        """A backend died (``cause="crash"``) or the global scheduler's
        lease on it expired (``cause="lease_expired"``)."""
        if not self.recording:
            return
        self.emit(TraceEvent(
            ts_ms, BACKEND_FAILED, gpu_id=gpu_id, detail={"cause": cause},
        ))

    def backend_recovered(self, ts_ms: float, gpu_id: int,
                          cause: str = "restart") -> None:
        if not self.recording:
            return
        self.emit(TraceEvent(
            ts_ms, BACKEND_RECOVERED, gpu_id=gpu_id, detail={"cause": cause},
        ))

    def backend_slowdown(self, ts_ms: float, gpu_id: int,
                         factor: float) -> None:
        if not self.recording:
            return
        self.emit(TraceEvent(
            ts_ms, BACKEND_SLOWDOWN, gpu_id=gpu_id,
            detail={"factor": factor},
        ))

    def request_retried(self, ts_ms: float, session_id: str, request_id: int,
                        attempt: int, backoff_ms: float = 0.0) -> None:
        if not self.recording:
            return
        self.emit(TraceEvent(
            ts_ms, REQUEST_RETRIED, session_id=session_id,
            request_id=request_id,
            detail={"attempt": attempt, "backoff_ms": backoff_ms},
        ))

    def epoch_planned(self, ts_ms: float, epoch: int, gpus: int,
                      rates: dict[str, float] | None = None) -> None:
        if not self.recording:
            return
        detail: dict[str, object] = {"epoch": epoch, "gpus": gpus}
        if rates:
            detail["rates"] = dict(rates)
        self.emit(TraceEvent(ts_ms, EPOCH_PLANNED, detail=detail))

    def sim_window(self, start_ms: float, end_ms: float,
                   events_processed: int) -> None:
        if not self.recording:
            return
        self.emit(TraceEvent(
            start_ms, SIM_WINDOW, dur_ms=max(0.0, end_ms - start_ms),
            detail={"events_processed": events_processed},
        ))

    def oracle_compared(
        self, ts_ms: float, session_id: str, batch_cap: int,
        oracle_p99_ms: float, sim_p99_ms: float,
        detail: dict[str, object] | None = None,
    ) -> None:
        """One queueing-oracle estimate checked against simulated ground
        truth (emitted by validation runs so oracle drift is observable)."""
        if not self.recording:
            return
        info: dict[str, object] = {
            "oracle_p99_ms": oracle_p99_ms,
            "sim_p99_ms": sim_p99_ms,
            "p99_err": (
                (oracle_p99_ms - sim_p99_ms) / sim_p99_ms
                if sim_p99_ms > 0 else 0.0
            ),
        }
        if detail:
            info.update(detail)
        self.emit(TraceEvent(
            ts_ms, ORACLE_COMPARED, session_id=session_id, batch=batch_cap,
            detail=info,
        ))


class NullTracer(Tracer):
    """A tracer that is statically known to do nothing.

    The base class with no sinks already returns after one predicate; this
    subclass additionally stubs the per-request outcome emits
    (``request_completed``, ``request_dropped``, ``batch_executed``,
    ``query_completed``) so the hottest calls skip even the gate logic,
    and documents intent at construction sites: pass ``NullTracer()`` (or
    the shared :data:`NULL_TRACER`) to run a cluster with tracing
    compiled out -- identical outcomes, zero :class:`TraceEvent`\\ s.

    Sinks can never be attached (``add_sink`` raises), so ``enabled`` /
    ``recording`` stay ``False`` for the object's lifetime and call-site
    gates may be hoisted out of loops.
    """

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(frozen=True)

    def add_sink(self, sink: object) -> None:
        raise RuntimeError(
            "cannot attach sinks to a NullTracer; construct a Tracer instead"
        )

    def emit(self, event: TraceEvent) -> None:
        pass

    def request_completed(
        self, ts_ms: float, session_id: str, request_id: int,
        arrival_ms: float, deadline_ms: float, ok: bool,
        gpu_id: int | None = None,
    ) -> None:
        pass

    def request_dropped(
        self, ts_ms: float, session_id: str, request_id: int,
        arrival_ms: float, deadline_ms: float, reason: str,
        gpu_id: int | None = None,
    ) -> None:
        pass

    def batch_executed(
        self, start_ms: float, dur_ms: float, gpu_id: int, session_id: str,
        batch: int, deferred: bool = False,
    ) -> None:
        pass

    def query_completed(
        self, ts_ms: float, query_name: str, query_id: int,
        arrival_ms: float, deadline_ms: float, ok: bool,
    ) -> None:
        pass


#: the shared do-nothing tracer: default for standalone components.
NULL_TRACER: Tracer = NullTracer()


def tracer_for_collector(
    invocation: MetricsCollector | None = None,
    query: MetricsCollector | None = None,
) -> Tracer:
    """A tracer that only feeds collectors (the legacy default path)."""
    if invocation is None and query is None:
        return NULL_TRACER
    return Tracer([MetricsSink(invocation=invocation, query=query)])


# ------------------------------------------------- ambient capture (CLI)

#: process-wide buffer that cluster runs attach to when set; lets the CLI
#: and report generator capture traces from experiment modules without
#: threading a tracer through every call signature.
_active_buffer: TraceBuffer | None = None


def active_trace_buffer() -> TraceBuffer | None:
    return _active_buffer


def set_active_trace_buffer(buffer: TraceBuffer | None) -> TraceBuffer | None:
    """Install (or clear) the ambient buffer; returns the previous one."""
    global _active_buffer
    prior = _active_buffer
    _active_buffer = buffer
    return prior


@contextlib.contextmanager
def capture_trace() -> Iterator[TraceBuffer]:
    """Capture every event emitted by cluster runs inside the block::

        with capture_trace() as buffer:
            module.run(...)
        write_chrome_trace(buffer.events, "out.json")
    """
    buffer = TraceBuffer()
    prior = set_active_trace_buffer(buffer)
    try:
        yield buffer
    finally:
        set_active_trace_buffer(prior)
