"""Driver-agnostic runtime: one serving core, two clocks.

The cluster modules (:mod:`repro.cluster`) are written against the
:class:`~repro.runtime.clock.EventSource` protocol -- ``now`` in float
milliseconds plus ``schedule``/``schedule_at`` timers -- instead of a
concrete clock.  Two drivers implement it:

- the discrete-event :class:`~repro.simulation.simulator.Simulator`
  (virtual time; every experiment in the repo), and
- :class:`~repro.runtime.clock.AsyncioEventSource` (wall-clock time on an
  asyncio loop; the live serving plane in :mod:`repro.serving`).

:class:`~repro.runtime.core.RuntimeCore` is the shared serving core both
drivers run: routing table, backend pool, frontend replicas, tracer
wiring, and the epoch/heartbeat control-loop machinery extracted from
``NexusCluster.run()``.  See docs/serving.md.
"""

from .clock import (
    AsyncioEventSource,
    EventSource,
    ManualEventSource,
    TimerHandle,
)
from .core import ControlLoopHandle, RuntimeCore

__all__ = [
    "EventSource",
    "TimerHandle",
    "AsyncioEventSource",
    "ManualEventSource",
    "RuntimeCore",
    "ControlLoopHandle",
]
