"""Clock / event-source abstraction: virtual and wall-clock drivers.

Everything time-related in the cluster runtime speaks **float
milliseconds** through this protocol.  The unit contract is load-bearing:
the same backend/frontend/scheduler code runs under the discrete-event
simulator (virtual ms) and under asyncio wall-clock timers (real ms), so
any path that mixed milliseconds with seconds -- harmless while only one
clock existed -- becomes a live bug here.  ``nexuslint``'s
``raw-time-literal`` rule guards the call sites.

Three implementations:

- :class:`repro.simulation.simulator.Simulator` -- the discrete-event
  driver (virtual time, deterministic ``(time, priority, seq)`` firing
  order).  It predates this protocol and conforms structurally.
- :class:`AsyncioEventSource` -- the live driver: ``now`` is wall time in
  ms since construction, timers are ``loop.call_later`` underneath
  (converted to seconds exactly once, here and nowhere else).
- :class:`ManualEventSource` -- a mocked instant clock for tests: the
  wall-clock driver's interface with deterministic, manually-advanced
  time.  Implemented independently of ``Simulator`` so driver-equivalence
  tests compare two codepaths, not one codepath with itself.
"""

from __future__ import annotations

import asyncio
import itertools
import math
from heapq import heappop, heappush
from typing import Callable, Protocol, runtime_checkable

__all__ = [
    "TimerHandle",
    "EventSource",
    "AsyncioEventSource",
    "ManualEventSource",
]

#: milliseconds per second -- the single sanctioned conversion constant
#: for driver code (see the module docstring's unit contract).
MS_PER_S: float = 1000.0


@runtime_checkable
class TimerHandle(Protocol):
    """A scheduled callback that can be cancelled."""

    def cancel(self) -> None: ...

    @property
    def cancelled(self) -> bool: ...

    @property
    def time_ms(self) -> float: ...


@runtime_checkable
class EventSource(Protocol):
    """The clock + timer surface the cluster runtime is written against.

    All times are float milliseconds.  ``priority`` breaks ties at equal
    timestamps for deterministic drivers (lower fires first); wall-clock
    drivers may ignore it (physical time has no ties).
    """

    @property
    def now(self) -> float: ...

    def schedule(
        self, delay_ms: float, fn: Callable[[], None], priority: int = 0
    ) -> TimerHandle: ...

    def schedule_at(
        self, time_ms: float, fn: Callable[[], None], priority: int = 0
    ) -> TimerHandle: ...


class _AsyncioTimer:
    """Wraps an asyncio timer into the :class:`TimerHandle` protocol."""

    __slots__ = ("_handle", "time_ms", "_cancelled")

    def __init__(self, handle: asyncio.TimerHandle, time_ms: float) -> None:
        self._handle = handle
        self.time_ms = time_ms
        self._cancelled = False

    def cancel(self) -> None:
        self._cancelled = True
        self._handle.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class AsyncioEventSource:
    """Wall-clock driver: ms-denominated timers over an asyncio loop.

    ``now`` is the loop's monotonic clock, rebased so time starts at 0 ms
    when the source is constructed -- the same origin convention as the
    simulator, so control-loop state like "last epoch at t" transfers
    between drivers unchanged.  The ms <-> s conversion happens exactly
    here; callers never multiply by 1000 themselves.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        self._loop = loop if loop is not None else asyncio.get_event_loop()
        self._origin_s = self._loop.time()

    @property
    def now(self) -> float:
        """Wall-clock milliseconds since this source was created."""
        return (self._loop.time() - self._origin_s) * MS_PER_S

    def schedule(
        self, delay_ms: float, fn: Callable[[], None], priority: int = 0
    ) -> _AsyncioTimer:
        """Run ``fn`` after ``delay_ms`` wall milliseconds."""
        if delay_ms < 0:
            raise ValueError(f"delay must be >= 0, got {delay_ms}")
        fire_ms = self.now + delay_ms
        handle = self._loop.call_later(delay_ms / MS_PER_S, fn)
        return _AsyncioTimer(handle, fire_ms)

    def schedule_at(
        self, time_ms: float, fn: Callable[[], None], priority: int = 0
    ) -> _AsyncioTimer:
        """Run ``fn`` at absolute time ``time_ms`` (ms since origin).

        Unlike the simulator, a wall clock cannot refuse a timestamp that
        slipped into the past while the caller computed it; past times
        fire as soon as possible instead of raising.
        """
        delay_ms = max(0.0, time_ms - self.now)
        handle = self._loop.call_later(delay_ms / MS_PER_S, fn)
        return _AsyncioTimer(handle, time_ms)


class _ManualEvent:
    __slots__ = ("time_ms", "fn", "cancelled")

    def __init__(self, time_ms: float, fn: Callable[[], None]) -> None:
        self.time_ms = time_ms
        self.fn = fn
        self.cancelled = False


class _ManualTimer:
    __slots__ = ("_event",)

    def __init__(self, event: _ManualEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time_ms(self) -> float:
        return self._event.time_ms


class ManualEventSource:
    """Deterministic test double for the wall-clock driver.

    Semantically a discrete-event clock -- timers fire in ``(time,
    priority, insertion order)`` -- but implemented independently of
    :class:`~repro.simulation.simulator.Simulator` so that replaying one
    trace through both drivers genuinely exercises two codepaths.  Tests
    ``advance_to``/``run_until`` it explicitly ("mocked instant clock"):
    a whole wall-clock day of epochs runs in microseconds.
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, _ManualEvent]] = []
        self._seq = itertools.count()
        self.fired = 0

    @property
    def now(self) -> float:
        return self._now

    def schedule(
        self, delay_ms: float, fn: Callable[[], None], priority: int = 0
    ) -> _ManualTimer:
        if delay_ms < 0:
            raise ValueError(f"delay must be >= 0, got {delay_ms}")
        return self.schedule_at(self._now + delay_ms, fn, priority)

    def schedule_at(
        self, time_ms: float, fn: Callable[[], None], priority: int = 0
    ) -> _ManualTimer:
        # Mirror the wall clock's forgiveness: a timestamp already in the
        # past fires at the current instant rather than raising.
        event = _ManualEvent(max(time_ms, self._now), fn)
        heappush(self._heap, (event.time_ms, priority, next(self._seq), event))
        return _ManualTimer(event)

    def advance_to(self, end_ms: float) -> int:
        """Fire every timer due up to and including ``end_ms``."""
        heap = self._heap
        fired = 0
        while heap and heap[0][0] <= end_ms:
            time_ms, _, _, event = heappop(heap)
            if event.cancelled:
                continue
            self._now = time_ms
            fired += 1
            event.fn()
        self._now = max(self._now, end_ms)
        self.fired += fired
        return fired

    # Alias matching the simulator's verb so tests can drive either.
    def run_until(self, end_ms: float) -> int:
        return self.advance_to(end_ms)

    def drain(self, limit_ms: float = math.inf) -> int:
        """Fire everything pending (bounded by ``limit_ms``)."""
        fired = 0
        while self._heap and self._heap[0][0] <= limit_ms:
            fired += self.advance_to(self._heap[0][0])
        return fired
