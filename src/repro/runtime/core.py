"""RuntimeCore: the serving core both clock drivers run.

Extracted from ``NexusCluster.run()``'s inline wiring so the
discrete-event simulator became *one of two* drivers instead of the only
one.  The core owns everything a deployment needs at serve time --
routing table, metrics collectors, tracer fan-out, backend pool,
frontend replicas -- plus the control-loop machinery (epoch cadence
timers and the heartbeat/lease failure detector) that used to live in
``tick()``/``on_failure()`` closures inside :mod:`repro.cluster.nexus`.

What stays *out* of the core is policy: planning (which plan to deploy)
and traffic (what to submit) belong to the driver.  The simulator driver
(:class:`~repro.cluster.nexus.NexusCluster`) replays generated arrival
traces; the live driver (:mod:`repro.serving`) feeds it HTTP requests and
wall-clock epochs.  Both deploy through :meth:`RuntimeCore.deploy` and
observe through the same tracer/metrics stream, which is what makes the
sim-vs-live equivalence test (tests/test_serving_equivalence.py)
possible.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from .clock import EventSource, TimerHandle

if TYPE_CHECKING:  # break the runtime<->cluster import cycle (see below)
    from ..cluster.frontend import Frontend, QueryInstance, RetryPolicy, RoutingTable
    from ..cluster.global_scheduler import BackendPool, HeartbeatMonitor, PoolConfig
    from ..core.query import Query
    from ..core.squishy import SchedulePlan
    from ..metrics.collector import MetricsCollector
    from ..observability.tracer import TraceBuffer, Tracer
    from ..cluster.messages import Request

__all__ = ["RuntimeCore", "ControlLoopHandle"]


class ControlLoopHandle:
    """A recurring control-loop timer that can be stopped."""

    __slots__ = ("_timer", "stopped")

    def __init__(self) -> None:
        self._timer: TimerHandle | None = None
        self.stopped = False

    def stop(self) -> None:
        self.stopped = True
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None


class RuntimeCore:
    """Routing + pool + frontends + control loops over one event source.

    Args:
        events: the clock driver -- a
            :class:`~repro.simulation.simulator.Simulator` (virtual time)
            or an :class:`~repro.runtime.clock.AsyncioEventSource` /
            :class:`~repro.runtime.clock.ManualEventSource` (wall-clock
            semantics).  All cluster components downstream speak float
            milliseconds through it.
        pool_config: runtime knobs applied to every backend.
        num_frontends: frontend replicas (requests round-robin across
            them, mirroring the paper's cluster load balancer).
        seed: base RNG seed; replica ``i`` gets ``seed + 1009 * i`` (the
            same derivation ``NexusCluster.run`` always used, so sim
            results are bit-for-bit unchanged by the extraction).
        retry_policy: frontend behavior for requests lost to backend
            failures.
        trace: record the full structured event stream into
            :attr:`trace_buffer` (otherwise metrics-only).
        shard_id: which partition of a sharded run this core serves
            (:mod:`repro.cluster.sharded`); 0 for monolithic runs, which
            are just the one-shard case.
        summary_metrics: megascale mode -- metrics collectors fold each
            outcome into counters at record time instead of retaining
            per-request records.
    """

    def __init__(
        self,
        events: EventSource,
        pool_config: "PoolConfig | None" = None,
        num_frontends: int = 1,
        seed: int = 0,
        retry_policy: "RetryPolicy | None" = None,
        trace: bool = False,
        shard_id: int = 0,
        summary_metrics: bool = False,
    ) -> None:
        # Imported lazily: repro.cluster.nexus imports this module at
        # module level, and the cluster package initializes nexus last --
        # a module-level import back into repro.cluster here would leave
        # whichever package imports first partially initialized.
        from ..cluster.frontend import Frontend, RetryPolicy, RoutingTable
        from ..cluster.global_scheduler import BackendPool, PoolConfig
        from ..metrics.collector import MetricsCollector
        from ..observability.tracer import (
            MetricsSink,
            TraceBuffer,
            Tracer,
            active_trace_buffer,
        )

        self.events = events
        self.shard_id = shard_id
        self.routing: "RoutingTable" = RoutingTable()
        # Summary mode folds outcomes into counters/histograms at record
        # time instead of retaining per-request records -- megascale runs
        # would otherwise hold millions of them (see MetricsCollector).
        keep = not summary_metrics
        self.invocation_metrics: "MetricsCollector" = MetricsCollector(
            keep_records=keep
        )
        self.query_metrics: "MetricsCollector" = MetricsCollector(
            keep_records=keep
        )

        # One tracer serves the whole deployment: the metrics collectors
        # are sinks on the same event stream the exporters consume.
        sinks: list[object] = [
            MetricsSink(
                invocation=self.invocation_metrics, query=self.query_metrics
            )
        ]
        self.trace_buffer: "TraceBuffer | None" = TraceBuffer() if trace else None
        if self.trace_buffer is not None:
            sinks.append(self.trace_buffer)
        ambient = active_trace_buffer()
        if ambient is not None:
            sinks.append(ambient)
        self.tracer: "Tracer" = Tracer(sinks)
        attach = getattr(events, "attach_tracer", None)
        if attach is not None:  # only the simulator records run windows
            attach(self.tracer)

        self.pool: "BackendPool" = BackendPool(
            events,
            self.routing,
            collector=self.invocation_metrics,
            tracer=self.tracer,
            config=pool_config or PoolConfig(),
        )
        self.frontends: "list[Frontend]" = [
            Frontend(
                events,
                self.routing,
                query_collector=self.query_metrics,
                seed=seed + 1009 * i,
                tracer=self.tracer,
                retry_policy=retry_policy or RetryPolicy(),
            )
            for i in range(max(1, num_frontends))
        ]
        self._rr = 0
        self._loops: list[ControlLoopHandle] = []
        self.monitor: "HeartbeatMonitor | None" = None

    # ------------------------------------------------------------- deploy

    def deploy(
        self, plan: "SchedulePlan", aliases: dict[str, str] | None = None
    ) -> None:
        """Push a plan to the pool (and session aliases to the routers)."""
        if aliases:
            for sid, target in aliases.items():
                self.routing.set_alias(sid, target)
        self.pool.apply_plan(plan)

    # ------------------------------------------------------------- submit

    def _next_frontend(self) -> "Frontend":
        """Round-robin replica choice (the cluster load balancer)."""
        frontends = self.frontends
        fe = frontends[self._rr % len(frontends)]
        self._rr += 1
        return fe

    def submit_query(
        self,
        query: "Query",
        budgets_ms: dict[str, float] | None = None,
        on_done: "Callable[[QueryInstance], None] | None" = None,
    ) -> "QueryInstance":
        return self._next_frontend().submit_query(query, budgets_ms, on_done)

    def submit_request(
        self,
        session_id: str,
        slo_ms: float,
        on_complete: "Callable[[Request, float, bool], None] | None" = None,
        on_drop: "Callable[[Request, float], None] | None" = None,
        context: object = None,
    ) -> bool:
        return self._next_frontend().submit_request(
            session_id, slo_ms, on_complete, on_drop, context=context
        )

    # ----------------------------------------------------------- workload

    def read_counters(self) -> tuple[dict[str, int], dict[str, int]]:
        """Drain per-session and per-query arrival counters, summed
        across frontend replicas (the control plane calls this once per
        epoch to derive observed rates)."""
        sessions: dict[str, int] = {}
        queries: dict[str, int] = {}
        for fe in self.frontends:
            for name, n in fe.read_and_reset_counters().items():
                sessions[name] = sessions.get(name, 0) + n
            for name, n in fe.read_and_reset_query_counters().items():
                queries[name] = queries.get(name, 0) + n
        return sessions, queries

    # ------------------------------------------------------ control loops

    def install_epoch_loop(
        self,
        epoch_ms: float,
        on_tick: Callable[[float], None],
        until_ms: float | None = None,
    ) -> ControlLoopHandle:
        """Fire ``on_tick(now_ms)`` every ``epoch_ms``, starting one epoch
        from now; with ``until_ms`` the loop stops rescheduling once the
        next tick would land past it (the simulator driver's run horizon).
        """
        if epoch_ms <= 0:
            raise ValueError(f"epoch_ms must be > 0, got {epoch_ms}")
        handle = ControlLoopHandle()

        def tick() -> None:
            if handle.stopped:
                return
            now = self.events.now
            on_tick(now)
            if until_ms is None or now + epoch_ms <= until_ms:
                handle._timer = self.events.schedule(epoch_ms, tick)

        handle._timer = self.events.schedule(epoch_ms, tick)
        self._loops.append(handle)
        return handle

    def install_heartbeat(
        self,
        heartbeat_ms: float,
        lease_ms: float,
        on_failure: Callable[[int, float], None] | None = None,
        on_recovery: Callable[[int, float], None] | None = None,
    ) -> "HeartbeatMonitor":
        """Start the lease failure detector over this core's pool."""
        from ..cluster.global_scheduler import HeartbeatMonitor

        monitor = HeartbeatMonitor(
            self.events,
            self.pool,
            heartbeat_ms=heartbeat_ms,
            lease_ms=lease_ms,
            on_failure=on_failure,
            on_recovery=on_recovery,
        )
        monitor.start()
        self.monitor = monitor
        return monitor

    def stop(self) -> None:
        """Stop every control loop this core started (live-driver
        shutdown; the simulator driver just stops pumping events)."""
        for loop in self._loops:
            loop.stop()
        self._loops.clear()
        if self.monitor is not None:
            self.monitor.stop()
