"""Live serving plane: the wall-clock driver of the runtime core.

The discrete-event simulator replays experiments; this package *serves*.
Both sit on the same :class:`~repro.runtime.core.RuntimeCore` (routing,
backend pool, frontends, tracer) behind the
:class:`~repro.runtime.clock.EventSource` protocol -- the serving plane
swaps the virtual clock for asyncio wall-clock timers and puts an HTTP
frontend in front.  See docs/serving.md.

- :class:`ServingRuntime` -- planner + runtime core over any event
  source (the object the driver-equivalence tests exercise);
- :class:`NexusServer` -- asyncio HTTP/REST frontend plus the wall-clock
  epoch control loop (``python -m repro serve``);
- :func:`run_loadgen` -- open-loop load generator reporting achieved
  rate, p50/p99 and drop fractions (``python -m repro loadgen``).
"""

from .loadgen import LoadgenReport, run_loadgen
from .runtime import ServingRuntime, parse_app_spec
from .server import NexusServer

__all__ = [
    "ServingRuntime",
    "NexusServer",
    "LoadgenReport",
    "run_loadgen",
    "parse_app_spec",
]
