"""Minimal asyncio HTTP/1.1 server: keep-alive, pipelining, JSON bodies.

No third-party HTTP stack is assumed (the toolchain is stdlib + numpy),
and none is needed: the serving plane's REST surface is small and its hot
path -- ``GET /v1/invoke`` -- must clear tens of thousands of requests
per second on one core, which a protocol-class server with batched
parsing and writes handles comfortably.

Contract with handlers: a handler receives ``(params, body)`` and
returns one of

- ``(status, payload_bytes)`` -- answered immediately;
- a *deferred*: a callable that is invoked with a one-shot
  ``respond(status, payload)`` function bound to this request's in-order
  response slot.  This is the hot path (``/v1/invoke``): completion
  callbacks write straight into the slot with **no** per-request future,
  coroutine, or task;
- an awaitable of ``(status, payload)`` -- general but heavier (one
  task per request); kept for handlers that genuinely need ``await``.

Responses go out strictly in request order per connection (HTTP/1.1
pipelining), so a slow handler holds later responses on the same
connection -- the load generator shards its traffic over several
connections for exactly this reason.  Slot flushes triggered by
``respond`` are coalesced through ``call_soon`` so a burst of
completions in one loop tick becomes a single ``write()``.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Awaitable, Callable, Union

__all__ = ["HttpServer", "Handler", "Respond", "json_bytes"]

#: handler result: (status, JSON payload bytes)
Result = tuple[int, bytes]
#: the one-shot completion callback handed to deferred handlers
Respond = Callable[[int, bytes], None]
Handler = Callable[
    [dict[str, str], bytes],
    Union[Result, Callable[[Respond], None], Awaitable[Result]],
]

_STATUS_LINES = {
    200: b"HTTP/1.1 200 OK",
    400: b"HTTP/1.1 400 Bad Request",
    404: b"HTTP/1.1 404 Not Found",
    500: b"HTTP/1.1 500 Internal Server Error",
    503: b"HTTP/1.1 503 Service Unavailable",
}
_HDR_SUFFIX = (
    b"\r\nContent-Type: application/json\r\nContent-Length: "
)


def json_bytes(obj: object) -> bytes:
    """Compact-JSON encode (module-local import keeps the hot path free
    of repeated global lookups)."""
    import json

    return json.dumps(obj, separators=(",", ":")).encode()


def _response(status: int, payload: bytes) -> bytes:
    line = _STATUS_LINES.get(status) or (
        b"HTTP/1.1 %d Status" % status
    )
    return b"%s%s%d\r\n\r\n%s" % (line, _HDR_SUFFIX, len(payload), payload)


def _parse_params(raw: bytes) -> dict[str, str]:
    """``a=1&b=2`` -> dict; tolerant of empty segments, no %-decoding
    (the REST surface uses plain identifiers only)."""
    params: dict[str, str] = {}
    for part in raw.split(b"&"):
        if not part:
            continue
        key, _, value = part.partition(b"=")
        params[key.decode("latin-1")] = value.decode("latin-1")
    return params


class _Connection(asyncio.Protocol):
    """One client connection: parse pipelined requests, answer in order."""

    __slots__ = ("server", "transport", "_buf", "_pending", "_closed",
                 "_want_close", "_flush_scheduled")

    def __init__(self, server: "HttpServer") -> None:
        self.server = server
        self.transport: asyncio.Transport | None = None
        self._buf = b""
        #: in-order response slots, one single-element cell per request;
        #: ``cell[0] is None`` marks a still-running awaitable handler
        #: (head-of-line for this connection).  Cells (not indices) are
        #: handed to the handler tasks so flushing the filled prefix
        #: never invalidates an outstanding slot.
        self._pending: deque[list[bytes | None]] = deque()
        self._closed = False
        #: the client sent ``Connection: close``: drop the connection
        #: once every pending response has been written.
        self._want_close = False
        #: a coalesced flush is already queued on the loop.
        self._flush_scheduled = False

    # ------------------------------------------------------ protocol hooks

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]

    def connection_lost(self, exc: Exception | None) -> None:
        self._closed = True
        self.transport = None

    def data_received(self, data: bytes) -> None:
        buf = self._buf + data if self._buf else data
        pos = 0
        end = len(buf)
        while pos < end:
            head_end = buf.find(b"\r\n\r\n", pos)
            if head_end < 0:
                break
            head = buf[pos:head_end]
            pos = head_end + 4
            line_end = head.find(b"\r\n")
            request_line = head if line_end < 0 else head[:line_end]
            try:
                method, target, _ = request_line.split(b" ", 2)
            except ValueError:
                self._push(_response(400, b'{"error":"bad request line"}'))
                continue
            body = b""
            if method in (b"POST", b"PUT"):
                length = self._content_length(head)
                if pos + length > end:
                    pos = max(0, pos - len(head) - 4)  # wait for more data
                    break
                body = buf[pos:pos + length]
                pos += length
            if b"close" in head and b"Connection: close" in head:
                self._want_close = True
            self._dispatch(method, target, body)
        self._buf = buf[pos:]
        self._flush()
        self._maybe_close()

    # ---------------------------------------------------------- dispatch

    @staticmethod
    def _content_length(head: bytes) -> int:
        lowered = head.lower()
        idx = lowered.find(b"content-length:")
        if idx < 0:
            return 0
        tail = head[idx + 15:]
        line_end = tail.find(b"\r\n")
        if line_end >= 0:
            tail = tail[:line_end]
        try:
            return int(tail.strip())
        except ValueError:
            return 0

    def _dispatch(self, method: bytes, target: bytes, body: bytes) -> None:
        path, _, raw_params = target.partition(b"?")
        handler = self.server.routes.get((method, path))
        if handler is None:
            self._push(_response(404, b'{"error":"not found"}'))
            return
        params = _parse_params(raw_params) if raw_params else {}
        try:
            result = handler(params, body)
        except Exception as exc:  # surfaced to the client, not the loop
            self._push(_response(500, json_bytes({"error": str(exc)})))
            return
        if isinstance(result, tuple):
            self._push(_response(result[0], result[1]))
            return
        # Reserve this request's in-order slot now; cells (not indices)
        # are handed out so flushing never invalidates an open slot.
        cell: list[bytes | None] = [None]
        self._pending.append(cell)
        if callable(result):
            # Deferred handler (the hot path): hand it a respond()
            # bound to the slot -- no future, coroutine, or task.
            result(self._make_respond(cell))
            return
        # Awaitable handler: one task per request (the general path).
        task = self.server.loop.create_task(self._finish(result, cell))
        self.server.tasks.add(task)
        task.add_done_callback(self.server.tasks.discard)

    def _make_respond(self, cell: list[bytes | None]) -> Respond:
        def respond(status: int, payload: bytes) -> None:
            if self._closed:
                return
            cell[0] = _response(status, payload)
            # Coalesce: completions land in bursts (one emulated batch
            # finishing fans out dozens of respond() calls in the same
            # loop tick); one queued flush turns them into one write().
            if not self._flush_scheduled:
                self._flush_scheduled = True
                self.server.loop.call_soon(self._scheduled_flush)

        return respond

    def _scheduled_flush(self) -> None:
        self._flush_scheduled = False
        if self._closed:
            return
        self._flush()
        self._maybe_close()

    async def _finish(
        self, result: Awaitable[Result], cell: list[bytes | None]
    ) -> None:
        try:
            status, payload = await result
            response = _response(status, payload)
        except Exception as exc:
            response = _response(500, json_bytes({"error": str(exc)}))
        if self._closed:
            return
        cell[0] = response
        self._flush()
        self._maybe_close()

    def _push(self, response: bytes) -> None:
        if self._pending:
            self._pending.append([response])
        elif self.transport is not None:
            # No awaitable ahead of us: write through (the hot path).
            self.transport.write(response)

    def _flush(self) -> None:
        """Write the filled prefix of the in-order response slots."""
        pending = self._pending
        if not pending or self.transport is None:
            return
        ready: list[bytes] = []
        while pending:
            head = pending[0][0]
            if head is None:
                break
            ready.append(head)
            pending.popleft()
        if ready:
            self.transport.write(b"".join(ready))

    def _maybe_close(self) -> None:
        if (
            self._want_close
            and not self._pending
            and self.transport is not None
        ):
            self.transport.close()


class HttpServer:
    """Route table + asyncio server lifecycle.

    Routes are exact ``(method, path)`` pairs registered via :meth:`get`
    and :meth:`post`.  ``serve`` binds and returns; ``close`` tears down
    the listener and any in-flight handler tasks.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None) -> None:
        self.loop = loop or asyncio.get_event_loop()
        self.routes: dict[tuple[bytes, bytes], Handler] = {}
        self.tasks: set[asyncio.Task[None]] = set()
        self._server: asyncio.AbstractServer | None = None

    def get(self, path: str, handler: Handler) -> None:
        self.routes[(b"GET", path.encode())] = handler

    def post(self, path: str, handler: Handler) -> None:
        self.routes[(b"POST", path.encode())] = handler

    async def serve(self, host: str, port: int) -> tuple[str, int]:
        self._server = await self.loop.create_server(
            lambda: _Connection(self), host, port,
        )
        sock = self._server.sockets[0]
        bound_host, bound_port = sock.getsockname()[:2]
        return bound_host, bound_port

    async def close(self) -> None:
        # Detach the listener *before* awaiting: wait_closed() suspends
        # this coroutine, and a concurrent serve() may install a new
        # server during the suspension — writing self._server = None
        # afterwards would silently clobber it.
        server, self._server = self._server, None
        if server is not None:
            server.close()
            await server.wait_closed()
        for task in list(self.tasks):
            task.cancel()
        self.tasks.clear()
