"""Open-loop load generator for the live serving plane.

``python -m repro loadgen`` drives ``python -m repro serve`` the way the
paper's clients drive Nexus: arrivals are drawn from a Poisson (or
uniform) process at the *offered* rate and sent on schedule regardless of
how the server is keeping up -- an open loop, so overload shows up as
drops and latency, never as a silently throttled client.

Mechanics: the arrival trace is pre-generated
(:mod:`repro.workloads.arrivals`), sharded round-robin over several
pipelined keep-alive connections (HTTP/1.1 answers in order per
connection, so sharding keeps one slow query from head-of-line blocking
everything), and each connection batches every currently-due request
into a single ``write()``.  Per-request round-trip latencies are matched
FIFO to sends on the same connection.

The final report carries achieved rate, p50/p99 round-trip latency, and
ok/drop fractions; when an ambient trace capture is active (the CLI's
``--trace-out``/``--trace-csv`` flags) every response is also emitted as
a ``query.completed`` event through the standard exporters.
"""

from __future__ import annotations

import asyncio
from collections import deque
from dataclasses import dataclass, field

from ..observability.events import QUERY_COMPLETED, TraceEvent
from ..observability.tracer import active_trace_buffer
from ..workloads.arrivals import poisson_arrivals, uniform_arrivals

__all__ = ["LoadgenReport", "run_loadgen"]

#: ms per second (times from workloads.arrivals are milliseconds).
_MS = 1000.0
#: readiness-probe retry interval (seconds: these sleeps feed asyncio).
_HEALTH_POLL_S = 0.1
#: drain-phase completion poll interval (seconds).
_DRAIN_POLL_S = 0.05


@dataclass
class LoadgenReport:
    """What one loadgen run measured."""

    app: str
    offered_rps: float
    duration_s: float
    connections: int
    sent: int = 0
    responses: int = 0
    ok: int = 0
    errors: int = 0
    achieved_rps: float = 0.0
    ok_fraction: float = 0.0
    drop_fraction: float = 0.0
    latency_p50_ms: float = 0.0
    latency_p99_ms: float = 0.0
    server_stats: dict = field(default_factory=dict)

    def summary(self) -> str:
        lines = [
            f"app               : {self.app}",
            f"offered rate      : {self.offered_rps:,.0f} rps "
            f"({self.duration_s:g} s, {self.connections} connections)",
            f"sent / answered   : {self.sent:,} / {self.responses:,}",
            f"achieved rate     : {self.achieved_rps:,.1f} rps",
            f"ok fraction       : {self.ok_fraction:.4f}",
            f"drop fraction     : {self.drop_fraction:.4f}",
            f"rtt p50 / p99     : {self.latency_p50_ms:.2f} / "
            f"{self.latency_p99_ms:.2f} ms",
        ]
        stats = self.server_stats
        if stats:
            lines.append(
                f"server goodput    : {stats.get('goodput_rps', 0.0):,.1f} "
                f"rps over {stats.get('queries', 0):,} queries "
                f"({stats.get('epochs', 0)} epochs)"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "offered_rps": self.offered_rps,
            "duration_s": self.duration_s,
            "connections": self.connections,
            "sent": self.sent,
            "responses": self.responses,
            "ok": self.ok,
            "errors": self.errors,
            "achieved_rps": self.achieved_rps,
            "ok_fraction": self.ok_fraction,
            "drop_fraction": self.drop_fraction,
            "latency_p50_ms": self.latency_p50_ms,
            "latency_p99_ms": self.latency_p99_ms,
            "server_stats": self.server_stats,
        }


class _ClientConnection(asyncio.Protocol):
    """One pipelined connection: batched sends, FIFO response matching."""

    __slots__ = ("transport", "_buf", "send_times", "latencies_ms",
                 "responses", "ok", "errors", "closed", "loop")

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self.loop = loop
        self.transport: asyncio.Transport | None = None
        self._buf = b""
        self.send_times: deque[float] = deque()
        self.latencies_ms: list[float] = []
        self.responses = 0
        self.ok = 0
        self.errors = 0
        self.closed = loop.create_future()

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]

    def connection_lost(self, exc: Exception | None) -> None:
        self.transport = None
        if not self.closed.done():
            self.closed.set_result(None)

    def data_received(self, data: bytes) -> None:
        buf = self._buf + data if self._buf else data
        pos = 0
        end = len(buf)
        now = self.loop.time()
        while pos < end:
            head_end = buf.find(b"\r\n\r\n", pos)
            if head_end < 0:
                break
            head = buf[pos:head_end]
            idx = head.find(b"Content-Length: ")
            length = 0
            if idx >= 0:
                tail = head[idx + 16:]
                nl = tail.find(b"\r\n")
                length = int(tail[:nl] if nl >= 0 else tail)
            body_start = head_end + 4
            if body_start + length > end:
                break
            body = buf[body_start:body_start + length]
            pos = body_start + length
            self._account(head, body, now)
        self._buf = buf[pos:]

    def _account(self, head: bytes, body: bytes, now: float) -> None:
        self.responses += 1
        if self.send_times:
            sent_at = self.send_times.popleft()
            self.latencies_ms.append((now - sent_at) * _MS)
        if head.startswith(b"HTTP/1.1 200") and body.startswith(b'{"ok":true'):
            self.ok += 1
        elif not head.startswith(b"HTTP/1.1 200"):
            self.errors += 1

    @property
    def outstanding(self) -> int:
        return len(self.send_times)


async def _drive_connection(
    conn: _ClientConnection,
    request: bytes,
    times_ms: list[float],
    start_s: float,
) -> int:
    """Replay this connection's arrival times; returns requests sent."""
    loop = conn.loop
    sent = 0
    i = 0
    n = len(times_ms)
    while i < n:
        due_s = start_s + times_ms[i] / _MS
        now_s = loop.time()
        if due_s > now_s:
            await asyncio.sleep(due_s - now_s)
            now_s = loop.time()
        # Batch everything that is due by now into a single write: the
        # open loop stays on schedule even when one send slips.
        j = i + 1
        while j < n and start_s + times_ms[j] / _MS <= now_s:
            j += 1
        count = j - i
        if conn.transport is None:
            break
        conn.send_times.extend([now_s] * count)
        conn.transport.write(request * count)
        sent += count
        i = j
    return sent


async def _fetch_json(host: str, port: int, path: str) -> dict:
    """One-shot GET helper (readiness probes, final server stats)."""
    import json

    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(
            b"GET %s HTTP/1.1\r\nHost: lg\r\nConnection: close\r\n\r\n"
            % path.encode()
        )
        await writer.drain()
        # Read by Content-Length rather than to EOF so the helper works
        # against keep-alive servers too.
        raw = await reader.readuntil(b"\r\n\r\n")
        head = raw[:-4]
        idx = head.find(b"Content-Length: ")
        length = 0
        if idx >= 0:
            tail = head[idx + 16:]
            nl = tail.find(b"\r\n")
            length = int(tail[:nl] if nl >= 0 else tail)
        body = await reader.readexactly(length) if length else b""
    finally:
        writer.close()
    if not head.startswith(b"HTTP/1.1 200"):
        raise RuntimeError(f"GET {path} -> {head.splitlines()[0]!r}")
    return json.loads(body)


async def wait_ready(host: str, port: int, timeout_s: float = 10.0) -> dict:
    """Poll ``/v1/healthz`` until the server answers (or raise)."""
    loop = asyncio.get_event_loop()
    deadline_s = loop.time() + timeout_s
    last_error: Exception | None = None
    while loop.time() < deadline_s:
        try:
            return await _fetch_json(host, port, "/v1/healthz")
        except OSError as exc:
            last_error = exc
            await asyncio.sleep(_HEALTH_POLL_S)
    raise TimeoutError(
        f"server at {host}:{port} not ready after {timeout_s:g}s: "
        f"{last_error}"
    )


async def run_loadgen(
    host: str,
    port: int,
    app: str,
    rate_rps: float,
    duration_s: float,
    connections: int = 8,
    arrival: str = "poisson",
    seed: int = 0,
    drain_timeout_s: float = 5.0,
) -> LoadgenReport:
    """Run one open-loop burst against a live server; see module doc."""
    loop = asyncio.get_event_loop()
    gen = poisson_arrivals if arrival == "poisson" else uniform_arrivals
    times_ms = gen(rate_rps, duration_s * _MS, seed=seed)
    report = LoadgenReport(
        app=app, offered_rps=rate_rps, duration_s=duration_s,
        connections=connections,
    )
    if not times_ms:
        return report

    request = (
        b"GET /v1/invoke?app=%s HTTP/1.1\r\nHost: lg\r\n\r\n"
        % app.encode()
    )
    conns: list[_ClientConnection] = []
    for _ in range(connections):
        _, conn = await loop.create_connection(
            lambda: _ClientConnection(loop), host, port,
        )
        conns.append(conn)  # type: ignore[arg-type]

    # Shard arrivals round-robin so every connection sees the full time
    # span (a contiguous split would serialize the bursts).
    shards: list[list[float]] = [[] for _ in conns]
    for k, t in enumerate(times_ms):
        shards[k % len(conns)].append(t)

    start_s = loop.time() + 0.05  # common origin for every shard
    sent_counts = await asyncio.gather(*(
        _drive_connection(conn, request, shard, start_s)
        for conn, shard in zip(conns, shards)
    ))
    report.sent = sum(sent_counts)

    # Drain: answered responses keep streaming after the last send.
    drain_deadline_s = loop.time() + drain_timeout_s
    while loop.time() < drain_deadline_s:
        if all(c.outstanding == 0 for c in conns):
            break
        await asyncio.sleep(_DRAIN_POLL_S)
    elapsed_s = loop.time() - start_s

    for conn in conns:
        if conn.transport is not None:
            conn.transport.close()

    latencies = sorted(
        x for conn in conns for x in conn.latencies_ms
    )
    report.responses = sum(c.responses for c in conns)
    report.ok = sum(c.ok for c in conns)
    report.errors = sum(c.errors for c in conns)
    span_s = max(duration_s, min(elapsed_s, duration_s + drain_timeout_s))
    report.achieved_rps = report.responses / span_s
    if report.responses:
        report.ok_fraction = report.ok / report.responses
        report.drop_fraction = (
            (report.responses - report.ok) / report.responses
        )
    if latencies:
        report.latency_p50_ms = latencies[len(latencies) // 2]
        report.latency_p99_ms = latencies[
            min(len(latencies) - 1, int(len(latencies) * 0.99))
        ]

    try:
        report.server_stats = await _fetch_json(host, port, "/v1/metrics")
    except (OSError, RuntimeError):
        report.server_stats = {}

    _emit_trace(report, latencies)
    return report


def _emit_trace(report: LoadgenReport, latencies: list[float]) -> None:
    """Feed the run into an ambient trace capture, if one is active."""
    buffer = active_trace_buffer()
    if buffer is None:
        return
    t = 0.0
    ok_left = report.ok
    for latency in latencies:
        ok = ok_left > 0
        ok_left -= 1
        buffer.emit(TraceEvent(
            ts_ms=t + latency, kind=QUERY_COMPLETED,
            session_id=report.app, arrival_ms=t,
            deadline_ms=None, ok=ok, dur_ms=latency,
        ))
        t += _MS / max(report.offered_rps, 1e-9)
