"""ServingRuntime: planner + runtime core over any event source.

This is the serving plane with the clock abstracted out: the same object
serves live traffic under :class:`~repro.runtime.clock.AsyncioEventSource`
(wall-clock ms) and replays traces deterministically under the
:class:`~repro.simulation.simulator.Simulator` or
:class:`~repro.runtime.clock.ManualEventSource` (virtual ms) -- which is
exactly what the driver-equivalence tests do.

Planning policy is delegated to :class:`~repro.cluster.nexus.NexusCluster`
(SLO splits, prefix fusion, squishy packing, all ClusterConfig knobs);
serving goes through the shared :class:`~repro.runtime.core.RuntimeCore`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

from ..cluster.frontend import RetryPolicy
from ..cluster.global_scheduler import PoolConfig
from ..cluster.nexus import ClusterConfig, NexusCluster
from ..core.query import Query, QueryStage
from ..models import get_device
from ..runtime.clock import MS_PER_S, EventSource
from ..runtime.core import ControlLoopHandle, RuntimeCore

if TYPE_CHECKING:
    from ..cluster.frontend import QueryInstance
    from ..core.squishy import SchedulePlan

__all__ = ["ServingRuntime", "single_model_query", "parse_app_spec"]

#: seconds per re-plan measurement span floor: guards the observed-rate
#: division on the first epoch after deploy.
_MIN_SPAN_S = 1e-9


def single_model_query(model_id: str, slo_ms: float, device: str,
                       name: str | None = None) -> Query:
    """A one-stage query around a zoo model (the REST ``model:slo`` form)."""
    from ..models.profiler import profile

    qname = name or model_id
    root = QueryStage(
        name=model_id, profile=profile(model_id, device), model_id=model_id,
    )
    return Query(name=qname, root=root, slo_ms=slo_ms)


def parse_app_spec(spec: str, device: str) -> tuple[Query, float, str]:
    """Parse one CLI/REST app spec into ``(query, rate_rps, arrival)``.

    Two forms:

    - ``app=NAME:RATE`` -- a paper application from
      :data:`repro.workloads.apps.APP_BUILDERS` (e.g. ``traffic:120``);
    - ``MODEL:SLO_MS:RATE`` -- a single-model session (e.g.
      ``lenet5:50:25000``).
    """
    if spec.startswith("app="):
        body = spec[len("app="):]
        try:
            app_name, rate_s = body.rsplit(":", 1)
            rate = float(rate_s)
        except ValueError as exc:
            raise ValueError(
                f"bad app spec {spec!r}; want app=NAME:RATE_RPS"
            ) from exc
        from ..workloads.apps import APP_BUILDERS

        builder = APP_BUILDERS.get(app_name)
        if builder is None:
            raise ValueError(
                f"unknown app {app_name!r}; known: "
                + ", ".join(sorted(APP_BUILDERS))
            )
        return builder(device), rate, "poisson"
    try:
        model, slo_s, rate_s = spec.rsplit(":", 2)
        slo, rate = float(slo_s), float(rate_s)
    except ValueError as exc:
        raise ValueError(
            f"bad model spec {spec!r}; want MODEL:SLO_MS:RATE_RPS "
            f"or app=NAME:RATE_RPS"
        ) from exc
    return single_model_query(model, slo, device), rate, "poisson"


class ServingRuntime:
    """One deployment: apps -> plan -> live dispatch, clock-agnostic.

    Args:
        events: the clock driver (simulator, manual, or asyncio source).
        config: the full :class:`ClusterConfig` knob set; planning honors
            every field the simulator driver does.
        trace: record the structured event stream (exporters read it).
    """

    def __init__(
        self,
        events: EventSource,
        config: ClusterConfig | None = None,
        trace: bool = False,
    ) -> None:
        cfg = config or ClusterConfig()
        self.config = cfg
        self.events = events
        self.planner = NexusCluster(cfg)
        self.core = RuntimeCore(
            events,
            pool_config=PoolConfig(
                pacing=cfg.pacing,
                overlap=cfg.overlap,
                drop_policy=cfg.drop_policy,
                interference_factor=cfg.interference_factor,
                paced=cfg.paced,
                max_backends=cfg.max_gpus,
                validate_plans=cfg.scheduler == "squishy",
                memory_capacity=int(get_device(cfg.device).mem_capacity),
            ),
            num_frontends=cfg.num_frontends,
            seed=cfg.seed,
            retry_policy=RetryPolicy(
                max_retries=cfg.retry_max,
                backoff_ms=cfg.retry_backoff_ms,
            ),
            trace=trace,
        )
        self.plan: "SchedulePlan | None" = None
        #: app name -> (query, latency split); rebuilt on every deploy
        #: so submit() is one dict lookup on the hot path.
        self._app_index: dict[
            str, tuple[Query, dict[str, float] | None]
        ] = {}
        self.epochs = 0
        self._epoch_loop: ControlLoopHandle | None = None
        self._last_epoch_ms = 0.0
        self._started_ms = events.now

    # ------------------------------------------------------------ register

    def add_app(self, query: Query, rate_rps: float,
                arrival: str = "poisson") -> None:
        """Register an application (planned at the declared rate)."""
        if any(a.query.name == query.name for a in self.planner.apps):
            raise ValueError(f"app {query.name!r} already registered")
        self.planner.add_query(query, rate_rps, arrival)
        self._reindex()

    @property
    def app_names(self) -> list[str]:
        return [a.query.name for a in self.planner.apps]

    # -------------------------------------------------------------- deploy

    def _reindex(self) -> None:
        splits = self.planner._splits  # noqa: SLF001
        self._app_index = {
            a.query.name: (a.query, splits.get(a.query.name))
            for a in self.planner.apps
        }

    def deploy(self) -> "SchedulePlan":
        """(Re)plan from declared rates and push to the pool."""
        plan = self.planner.plan()
        self.core.deploy(plan, self.planner._aliases)  # noqa: SLF001
        self.plan = plan
        self._reindex()  # the latency splits are fresh after plan()
        return plan

    # -------------------------------------------------------------- submit

    def submit(
        self,
        app_name: str,
        on_done: "Callable[[QueryInstance], None] | None" = None,
    ) -> "QueryInstance":
        """Invoke one application query; ``on_done`` fires at completion."""
        entry = self._app_index.get(app_name)
        if entry is None:
            raise KeyError(f"unknown app {app_name!r}")
        query, budgets = entry
        return self.core.submit_query(query, budgets, on_done)

    # --------------------------------------------------------- epoch loop

    def start_epoch_loop(self) -> ControlLoopHandle:
        """Install the section-5 control loop on this runtime's clock.

        Every ``config.epoch_ms`` the loop reads the observed per-query
        arrival counters, re-plans at the observed rates, and redeploys
        -- the same policy the simulator driver's dynamic mode runs, but
        on wall-clock timers when driven by an
        :class:`~repro.runtime.clock.AsyncioEventSource`.
        """
        if self._epoch_loop is not None:
            return self._epoch_loop
        self._last_epoch_ms = self.events.now

        def on_tick(now: float) -> None:
            span_s = max(
                (now - self._last_epoch_ms) / MS_PER_S, _MIN_SPAN_S
            )
            _, counters = self.core.read_counters()
            rates = {
                app.query.name: counters.get(app.query.name, 0) / span_s
                for app in self.planner.apps
            }
            self._last_epoch_ms = now
            plan = self.planner.plan(rates)
            self.core.deploy(plan, self.planner._aliases)  # noqa: SLF001
            self.plan = plan
            self._reindex()  # splits move with the re-plan
            self.epochs += 1
            self.core.tracer.epoch_planned(
                now, self.epochs, plan.num_gpus, rates=rates
            )

        self._epoch_loop = self.core.install_epoch_loop(
            self.config.epoch_ms, on_tick
        )
        return self._epoch_loop

    def stop(self) -> None:
        self.core.stop()
        self._epoch_loop = None

    # -------------------------------------------------------------- status

    def stats(self) -> dict[str, object]:
        """Aggregate serving statistics (the ``/v1/metrics`` payload)."""
        import math

        qm = self.core.query_metrics
        span_ms = max(self.events.now - self._started_ms, 1e-6)

        def pct(p: float) -> float:
            # latency_percentile returns numpy scalars (and NaN with no
            # records); the REST layer needs plain JSON floats.
            value = float(qm.latency_percentile(p))
            return 0.0 if math.isnan(value) else value

        return {
            "now_ms": self.events.now,
            "span_ms": span_ms,
            "queries": qm.total,
            "good_rate": qm.good_rate,
            "bad_rate": qm.bad_rate,
            "goodput_rps": qm.ok_count / (span_ms / MS_PER_S),
            "latency_p50_ms": pct(50.0),
            "latency_p99_ms": pct(99.0),
            "dropped": qm.dropped_count,
            "late": qm.late_count,
            "epochs": self.epochs,
            "gpus": self.plan.num_gpus if self.plan is not None else 0,
        }

    def plan_summary(self) -> dict[str, object]:
        """The deployed plan (the ``/v1/plan`` payload)."""
        if self.plan is None:
            return {"deployed": False, "gpus": 0, "sessions": []}
        gpus = []
        for i, gpu in enumerate(self.plan.gpus):
            gpus.append({
                "gpu": i,
                "duty_cycle_ms": gpu.duty_cycle_ms,
                "occupancy": gpu.occupancy,
                "saturated": gpu.saturated,
                "sessions": [
                    {
                        "session": a.session_id,
                        "batch": a.batch,
                        "exec_ms": a.exec_ms,
                    }
                    for a in gpu.allocations
                ],
            })
        return {
            "deployed": True,
            "gpus": self.plan.num_gpus,
            "apps": self.app_names,
            "plan": gpus,
            "infeasible": [l.session_id for l in self.plan.infeasible],
        }
