"""NexusServer: the live HTTP frontend over a wall-clock ServingRuntime.

``python -m repro serve`` builds one of these: a
:class:`~repro.serving.runtime.ServingRuntime` driven by an
:class:`~repro.runtime.clock.AsyncioEventSource` (so backends, retries,
leases and epochs all run on real milliseconds), fronted by the REST
surface below.

REST API (all JSON):

=======  =============== ==================================================
method   path            semantics
=======  =============== ==================================================
GET      /v1/healthz     liveness + uptime
GET      /v1/invoke      ``?app=NAME``: submit one query, respond when it
                         completes (``ok`` reflects the SLO verdict)
GET      /v1/plan        the deployed schedule plan
GET      /v1/metrics     aggregate serving statistics
POST     /v1/apps        register an app spec and redeploy
POST     /v1/shutdown    drain and stop the server
=======  =============== ==================================================
"""

from __future__ import annotations

import asyncio
import json

from ..cluster.nexus import ClusterConfig
from ..runtime.clock import AsyncioEventSource
from .http import HttpServer, json_bytes
from .runtime import ServingRuntime, parse_app_spec

__all__ = ["NexusServer"]

_OK = (200, b'{"status":"ok"}')


class NexusServer:
    """HTTP frontend + wall-clock epoch loop around a ServingRuntime."""

    def __init__(
        self,
        config: ClusterConfig | None = None,
        host: str = "127.0.0.1",
        port: int = 8642,
        dynamic: bool = False,
        trace: bool = False,
        loop: asyncio.AbstractEventLoop | None = None,
    ) -> None:
        self.loop = loop or asyncio.get_event_loop()
        self.events = AsyncioEventSource(self.loop)
        self.runtime = ServingRuntime(self.events, config, trace=trace)
        self.host = host
        self.port = port
        self.dynamic = dynamic
        self._http = HttpServer(self.loop)
        self._install_routes()
        self._shutdown = self.loop.create_future()
        self.bound_port: int | None = None

    # -------------------------------------------------------------- routes

    def _install_routes(self) -> None:
        http = self._http
        http.get("/v1/healthz", self._h_healthz)
        http.get("/v1/invoke", self._h_invoke)
        http.get("/v1/plan", self._h_plan)
        http.get("/v1/metrics", self._h_metrics)
        http.post("/v1/apps", self._h_apps)
        http.post("/v1/shutdown", self._h_shutdown)

    def _h_healthz(self, params: dict[str, str], body: bytes):
        return 200, json_bytes({
            "status": "ok",
            "uptime_ms": self.events.now,
            "apps": self.runtime.app_names,
        })

    def _h_invoke(self, params: dict[str, str], body: bytes):
        app = params.get("app")
        if not app:
            return 400, b'{"error":"missing app parameter"}'
        submit = self.runtime.submit

        # Deferred response: the query's completion hook writes straight
        # into this request's in-order slot -- no per-request future,
        # coroutine, or task on the hot path.
        def deferred(respond) -> None:
            def on_done(instance) -> None:
                # Hand-rolled payload: hot path, all-scalar fields.
                respond(200, b'{"ok":%s,"latency_ms":%.3f}' % (
                    b"false" if instance.failed else b"true",
                    instance.completion_ms - instance.arrival_ms,
                ))

            try:
                submit(app, on_done)
            except KeyError:
                respond(404, json_bytes({"error": f"unknown app {app!r}"}))

        return deferred

    def _h_plan(self, params: dict[str, str], body: bytes):
        return 200, json_bytes(self.runtime.plan_summary())

    def _h_metrics(self, params: dict[str, str], body: bytes):
        return 200, json_bytes(self.runtime.stats())

    def _h_apps(self, params: dict[str, str], body: bytes):
        try:
            spec = json.loads(body or b"{}")
            query, rate, arrival = parse_app_spec(
                spec["spec"], self.runtime.config.device
            )
            if "rate_rps" in spec:
                rate = float(spec["rate_rps"])
            self.runtime.add_app(query, rate, arrival)
            plan = self.runtime.deploy()
        except (KeyError, ValueError) as exc:
            return 400, json_bytes({"error": str(exc)})
        return 200, json_bytes({
            "registered": query.name, "gpus": plan.num_gpus,
        })

    def _h_shutdown(self, params: dict[str, str], body: bytes):
        if not self._shutdown.done():
            self._shutdown.set_result(None)
        return _OK

    # ----------------------------------------------------------- lifecycle

    async def start(self) -> int:
        """Deploy registered apps, start control loops, bind the socket."""
        if self.runtime.planner.apps:
            self.runtime.deploy()
        if self.dynamic:
            self.runtime.start_epoch_loop()
        self.runtime.core.install_heartbeat(
            self.runtime.config.heartbeat_ms,
            self.runtime.config.lease_ms,
        )
        _, port = await self._http.serve(self.host, self.port)
        self.bound_port = port
        return port

    async def wait_shutdown(self) -> None:
        await self._shutdown

    async def stop(self) -> None:
        self.runtime.stop()
        await self._http.close()

    async def run_forever(self) -> None:
        """start() -> serve until /v1/shutdown -> clean teardown."""
        await self.start()
        try:
            await self.wait_shutdown()
        finally:
            await self.stop()
