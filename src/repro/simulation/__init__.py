"""Discrete-event simulation substrate (virtual clock + event loop)."""

from .simulator import EventHandle, Simulator

__all__ = ["EventHandle", "Simulator"]
