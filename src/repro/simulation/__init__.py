"""Discrete-event simulation substrate (virtual clock + event loop)."""

from .sharded import (
    CrossShardPlanError,
    ShardedSimulator,
    ShardMessage,
    SimShard,
    shard_map,
)
from .simulator import EventHandle, Simulator

__all__ = [
    "CrossShardPlanError",
    "EventHandle",
    "ShardMessage",
    "ShardedSimulator",
    "SimShard",
    "Simulator",
    "shard_map",
]
