"""Sharded discrete-event simulation: partitioned heaps, lock-step windows.

A monolithic :class:`~repro.simulation.simulator.Simulator` serializes
every event in one heap, capping whole-cluster experiments at one core's
event rate.  Nexus's epoch structure makes the loop partitionable:
between control-plane actions (epoch re-plans, heartbeat sweeps, fault
injections) backends execute fixed schedules and interact only with
their own frontends, so a cluster whose sessions split into disjoint
*components* can run each component on a private simulator heap and only
synchronize at control boundaries.

This module is the generic engine; the Nexus-specific wiring (plan
partitioning, the mirrored control plane) lives in
:mod:`repro.cluster.sharded`.

Determinism argument
--------------------

The monolithic loop orders events by ``(time, priority, seq)`` where
``seq`` is the global schedule-call counter.  Restricted to one shard's
events, only their *relative* order matters, and shard-local callbacks
schedule only shard-local events -- so replaying a shard's schedule
calls in monolithic order against a private heap reproduces exactly the
monolithic order restricted to that shard.  Control events are the one
place a global position matters: a shard event at the same ``(time,
priority)`` as a control event runs before or after it depending on
their seq order.  The engine therefore plants a *marker* event in every
shard's heap at the moment the monolithic run would have issued the
control event's ``schedule`` call; each shard's local counter then puts
the marker at precisely the control event's relative position (shards
that own none of the control event's effects just burn one seq number,
which shifts all later seqs uniformly and preserves relative order).
When a marker fires it interrupts the shard's window *mid-timestamp*;
the coordinator runs the control action against the paused shards and
resumes them.  Small configurations are therefore byte-identical to the
monolithic run -- see ``tests/test_sharded_equivalence.py``.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Sequence

from .simulator import Simulator

__all__ = [
    "CrossShardPlanError",
    "ShardMessage",
    "SimShard",
    "ShardedSimulator",
    "shard_map",
]


class CrossShardPlanError(RuntimeError):
    """A deployment or effect would couple objects owned by two shards.

    Raised loudly instead of silently diverging from the monolithic
    run: the sharded engine only claims equivalence for partition-closed
    workloads, and this error is how a violation surfaces.
    """


@dataclass(slots=True)
class ShardMessage:
    """A timestamped cross-shard effect, applied at a window boundary."""

    time_ms: float
    fn: Callable[[], None]
    priority: int = 0


class SimShard:
    """One partition: a private simulator heap plus its message queue.

    All cross-shard effects reach a shard through :meth:`post` (drained
    into the private heap at the next window boundary) or through method
    calls the coordinator makes while the shard is paused at a barrier.
    Nothing outside the shard may write attributes on shard-owned
    objects directly -- the ``cross-shard-direct-mutation`` lint rule
    enforces exactly that discipline in this package.
    """

    def __init__(self, shard_id: int) -> None:
        self.shard_id = shard_id
        self.sim = Simulator()
        self._mailbox: list[ShardMessage] = []
        self._fired_token: int | None = None

    # ------------------------------------------------------------ messages

    def post(self, message: ShardMessage) -> None:
        """Queue a timestamped effect for delivery at the next boundary."""
        self._mailbox.append(message)

    def deliver(self) -> None:
        """Drain the mailbox into the private heap, in posting order.

        Called by the coordinator while the shard is paused, so posting
        order *is* the monolithic schedule-call order and the delivered
        events take the same relative seq positions they would have had.
        """
        mailbox = self._mailbox
        if not mailbox:
            return
        self._mailbox = []
        for msg in mailbox:
            self.sim.schedule_at(msg.time_ms, msg.fn, msg.priority)

    # ------------------------------------------------------------- windows

    def arm_marker(self, time_ms: float, token: int, priority: int = 0) -> None:
        """Plant a window-boundary marker at the control event's position."""

        def fire() -> None:
            self._fired_token = token
            self.sim.interrupt()

        self.sim.schedule_at(time_ms, fire, priority)

    def run_window(self, end_ms: float) -> int | None:
        """Advance until the next marker (returning its token) or ``end_ms``."""
        self.deliver()
        self._fired_token = None
        if self.sim.run_window(end_ms):
            return self._fired_token
        return None


@dataclass(slots=True)
class _Barrier:
    time_ms: float
    priority: int
    token: int
    action: Callable[[float], None]
    label: str

    def __lt__(self, other: "_Barrier") -> bool:
        return (self.time_ms, self.priority, self.token) < (
            other.time_ms, other.priority, other.token
        )


class ShardedSimulator:
    """Coordinator: N shards advancing in lock-step control windows.

    The agenda holds every scheduled control action; each entry owns a
    marker in every shard's heap.  :meth:`run_until` repeatedly advances
    all shards to the next agenda entry (their markers interrupt each
    window at the exact event-order position the monolithic control
    event would occupy), runs the action with every shard paused, and
    finishes with a plain ``run_until`` once the agenda is drained.
    """

    def __init__(self, n_shards: int) -> None:
        if n_shards < 1:
            raise ValueError(f"need at least one shard, got {n_shards}")
        self.shards = [SimShard(i) for i in range(n_shards)]
        self._tokens = itertools.count()
        self._agenda: list[_Barrier] = []
        self._now = 0.0

    # ----------------------------------------------------------- schedule

    def schedule_barrier(
        self,
        time_ms: float,
        action: Callable[[float], None],
        label: str = "",
        priority: int = 0,
    ) -> int:
        """Register a control action; plants one marker per shard.

        Must be called at the same point of the setup / control-phase
        call sequence where the monolithic run would call
        ``sim.schedule_at`` for the equivalent control event, so the
        markers land at the control event's seq position in every shard.
        """
        token = next(self._tokens)
        for shard in self.shards:
            shard.arm_marker(time_ms, token, priority)
        heapq.heappush(
            self._agenda, _Barrier(time_ms, priority, token, action, label)
        )
        return token

    # ---------------------------------------------------------------- run

    @property
    def now(self) -> float:
        return self._now

    @property
    def events_processed(self) -> int:
        """Aggregate events across shards (markers included)."""
        return sum(s.sim.events_processed for s in self.shards)

    def run_until(self, end_ms: float) -> None:
        agenda = self._agenda
        while agenda and agenda[0].time_ms <= end_ms:
            barrier = heapq.heappop(agenda)
            for shard in self.shards:
                token = shard.run_window(end_ms)
                if token != barrier.token:
                    raise AssertionError(
                        f"shard {shard.shard_id} stopped at marker {token}, "
                        f"expected {barrier.token} ({barrier.label!r} at "
                        f"t={barrier.time_ms})"
                    )
            self._now = barrier.time_ms
            barrier.action(barrier.time_ms)
            for shard in self.shards:
                shard.deliver()
        for shard in self.shards:
            shard.deliver()
            shard.sim.run_until(end_ms)
        self._now = end_ms


def shard_map(
    fn: Callable[[Any], Any], shard_specs: Sequence[Any], workers: int
) -> list[Any]:
    """Fan independent shard timelines across worker processes.

    The federated execution mode (``experiments/megascale.py``): each
    spec describes one self-contained shard -- model names, rates,
    picklable rate functions, fault plans -- and the worker rebuilds the
    shard's cluster from the spec, runs its whole timeline, and returns
    a reduced summary.  Live simulator state never crosses the process
    boundary (event heaps hold closures and are not picklable).
    """
    from ..experiments.common import parallel_map  # lazy: avoid cycle

    return parallel_map(fn, list(shard_specs), workers=workers)
