"""Discrete-event simulator: the virtual cluster's clock and event loop.

The substitution for the paper's physical testbed (DESIGN.md section 2):
frontends, backends and the global scheduler are all driven by this loop.
Time is float milliseconds.  Events fire in (time, priority, insertion
order), so same-timestamp events are deterministic -- every experiment in
the repo is reproducible from its seed.

The simulator conforms structurally to the
:class:`~repro.runtime.clock.EventSource` protocol (``now`` /
``schedule`` / ``schedule_at`` returning cancellable handles), making it
the virtual-time driver of the shared
:class:`~repro.runtime.core.RuntimeCore`; the live serving plane
(:mod:`repro.serving`) drives the same core with wall-clock asyncio
timers instead.
"""

from __future__ import annotations

import itertools
from heapq import heapify, heappop, heappush
from typing import Callable

__all__ = ["Simulator", "EventHandle"]


class _Event:
    """One scheduled callback.

    Slotted and kept *out* of the heap ordering: the heap holds
    ``(time_ms, priority, seq, event)`` tuples whose comparison never
    reaches the event (``seq`` is unique), so tie-breaking is plain tuple
    comparison instead of a generated dataclass ``__lt__`` with attribute
    loads -- the event loop is the hottest path in every experiment.
    """

    __slots__ = ("time_ms", "fn", "cancelled")

    def __init__(self, time_ms: float, fn: Callable[[], None]) -> None:
        self.time_ms = time_ms
        self.fn = fn
        self.cancelled = False


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("_event", "_sim")

    def __init__(self, event: _Event, sim: "Simulator | None" = None):
        self._event = event
        self._sim = sim

    def cancel(self) -> None:
        event = self._event
        if not event.cancelled:
            event.cancelled = True
            sim = self._sim
            if sim is not None:
                sim._note_cancelled()

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time_ms(self) -> float:
        return self._event.time_ms


class Simulator:
    """A minimal, deterministic event loop.

    Usage::

        sim = Simulator()
        sim.schedule(10.0, lambda: print("at t=10ms"))
        sim.run_until(1000.0)
    """

    #: never compact heaps smaller than this -- rebuilding tiny heaps
    #: costs more than carrying a handful of dead entries.
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[tuple[float, int, int, _Event]] = []
        self._seq = itertools.count()
        self._events_processed = 0
        #: live count of cancelled-but-unpopped events; drives compaction.
        self._cancelled_pending = 0
        #: set by an interrupt callback during :meth:`run_window` to pause
        #: the loop at a window boundary (sharded execution).
        self._interrupted = False
        #: optional observability tracer (``repro.observability.Tracer``);
        #: when attached and recording, each run window emits one
        #: ``sim.window`` span.  Never consulted inside the hot loop.
        self._tracer = None

    def attach_tracer(self, tracer) -> None:
        """Attach a structured-event tracer (see ``repro.observability``)."""
        self._tracer = tracer

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(
        self, delay_ms: float, fn: Callable[[], None], priority: int = 0
    ) -> EventHandle:
        """Run ``fn`` after ``delay_ms``; lower priority fires first at ties."""
        if delay_ms < 0:
            raise ValueError(f"delay must be >= 0, got {delay_ms}")
        return self.schedule_at(self._now + delay_ms, fn, priority)

    def schedule_at(
        self, time_ms: float, fn: Callable[[], None], priority: int = 0
    ) -> EventHandle:
        """Run ``fn`` at absolute virtual time ``time_ms``."""
        if time_ms < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time_ms} < now {self._now}"
            )
        event = _Event(time_ms, fn)
        heappush(self._heap, (time_ms, priority, next(self._seq), event))
        return EventHandle(event, self)

    def _note_cancelled(self) -> None:
        """A handle cancelled its event; compact if the heap is mostly dead.

        Cancelled events stay in the heap until popped, so heavy timer
        churn (heartbeat leases, retry backoffs) would otherwise grow the
        heap without bound.  When more than half of a non-trivial heap is
        dead weight, rebuild it from the live entries: the surviving
        ``(time, priority, seq)`` tuples keep their original seq numbers,
        so event ordering is untouched.
        """
        self._cancelled_pending += 1
        heap = self._heap
        if len(heap) >= self._COMPACT_MIN and self._cancelled_pending * 2 > len(heap):
            # In place: the run loops hold a local alias to this list.
            heap[:] = [entry for entry in heap if not entry[3].cancelled]
            heapify(heap)
            self._cancelled_pending = 0

    def run_until(self, end_ms: float) -> None:
        """Process events up to and including ``end_ms``."""
        start_ms = self._now
        start_count = self._events_processed
        heap = self._heap
        processed = 0
        skipped = 0
        while heap and heap[0][0] <= end_ms:
            time_ms, _, _, event = heappop(heap)
            if event.cancelled:
                skipped += 1
                continue
            self._now = time_ms
            processed += 1
            event.fn()
        self._events_processed += processed
        self._cancelled_pending -= skipped
        self._now = max(self._now, end_ms)
        self._trace_window(start_ms, start_count)

    def run(self) -> None:
        """Process every pending event (callers must ensure termination)."""
        start_ms = self._now
        start_count = self._events_processed
        heap = self._heap
        processed = 0
        skipped = 0
        while heap:
            time_ms, _, _, event = heappop(heap)
            if event.cancelled:
                skipped += 1
                continue
            self._now = time_ms
            processed += 1
            event.fn()
        self._events_processed += processed
        self._cancelled_pending -= skipped
        self._trace_window(start_ms, start_count)

    def interrupt(self) -> None:
        """Pause :meth:`run_window` after the current event returns.

        Called from *inside* an event callback (a shard's window-boundary
        marker); :meth:`run` and :meth:`run_until` ignore it.
        """
        self._interrupted = True

    def run_window(self, end_ms: float) -> bool:
        """Process events up to ``end_ms``, stopping early at an interrupt.

        Like :meth:`run_until`, but an event callback may call
        :meth:`interrupt` to pause the loop *at its exact heap position*
        -- remaining events (including same-timestamp ones with later seq
        numbers) stay queued, and ``now`` is **not** advanced to
        ``end_ms``.  Returns True when interrupted, False when the window
        completed.  This is the shard-side primitive of the sharded
        simulator's lock-step barrier protocol.
        """
        start_ms = self._now
        start_count = self._events_processed
        heap = self._heap
        processed = 0
        skipped = 0
        interrupted = False
        while heap and heap[0][0] <= end_ms:
            time_ms, _, _, event = heappop(heap)
            if event.cancelled:
                skipped += 1
                continue
            self._now = time_ms
            processed += 1
            event.fn()
            if self._interrupted:
                self._interrupted = False
                interrupted = True
                break
        self._events_processed += processed
        self._cancelled_pending -= skipped
        if not interrupted:
            self._now = max(self._now, end_ms)
        self._trace_window(start_ms, start_count)
        return interrupted

    def _trace_window(self, start_ms: float, start_count: int) -> None:
        tracer = self._tracer
        if tracer is not None and tracer.recording:
            tracer.sim_window(
                start_ms, self._now, self._events_processed - start_count
            )

    def peek_next_time(self) -> float | None:
        while self._heap and self._heap[0][3].cancelled:
            heappop(self._heap)
            self._cancelled_pending -= 1
        return self._heap[0][0] if self._heap else None

    @property
    def pending_events(self) -> int:
        """Heap entries still queued (live + not-yet-popped cancelled)."""
        return len(self._heap)
