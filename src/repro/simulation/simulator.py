"""Discrete-event simulator: the virtual cluster's clock and event loop.

The substitution for the paper's physical testbed (DESIGN.md section 2):
frontends, backends and the global scheduler are all driven by this loop.
Time is float milliseconds.  Events fire in (time, priority, insertion
order), so same-timestamp events are deterministic -- every experiment in
the repo is reproducible from its seed.
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Simulator", "EventHandle"]


@dataclass(order=True)
class _Event:
    time_ms: float
    priority: int
    seq: int
    fn: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`Simulator.schedule`; supports cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _Event):
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time_ms(self) -> float:
        return self._event.time_ms


class Simulator:
    """A minimal, deterministic event loop.

    Usage::

        sim = Simulator()
        sim.schedule(10.0, lambda: print("at t=10ms"))
        sim.run_until(1000.0)
    """

    def __init__(self) -> None:
        self._now = 0.0
        self._heap: list[_Event] = []
        self._seq = itertools.count()
        self._events_processed = 0
        #: optional observability tracer (``repro.observability.Tracer``);
        #: when attached and recording, each run window emits one
        #: ``sim.window`` span.  Never consulted inside the hot loop.
        self._tracer = None

    def attach_tracer(self, tracer) -> None:
        """Attach a structured-event tracer (see ``repro.observability``)."""
        self._tracer = tracer

    @property
    def now(self) -> float:
        """Current virtual time in milliseconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    def schedule(
        self, delay_ms: float, fn: Callable[[], None], priority: int = 0
    ) -> EventHandle:
        """Run ``fn`` after ``delay_ms``; lower priority fires first at ties."""
        if delay_ms < 0:
            raise ValueError(f"delay must be >= 0, got {delay_ms}")
        return self.schedule_at(self._now + delay_ms, fn, priority)

    def schedule_at(
        self, time_ms: float, fn: Callable[[], None], priority: int = 0
    ) -> EventHandle:
        """Run ``fn`` at absolute virtual time ``time_ms``."""
        if time_ms < self._now:
            raise ValueError(
                f"cannot schedule in the past: {time_ms} < now {self._now}"
            )
        event = _Event(time_ms, priority, next(self._seq), fn)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def run_until(self, end_ms: float) -> None:
        """Process events up to and including ``end_ms``."""
        start_ms = self._now
        start_count = self._events_processed
        while self._heap and self._heap[0].time_ms <= end_ms:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time_ms
            self._events_processed += 1
            event.fn()
        self._now = max(self._now, end_ms)
        self._trace_window(start_ms, start_count)

    def run(self) -> None:
        """Process every pending event (callers must ensure termination)."""
        start_ms = self._now
        start_count = self._events_processed
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time_ms
            self._events_processed += 1
            event.fn()
        self._trace_window(start_ms, start_count)

    def _trace_window(self, start_ms: float, start_count: int) -> None:
        tracer = self._tracer
        if tracer is not None and tracer.recording:
            tracer.sim_window(
                start_ms, self._now, self._events_processed - start_count
            )

    def peek_next_time(self) -> float | None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time_ms if self._heap else None
