"""Workloads: arrival processes, the Table 4 applications, stream traces."""

from .arrivals import (
    merge_arrivals,
    mmpp_arrivals,
    poisson_arrivals,
    uniform_arrivals,
    zipf_rates,
)
from .apps import (
    all_apps,
    amber_query,
    bb_query,
    bike_query,
    dance_query,
    game_queries,
    game_query,
    logo_query,
    traffic_query,
)
from .traces import (
    RateSchedule,
    StreamTrace,
    ar1_series,
    diurnal_rate,
    rush_hour_gammas,
    step_rate,
)

__all__ = [
    "merge_arrivals",
    "mmpp_arrivals",
    "poisson_arrivals",
    "uniform_arrivals",
    "zipf_rates",
    "all_apps",
    "amber_query",
    "bb_query",
    "bike_query",
    "dance_query",
    "game_queries",
    "game_query",
    "logo_query",
    "traffic_query",
    "RateSchedule",
    "StreamTrace",
    "ar1_series",
    "diurnal_rate",
    "rush_hour_gammas",
    "step_rate",
]
