"""The seven evaluated applications of Table 4, as query builders.

Each function returns one or more :class:`~repro.core.query.Query` objects
whose stages carry real zoo-model profiles for the chosen device.  Fan-out
(gamma) values follow the paper's descriptions; apps marked PB in Table 4
use transfer-learning specializations of shared backbones, so the cluster
can prefix-batch them.

=======  =====  ==========================================================
app      query  structure
=======  =====  ==========================================================
game     QA-1   source -> 6x digit rec (LeNet variants) + icon rec
                (ResNet-50 variant); parallel per frame, SLO 50 ms
traffic  QA-2   SSD object det -> car make/model rec (GoogleNet variant)
                + face rec (VGG-Face); SLO 400 ms
dance    QA-2   person det (SSD) -> pose rec (ResNet-50 variant)
bb       QA-3   person det -> face det -> gaze/age/sex rec (MobileNet
                variants, prefix-batchable)
bike     QA-4   object det -> rack rec -> text det -> text rec
amber    QA-4   object det -> car make rec -> plate det -> plate text rec
logo     QA-5   person det -> pose -> logo det -> number det -> number rec
=======  =====  ==========================================================
"""

from __future__ import annotations

from ..core.query import Query, QueryStage
from ..models.profiler import profile

__all__ = [
    "game_query",
    "game_queries",
    "traffic_query",
    "dance_query",
    "bb_query",
    "bike_query",
    "amber_query",
    "logo_query",
    "all_apps",
    "APP_BUILDERS",
]


def _stage(name: str, model_id: str, device: str, gamma: float = 1.0) -> QueryStage:
    return QueryStage(
        name=name, profile=profile(model_id, device), gamma=gamma,
        model_id=model_id,
    )


def game_query(device: str = "gtx1080ti", game_id: int = 0,
               slo_ms: float = 50.0) -> Query:
    """One game stream's per-frame query (section 7.3.1).

    Six numbers recognized with a LeNet specialized to the game's font,
    one icon with a last-layer-specialized ResNet-50; all parallel.
    """
    root = QueryStage(name="frame", profile=None)
    root.add_child(
        _stage("digits", f"lenet5@game{game_id}:11", device, gamma=6.0)
    )
    root.add_child(
        _stage("icon", f"resnet50@game{game_id}_icon:40", device, gamma=1.0)
    )
    return Query(name=f"game{game_id}", root=root, slo_ms=slo_ms)


def game_queries(device: str = "gtx1080ti", num_games: int = 20,
                 slo_ms: float = 50.0) -> list[Query]:
    """The 20-game case study: one query per game, distinct specializations."""
    return [game_query(device, i, slo_ms) for i in range(num_games)]


def traffic_query(device: str = "gtx1080ti", slo_ms: float = 400.0,
                  gamma_car: float = 1.5, gamma_face: float = 0.5,
                  stream_id: int = 0) -> Query:
    """Traffic surveillance (Figure 8): SSD -> car rec + face rec.

    ``gamma_car`` / ``gamma_face`` are the per-frame object counts; rush
    hour multiplies them (Figure 12).
    """
    root = _stage("ssd", "ssd_vgg", device)
    root.add_child(
        _stage("car", "googlenet@carmake:427", device, gamma=gamma_car)
    )
    root.add_child(
        _stage("face", "vgg_face", device, gamma=gamma_face)
    )
    return Query(name=f"traffic{stream_id}", root=root, slo_ms=slo_ms)


def dance_query(device: str = "gtx1080ti", slo_ms: float = 300.0) -> Query:
    """Dance rating: person detection then pose recognition per person."""
    root = _stage("person_det", "ssd_vgg", device)
    root.add_child(_stage("pose", "resnet50@pose:17", device, gamma=1.2))
    return Query(name="dance", root=root, slo_ms=slo_ms)


def bb_query(device: str = "gtx1080ti", slo_ms: float = 400.0) -> Query:
    """Billboard audience response: 3 stages, prefix-batchable heads."""
    root = _stage("person_det", "ssd_vgg", device)
    face = root.add_child(
        _stage("face_det", "mobilenet_v1@facedet:2", device, gamma=1.2)
    )
    face.add_child(_stage("gaze", "mobilenet_v1@gaze:9", device, gamma=1.0))
    face.add_child(_stage("age", "mobilenet_v1@age:8", device, gamma=1.0))
    face.add_child(_stage("sex", "mobilenet_v1@sex:2", device, gamma=1.0))
    return Query(name="bb", root=root, slo_ms=slo_ms)


def bike_query(device: str = "gtx1080ti", slo_ms: float = 500.0) -> Query:
    """Bike-rack occupancy on buses: 4 stages ending in text recognition."""
    root = _stage("object_det", "ssd_vgg", device)
    rack = root.add_child(
        _stage("rack", "googlenet@rack:4", device, gamma=0.6)
    )
    text_det = rack.add_child(
        _stage("text_det", "mobilenet_v1@textdet:2", device, gamma=1.0)
    )
    text_det.add_child(
        _stage("text_rec", "lenet5@bustext:37", device, gamma=2.0)
    )
    return Query(name="bike", root=root, slo_ms=slo_ms)


def amber_query(device: str = "gtx1080ti", slo_ms: float = 500.0) -> Query:
    """Amber-alert vehicle matching: 4 stages from dashcam footage."""
    root = _stage("object_det", "ssd_vgg", device)
    car = root.add_child(
        _stage("car_make", "googlenet@carmake:427", device, gamma=1.8)
    )
    plate = car.add_child(
        _stage("plate_det", "mobilenet_v1@platedet:2", device, gamma=0.7)
    )
    plate.add_child(
        _stage("plate_text", "lenet5@platetext:37", device, gamma=4.0)
    )
    return Query(name="amber", root=root, slo_ms=slo_ms)


def logo_query(device: str = "gtx1080ti", slo_ms: float = 600.0) -> Query:
    """Logo placement audit: the 5-stage query of Table 4."""
    root = _stage("person_det", "ssd_vgg", device)
    torso = root.add_child(
        _stage("torso", "resnet50@pose:17", device, gamma=2.0)
    )
    logo = torso.add_child(
        _stage("logo_det", "mobilenet_v1@logodet:2", device, gamma=1.0)
    )
    number_det = logo.add_child(
        _stage("number_det", "mobilenet_v1@numdet:2", device, gamma=0.5)
    )
    number_det.add_child(
        _stage("number_rec", "lenet5@jersey:11", device, gamma=1.5)
    )
    return Query(name="logo", root=root, slo_ms=slo_ms)


APP_BUILDERS = {
    "traffic": traffic_query,
    "dance": dance_query,
    "bb": bb_query,
    "bike": bike_query,
    "amber": amber_query,
    "logo": logo_query,
}


def all_apps(device: str = "gtx1080ti", num_games: int = 4) -> list[Query]:
    """The full multi-application deployment of section 7.4.

    Returns ``num_games`` game queries plus one of each other app -- 7
    application types, ~12 distinct base models, matching the paper's
    "7 applications and 12 different models" at reduced game count
    (pass ``num_games=50`` for the paper's full spread).
    """
    queries = game_queries(device, num_games=num_games)
    for builder in APP_BUILDERS.values():
        queries.append(builder(device))
    return queries
