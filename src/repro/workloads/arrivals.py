"""Arrival processes for request workloads.

The paper evaluates under uniform ("we sample inter-arrival time between
frames uniformly", section 7.1) and Poisson arrivals (Figures 5, 13), plus
bursty phases in the large-scale deployment.  All generators are
deterministic given a seed and return sorted absolute arrival times in
milliseconds.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "uniform_arrivals",
    "poisson_arrivals",
    "mmpp_arrivals",
    "merge_arrivals",
    "zipf_rates",
]


def _rng(seed: int | None) -> np.random.Generator:
    return np.random.default_rng(seed)


def uniform_arrivals(
    rate_rps: float, duration_ms: float, seed: int | None = 0, jitter: float = 0.2
) -> list[float]:
    """Evenly spaced arrivals with a little jitter.

    ``jitter`` is the fraction of the inter-arrival gap each arrival may
    shift by (uniformly); 0 gives a perfectly periodic stream.
    """
    if rate_rps <= 0 or duration_ms <= 0:
        return []
    gap = 1000.0 / rate_rps
    n = int(duration_ms / gap)
    # Center arrivals in their slots: starting at t=0 would park every
    # low-rate stream's (possibly only) arrival inside the warmup window.
    base = (np.arange(n) + 0.5) * gap
    if jitter > 0:
        rng = _rng(seed)
        base = base + rng.uniform(-jitter * gap / 2, jitter * gap / 2, size=n)
        base = np.clip(base, 0.0, None)
        base.sort()
    return base.tolist()


def poisson_arrivals(
    rate_rps: float, duration_ms: float, seed: int | None = 0
) -> list[float]:
    """Poisson process: exponential inter-arrival gaps at the given rate."""
    if rate_rps <= 0 or duration_ms <= 0:
        return []
    rng = _rng(seed)
    mean_gap = 1000.0 / rate_rps
    # Draw ~20% more than expected, extend if short.
    out: list[float] = []
    t = 0.0
    expected = int(duration_ms / mean_gap * 1.2) + 16
    while True:
        gaps = rng.exponential(mean_gap, size=expected)
        for g in gaps:
            t += g
            if t >= duration_ms:
                return out
            out.append(t)
        expected = max(16, expected // 4)


def mmpp_arrivals(
    rates_rps: list[float],
    phase_ms: float,
    duration_ms: float,
    seed: int | None = 0,
) -> list[float]:
    """Markov-modulated Poisson process: cycle through rate phases.

    Used for the bursty workload window of the large-scale deployment
    (Figure 13): the offered rate steps between levels every ``phase_ms``.
    """
    if not rates_rps:
        raise ValueError("need at least one phase rate")
    out: list[float] = []
    t0 = 0.0
    i = 0
    seed_base = 0 if seed is None else seed
    while t0 < duration_ms:
        span = min(phase_ms, duration_ms - t0)
        rate = rates_rps[i % len(rates_rps)]
        chunk = poisson_arrivals(rate, span, seed=seed_base + i)
        out.extend(t0 + t for t in chunk)
        t0 += span
        i += 1
    return out


def merge_arrivals(*streams: list[float]) -> list[float]:
    """Merge several sorted arrival streams into one sorted stream."""
    merged: list[float] = []
    for s in streams:
        merged.extend(s)
    merged.sort()
    return merged


def zipf_rates(total_rps: float, n: int, exponent: float = 0.9) -> list[float]:
    """Split a total rate across ``n`` streams by a Zipf law.

    Section 7.3.1: "The request rates of frames from the 20 games follow
    the Zipf-0.9 distribution."
    """
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    weights = [1.0 / (k ** exponent) for k in range(1, n + 1)]
    total_w = sum(weights)
    return [total_rps * w / total_w for w in weights]
