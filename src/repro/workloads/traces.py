"""Synthetic stream traces: diurnal modulation and workload steps.

Substitutes for the paper's recorded Twitch / traffic-camera footage
(DESIGN.md section 2): the evaluation consumes streams only through (a)
their arrival rates over time and (b) their per-frame object fan-out, both
of which these generators control directly.

- :func:`diurnal_rate` -- a smooth day curve with a rush-hour bump
  (Figure 12 contrasts rush vs non-rush traffic).
- :func:`step_rate` -- the Figure 13 workload: steady, then a surge with
  high variance, then subsiding.
- :func:`rush_hour_gammas` -- object-count multipliers: "rush-hour traffic
  is more complex: more vehicles are detected, and require follow-on
  analysis, on every frame" (section 7.3.2).
"""

from __future__ import annotations

import math

from ..core.floatcmp import approx_zero

__all__ = ["diurnal_rate", "step_rate", "rush_hour_gammas",
           "RateSchedule", "ar1_series", "StreamTrace",
           "DiurnalDrift", "RegionalWave", "FlashCrowd"]


def diurnal_rate(base_rps: float, t_ms: float, day_ms: float = 86_400_000.0,
                 rush_boost: float = 1.8) -> float:
    """Rate over a synthetic day: low overnight, bumps at rush hours."""
    phase = (t_ms % day_ms) / day_ms  # 0..1 over the day
    # Daylight sinusoid plus two rush bumps at ~8:30 and ~17:30.
    daylight = 0.6 + 0.4 * math.sin(math.pi * (phase * 24 - 6) / 12)
    rush = 0.0
    for center in (8.5 / 24.0, 17.5 / 24.0):
        rush += math.exp(-(((phase - center) * 24) ** 2) / (2 * 0.75**2))
    return base_rps * max(0.05, daylight + (rush_boost - 1.0) * rush)


def step_rate(
    base_rps: float,
    t_ms: float,
    surge_start_ms: float = 326_000.0,
    surge_end_ms: float = 644_000.0,
    surge_scale: float = 2.2,
    wobble_period_ms: float = 37_000.0,
    wobble_frac: float = 0.2,
) -> float:
    """Figure 13's shape: steady, surge with variance, then subside.

    "Around 326s into the window, the number of requests increases and
    starts varying significantly ... It deallocates GPUs at the 644s mark
    when demand subsides."
    """
    if surge_start_ms <= t_ms < surge_end_ms:
        wobble = 1.0 + wobble_frac * math.sin(
            2 * math.pi * (t_ms - surge_start_ms) / wobble_period_ms
        )
        return base_rps * surge_scale * wobble
    return base_rps


def rush_hour_gammas(rush: bool) -> dict[str, float]:
    """Traffic-app fan-outs for rush vs non-rush footage."""
    if rush:
        return {"gamma_car": 3.5, "gamma_face": 1.2}
    return {"gamma_car": 1.5, "gamma_face": 0.5}


class RateSchedule:
    """Piecewise-constant rate function built from (start_ms, rps) points."""

    def __init__(self, points: list[tuple[float, float]]):
        if not points:
            raise ValueError("need at least one (start_ms, rps) point")
        self.points = sorted(points)

    def __call__(self, t_ms: float) -> float:
        rate = self.points[0][1]
        for start, rps in self.points:
            if t_ms >= start:
                rate = rps
            else:
                break
        return rate


def ar1_series(
    mean: float,
    n: int,
    phi: float = 0.9,
    sigma: float = 0.3,
    seed: int | None = 0,
    floor: float = 0.0,
) -> list[float]:
    """Mean-reverting AR(1) series: autocorrelated per-frame statistics.

    Object counts in adjacent video frames are strongly correlated (the
    same cars stay in view); iid sampling understates burst persistence.
    ``phi`` is the autocorrelation, ``sigma`` the innovation scale as a
    fraction of the mean.
    """
    import numpy as np

    if not 0.0 <= phi < 1.0:
        raise ValueError(f"phi must be in [0, 1), got {phi}")
    rng = np.random.default_rng(seed)
    out = []
    x = 0.0
    innovation = sigma * mean * math.sqrt(max(1e-12, 1 - phi * phi))
    for _ in range(n):
        x = phi * x + rng.normal(0.0, innovation)
        out.append(max(floor, mean + x))
    return out


class DiurnalDrift:
    """Diurnal curve whose *popularity* drifts across sessions.

    Megascale scenarios need thousands of sessions whose relative
    popularity shifts over the day (morning news vs evening games), not
    one shared curve.  Each session gets a phase offset -- its personal
    "peak hour" -- so rank order among sessions rotates as the day
    advances.  A plain class (not a closure) so instances pickle across
    :func:`~repro.experiments.common.parallel_map` worker processes.
    """

    def __init__(
        self,
        base_rps: float,
        peak_hour: float = 12.0,
        day_ms: float = 86_400_000.0,
        swing: float = 0.8,
    ):
        if not 0.0 <= swing <= 1.0:
            raise ValueError(f"swing must be in [0, 1], got {swing}")
        self.base_rps = base_rps
        self.peak_hour = peak_hour
        self.day_ms = day_ms
        self.swing = swing

    def __call__(self, t_ms: float) -> float:
        hour = (t_ms % self.day_ms) / self.day_ms * 24.0
        phase = (hour - self.peak_hour) / 24.0 * 2.0 * math.pi
        return self.base_rps * (1.0 + self.swing * math.cos(phase))


class RegionalWave:
    """A daily demand wave sweeping across regions (follow-the-sun).

    Sessions are grouped into ``n_regions`` timezone-like regions; the
    wave peaks in region ``region`` when the sun does, one ``day_ms /
    n_regions`` slot later per region.  Off-peak demand decays to
    ``floor`` of the peak.  Picklable for process fan-out.
    """

    def __init__(
        self,
        peak_rps: float,
        region: int,
        n_regions: int = 4,
        day_ms: float = 86_400_000.0,
        width: float = 0.15,
        floor: float = 0.1,
    ):
        if n_regions < 1:
            raise ValueError(f"need at least one region, got {n_regions}")
        self.peak_rps = peak_rps
        self.region = region % n_regions
        self.n_regions = n_regions
        self.day_ms = day_ms
        self.width = width
        self.floor = floor

    def __call__(self, t_ms: float) -> float:
        phase = (t_ms % self.day_ms) / self.day_ms  # 0..1 over the day
        center = (self.region + 0.5) / self.n_regions
        # Circular distance so the wave wraps around midnight.
        dist = abs(phase - center)
        dist = min(dist, 1.0 - dist)
        bump = math.exp(-(dist * dist) / (2.0 * self.width * self.width))
        return self.peak_rps * (self.floor + (1.0 - self.floor) * bump)


class FlashCrowd:
    """A flash crowd: sudden onset, exponential cool-down.

    Baseline demand until ``start_ms``, then a near-instant ramp to
    ``magnitude`` times baseline over ``ramp_ms``, decaying back with
    time constant ``decay_ms`` (the news-event shape: seconds up, tens
    of minutes down).  Picklable for process fan-out.
    """

    def __init__(
        self,
        base_rps: float,
        start_ms: float,
        magnitude: float = 10.0,
        ramp_ms: float = 5_000.0,
        decay_ms: float = 120_000.0,
    ):
        if magnitude < 1.0:
            raise ValueError(f"magnitude must be >= 1, got {magnitude}")
        self.base_rps = base_rps
        self.start_ms = start_ms
        self.magnitude = magnitude
        self.ramp_ms = max(ramp_ms, 1e-9)
        self.decay_ms = max(decay_ms, 1e-9)

    def __call__(self, t_ms: float) -> float:
        if t_ms < self.start_ms:
            return self.base_rps
        dt = t_ms - self.start_ms
        excess = self.magnitude - 1.0
        if dt < self.ramp_ms:
            level = excess * (dt / self.ramp_ms)
        else:
            level = excess * math.exp(-(dt - self.ramp_ms) / self.decay_ms)
        return self.base_rps * (1.0 + level)


class StreamTrace:
    """A synthetic video stream: per-frame timestamps and object counts.

    Substitutes for the paper's recorded footage: the evaluation consumes
    a stream only through when frames arrive (``frame_times_ms``) and how
    many objects each contains (``object_counts``, which drive downstream
    fan-out).  Counts follow an AR(1) process, optionally modulated by
    the diurnal curve (rush hour raises the mean).
    """

    def __init__(
        self,
        fps: float,
        duration_ms: float,
        mean_objects: float,
        phi: float = 0.9,
        sigma: float = 0.4,
        diurnal: bool = False,
        seed: int = 0,
    ):
        if fps <= 0 or duration_ms <= 0:
            raise ValueError("fps and duration must be positive")
        gap = 1000.0 / fps
        n = int(duration_ms / gap)
        self.frame_times_ms = [i * gap for i in range(n)]
        base = ar1_series(mean_objects, n, phi=phi, sigma=sigma, seed=seed)
        if diurnal:
            self.object_counts = [
                c * diurnal_rate(1.0, t)
                for c, t in zip(base, self.frame_times_ms)
            ]
        else:
            self.object_counts = base

    def __len__(self) -> int:
        return len(self.frame_times_ms)

    def mean_fanout(self) -> float:
        if not self.object_counts:
            return 0.0
        return sum(self.object_counts) / len(self.object_counts)

    def autocorrelation(self, lag: int = 1) -> float:
        """Empirical lag-k autocorrelation of the object counts."""
        import numpy as np

        x = np.asarray(self.object_counts)
        if len(x) <= lag:
            return 0.0
        x = x - x.mean()
        denom = float((x * x).sum())
        if approx_zero(denom):
            return 0.0
        return float((x[:-lag] * x[lag:]).sum() / denom)
