"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core.profile import LinearProfile, TabulatedProfile
from repro.core.session import Session, SessionLoad


@pytest.fixture
def table2_profiles():
    """The paper's Table 2 batching profiles for models A, B, C."""
    return {
        "A": TabulatedProfile(name="A", points=((4, 50.0), (8, 75.0), (16, 100.0))),
        "B": TabulatedProfile(name="B", points=((4, 50.0), (8, 90.0), (16, 125.0))),
        "C": TabulatedProfile(name="C", points=((4, 60.0), (8, 95.0), (16, 125.0))),
    }


@pytest.fixture
def table2_loads(table2_profiles):
    """Section 4.1's residual workload: A=64 r/s, B=C=32 r/s."""
    return [
        SessionLoad(Session("A", 200.0), 64.0, table2_profiles["A"]),
        SessionLoad(Session("B", 250.0), 32.0, table2_profiles["B"]),
        SessionLoad(Session("C", 250.0), 32.0, table2_profiles["C"]),
    ]


def linear(alpha: float = 1.0, beta: float = 10.0, name: str = "m",
           max_batch: int = 64, **kw) -> LinearProfile:
    return LinearProfile(name=name, alpha=alpha, beta=beta,
                         max_batch=max_batch, **kw)


@pytest.fixture
def make_linear():
    return linear
