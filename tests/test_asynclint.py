"""Flow-aware async-hazard rules (repro.analysis.asynclint).

Each rule gets firing and clean cases, with the interprocedural rules
exercised across files (blocking reached through an imported helper,
through ``self`` dispatch, through a constructor-typed attribute).  The
two genuine bugs this pass found in the repo — the loadgen report write
inside the event loop and the ``HttpServer.close()`` stale-write race —
are pinned here as fixtures replicating the old code, so reintroducing
either pattern fails immediately.
"""

import textwrap
from pathlib import Path

from repro.analysis.asynclint import RULES, analyze_graph
from repro.analysis.callgraph import build_call_graph_from_paths


def findings_for(tree_files: dict[str, str], tmp_path: Path):
    for rel, source in tree_files.items():
        file = tmp_path / rel
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text(textwrap.dedent(source), encoding="utf-8")
    graph = build_call_graph_from_paths([tmp_path], root=tmp_path)
    return analyze_graph(graph)


def rules_of(findings):
    return {f.rule for f in findings}


class TestBlockingCallInAsync:
    def test_direct_blocking_call_fires(self, tmp_path):
        found = findings_for({"m.py": """
            import time

            async def handler():
                time.sleep(0.1)
        """}, tmp_path)
        assert rules_of(found) == {"blocking-call-in-async"}
        assert "time.sleep" in found[0].message

    def test_transitive_chain_through_imported_helper(self, tmp_path):
        found = findings_for({
            "util.py": """
                import time

                def backoff():
                    time.sleep(1)
            """,
            "m.py": """
                from util import backoff

                async def handler():
                    backoff()
            """,
        }, tmp_path)
        blocking = [
            f for f in found if f.rule == "blocking-call-in-async"
        ]
        assert len(blocking) == 1
        # Anchored at the chain's first edge inside the coroutine, and
        # the message names the path to the primitive.
        assert blocking[0].path.endswith("m.py")
        assert "handler -> backoff" in blocking[0].message
        assert "time.sleep" in blocking[0].message

    def test_chain_through_self_dispatch_and_attr_type(self, tmp_path):
        found = findings_for({"m.py": """
            class Store:
                def load(self, p):
                    return p.read_text()

            class Server:
                def __init__(self):
                    self.store = Store()

                async def handle(self):
                    return self.store.load("x")
        """}, tmp_path)
        blocking = [
            f for f in found if f.rule == "blocking-call-in-async"
        ]
        assert len(blocking) == 1
        assert "handle -> load" in blocking[0].message

    def test_simulator_run_loop_counts_as_blocking(self, tmp_path):
        found = findings_for({"m.py": """
            async def handler(sim):
                sim.run_until(1000.0)
        """}, tmp_path)
        assert rules_of(found) == {"blocking-call-in-async"}

    def test_asyncio_sleep_is_clean(self, tmp_path):
        found = findings_for({"m.py": """
            import asyncio

            async def handler():
                await asyncio.sleep(0.1)
        """}, tmp_path)
        assert found == []

    def test_blocking_in_sync_function_is_clean(self, tmp_path):
        found = findings_for({"m.py": """
            import time

            def warmup():
                time.sleep(1)
        """}, tmp_path)
        assert found == []

    def test_regression_loadgen_report_write(self, tmp_path):
        """The exact shape of the old ``_cmd_loadgen`` bug: a json report
        dumped via open() inside the driving coroutine."""
        found = findings_for({"m.py": """
            import json

            async def _run(report, report_json):
                with open(report_json, "w", encoding="utf-8") as fh:
                    json.dump(report, fh, indent=2)
                return 0
        """}, tmp_path)
        assert rules_of(found) == {"blocking-call-in-async"}
        assert "open" in found[0].message


class TestInterleavedStateMutation:
    def test_read_await_write_fires(self, tmp_path):
        found = findings_for({"m.py": """
            async def bump(self_like):
                pass

            class Counter:
                async def bump(self):
                    snapshot = self.count
                    await self.flush()
                    self.count = snapshot + 1
        """}, tmp_path)
        assert rules_of(found) == {"interleaved-state-mutation"}
        assert "self.count" in found[0].message

    def test_regression_http_close_stale_write(self, tmp_path):
        """The exact shape of the old ``HttpServer.close()`` race: the
        listener handle read before ``wait_closed`` and nulled after."""
        found = findings_for({"m.py": """
            class HttpServer:
                async def close(self):
                    if self._server is not None:
                        self._server.close()
                        await self._server.wait_closed()
                        self._server = None
        """}, tmp_path)
        assert "interleaved-state-mutation" in rules_of(found)
        assert "self._server" in [
            f.message.split(" ")[0] for f in found
            if f.rule == "interleaved-state-mutation"
        ][0]

    def test_reread_after_await_is_clean(self, tmp_path):
        found = findings_for({"m.py": """
            class Counter:
                async def bump(self):
                    await self.flush()
                    self.count = self.count + 1
        """}, tmp_path)
        assert found == []

    def test_augassign_after_await_is_clean(self, tmp_path):
        """``+=`` re-reads at the store, so it is atomic wrt the loop."""
        found = findings_for({"m.py": """
            class Counter:
                async def bump(self):
                    snapshot = self.count
                    await self.flush()
                    self.count += 1
        """}, tmp_path)
        assert found == []

    def test_augassign_with_awaiting_value_fires(self, tmp_path):
        """``self.x += await f()`` reads x, suspends, then stores."""
        found = findings_for({"m.py": """
            class Counter:
                async def bump(self):
                    self.count += await self.next_delta()
        """}, tmp_path)
        assert rules_of(found) == {"interleaved-state-mutation"}

    def test_write_before_await_is_clean(self, tmp_path):
        found = findings_for({"m.py": """
            class Server:
                async def close(self):
                    server, self._server = self._server, None
                    if server is not None:
                        await server.wait_closed()
        """}, tmp_path)
        assert found == []


class TestUnawaitedCoroutine:
    def test_discarded_project_coroutine_fires(self, tmp_path):
        found = findings_for({"m.py": """
            async def job():
                pass

            async def go():
                job()
        """}, tmp_path)
        assert rules_of(found) == {"unawaited-coroutine"}

    def test_known_asyncio_factory_fires(self, tmp_path):
        found = findings_for({"m.py": """
            import asyncio

            async def go():
                asyncio.sleep(1)
        """}, tmp_path)
        assert rules_of(found) == {"unawaited-coroutine"}

    def test_gather_arguments_are_clean(self, tmp_path):
        """Coroutines handed to gather() are consumed, not discarded."""
        found = findings_for({"m.py": """
            import asyncio

            async def job(i):
                pass

            async def go():
                await asyncio.gather(*(job(i) for i in range(3)))
        """}, tmp_path)
        assert found == []

    def test_retained_coroutine_is_clean(self, tmp_path):
        found = findings_for({"m.py": """
            async def job():
                pass

            async def go():
                handle = job()
                await handle
        """}, tmp_path)
        assert found == []


class TestOrphanTask:
    def test_discarded_create_task_fires(self, tmp_path):
        found = findings_for({"m.py": """
            import asyncio

            async def job():
                pass

            async def go(loop):
                loop.create_task(job())
        """}, tmp_path)
        assert rules_of(found) == {"orphan-task"}

    def test_retained_task_with_done_callback_is_clean(self, tmp_path):
        found = findings_for({"m.py": """
            import asyncio

            async def job():
                pass

            async def go(loop, tasks):
                task = loop.create_task(job())
                tasks.add(task)
                task.add_done_callback(tasks.discard)
        """}, tmp_path)
        assert found == []


class TestCpuBoundHandler:
    def test_unbounded_request_loop_in_serving_handler(self, tmp_path):
        found = findings_for({"serving/routes.py": """
            class Frontend:
                def _h_metrics(self, pending_requests):
                    total = 0
                    for request in pending_requests:
                        total += request.cost
                    return total
        """}, tmp_path)
        assert rules_of(found) == {"cpu-bound-handler"}

    def test_bounded_slice_is_clean(self, tmp_path):
        found = findings_for({"serving/routes.py": """
            class Frontend:
                def _h_metrics(self, pending_requests):
                    total = 0
                    for request in pending_requests[:64]:
                        total += request.cost
                    return total
        """}, tmp_path)
        assert found == []

    def test_same_loop_outside_serving_is_clean(self, tmp_path):
        found = findings_for({"cluster/routes.py": """
            class Frontend:
                def _h_metrics(self, pending_requests):
                    total = 0
                    for request in pending_requests:
                        total += request.cost
                    return total
        """}, tmp_path)
        assert found == []

    def test_non_handler_function_is_clean(self, tmp_path):
        found = findings_for({"serving/routes.py": """
            def summarize(pending_requests):
                total = 0
                for request in pending_requests:
                    total += request.cost
                return total
        """}, tmp_path)
        assert found == []


class TestRegistry:
    def test_every_rule_has_description(self):
        for slug, description in RULES.items():
            assert "-" in slug and len(description) > 10
