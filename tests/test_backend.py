"""Tests for the backend node (cluster/backend.py): GPU scheduler behavior."""

import pytest

from repro.cluster.backend import Backend, BackendSession
from repro.cluster.messages import Request
from repro.core.drop import EarlyDropPolicy, LazyDropPolicy
from repro.core.profile import LinearProfile
from repro.metrics.collector import MetricsCollector
from repro.simulation.simulator import Simulator


def spec(session_id="s", alpha=1.0, beta=5.0, slo=100.0, batch=8,
         duty=50.0, policy=None, pre_ms=0.0):
    profile = LinearProfile(name=session_id, alpha=alpha, beta=beta,
                            max_batch=64, pre_ms=pre_ms, cpu_workers=5)
    return BackendSession(
        session_id=session_id, profile=profile, slo_ms=slo,
        target_batch=batch, duty_cycle_ms=duty, policy=policy,
    )


def make_backend(sim=None, **kw):
    sim = sim or Simulator()
    collector = MetricsCollector()
    return sim, collector, Backend(sim, collector=collector, **kw)


def submit(sim, backend, session_id, at_ms, slo=100.0, results=None):
    def on_complete(req, t, ok):
        if results is not None:
            results.append(("done", req.request_id, t, ok))

    def on_drop(req, t):
        if results is not None:
            results.append(("drop", req.request_id, t))

    sim.schedule_at(at_ms, lambda: backend.enqueue(
        Request(session_id=session_id, arrival_ms=at_ms,
                deadline_ms=at_ms + slo,
                on_complete=on_complete, on_drop=on_drop)
    ))


class TestBasicExecution:
    def test_single_request_served(self):
        sim, coll, backend = make_backend()
        backend.set_schedule([spec()])
        results = []
        submit(sim, backend, "s", 10.0, results=results)
        sim.run()
        assert len(results) == 1
        kind, rid, t, ok = results[0]
        assert kind == "done" and ok
        assert t == pytest.approx(10.0 + 6.0)  # l(1) = 6

    def test_batch_forms_while_busy(self):
        sim, coll, backend = make_backend()
        backend.set_schedule([spec(beta=20.0)])
        results = []
        for t in (0.0, 1.0, 2.0, 3.0):
            submit(sim, backend, "s", t, results=results)
        sim.run()
        # First request executes alone (l(1)=21); the rest batch together.
        assert backend.batches_executed == 2
        assert all(r[0] == "done" for r in results)

    def test_misrouted_request_dropped(self):
        sim, coll, backend = make_backend()
        backend.set_schedule([spec("a")])
        results = []
        submit(sim, backend, "unknown", 5.0, results=results)
        sim.run()
        assert results == [("drop", results[0][1], 5.0)]

    def test_metrics_recorded(self):
        sim, coll, backend = make_backend()
        backend.set_schedule([spec()])
        submit(sim, backend, "s", 0.0)
        sim.run()
        assert coll.total == 1
        assert coll.ok_count == 1
        assert coll.gpu_busy_ms[0] > 0

    def test_utilization_accounting(self):
        sim, coll, backend = make_backend()
        backend.set_schedule([spec()])
        submit(sim, backend, "s", 0.0)
        sim.run()
        assert backend.busy_ms == pytest.approx(6.0)
        assert backend.utilization(60.0) == pytest.approx(0.1)


class TestCyclePacing:
    def test_round_robin_between_sessions(self):
        sim, coll, backend = make_backend(pacing="cycle")
        backend.set_schedule([
            spec("a", duty=20.0, batch=4),
            spec("b", duty=20.0, batch=4),
        ])
        results = []
        for t in range(0, 40, 5):
            submit(sim, backend, "a" if (t // 5) % 2 == 0 else "b",
                   float(t), results=results)
        sim.run()
        assert all(r[0] == "done" and r[3] for r in results)

    def test_duty_cycle_paces_execution(self):
        """A session with a long duty cycle does not re-run immediately."""
        sim, coll, backend = make_backend(pacing="cycle")
        backend.set_schedule([spec("a", duty=40.0, batch=4)])
        starts = []
        orig = backend._try_dispatch

        submit(sim, backend, "a", 0.0)
        submit(sim, backend, "a", 8.0)   # arrives after first batch started
        sim.run()
        # Two executions: at t=0 and not before duty 40 (queue not full).
        assert backend.batches_executed == 2
        recs = sorted(coll.records, key=lambda r: r.arrival_ms)
        assert recs[1].completion_ms >= 40.0

    def test_full_queue_overrides_pacing(self):
        sim, coll, backend = make_backend(pacing="cycle")
        backend.set_schedule([spec("a", duty=1000.0, batch=2, slo=3000.0)])
        for t in (0.0, 1.0, 2.0, 3.0):
            submit(sim, backend, "a", t, slo=3000.0)
        sim.run()
        # First arrival runs immediately (batch 1); the next two fill the
        # target and run without waiting out the 1000 ms duty cycle; the
        # last request alone must wait for the next cycle.
        assert backend.batches_executed == 3
        done = sorted(r.completion_ms for r in coll.records)
        assert done[2] < 500.0
        assert done[3] >= 1000.0


class TestGreedyPacing:
    def test_oldest_head_served_first(self):
        sim, coll, backend = make_backend(pacing="greedy")
        backend.set_schedule([
            spec("a", duty=0.0),
            spec("b", duty=0.0),
        ])
        order = []
        submit(sim, backend, "b", 0.0, results=order)
        submit(sim, backend, "a", 1.0, results=order)
        sim.run()
        assert order[0][0] == "done"
        # b arrived first -> served first.
        b_done = [r for r in order if r[0] == "done"]
        assert len(b_done) == 2


class TestInterference:
    def test_colocated_sessions_inflated(self):
        def run(interference):
            sim, coll, backend = make_backend(
                pacing="greedy", interference_factor=interference
            )
            backend.set_schedule([spec("a", duty=0.0), spec("b", duty=0.0)])
            submit(sim, backend, "a", 0.0)
            sim.run()
            return backend.busy_ms

        assert run(0.5) == pytest.approx(run(0.0) * 1.5)

    def test_single_session_unaffected(self):
        sim, coll, backend = make_backend(interference_factor=0.5)
        backend.set_schedule([spec("a")])
        submit(sim, backend, "a", 0.0)
        sim.run()
        assert backend.busy_ms == pytest.approx(6.0)


class TestOverlap:
    def test_overlap_off_occupies_longer(self):
        def run(overlap):
            sim, coll, backend = make_backend(overlap=overlap)
            backend.set_schedule([spec("a", pre_ms=10.0)])
            submit(sim, backend, "a", 0.0)
            sim.run()
            return backend.busy_ms

        assert run(False) > run(True)


class TestScheduleUpdates:
    def test_surviving_session_keeps_queue(self):
        sim, coll, backend = make_backend()
        backend.set_schedule([spec("a", duty=50.0)])
        results = []
        submit(sim, backend, "a", 0.0, results=results)
        # Replace schedule at t=1 while potentially in flight.
        sim.schedule_at(1.0, lambda: backend.set_schedule(
            [spec("a", duty=30.0), spec("b")]
        ))
        sim.run()
        assert any(r[0] == "done" for r in results)

    def test_removed_session_queue_dropped(self):
        sim, coll, backend = make_backend()
        backend.set_schedule([spec("a", beta=50.0), spec("b")])
        results = []
        # Two requests: one executes immediately, one queued.
        submit(sim, backend, "a", 0.0, results=results)
        submit(sim, backend, "a", 1.0, results=results)
        sim.schedule_at(2.0, lambda: backend.set_schedule([spec("b")]))
        sim.run()
        assert any(r[0] == "drop" for r in results)

    def test_empty_schedule_idles(self):
        sim, coll, backend = make_backend()
        backend.set_schedule([])
        submit(sim, backend, "a", 0.0)
        sim.run()
        assert backend.batches_executed == 0

    def test_pacing_validation(self):
        with pytest.raises(ValueError):
            Backend(Simulator(), pacing="chaotic")

    def test_target_batch_validation(self):
        with pytest.raises(ValueError):
            spec(batch=0)


class TestDeferredExecution:
    """Section 5's delay-at-lower-priority option (batch applications)."""

    def _run(self, defer):
        sim = Simulator()
        collector = MetricsCollector()
        backend = Backend(sim, collector=collector, defer_missed=defer)
        # beta large so a burst cannot all meet the tight SLO.
        backend.set_schedule([spec("a", alpha=1.0, beta=30.0, slo=40.0,
                                   batch=2, duty=0.0)])
        for t in (0.0, 1.0, 2.0, 3.0, 4.0, 5.0):
            submit(sim, backend, "a", t, slo=40.0)
        sim.run()
        return collector

    def test_drop_mode_sheds(self):
        coll = self._run(defer=False)
        assert coll.dropped_count > 0

    def test_defer_mode_serves_everything_late(self):
        coll = self._run(defer=True)
        assert coll.dropped_count == 0
        assert coll.total == 6
        assert coll.late_count > 0  # served, but past deadline

    def test_defer_does_not_starve_live_traffic(self):
        sim = Simulator()
        collector = MetricsCollector()
        backend = Backend(sim, collector=collector, defer_missed=True)
        backend.set_schedule([spec("a", alpha=1.0, beta=30.0, slo=40.0,
                                   batch=2, duty=0.0)])
        # A hopeless early burst, then well-spaced live traffic.
        for t in (0.0, 1.0, 2.0, 3.0):
            submit(sim, backend, "a", t, slo=40.0)
        for t in (200.0, 400.0, 600.0):
            submit(sim, backend, "a", t, slo=100.0)
        sim.run()
        live = [r for r in collector.records if r.arrival_ms >= 200.0]
        assert all(r.ok for r in live)


class TestExecutionTrace:
    def test_trace_disabled_by_default(self):
        sim, coll, backend = make_backend()
        backend.set_schedule([spec("a")])
        submit(sim, backend, "a", 0.0)
        sim.run()
        assert backend.trace == []

    def test_trace_records_spans(self):
        sim, coll, backend = make_backend()
        backend.trace_enabled = True
        backend.set_schedule([spec("a")])
        submit(sim, backend, "a", 0.0)
        submit(sim, backend, "a", 100.0)
        sim.run()
        assert len(backend.trace) == 2
        span = backend.trace[0]
        assert span.session_id == "a"
        assert span.batch == 1
        assert span.duration_ms == pytest.approx(6.0)
        assert not span.deferred

    def test_spans_never_overlap(self):
        sim, coll, backend = make_backend()
        backend.trace_enabled = True
        backend.set_schedule([spec("a", beta=20.0), spec("b", beta=20.0)])
        for t in range(0, 100, 7):
            submit(sim, backend, "a" if t % 2 else "b", float(t), slo=500.0)
        sim.run()
        spans = sorted(backend.trace, key=lambda s: s.start_ms)
        for s1, s2 in zip(spans, spans[1:]):
            assert s2.start_ms >= s1.end_ms - 1e-9

    def test_deferred_spans_flagged(self):
        sim = Simulator()
        coll = MetricsCollector()
        backend = Backend(sim, collector=coll, defer_missed=True)
        backend.trace_enabled = True
        backend.set_schedule([spec("a", alpha=1.0, beta=30.0, slo=40.0,
                                   batch=2, duty=0.0)])
        for t in (0.0, 1.0, 2.0, 3.0, 4.0, 5.0):
            submit(sim, backend, "a", t, slo=40.0)
        sim.run()
        assert any(s.deferred for s in backend.trace)


class TestModelLoading:
    """Section 2.2: newly placed models pay a PCIe load latency."""

    def test_first_batch_waits_for_load(self):
        sim, coll, backend = make_backend()
        s = spec("a", duty=0.0)
        s.load_ms = 200.0
        backend.set_schedule([s])
        submit(sim, backend, "a", 0.0, slo=500.0)
        sim.run()
        rec = coll.records[0]
        assert rec.completion_ms >= 200.0

    def test_resident_session_keeps_serving(self):
        sim, coll, backend = make_backend()
        backend.set_schedule([spec("a", duty=0.0)])
        submit(sim, backend, "a", 0.0)
        # Re-deploy with load_ms set: session already resident -> no delay.
        def redeploy():
            s = spec("a", duty=0.0)
            s.load_ms = 500.0
            backend.set_schedule([s])
        sim.schedule_at(50.0, redeploy)
        submit(sim, backend, "a", 60.0)
        sim.run()
        recs = sorted(coll.records, key=lambda r: r.arrival_ms)
        assert recs[1].completion_ms < 100.0

    def test_full_queue_does_not_bypass_load(self):
        sim, coll, backend = make_backend()
        s = spec("a", duty=0.0, batch=2)
        s.load_ms = 300.0
        backend.set_schedule([s])
        for t in (0.0, 1.0, 2.0, 3.0):
            submit(sim, backend, "a", t, slo=1000.0)
        sim.run()
        assert min(r.completion_ms for r in coll.records) >= 300.0

    def test_schedule_update_preserves_pending_load(self):
        """Regression: a schedule update must not reset a still-loading
        session's ready time -- the carried-over state used to keep the
        default -inf, letting batches run mid-PCIe-transfer."""
        sim, coll, backend = make_backend()
        s = spec("a", duty=0.0)
        s.load_ms = 200.0
        backend.set_schedule([s])
        submit(sim, backend, "a", 0.0, slo=500.0)
        # Re-install the same schedule while the model is still streaming.
        sim.schedule_at(50.0, lambda: backend.set_schedule([spec("a", duty=0.0)]))
        sim.run()
        assert coll.records[0].completion_ms >= 200.0

    def test_greedy_pacing_waits_for_load(self):
        """Regression: greedy (Clipper/TF-Serving) pacing must also wait
        for the model load; it used to execute on unloaded models."""
        sim, coll, backend = make_backend(pacing="greedy")
        s = spec("a", duty=0.0)
        s.load_ms = 200.0
        backend.set_schedule([s])
        submit(sim, backend, "a", 0.0, slo=500.0)
        sim.run()
        assert len(coll.records) == 1
        assert coll.records[0].completion_ms >= 200.0
