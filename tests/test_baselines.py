"""Tests for the baseline schedulers and system configurations."""

import pytest

from repro.baselines import (
    CLIPPER_INTERFERENCE,
    batch_oblivious_plan,
    clipper_config,
    tf_serving_config,
)
from repro.core.profile import LinearProfile
from repro.core.session import Session, SessionLoad
from repro.core.squishy import squishy_bin_packing


def load(name, slo, rate, alpha=1.0, beta=10.0):
    return SessionLoad(
        Session(name, slo), rate,
        LinearProfile(name=name, alpha=alpha, beta=beta, max_batch=64),
    )


class TestBatchObliviousPlan:
    def test_capacity_covers_demand(self):
        loads = [load("a", 200.0, 300.0), load("b", 150.0, 100.0)]
        plan = batch_oblivious_plan(loads)
        for l in loads:
            assert plan.capacity_rps(l.session_id) >= l.rate_rps * 0.95

    def test_spreads_over_given_cluster(self):
        loads = [load("a", 200.0, 50.0), load("b", 150.0, 50.0)]
        plan = batch_oblivious_plan(loads, num_gpus=8)
        assert plan.num_gpus == 8

    def test_share_proportional_to_demand(self):
        heavy = load("heavy", 200.0, 800.0)
        light = load("light", 200.0, 100.0)
        plan = batch_oblivious_plan([heavy, light], num_gpus=9)
        heavy_gpus = sum(
            1 for g in plan.gpus if "heavy@200ms" in g.session_ids()
        )
        light_gpus = sum(
            1 for g in plan.gpus if "light@200ms" in g.session_ids()
        )
        assert heavy_gpus > 3 * light_gpus

    def test_can_be_latency_infeasible(self):
        """The point of the baseline: co-location ignores latency
        interactions, so some plans violate SLOs that squishy would not."""
        loads = [load(f"s{i}", 120.0, 30.0, alpha=1.0, beta=25.0)
                 for i in range(6)]
        oblivious = batch_oblivious_plan(loads, num_gpus=2)
        squishy = squishy_bin_packing(loads)
        assert not squishy.validate()
        # Oblivious packs 6 solo-batch sessions into 2 GPUs: worst-case
        # latency (sum of co-resident batches + own) breaks the SLO.
        assert oblivious.validate()

    def test_infeasible_sessions_reported(self):
        bad = load("bad", 10.0, 5.0, alpha=10.0, beta=50.0)
        plan = batch_oblivious_plan([bad])
        assert [l.session_id for l in plan.infeasible] == ["bad@10ms"]

    def test_empty(self):
        assert batch_oblivious_plan([]).num_gpus == 0

    def test_zero_rate_ignored(self):
        plan = batch_oblivious_plan([load("a", 200.0, 0.0)])
        assert plan.num_gpus == 0


class TestBaselineConfigs:
    def test_clipper_profile(self):
        cfg = clipper_config(max_gpus=4)
        assert cfg.scheduler == "batch_oblivious"
        assert cfg.pacing == "greedy"
        assert cfg.drop_policy == "lazy"
        assert not cfg.overlap
        assert not cfg.prefix_batching
        assert not cfg.query_analysis
        assert cfg.interference_factor == CLIPPER_INTERFERENCE
        assert not cfg.paced
        assert cfg.max_gpus == 4

    def test_tf_serving_profile(self):
        cfg = tf_serving_config(max_gpus=4)
        assert cfg.scheduler == "batch_oblivious"
        assert cfg.pacing == "cycle"
        assert cfg.drop_policy == "lazy"
        assert not cfg.overlap
        assert cfg.interference_factor == 0.0
        assert not cfg.paced

    def test_configs_differ_in_interference(self):
        assert clipper_config().interference_factor > \
            tf_serving_config().interference_factor
