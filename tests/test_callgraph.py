"""Call-graph construction and resolution (repro.analysis.callgraph).

The whole-program lint pass is only as good as its edges, so these tests
pin the resolver's behaviors one by one: module symbol tables, import
binding (plain / aliased / from / relative / function-local), ``self.x()``
dispatch through the class layout and base chains, constructor-typed
locals and instance attributes, nested-scope lookup, async-ness, and the
awaited/discarded flags the async rules key on.
"""

import textwrap
from pathlib import Path

from repro.analysis.callgraph import (
    build_call_graph,
    build_call_graph_from_paths,
    module_name_for,
)


def graph_from(tree_files: dict[str, str], tmp_path: Path):
    """Write a fixture tree and build its call graph."""
    for rel, source in tree_files.items():
        file = tmp_path / rel
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text(textwrap.dedent(source), encoding="utf-8")
    return build_call_graph_from_paths([tmp_path], root=tmp_path)


def site_for(graph, qualname, terminal):
    fn = graph.functions[qualname]
    for site in fn.calls:
        if site.terminal == terminal:
            return site
    raise AssertionError(
        f"no call to {terminal!r} in {qualname}: "
        f"{[s.terminal for s in fn.calls]}"
    )


class TestModuleNames:
    def test_package_walking(self, tmp_path):
        pkg = tmp_path / "mypkg" / "sub"
        pkg.mkdir(parents=True)
        (tmp_path / "mypkg" / "__init__.py").write_text("")
        (pkg / "__init__.py").write_text("")
        (pkg / "mod.py").write_text("x = 1\n")
        assert module_name_for(pkg / "mod.py") == "mypkg.sub.mod"
        assert module_name_for(pkg / "__init__.py") == "mypkg.sub"

    def test_bare_tree_uses_root_relative_path(self, tmp_path):
        a = tmp_path / "serving" / "mod.py"
        a.parent.mkdir(parents=True)
        a.write_text("x = 1\n")
        assert module_name_for(a, root=tmp_path) == "serving.mod"


class TestSymbolTable:
    def test_functions_classes_and_async_flags(self, tmp_path):
        graph = graph_from({"m.py": """
            def helper():
                pass

            async def coro():
                pass

            class Box:
                def get(self):
                    pass

                async def put(self):
                    pass
        """}, tmp_path)
        assert graph.functions["m.helper"].is_async is False
        assert graph.functions["m.coro"].is_async is True
        assert graph.functions["m.Box.get"].is_async is False
        assert graph.functions["m.Box.put"].is_async is True
        assert graph.classes["m.Box"].methods["put"] == "m.Box.put"

    def test_conditionally_defined_functions_are_collected(self, tmp_path):
        graph = graph_from({"m.py": """
            try:
                def fast():
                    pass
            except ImportError:
                def fast():
                    pass
        """}, tmp_path)
        assert "m.fast" in graph.functions


class TestCallResolution:
    def test_bare_name_resolves_to_module_function(self, tmp_path):
        graph = graph_from({"m.py": """
            def helper():
                pass

            def caller():
                helper()
        """}, tmp_path)
        assert site_for(graph, "m.caller", "helper").resolved == "m.helper"

    def test_self_dispatch_through_base_class(self, tmp_path):
        graph = graph_from({"m.py": """
            class Base:
                def shared(self):
                    pass

            class Child(Base):
                def go(self):
                    self.shared()
        """}, tmp_path)
        assert (
            site_for(graph, "m.Child.go", "shared").resolved
            == "m.Base.shared"
        )

    def test_from_import_resolves_cross_module(self, tmp_path):
        graph = graph_from({
            "util.py": """
                def work():
                    pass
            """,
            "caller.py": """
                from util import work

                def go():
                    work()
            """,
        }, tmp_path)
        assert site_for(graph, "caller.go", "work").resolved == "util.work"

    def test_relative_and_function_local_imports(self, tmp_path):
        graph = graph_from({
            "pkg/__init__.py": "",
            "pkg/util.py": """
                def deep():
                    pass
            """,
            "pkg/sub/__init__.py": "",
            "pkg/sub/mod.py": """
                def go():
                    from ..util import deep
                    deep()
            """,
        }, tmp_path)
        assert (
            site_for(graph, "pkg.sub.mod.go", "deep").resolved
            == "pkg.util.deep"
        )

    def test_import_alias_dotted_call(self, tmp_path):
        graph = graph_from({
            "pkg/__init__.py": "",
            "pkg/util.py": """
                def work():
                    pass
            """,
            "main.py": """
                import pkg.util as u

                def go():
                    u.work()
            """,
        }, tmp_path)
        assert site_for(graph, "main.go", "work").resolved == "pkg.util.work"

    def test_external_call_gets_canonical_name(self, tmp_path):
        graph = graph_from({"m.py": """
            import time
            from time import sleep as zzz

            def a():
                time.sleep(1)

            def b():
                zzz(1)
        """}, tmp_path)
        assert site_for(graph, "m.a", "sleep").external == "time.sleep"
        assert site_for(graph, "m.b", "zzz").external == "time.sleep"

    def test_nested_def_resolves_through_lexical_scope(self, tmp_path):
        graph = graph_from({"m.py": """
            def outer():
                def inner():
                    pass
                inner()
        """}, tmp_path)
        assert (
            site_for(graph, "m.outer", "inner").resolved
            == "m.outer.inner"
        )

    def test_constructor_typed_local(self, tmp_path):
        graph = graph_from({"m.py": """
            class Server:
                async def start(self):
                    pass

            def go():
                server = Server()
                server.start()
        """}, tmp_path)
        assert (
            site_for(graph, "m.go", "start").resolved == "m.Server.start"
        )

    def test_constructor_typed_instance_attr(self, tmp_path):
        graph = graph_from({"m.py": """
            class Http:
                async def serve(self):
                    pass

            class Front:
                def __init__(self):
                    self._http = Http()

                async def start(self):
                    await self._http.serve()
        """}, tmp_path)
        site = site_for(graph, "m.Front.start", "serve")
        assert site.resolved == "m.Http.serve"
        assert site.awaited is True

    def test_class_instantiation_resolves_to_init(self, tmp_path):
        graph = graph_from({"m.py": """
            class Thing:
                def __init__(self):
                    pass

            def go():
                Thing()
        """}, tmp_path)
        assert (
            site_for(graph, "m.go", "Thing").resolved == "m.Thing.__init__"
        )

    def test_unresolvable_call_keeps_raw_and_terminal(self, tmp_path):
        graph = graph_from({"m.py": """
            def go(events):
                events.run_until(10)
        """}, tmp_path)
        site = site_for(graph, "m.go", "run_until")
        assert site.resolved is None and site.external is None
        assert site.raw == "events.run_until"


class TestCallSiteFlags:
    def test_awaited_and_discarded_flags(self, tmp_path):
        graph = graph_from({"m.py": """
            async def coro():
                pass

            async def go():
                await coro()     # awaited, not discarded
                coro()           # bare statement: discarded
                x = coro()       # kept: not discarded
        """}, tmp_path)
        sites = [
            s for s in graph.functions["m.go"].calls if s.terminal == "coro"
        ]
        assert [(s.awaited, s.discarded) for s in sites] == [
            (True, False), (False, True), (False, False),
        ]

    def test_resolved_callees_are_deduped_in_order(self, tmp_path):
        graph = graph_from({"m.py": """
            def a():
                pass

            def b():
                pass

            def go():
                a(); b(); a()
        """}, tmp_path)
        assert graph.resolved_callees("m.go") == ["m.a", "m.b"]


class TestRealPackage:
    def test_repro_package_builds_and_resolves_serving_edges(self):
        import repro

        package_root = Path(repro.__file__).resolve().parent
        graph = build_call_graph_from_paths([package_root])
        # The serving plane's constructor-typed attribute edge: the
        # NexusServer frontend resolving into HttpServer.serve.
        start = graph.functions["repro.serving.server.NexusServer.start"]
        serve_sites = [s for s in start.calls if s.terminal == "serve"]
        assert serve_sites and serve_sites[0].resolved == (
            "repro.serving.http.HttpServer.serve"
        )
        assert graph.functions[
            "repro.serving.http.HttpServer.serve"
        ].is_async
