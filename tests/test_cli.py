"""Tests for the command-line interface."""

import pytest

from repro.cli import _EXPERIMENTS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_requires_known_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig99"])

    def test_all_experiments_registered(self):
        # Every CLI-runnable experiment module must import and expose run().
        import importlib

        for name in _EXPERIMENTS:
            module = importlib.import_module(f"repro.experiments.{name}")
            assert callable(module.run)


class TestCommands:
    def test_experiments_lists(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "fig10" in out and "table1" in out

    def test_run_table1(self, capsys):
        assert main(["run", "table1"]) == 0
        out = capsys.readouterr().out
        assert "resnet50" in out and "darknet53" in out

    def test_run_fig2(self, capsys):
        assert main(["run", "fig2"]) == 0
        out = capsys.readouterr().out
        assert "A+B" in out

    def test_models(self, capsys):
        assert main(["models"]) == 0
        out = capsys.readouterr().out
        assert "mobilenet_v1" in out and "gflops" in out

    def test_profile(self, capsys):
        assert main(["profile", "resnet50", "--batches", "1,8"]) == 0
        out = capsys.readouterr().out
        assert "alpha" in out and "throughput_rps" in out

    def test_profile_specialized_model(self, capsys):
        assert main(["profile", "resnet50@task:40"]) == 0

    def test_plan(self, capsys):
        assert main(["plan", "resnet50:100:300", "googlenet:150:100"]) == 0
        out = capsys.readouterr().out
        assert "GPUs" in out and "resnet50" in out

    def test_plan_exact(self, capsys):
        assert main(["plan", "resnet50:100:50", "--exact"]) == 0
        out = capsys.readouterr().out
        assert "exact optimum" in out

    def test_plan_bad_spec(self, capsys):
        assert main(["plan", "resnet50-oops"]) == 2
        assert "bad session spec" in capsys.readouterr().err

    def test_plan_infeasible_session_reported(self, capsys):
        assert main(["plan", "darknet53:5:10"]) == 0
        assert "INFEASIBLE" in capsys.readouterr().out


class TestObservabilityFlags:
    def test_help_lists_trace_flags(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--help"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert "--trace-out" in out and "--metrics-out" in out
        assert "--trace-csv" in out

    def test_traced_run_exports_artifacts(self, tmp_path, capsys):
        """A traced experiment run produces parseable Chrome-trace JSON
        plus a Prometheus snapshot (the README quickstart, in miniature)."""
        import json

        trace = tmp_path / "util.trace.json"
        metrics = tmp_path / "util.metrics.txt"
        assert main([
            "--trace-out", str(trace), "--metrics-out", str(metrics),
            "run", "utilization", "--quick",
        ]) == 0
        doc = json.loads(trace.read_text())
        assert doc["traceEvents"]
        phases = {te["ph"] for te in doc["traceEvents"]}
        assert "X" in phases and "M" in phases
        text = metrics.read_text()
        assert "nexus_requests_total" in text
        assert "nexus_gpu_occupancy" in text
        err = capsys.readouterr().err
        assert "trace:" in err and "metrics snapshot" in err


class TestQuickRuns:
    def test_run_fig5_quick(self, capsys):
        assert main(["run", "fig5", "--quick"]) == 0
        out = capsys.readouterr().out
        assert "poisson" in out

    def test_run_fig15(self, capsys):
        assert main(["run", "fig15"]) == 0
        out = capsys.readouterr().out
        assert "pb_gain" in out

    def test_run_ilp_gap_quick(self, capsys):
        assert main(["run", "ilp_gap", "--quick"]) == 0
        assert "mean_gap" in capsys.readouterr().out

    def test_oracle_validation_quick(self, capsys):
        assert main(["oracle-validation", "--quick", "--duration",
                     "8000"]) == 0
        out = capsys.readouterr().out
        assert "poisson" in out
        assert "p99_err_pct" in out
