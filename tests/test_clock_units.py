"""Clock-unit regression tests: the sim-vs-wall bugfix sweep.

The live serving plane runs the exact cluster modules that the simulator
drives, but on wall-clock timers -- which land with float jitter and can
fire late.  These tests pin the audit fixes; each one fails on the
pre-fix code:

- ``HeartbeatMonitor`` must not declare a backend dead when a lease is
  stale by exactly ``lease_ms`` plus float-accumulation jitter (the old
  raw ``>`` comparison did, one ulp over the boundary).
- ``Backend._on_batch_done`` must judge SLO verdicts and stamp
  completion times at the timer's *actual* fire time, not the completion
  instant the batch was scheduled for (identical under the simulator,
  different under a lagging wall clock).

The retry-budget companion fix (a backoff that would land past the
deadline drops immediately) is pinned in
``test_faults.py::TestRetryPolicy``.
"""

from __future__ import annotations

import math

from repro.cluster.backend import Backend, BackendSession
from repro.cluster.frontend import RoutingTable
from repro.cluster.global_scheduler import BackendPool, HeartbeatMonitor
from repro.cluster.messages import Request
from repro.core.profile import LinearProfile
from repro.metrics.collector import MetricsCollector
from repro.simulation.simulator import Simulator


class TestHeartbeatLeaseBoundary:
    """Satellite fix: lease expiry uses floatcmp.definitely_gt."""

    HEARTBEAT_MS = 33.1  # not exactly representable in binary
    LEASE_MS = 99.3      # == 3 heartbeats, mathematically

    def _monitor(self, sim):
        routing = RoutingTable()
        pool = BackendPool(sim, routing, collector=MetricsCollector())
        pool.backends.append(Backend(sim, gpu_id=0))
        declared = []
        monitor = HeartbeatMonitor(
            sim, pool,
            heartbeat_ms=self.HEARTBEAT_MS, lease_ms=self.LEASE_MS,
            on_failure=lambda idx, t: declared.append((idx, t)),
        )
        return pool, monitor, declared

    def test_float_jitter_at_the_boundary_keeps_the_lease(self):
        # Premise: three accumulated heartbeats land one ulp *past* the
        # lease, so the old raw ``now - last > lease_ms`` fired exactly
        # at the boundary sweep.
        t3 = self.HEARTBEAT_MS + self.HEARTBEAT_MS + self.HEARTBEAT_MS
        assert t3 > self.LEASE_MS and math.isclose(t3, self.LEASE_MS)

        sim = Simulator()
        pool, monitor, declared = self._monitor(sim)
        monitor.start()  # sweep at t=0 renews the lease
        sim.schedule_at(1.0, lambda: pool.backends[0].fail())
        sim.run_until(500.0)

        assert declared, "a definitely-stale lease must still declare"
        declared_at = declared[0][1]
        # The jitter sweep (lease + one ulp of staleness) must NOT have
        # declared; the next sweep (a full heartbeat past expiry) does.
        assert not math.isclose(declared_at, self.LEASE_MS), (
            f"declared at the float-jitter boundary sweep ({declared_at})"
        )
        assert declared_at >= self.LEASE_MS + self.HEARTBEAT_MS * 0.5
        assert monitor.suspected == {0}

    def test_clearly_stale_lease_still_declares_within_the_bound(self):
        sim = Simulator()
        pool, monitor, declared = self._monitor(sim)
        monitor.start()
        crash_ms = 1.0
        sim.schedule_at(crash_ms, lambda: pool.backends[0].fail())
        sim.run_until(500.0)
        # Class invariant from the docstring: declaration lands within
        # lease_ms + 2 * heartbeat_ms of the crash, never before the
        # lease has fully expired.
        latency = declared[0][1] - crash_ms
        assert self.LEASE_MS - self.HEARTBEAT_MS <= latency
        assert latency <= self.LEASE_MS + 2 * self.HEARTBEAT_MS


class _LateTimer:
    def __init__(self):
        self.cancelled = False

    def cancel(self):
        self.cancelled = True


class _LateClock:
    """EventSource stand-in whose timers the test fires by hand.

    A wall clock gives no guarantee that a timer armed for ``now +
    delay`` fires at that instant -- under load it lands late.  This
    stub lets a test reproduce that: schedule records the requested fire
    time, and the test invokes the callback at whatever (later) ``now``
    it chooses.
    """

    def __init__(self):
        self.now = 0.0
        self.pending = []  # (requested_ms, timer, fn)

    def schedule(self, delay_ms, fn, priority=0):
        timer = _LateTimer()
        self.pending.append((self.now + delay_ms, timer, fn))
        return timer

    def schedule_at(self, when_ms, fn, priority=0):
        timer = _LateTimer()
        self.pending.append((when_ms, timer, fn))
        return timer

    def fire_next(self, at_ms):
        """Fire the oldest pending timer at ``at_ms`` (possibly late)."""
        requested_ms, timer, fn = self.pending.pop(0)
        assert at_ms >= requested_ms, "cannot fire before the armed time"
        self.now = at_ms
        if not timer.cancelled:
            fn()
        return requested_ms


class TestBatchDoneUsesFireTime:
    """Satellite fix: SLO verdicts are judged when the timer fires."""

    def _backend(self, clock):
        backend = Backend(clock, gpu_id=0)
        profile = LinearProfile(name="m", alpha=1.0, beta=4.0, max_batch=8)
        backend.set_schedule([BackendSession(
            session_id="s", profile=profile, slo_ms=20.0,
            target_batch=1, duty_cycle_ms=5.0,
        )])
        return backend

    def test_late_firing_timer_marks_the_batch_late(self):
        clock = _LateClock()
        backend = self._backend(clock)
        outcomes = []
        backend.enqueue(Request(
            session_id="s", arrival_ms=0.0, deadline_ms=20.0,
            on_complete=lambda req, t, ok: outcomes.append((t, ok)),
        ))
        # The batch was scheduled to complete at exec_ms = 5.0 -- well
        # inside the deadline -- but the timer lands at 25.0, past it.
        requested = clock.fire_next(at_ms=25.0)
        assert requested == 5.0
        # Old code judged against the scheduled completion (5.0 <= 20.0
        # -> ok) and stamped t=5.0; the fix uses the fire time.
        assert outcomes == [(25.0, False)]

    def test_on_time_timer_completes_ok(self):
        clock = _LateClock()
        backend = self._backend(clock)
        outcomes = []
        backend.enqueue(Request(
            session_id="s", arrival_ms=0.0, deadline_ms=20.0,
            on_complete=lambda req, t, ok: outcomes.append((t, ok)),
        ))
        clock.fire_next(at_ms=5.0)
        assert outcomes == [(5.0, True)]
