"""Integration tests: the full NexusCluster pipeline end to end."""

import pytest

from repro.baselines import clipper_config, tf_serving_config
from repro.cluster.nexus import AppSpec, ClusterConfig, NexusCluster
from repro.core.query import Query, QueryStage
from repro.models.profiler import profile
from repro.workloads.apps import game_queries, traffic_query
from repro.workloads.arrivals import zipf_rates


def simple_cluster(rate=100.0, **config_kw) -> NexusCluster:
    cfg = ClusterConfig(device="gtx1080ti", max_gpus=8, **config_kw)
    cluster = NexusCluster(cfg)
    cluster.add_query(traffic_query(cfg.device), rate_rps=rate)
    return cluster


class TestPlanning:
    def test_plan_covers_demand(self):
        cluster = simple_cluster(rate=100.0)
        plan = cluster.plan()
        assert plan.num_gpus >= 1
        assert not plan.validate()
        for load in cluster._session_loads:
            assert plan.capacity_rps(load.session_id) >= load.rate_rps * 0.999

    def test_expand_fills_fixed_cluster(self):
        cluster = simple_cluster(rate=50.0)
        plan = cluster.plan()
        assert plan.num_gpus == 8  # expand_to_cluster default

    def test_no_expansion_when_disabled(self):
        cluster = simple_cluster(rate=50.0, expand_to_cluster=False)
        assert cluster.plan().num_gpus < 8

    def test_qa_vs_even_split_budgets(self):
        qa = simple_cluster(rate=100.0)
        qa.plan()
        even = simple_cluster(rate=100.0, query_analysis=False)
        even.plan()
        # Even split gives every stage SLO/depth; QA adapts.
        assert even._splits["traffic0"]["ssd"] == pytest.approx(200.0)
        assert qa._splits["traffic0"]["ssd"] != pytest.approx(200.0)

    def test_prefix_fusion_creates_aliases(self):
        cfg = ClusterConfig(device="gtx1080ti", max_gpus=8)
        cluster = NexusCluster(cfg)
        for q, r in zip(game_queries(cfg.device, 4), zipf_rates(100, 4)):
            cluster.add_query(q, rate_rps=r)
        cluster.plan()
        assert len(cluster._aliases) == 8  # 4 icons + 4 digit sessions
        fused_ids = set(cluster._aliases.values())
        assert len(fused_ids) == 2  # one resnet group, one lenet group

    def test_prefix_fusion_disabled(self):
        cfg = ClusterConfig(device="gtx1080ti", max_gpus=8,
                            prefix_batching=False)
        cluster = NexusCluster(cfg)
        for q, r in zip(game_queries(cfg.device, 4), zipf_rates(100, 4)):
            cluster.add_query(q, rate_rps=r)
        cluster.plan()
        assert cluster._aliases == {}

    def test_unknown_scheduler_rejected(self):
        cluster = simple_cluster(scheduler="magic")
        with pytest.raises(ValueError):
            cluster.plan()


class TestServing:
    def test_underload_serves_everything(self):
        res = simple_cluster(rate=80.0).run(8_000.0, 1_000.0)
        assert res.good_rate > 0.99
        assert res.query_metrics.total > 400

    def test_massive_overload_fails_gracefully(self):
        cluster = simple_cluster(rate=50.0, expand_to_cluster=False)
        # Offer 40x the planned rate: drops, not crashes.
        cluster.apps[0] = AppSpec(cluster.apps[0].query, 50.0)
        cluster.apps[0].rate_rps = 50.0
        res = cluster.run(5_000.0)
        assert res.query_metrics.total > 0

    def test_determinism(self):
        a = simple_cluster(rate=150.0, seed=3).run(6_000.0, 1_000.0)
        b = simple_cluster(rate=150.0, seed=3).run(6_000.0, 1_000.0)
        assert a.good_rate == b.good_rate
        assert a.query_metrics.total == b.query_metrics.total

    def test_seed_changes_fanout_sampling(self):
        a = simple_cluster(rate=150.0, seed=3).run(6_000.0, 1_000.0)
        b = simple_cluster(rate=150.0, seed=4).run(6_000.0, 1_000.0)
        assert (a.invocation_metrics.total != b.invocation_metrics.total
                or a.good_rate != b.good_rate)

    def test_warmup_excluded(self):
        res = simple_cluster(rate=100.0).run(8_000.0, warmup_ms=4_000.0)
        assert all(r.arrival_ms >= 4_000.0
                   for r in res.query_metrics.records)

    def test_poisson_arrivals_supported(self):
        cfg = ClusterConfig(device="gtx1080ti", max_gpus=8)
        cluster = NexusCluster(cfg)
        cluster.add_query(traffic_query(cfg.device), rate_rps=100.0,
                          arrival="poisson")
        res = cluster.run(8_000.0, 1_000.0)
        assert res.good_rate > 0.9

    def test_empty_cluster_runs(self):
        cluster = NexusCluster(ClusterConfig(max_gpus=2))
        res = cluster.run(1_000.0)
        assert res.query_metrics.total == 0

    def test_traced_busy_time_matches_collector(self):
        """The trace's GPU busy intervals and the collector's utilization
        accounting are two views of the same event stream: per-GPU busy
        milliseconds must agree to within 1%."""
        from repro.observability import gpu_busy_ms

        res = simple_cluster(rate=120.0).run(6_000.0, trace=True)
        traced = gpu_busy_ms(res.trace)
        recorded = res.invocation_metrics.gpu_busy_ms
        assert set(traced) == {g for g, ms in recorded.items() if ms > 0}
        for gpu, ms in traced.items():
            assert ms == pytest.approx(recorded[gpu], rel=0.01)


class TestBaselineIntegration:
    def test_nexus_beats_baselines_on_game(self):
        """The headline ordering at a fixed rate (cheap spot check)."""
        def good_rate(cfg):
            cluster = NexusCluster(cfg)
            for q, r in zip(game_queries(cfg.device, 6),
                            zipf_rates(600.0, 6)):
                cluster.add_query(q, rate_rps=r)
            return cluster.run(6_000.0, 1_000.0).good_rate

        nexus = good_rate(ClusterConfig(device="gtx1080ti", max_gpus=8))
        clipper = good_rate(clipper_config(max_gpus=8))
        assert nexus > clipper

    def test_tf_serving_runs_clean_at_low_rate(self):
        cfg = tf_serving_config(max_gpus=8)
        cluster = NexusCluster(cfg)
        cluster.add_query(traffic_query(cfg.device), rate_rps=30.0)
        res = cluster.run(8_000.0, 1_000.0)
        assert res.good_rate > 0.95


class TestDynamicMode:
    def test_epochs_fire_and_adapt(self):
        cfg = ClusterConfig(
            device="gtx1080ti", max_gpus=16, dynamic=True,
            expand_to_cluster=False, epoch_ms=5_000.0,
        )
        cluster = NexusCluster(cfg)
        cluster.add_query(
            traffic_query(cfg.device), rate_rps=60.0,
            rate_fn=lambda t: 60.0 if t < 15_000.0 else 240.0,
        )
        res = cluster.run(30_000.0)
        assert res.epochs >= 4
        series = res.invocation_metrics.gpu_count_series(5_000.0, 30_000.0)
        assert max(series.values) > min(v for v in series.values if v > 0)


class TestDistributedFrontend:
    def test_multiple_frontends_serve_cleanly(self):
        res = simple_cluster(rate=120.0, num_frontends=4).run(8_000.0, 1_000.0)
        assert res.good_rate > 0.99
        assert res.query_metrics.total > 500

    def test_frontend_count_does_not_change_totals(self):
        one = simple_cluster(rate=100.0, num_frontends=1).run(6_000.0, 1_000.0)
        four = simple_cluster(rate=100.0, num_frontends=4).run(6_000.0, 1_000.0)
        assert one.query_metrics.total == four.query_metrics.total

    def test_dynamic_mode_aggregates_all_frontends(self):
        cfg = ClusterConfig(
            device="gtx1080ti", max_gpus=16, dynamic=True,
            expand_to_cluster=False, epoch_ms=5_000.0, num_frontends=3,
        )
        cluster = NexusCluster(cfg)
        cluster.add_query(traffic_query(cfg.device), rate_rps=100.0)
        res = cluster.run(20_000.0)
        # The control plane saw the full rate (not 1/3 of it), so the
        # deployment keeps serving well after the first re-plan.
        late = [r for r in res.query_metrics.records
                if r.arrival_ms > 10_000.0]
        good = sum(1 for r in late if r.ok) / max(len(late), 1)
        assert good > 0.95


class TestFindMaxRate:
    def test_scales_declared_rates(self):
        from repro.cluster.nexus import find_max_rate

        base = {"traffic0": 100.0}

        def factory(scale):
            cfg = ClusterConfig(device="gtx1080ti", max_gpus=8)
            cluster = NexusCluster(cfg)
            cluster.add_query(traffic_query(cfg.device),
                              rate_rps=base["traffic0"] * scale)
            return cluster

        rate, result = find_max_rate(
            factory, base, duration_ms=3_000.0, warmup_ms=500.0,
            iterations=3, lo_scale=0.1, hi_scale=4.0,
        )
        assert rate > 0
        assert result is not None

    def test_returns_zero_when_even_floor_fails(self):
        from repro.cluster.nexus import find_max_rate

        def factory(scale):
            cfg = ClusterConfig(device="gtx1080ti", max_gpus=1,
                                expand_to_cluster=False)
            cluster = NexusCluster(cfg)
            cluster.add_query(traffic_query(cfg.device), rate_rps=5_000.0)
            return cluster

        rate, _ = find_max_rate(factory, {"q": 5_000.0},
                                duration_ms=2_000.0, warmup_ms=500.0,
                                iterations=2, lo_scale=1.0)
        assert rate == 0.0


class TestModelLoadsAtClusterLevel:
    def test_static_deployment_absorbs_initial_loads(self):
        """Model loading delays the first batches, but a static plan's
        warmup absorbs it: steady-state goodput is unaffected."""
        res = simple_cluster(rate=100.0).run(8_000.0, warmup_ms=3_000.0)
        assert res.good_rate > 0.99
