"""Tests for fork-join (series-parallel) query planning (core/dag.py)."""

import math

import pytest

from repro.core.dag import Parallel, Series, SPStage, plan_sp, sp_from_edges
from repro.core.profile import LinearProfile
from repro.core.query import Query, QueryStage, plan_query


def stage(name, alpha=1.0, beta=10.0, mult=1.0, max_batch=128):
    return SPStage(
        name,
        LinearProfile(name=name, alpha=alpha, beta=beta, max_batch=max_batch),
        rate_multiplier=mult,
    )


class TestPlanSP:
    def test_single_stage_gets_whole_budget(self):
        plan = plan_sp(stage("x"), slo_ms=100.0, rate_rps=50.0)
        assert plan.budgets_ms["x"] == pytest.approx(100.0)
        assert plan.total_gpus > 0

    def test_series_budgets_sum_to_slo(self):
        expr = Series(parts=[stage("a"), stage("b"), stage("c")])
        plan = plan_sp(expr, slo_ms=300.0, rate_rps=100.0)
        total = sum(plan.budgets_ms.values())
        assert total <= 300.0 + 1e-9
        assert all(v > 0 for v in plan.budgets_ms.values())

    def test_parallel_branches_share_window(self):
        expr = Parallel(branches=[stage("left"), stage("right")])
        plan = plan_sp(expr, slo_ms=120.0, rate_rps=50.0)
        assert plan.budgets_ms["left"] == plan.budgets_ms["right"]
        assert plan.budgets_ms["left"] == pytest.approx(120.0)

    def test_fork_join_diamond(self):
        """a -> (b | c) -> d: both paths a+b+d and a+c+d fit the SLO."""
        expr = Series(parts=[
            stage("a"),
            Parallel(branches=[stage("b"), stage("c", alpha=2.0)]),
            stage("d"),
        ])
        plan = plan_sp(expr, slo_ms=400.0, rate_rps=100.0, epsilon_ms=10.0)
        for mid in ("b", "c"):
            path = (plan.budgets_ms["a"] + plan.budgets_ms[mid]
                    + plan.budgets_ms["d"])
            assert path <= 400.0 + 1e-9
        assert plan.budgets_ms["b"] == plan.budgets_ms["c"]

    def test_heavy_stage_gets_more_budget(self):
        expr = Series(parts=[stage("big", alpha=5.0, beta=30.0),
                             stage("small", alpha=0.1, beta=1.0)])
        plan = plan_sp(expr, slo_ms=300.0, rate_rps=100.0, epsilon_ms=10.0)
        assert plan.budgets_ms["big"] > plan.budgets_ms["small"]

    def test_infeasible_raises(self):
        expr = Series(parts=[stage("slow", alpha=50.0, beta=100.0)])
        with pytest.raises(ValueError):
            plan_sp(expr, slo_ms=50.0, rate_rps=10.0)

    def test_rate_multiplier_scales_cost(self):
        light = plan_sp(stage("x", mult=1.0), 100.0, 100.0)
        heavy = plan_sp(stage("x", mult=10.0), 100.0, 100.0)
        assert heavy.total_gpus == pytest.approx(10 * light.total_gpus)

    def test_matches_tree_dp_on_chain(self):
        """On a pure chain the SP planner and the tree DP agree on cost."""
        a = LinearProfile(name="a", alpha=1.0, beta=10.0, max_batch=128)
        b = LinearProfile(name="b", alpha=0.5, beta=5.0, max_batch=128)
        root = QueryStage("a", a)
        root.add_child(QueryStage("b", b, gamma=2.0))
        q = Query("q", root, 300.0)
        tree = plan_query(q, 100.0, epsilon_ms=5.0, min_stage_frac=0.0)

        expr = Series(parts=[
            SPStage("a", a, 1.0), SPStage("b", b, 2.0),
        ])
        sp = plan_sp(expr, 300.0, 100.0, epsilon_ms=5.0)
        assert sp.total_gpus == pytest.approx(tree.total_gpus, rel=0.02)

    def test_invalid_nodes_rejected(self):
        with pytest.raises(ValueError):
            Series(parts=[])
        with pytest.raises(ValueError):
            Parallel(branches=[stage("x")])
        with pytest.raises(TypeError):
            plan_sp("not-a-node", 100.0, 10.0)
        with pytest.raises(ValueError):
            plan_sp(stage("x"), -5.0, 10.0)


class TestSpFromEdges:
    def _stages(self, names):
        return {n: stage(n) for n in names}

    def test_chain(self):
        stages = self._stages("abc")
        expr = sp_from_edges(stages, [("a", "b"), ("b", "c")])
        assert isinstance(expr, Series)
        plan = plan_sp(expr, 300.0, 50.0)
        assert set(plan.budgets_ms) == {"a", "b", "c"}

    def test_diamond(self):
        stages = self._stages("abcd")
        expr = sp_from_edges(
            stages,
            [("a", "b"), ("a", "c"), ("b", "d"), ("c", "d")],
        )
        plan = plan_sp(expr, 400.0, 50.0, epsilon_ms=10.0)
        assert set(plan.budgets_ms) == {"a", "b", "c", "d"}
        assert plan.budgets_ms["b"] == plan.budgets_ms["c"]

    def test_nested_fork_join(self):
        stages = self._stages("abcdefg")
        # a -> (b -> (c|d) -> e | f) -> g
        edges = [("a", "b"), ("b", "c"), ("b", "d"), ("c", "e"),
                 ("d", "e"), ("a", "f"), ("e", "g"), ("f", "g")]
        expr = sp_from_edges(stages, edges)
        plan = plan_sp(expr, 500.0, 50.0, epsilon_ms=20.0)
        assert set(plan.budgets_ms) == set("abcdefg")
        # Inner parallel pair shares a window.
        assert plan.budgets_ms["c"] == plan.budgets_ms["d"]

    def test_multiple_sources_rejected(self):
        stages = self._stages("abc")
        with pytest.raises(ValueError):
            sp_from_edges(stages, [("a", "c"), ("b", "c")])

    def test_unknown_stage_rejected(self):
        stages = self._stages("ab")
        with pytest.raises(ValueError):
            sp_from_edges(stages, [("a", "zz")])

    def test_non_reconverging_fork_rejected(self):
        # a forks to b and c; b and c never join (two sinks).
        stages = self._stages("abc")
        with pytest.raises(ValueError):
            sp_from_edges(stages, [("a", "b"), ("a", "c")])
