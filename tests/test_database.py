"""Tests for the model database (management plane, section 5)."""

import pytest

from repro.core.profile import TabulatedProfile
from repro.models.database import ModelDatabase
from repro.models.specialize import make_variants
from repro.models.zoo import get_model


@pytest.fixture
def db():
    return ModelDatabase(devices=["gtx1080ti", "k80"])


class TestIngest:
    def test_by_zoo_name(self, db):
        entry = db.ingest("resnet50")
        assert "resnet50" in db
        assert entry.graph.total_flops() > 0

    def test_profiles_all_devices(self, db):
        entry = db.ingest("googlenet")
        assert set(entry.profiles) == {"gtx1080ti", "k80"}
        assert entry.profile("k80").latency(1) > \
            entry.profile("gtx1080ti").latency(1)

    def test_supplied_profile_used(self, db):
        measured = TabulatedProfile(name="measured",
                                    points=((4, 40.0), (16, 100.0)))
        entry = db.ingest("lenet5", profiles={"gtx1080ti": measured})
        assert entry.profile("gtx1080ti") is measured
        # Uncovered devices still get analytic profiles.
        assert entry.profile("k80").latency(1) > 0

    def test_duplicate_rejected(self, db):
        db.ingest("lenet5")
        with pytest.raises(ValueError):
            db.ingest("lenet5")

    def test_custom_id(self, db):
        db.ingest("lenet5", model_id="digit-reader")
        assert "digit-reader" in db
        assert db.get("digit-reader").graph.name.startswith("lenet5")

    def test_unknown_lookup(self, db):
        with pytest.raises(KeyError):
            db.get("missing")
        with pytest.raises(KeyError):
            db.profile("missing", "k80")

    def test_unknown_device_profile(self, db):
        db.ingest("lenet5")
        with pytest.raises(KeyError):
            db.profile("lenet5", "v100")

    def test_remove(self, db):
        db.ingest("lenet5")
        db.remove("lenet5")
        assert "lenet5" not in db
        with pytest.raises(KeyError):
            db.remove("lenet5")


class TestPrefixIndex:
    def test_variants_linked_on_upload(self, db):
        base = get_model("resnet50")
        for v in make_variants(base, 3):
            db.ingest(v)
        entry = db.get(f"{base.name}@task0")
        assert len(entry.prefix_peers) == 2

    def test_unrelated_models_not_linked(self, db):
        db.ingest("lenet5")
        db.ingest("googlenet")
        assert db.get("lenet5").prefix_peers == {}

    def test_prefix_family(self, db):
        base = get_model("resnet50")
        for v in make_variants(base, 3):
            db.ingest(v)
        db.ingest("lenet5")
        family = db.prefix_family(f"{base.name}@task1")
        assert len(family) == 3
        assert "lenet5" not in family

    def test_prefix_groups_partition(self, db):
        base = get_model("resnet50")
        for v in make_variants(base, 3):
            db.ingest(v)
        db.ingest("lenet5")
        db.ingest("googlenet")
        groups = db.prefix_groups()
        sizes = sorted(len(g) for g in groups)
        assert sizes == [1, 1, 3]
        flat = [m for g in groups for m in g]
        assert sorted(flat) == db.model_ids()

    def test_remove_unlinks_peers(self, db):
        base = get_model("resnet50")
        for v in make_variants(base, 2):
            db.ingest(v)
        db.remove(f"{base.name}@task0")
        assert db.get(f"{base.name}@task1").prefix_peers == {}

    def test_fused_profiles(self, db):
        base = get_model("resnet50")
        variants = make_variants(base, 3)
        for v in variants:
            db.ingest(v)
        prefix, suffixes, plen = db.fused_profiles(
            [v.name for v in variants], "gtx1080ti"
        )
        assert len(suffixes) == 3
        assert plen > 100

    def test_min_shared_frac_validation(self):
        with pytest.raises(ValueError):
            ModelDatabase(min_shared_frac=1.5)


class TestSummary:
    def test_summary_rows(self, db):
        db.ingest("lenet5")
        db.ingest("resnet50")
        rows = {r["model_id"]: r for r in db.summary()}
        assert rows["resnet50"]["gflops"] > rows["lenet5"]["gflops"]
        assert rows["resnet50"]["devices"] == ["gtx1080ti", "k80"]
