"""Docs stay true: CLI commands shown in the documentation must parse
against the real argparse surface, and intra-repo links must resolve.

Every fenced ``python -m repro ...`` command line in README.md and
docs/*.md is shlex-split and fed to :func:`repro.cli.build_parser` --
a renamed flag or subcommand breaks this suite before it breaks a
reader. Module-style invocations (``python -m repro.experiments.fig2``)
are exercised elsewhere and only checked for module existence here.
"""

import importlib.util
import re
import shlex
from pathlib import Path

import pytest

from repro.cli import build_parser

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")]
)

_FENCE = re.compile(r"```(?:\w*)\n(.*?)```", re.DOTALL)
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def _fenced_commands(text):
    """``python -m repro`` CLI lines inside fenced blocks, with
    backslash continuations joined and trailing comments stripped."""
    for block in _FENCE.findall(text):
        joined = block.replace("\\\n", " ")
        for line in joined.splitlines():
            line = line.strip()
            if line.startswith("python -m repro ") or line == "python -m repro":
                yield line


def _module_invocations(text):
    """``python -m repro.<module>`` lines (module style, not the CLI)."""
    for block in _FENCE.findall(text):
        for line in block.replace("\\\n", " ").splitlines():
            match = re.match(r"\s*python -m (repro\.[\w.]+)", line)
            if match:
                yield match.group(1)


def doc_ids(paths):
    return [str(p.relative_to(REPO_ROOT)) for p in paths]


@pytest.mark.parametrize("doc", DOC_FILES, ids=doc_ids(DOC_FILES))
class TestDocumentedCommands:
    def test_cli_commands_parse(self, doc):
        parser = build_parser()
        commands = list(_fenced_commands(doc.read_text()))
        for command in commands:
            argv = shlex.split(command, comments=True)[2:]  # python -m repro
            argv = [a for a in argv if a != "repro"]
            try:
                parser.parse_args(argv)
            except SystemExit as exc:
                if exc.code not in (0, None):
                    pytest.fail(
                        f"{doc.name}: documented command does not parse: "
                        f"{command!r}"
                    )

    def test_module_invocations_exist(self, doc):
        for module in _module_invocations(doc.read_text()):
            assert importlib.util.find_spec(module) is not None, (
                f"{doc.name} references missing module {module}"
            )

    def test_intra_repo_links_resolve(self, doc):
        for target in _LINK.findall(doc.read_text()):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            assert resolved.exists(), (
                f"{doc.relative_to(REPO_ROOT)} links to missing {target}"
            )


def test_readme_indexes_every_docs_page():
    readme = (REPO_ROOT / "README.md").read_text()
    for page in sorted((REPO_ROOT / "docs").glob("*.md")):
        assert f"docs/{page.name}" in readme, (
            f"README documentation index is missing docs/{page.name}"
        )


def test_some_commands_were_found():
    total = sum(
        len(list(_fenced_commands(doc.read_text()))) for doc in DOC_FILES
    )
    assert total >= 10  # the docs really do show CLI usage
