"""Tests for drop policies and the dispatch simulation (core/drop.py)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.drop import (
    DropPolicy,
    EarlyDropPolicy,
    LazyDropPolicy,
    QueuedRequest,
    max_goodput,
    simulate_dispatch,
)
from repro.core.profile import LinearProfile
from repro.workloads.arrivals import poisson_arrivals, uniform_arrivals


def fig5_profile(alpha: float) -> LinearProfile:
    """Figure 5's parameterization: SLO 100 ms, optimal 500 r/s.

    Optimal batch B satisfies 2*l(B) = 100 and B/l(B) = 500/s, so B = 25
    and beta = 50 - 25*alpha.
    """
    return LinearProfile(name="fig5", alpha=alpha, beta=50.0 - 25.0 * alpha,
                         max_batch=64)


class TestLazyDropPolicy:
    def test_serves_oldest_first(self):
        p = LinearProfile(name="m", alpha=1.0, beta=1.0)
        queue = [QueuedRequest(i, float(i), 100.0 + i) for i in range(5)]
        batch, dropped = LazyDropPolicy().select(queue, 10.0, p)
        assert [q.request_id for q in batch][0] == 0
        assert not dropped

    def test_drops_expired(self):
        p = LinearProfile(name="m", alpha=1.0, beta=1.0)
        queue = [
            QueuedRequest(0, 0.0, 5.0),     # hopeless at t=10
            QueuedRequest(1, 8.0, 108.0),
        ]
        batch, dropped = LazyDropPolicy().select(queue, 10.0, p)
        assert [q.request_id for q in dropped] == [0]
        assert [q.request_id for q in batch] == [1]

    def test_head_budget_limits_batch(self):
        # head deadline allows l(b) <= 12 -> b <= 2 for alpha=1, beta=10.
        p = LinearProfile(name="m", alpha=1.0, beta=10.0)
        queue = [QueuedRequest(i, 0.0, 12.0 if i == 0 else 1000.0)
                 for i in range(10)]
        batch, _ = LazyDropPolicy().select(queue, 0.0, p)
        assert len(batch) == 2

    def test_batch_cap(self):
        p = LinearProfile(name="m", alpha=1.0, beta=1.0)
        queue = [QueuedRequest(i, 0.0, 1000.0) for i in range(10)]
        batch, _ = LazyDropPolicy(batch_cap=3).select(queue, 0.0, p)
        assert len(batch) == 3


class TestEarlyDropPolicy:
    def test_drops_stale_heads_for_full_window(self):
        p = LinearProfile(name="m", alpha=1.0, beta=10.0)
        # Head has 12 ms left (batch of 2 max); the rest are fresh.
        queue = [QueuedRequest(0, 0.0, 12.0)] + [
            QueuedRequest(i, 5.0, 5.0 + 100.0) for i in range(1, 9)
        ]
        batch, dropped = EarlyDropPolicy(target_batch=8).select(queue, 0.0, p)
        assert [q.request_id for q in dropped] == [0]
        assert len(batch) == 8

    def test_serves_window_when_head_fresh(self):
        p = LinearProfile(name="m", alpha=1.0, beta=10.0)
        queue = [QueuedRequest(i, 0.0, 500.0) for i in range(20)]
        batch, dropped = EarlyDropPolicy(target_batch=8).select(queue, 0.0, p)
        assert len(batch) == 8
        assert not dropped

    def test_partial_window_at_queue_tail(self):
        p = LinearProfile(name="m", alpha=1.0, beta=10.0)
        queue = [QueuedRequest(i, 0.0, 500.0) for i in range(3)]
        batch, dropped = EarlyDropPolicy(target_batch=8).select(queue, 0.0, p)
        assert len(batch) == 3

    def test_requires_positive_target(self):
        with pytest.raises(ValueError):
            EarlyDropPolicy(target_batch=0)


class TestSimulateDispatch:
    def test_underload_all_served(self):
        p = LinearProfile(name="m", alpha=1.0, beta=5.0, max_batch=32)
        arrivals = uniform_arrivals(50.0, 10_000.0, seed=1)
        stats = simulate_dispatch(arrivals, p, 100.0, LazyDropPolicy())
        assert stats.bad_rate == 0.0
        assert stats.total == len(arrivals)

    def test_overload_sheds_load(self):
        p = LinearProfile(name="m", alpha=1.0, beta=5.0, max_batch=32)
        # Optimal throughput ~ 32/37ms = 865/s; offer 3x that.
        arrivals = uniform_arrivals(2600.0, 5_000.0, seed=1)
        stats = simulate_dispatch(
            arrivals, p, 100.0, EarlyDropPolicy(target_batch=32)
        )
        assert stats.dropped > 0
        assert stats.served_ok > 0
        # Goodput cannot exceed the profile's optimal throughput.
        assert stats.goodput_rps <= p.throughput(32) * 1.05

    def test_unsorted_arrivals_rejected(self):
        p = LinearProfile(name="m", alpha=1.0, beta=5.0)
        with pytest.raises(ValueError):
            simulate_dispatch([5.0, 1.0], p, 100.0, LazyDropPolicy())

    def test_empty_arrivals(self):
        p = LinearProfile(name="m", alpha=1.0, beta=5.0)
        stats = simulate_dispatch([], p, 100.0, LazyDropPolicy())
        assert stats.total == 0
        assert stats.bad_rate == 0.0

    def test_accounting_is_complete(self):
        """Every request ends up served ok, late, or dropped."""
        p = LinearProfile(name="m", alpha=1.5, beta=20.0, max_batch=32)
        arrivals = poisson_arrivals(700.0, 5_000.0, seed=3)
        for policy in (LazyDropPolicy(), EarlyDropPolicy(16)):
            stats = simulate_dispatch(arrivals, p, 100.0, policy)
            assert stats.total == len(arrivals)

    def test_overlap_flag_changes_throughput(self):
        p = LinearProfile(name="m", alpha=1.0, beta=5.0, pre_ms=2.0,
                          cpu_workers=5, max_batch=32)
        arrivals = uniform_arrivals(600.0, 5_000.0, seed=2)
        on = simulate_dispatch(arrivals, p, 100.0, EarlyDropPolicy(16),
                               overlap=True)
        off = simulate_dispatch(arrivals, p, 100.0, EarlyDropPolicy(16),
                                overlap=False)
        assert on.served_ok >= off.served_ok

    @given(st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_no_request_lost_property(self, seed):
        p = LinearProfile(name="m", alpha=1.0, beta=10.0, max_batch=32)
        arrivals = poisson_arrivals(450.0, 3_000.0, seed=seed)
        stats = simulate_dispatch(arrivals, p, 100.0, EarlyDropPolicy(16))
        assert stats.total == len(arrivals)


class TestFigure5And9Shapes:
    """The paper's drop-policy findings, asserted as shapes."""

    def test_lazy_drop_bad_under_poisson_small_alpha(self):
        p = fig5_profile(1.0)
        arrivals = poisson_arrivals(450.0, 30_000.0, seed=42)
        stats = simulate_dispatch(arrivals, p, 100.0, LazyDropPolicy())
        assert stats.bad_rate > 0.10  # paper: tens of percent

    def test_lazy_drop_fine_under_uniform(self):
        p = fig5_profile(1.0)
        arrivals = uniform_arrivals(450.0, 30_000.0, seed=42)
        stats = simulate_dispatch(arrivals, p, 100.0, LazyDropPolicy())
        assert stats.bad_rate < 0.02

    def test_lazy_drop_improves_with_alpha(self):
        rates = []
        for alpha in (1.0, 1.8):
            p = fig5_profile(alpha)
            arrivals = poisson_arrivals(450.0, 30_000.0, seed=42)
            stats = simulate_dispatch(arrivals, p, 100.0, LazyDropPolicy())
            rates.append(stats.bad_rate)
        assert rates[1] < rates[0]

    def test_early_drop_rescues_poisson(self):
        p = fig5_profile(1.0)
        arrivals = poisson_arrivals(450.0, 30_000.0, seed=42)
        lazy = simulate_dispatch(arrivals, p, 100.0, LazyDropPolicy())
        early = simulate_dispatch(arrivals, p, 100.0, EarlyDropPolicy(25))
        assert early.bad_rate < lazy.bad_rate / 3

    def test_early_drop_higher_goodput(self):
        """Figure 9: early drop achieves higher max goodput than lazy."""
        p = fig5_profile(1.0)

        def arrivals(rate):
            return poisson_arrivals(rate, 20_000.0, seed=7)

        lazy = max_goodput(arrivals, p, 100.0, LazyDropPolicy,
                           iterations=8)
        early = max_goodput(arrivals, p, 100.0,
                            lambda: EarlyDropPolicy(25), iterations=8)
        assert early > lazy

    def test_hi_rps_is_not_a_ceiling(self):
        """A too-low initial upper bound is expanded, not returned.

        The search used to bisect straight toward ``hi_rps`` and silently
        report it when the system was still good there; now the bound is
        doubled until it actually fails before bisecting.
        """
        p = fig5_profile(1.0)

        def arrivals(rate):
            return poisson_arrivals(rate, 20_000.0, seed=7)

        policy = lambda: EarlyDropPolicy(25)
        unconstrained = max_goodput(arrivals, p, 100.0, policy, iterations=8)
        clipped = max_goodput(arrivals, p, 100.0, policy, iterations=8,
                              hi_rps=10.0)
        assert unconstrained > 10.0
        assert clipped > 10.0
        assert clipped >= unconstrained * 0.5


class _ShedThenServePolicy(DropPolicy):
    """A contract-exercising wrapper: shed expired heads in one ``select``
    invocation, serve survivors on the next.

    Real dispatchers (and the DropPolicy contract's "empty batch with
    drops = progress" case) may separate shedding from serving; the
    simulate_dispatch loop must re-invoke the policy after such a call
    rather than draining the still-servable queue.
    """

    def __init__(self, inner: DropPolicy) -> None:
        self.inner = inner

    def select(self, queue, now_ms, profile):
        batch, dropped = self.inner.select(queue, now_ms, profile)
        if dropped:
            return [], dropped
        return batch, dropped


class TestTailOfTraceDrain:
    """Regression: the end-of-trace path used to drain still-servable
    requests as dropped whenever a select() returned an empty batch,
    even though the policy had just made progress by shedding expired
    heads and would have served the survivors on the next call."""

    def make_profile(self):
        return LinearProfile(name="tail", alpha=1.0, beta=0.0, max_batch=64)

    def test_lazy_tail_survivors_served(self):
        # Ten arrivals at t=0 fill a 10-wide batch that completes at t=10,
        # by which point the t=0.5 arrival (deadline 10.5) has expired but
        # the t=7 arrival (deadline 17) is still servable.
        arrivals = [0.0] * 10 + [0.5, 7.0]
        stats = simulate_dispatch(
            arrivals, self.make_profile(), 10.0,
            _ShedThenServePolicy(LazyDropPolicy()),
        )
        assert stats.dropped == 1
        assert stats.served_ok == 11

    def test_early_tail_survivors_served(self):
        # Twelve t=0 arrivals back the queue up past t=8, at which point
        # the early-drop window must shed four stale heads to fit the two
        # fresh tail requests (deadlines 11 and 17) -- which are then
        # servable, not drainable.
        arrivals = [0.0] * 12 + [1.0, 7.0]
        stats = simulate_dispatch(
            arrivals, self.make_profile(), 10.0,
            _ShedThenServePolicy(EarlyDropPolicy(4)),
        )
        assert stats.dropped == 4
        assert stats.served_ok == 10
        assert stats.total == 14

    def test_builtin_policies_never_drain_servable_tail(self):
        # The built-in policies always serve-or-drop in one call, so the
        # whole trace is accounted for and anything servable at the final
        # dispatch instant is served.
        for policy in (LazyDropPolicy(), EarlyDropPolicy(8)):
            stats = simulate_dispatch(
                [0.0] * 8 + [1.0, 7.0], self.make_profile(), 10.0, policy
            )
            assert stats.total == 10
            assert stats.served_ok >= 1
