"""Additional drop-policy and dispatch-loop coverage."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.drop import (
    DispatchStats,
    DropPolicy,
    EarlyDropPolicy,
    LazyDropPolicy,
    QueuedRequest,
    simulate_dispatch,
)
from repro.core.profile import LinearProfile
from repro.workloads.arrivals import mmpp_arrivals, poisson_arrivals


class TestDispatchStats:
    def test_empty_stats(self):
        s = DispatchStats()
        assert s.total == 0
        assert s.bad_rate == 0.0
        assert s.goodput_rps == 0.0
        assert s.mean_batch == 0.0
        assert s.utilization == 0.0

    def test_rates_consistent(self):
        s = DispatchStats(served_ok=90, served_late=5, dropped=5,
                          batches=10, batch_size_sum=100,
                          busy_ms=500.0, span_ms=1000.0)
        assert s.total == 100
        assert s.bad_rate == pytest.approx(0.1)
        assert s.good_rate == pytest.approx(0.9)
        assert s.goodput_rps == pytest.approx(90.0)
        assert s.mean_batch == 10.0
        assert s.utilization == 0.5


class TestPolicyEdgeCases:
    def test_lazy_empty_queue(self):
        p = LinearProfile(name="m", alpha=1.0, beta=1.0)
        batch, dropped = LazyDropPolicy().select([], 0.0, p)
        assert batch == [] and dropped == []

    def test_early_empty_queue(self):
        p = LinearProfile(name="m", alpha=1.0, beta=1.0)
        batch, dropped = EarlyDropPolicy(4).select([], 0.0, p)
        assert batch == [] and dropped == []

    def test_early_all_expired(self):
        p = LinearProfile(name="m", alpha=1.0, beta=1.0)
        queue = [QueuedRequest(i, 0.0, 1.0) for i in range(4)]
        batch, dropped = EarlyDropPolicy(4).select(queue, 100.0, p)
        assert batch == []
        assert len(dropped) == 4

    def test_early_window_shrinks_toward_tail(self):
        """When the full window cannot fit any anchor's budget, the scan
        shrinks toward the queue tail rather than starving."""
        p = LinearProfile(name="m", alpha=5.0, beta=20.0, max_batch=8)
        # l(3)=35 > 30 budget, l(2)=30 fits: head is sacrificed.
        queue = [QueuedRequest(i, 0.0, 30.0) for i in range(3)]
        batch, dropped = EarlyDropPolicy(3).select(queue, 0.0, p)
        assert [q.request_id for q in batch] == [1, 2]
        assert [q.request_id for q in dropped] == [0]

    def test_early_single_item_tail(self):
        """Even when only a lone tail item fits, it is served."""
        p = LinearProfile(name="m", alpha=5.0, beta=20.0, max_batch=8)
        queue = [QueuedRequest(i, 0.0, 28.0) for i in range(3)]
        batch, dropped = EarlyDropPolicy(3).select(queue, 0.0, p)
        assert len(batch) == 1
        assert len(dropped) == 2

    def test_lazy_cap_validation(self):
        with pytest.raises(ValueError):
            LazyDropPolicy(batch_cap=0)

    def test_base_policy_abstract(self):
        p = LinearProfile(name="m", alpha=1.0, beta=1.0)
        with pytest.raises(NotImplementedError):
            DropPolicy().select([], 0.0, p)


class TestDispatchUnderBurstyArrivals:
    def test_mmpp_early_beats_lazy(self):
        """Under phase-switching (bursty) arrivals, early drop's goodput
        advantage persists (the Figure 5/9 mechanism generalizes)."""
        prof = LinearProfile(name="m", alpha=1.0, beta=25.0, max_batch=64)
        arrivals = mmpp_arrivals([700.0, 150.0], phase_ms=2_000.0,
                                 duration_ms=30_000.0, seed=2)
        lazy = simulate_dispatch(arrivals, prof, 100.0, LazyDropPolicy())
        early = simulate_dispatch(arrivals, prof, 100.0, EarlyDropPolicy(25))
        assert early.served_ok >= lazy.served_ok

    @given(st.integers(1, 40), st.integers(0, 2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_any_window_conserves_requests(self, window, seed):
        prof = LinearProfile(name="m", alpha=1.0, beta=10.0, max_batch=64)
        arrivals = poisson_arrivals(400.0, 3_000.0, seed=seed)
        stats = simulate_dispatch(arrivals, prof, 100.0,
                                  EarlyDropPolicy(window))
        assert stats.total == len(arrivals)

    def test_goodput_monotone_down_in_overload(self):
        """More overload cannot increase the count of on-time requests
        beyond capacity."""
        prof = LinearProfile(name="m", alpha=1.0, beta=10.0, max_batch=32)
        capacity = prof.throughput(32)
        results = []
        for rate in (capacity * 1.5, capacity * 3.0):
            arrivals = poisson_arrivals(rate, 10_000.0, seed=3)
            stats = simulate_dispatch(arrivals, prof, 100.0,
                                      EarlyDropPolicy(32))
            results.append(stats.goodput_rps)
        for g in results:
            assert g <= capacity * 1.1
