"""Tests for the incremental epoch scheduler (core/epoch.py)."""

import pytest

from repro.core.epoch import EpochScheduler
from repro.core.profile import LinearProfile
from repro.core.session import Session, SessionLoad
from repro.core.squishy import SchedulePlan


def load(name, slo, rate, alpha=1.0, beta=10.0):
    return SessionLoad(
        Session(name, slo), rate,
        LinearProfile(name=name, alpha=alpha, beta=beta, max_batch=64),
    )


class TestTriggers:
    def test_epoch_boundary_triggers(self):
        s = EpochScheduler(epoch_ms=30_000.0)
        s.update(0.0, [load("a", 200.0, 50.0)])
        assert not s.should_reschedule(5_000.0, [load("a", 200.0, 50.0)])
        assert s.should_reschedule(31_000.0, [load("a", 200.0, 50.0)])

    def test_min_period_blocks_early_epochs(self):
        """Paper: 'we limit the minimum period between two epochs to 10
        seconds' to prevent oscillation."""
        s = EpochScheduler(epoch_ms=30_000.0, min_period_ms=10_000.0)
        s.update(0.0, [load("a", 200.0, 50.0)])
        surge = [load("a", 200.0, 500.0)]
        assert not s.should_reschedule(5_000.0, surge)
        assert s.should_reschedule(12_000.0, surge)

    def test_large_change_triggers_early(self):
        s = EpochScheduler(epoch_ms=30_000.0, change_threshold=0.25)
        s.update(0.0, [load("a", 200.0, 100.0)])
        assert s.should_reschedule(12_000.0, [load("a", 200.0, 200.0)])
        assert not s.should_reschedule(12_000.0, [load("a", 200.0, 110.0)])

    def test_new_session_triggers(self):
        s = EpochScheduler()
        s.update(0.0, [load("a", 200.0, 100.0)])
        both = [load("a", 200.0, 100.0), load("b", 200.0, 10.0)]
        assert s.should_reschedule(12_000.0, both)

    def test_retired_session_triggers_early(self):
        """A session absent from the loads is a rate change to zero: its
        GPUs should be reclaimed at the next eligible epoch, not held
        until the 30 s boundary."""
        s = EpochScheduler(epoch_ms=30_000.0)
        both = [load("a", 200.0, 100.0), load("b", 200.0, 50.0)]
        s.update(0.0, both)
        assert s.should_reschedule(12_000.0, [load("a", 200.0, 100.0)])
        assert not s.should_reschedule(12_000.0, both)


class TestIncrementalUpdates:
    def test_first_update_allocates(self):
        s = EpochScheduler()
        up = s.update(0.0, [load("a", 200.0, 300.0)])
        assert up.gpus_after >= 1
        assert s.capacity_rps("a@200ms") >= 300.0 - 1e-6

    def test_growth_adds_gpus(self):
        s = EpochScheduler()
        s.update(0.0, [load("a", 200.0, 100.0)])
        before = s.num_gpus
        up = s.update(30_000.0, [load("a", 200.0, 800.0)])
        assert up.gpus_after > before
        assert s.capacity_rps("a@200ms") >= 800.0 - 1e-6

    def test_shrink_releases_gpus(self):
        s = EpochScheduler()
        s.update(0.0, [load("a", 200.0, 3000.0)])
        before = s.num_gpus
        assert before >= 2
        up = s.update(30_000.0, [load("a", 200.0, 50.0)])
        assert up.gpus_after < before

    def test_steady_state_no_churn(self):
        s = EpochScheduler()
        loads = [load("a", 200.0, 100.0), load("b", 300.0, 60.0)]
        s.update(0.0, loads)
        up = s.update(30_000.0, loads)
        assert up.sessions_moved == 0
        assert up.gpus_before == up.gpus_after

    def test_node_reorder_is_not_churn(self):
        """Churn is counted by stable node ids, not list positions.

        The per-epoch occupancy re-sort permutes ``plan.gpus``; a session
        that stays on the same physical node must count as zero moves
        even when its node's position changes."""
        s = EpochScheduler()
        loads = [load("a", 200.0, 700.0), load("b", 300.0, 400.0)]
        s.update(0.0, loads)
        assert len(s.plan.gpus) >= 2
        s.plan = SchedulePlan(gpus=list(reversed(s.plan.gpus)),
                              infeasible=s.plan.infeasible)
        up = s.update(30_000.0, loads)
        assert up.sessions_moved == 0

    def test_retired_session_dropped(self):
        s = EpochScheduler()
        s.update(0.0, [load("a", 200.0, 100.0), load("b", 300.0, 60.0)])
        s.update(30_000.0, [load("a", 200.0, 100.0)])
        assert s.capacity_rps("b@300ms") == 0.0
        assert s.capacity_rps("a@200ms") >= 100.0 - 1e-6

    def test_max_gpus_cap_respected(self):
        s = EpochScheduler(max_gpus=2)
        s.update(0.0, [load("a", 200.0, 2000.0)])
        assert s.num_gpus <= 2

    def test_plans_stay_valid_across_updates(self):
        s = EpochScheduler()
        rates = [100.0, 400.0, 150.0, 600.0, 30.0]
        for i, r in enumerate(rates):
            s.update(i * 30_000.0, [load("a", 200.0, r),
                                    load("b", 250.0, r / 2)])
            assert not s.plan.validate()
            assert s.capacity_rps("a@200ms") >= r - 1e-6

    def test_updates_recorded(self):
        s = EpochScheduler()
        s.update(0.0, [load("a", 200.0, 100.0)])
        s.update(30_000.0, [load("a", 200.0, 200.0)])
        assert len(s.updates) == 2
        assert s.updates[1].epoch == 2
        assert s.updates[1].time_ms == 30_000.0

    def test_gpus_added_released_accounting(self):
        s = EpochScheduler()
        up1 = s.update(0.0, [load("a", 200.0, 800.0)])
        assert up1.gpus_added == up1.gpus_after
        up2 = s.update(30_000.0, [load("a", 200.0, 10.0)])
        assert up2.gpus_released == up1.gpus_after - up2.gpus_after


class TestNodeReuse:
    def test_first_update_reuses_nothing(self):
        s = EpochScheduler()
        up = s.update(0.0, [load("a", 200.0, 100.0)])
        assert up.nodes_reused == 0

    def test_steady_state_reuses_node_objects(self):
        """Unchanged rates reuse the existing GpuPlan objects verbatim
        instead of rebuilding content-identical copies."""
        s = EpochScheduler()
        loads = [load("a", 200.0, 100.0), load("b", 300.0, 60.0)]
        s.update(0.0, loads)
        before = {id(n) for n in s.plan.gpus}
        assert before
        up = s.update(30_000.0, loads)
        assert {id(n) for n in s.plan.gpus} == before
        assert up.nodes_reused == len(s.plan.gpus)
        assert up.sessions_moved == 0

    def test_rate_change_rebuilds_only_affected_nodes(self):
        """A rate change repacks the nodes hosting that session; nodes
        dedicated to unchanged sessions carry over as the same objects."""
        s = EpochScheduler()
        la, lb = load("a", 200.0, 3000.0), load("b", 300.0, 30.0)
        s.update(0.0, [la, lb])
        full_a = {
            id(n) for n in s.plan.gpus
            if all(al.session_id == "a@200ms" for al in n.allocations)
            and n.saturated
        }
        assert full_a, "setup: expected saturated a-only nodes"
        up = s.update(30_000.0, [la, lb.with_rate(60.0)])
        after = {id(n) for n in s.plan.gpus}
        assert full_a <= after
        assert up.nodes_reused >= len(full_a)
        assert s.capacity_rps("b@300ms") >= 60.0 - 1e-6
        assert not s.plan.validate()

    def test_reused_plan_matches_rebuilt_plan(self):
        """The fast path must be a pure optimization: reusing nodes
        yields exactly the plan a full incremental rebuild would."""
        loads = [load("a", 200.0, 700.0), load("b", 300.0, 400.0),
                 load("c", 150.0, 90.0)]
        fast = EpochScheduler()
        fast.update(0.0, loads)
        # Same starting plan, but force the slow path by cloning nodes
        # through a rate perturbation round-trip is fragile; instead
        # compare against a scheduler whose second epoch sees fresh
        # (equal-valued) load objects, exercising the profile-identity
        # guard: equal content but different profile objects must fall
        # back to the rebuild and still produce an identical plan.
        fresh = [load("a", 200.0, 700.0), load("b", 300.0, 400.0),
                 load("c", 150.0, 90.0)]
        up = fast.update(30_000.0, fresh)
        assert up.nodes_reused == 0  # new profile objects: no reuse
        reused = EpochScheduler()
        reused.update(0.0, loads)
        up2 = reused.update(30_000.0, loads)
        assert up2.nodes_reused == len(reused.plan.gpus)
        # node_id is a process-global counter, so compare node *content*.
        def content(plan):
            return sorted(
                (
                    n.duty_cycle_ms, n.saturated,
                    tuple(
                        (a.session_id, a.load.rate_rps, a.batch)
                        for a in n.allocations
                    ),
                )
                for n in plan.gpus
            )

        assert content(fast.plan) == content(reused.plan)

    def test_retired_session_node_not_reused(self):
        s = EpochScheduler()
        la, lb = load("a", 200.0, 3000.0), load("b", 300.0, 30.0)
        s.update(0.0, [la, lb])
        b_nodes = {
            id(n) for n in s.plan.gpus
            if any(al.session_id == "b@300ms" for al in n.allocations)
        }
        assert b_nodes
        up = s.update(30_000.0, [la])
        after = {id(n) for n in s.plan.gpus}
        # Nodes that hosted b are rebuilt or released; a's dedicated
        # saturated nodes carry over unchanged.
        assert not (b_nodes & after)
        assert up.nodes_reused >= 1
        for n in s.plan.gpus:
            assert all(al.session_id != "b@300ms" for al in n.allocations)


class TestEvictionPath:
    def test_overloaded_node_evicts_and_repacks(self):
        """When a shared node becomes overloaded by rate growth, the
        cheapest sessions are evicted and repacked elsewhere."""
        s = EpochScheduler()
        light = [load("a", 300.0, 30.0), load("b", 300.0, 30.0)]
        s.update(0.0, light)
        shared = [n for n in s.plan.gpus if len(n.allocations) == 2]
        assert shared, "setup: expected a merged node"
        # b's rate grows 20x: the old shared node cannot host both.
        grown = [load("a", 300.0, 30.0), load("b", 300.0, 600.0)]
        up = s.update(30_000.0, grown)
        assert not s.plan.validate()
        assert s.capacity_rps("a@300ms") >= 30.0 - 1e-6
        assert s.capacity_rps("b@300ms") >= 600.0 - 1e-6

    def test_capped_plan_keeps_fullest_nodes(self):
        s = EpochScheduler(max_gpus=1)
        s.update(0.0, [load("a", 200.0, 50.0), load("b", 200.0, 800.0)])
        assert s.num_gpus == 1
        # The surviving node is the busier one.
        assert s.plan.gpus[0].occupancy > 0.3
