"""Smoke tests: every example script runs clean and prints its story."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "good rate" in out
    assert "latency split" in out


def test_capacity_planning():
    out = run_example("capacity_planning.py")
    assert "workload needs" in out
    assert "exact optimum" in out


def test_gpu_timeline():
    out = run_example("gpu_timeline.py")
    assert "squishy packing chose" in out
    assert "legend:" in out


@pytest.mark.slow
def test_game_streaming():
    out = run_example("game_streaming.py", timeout=400.0)
    assert "with prefix batching" in out
    assert "without" in out


@pytest.mark.slow
def test_autoscaling_deployment():
    out = run_example("autoscaling_deployment.py", timeout=500.0)
    assert "epochs run" in out
    assert "bad rate" in out


def test_trace_inspection():
    out = run_example("trace_inspection.py")
    assert "batch-size histogram" in out
    assert "within its SLO" in out


def test_batch_analytics():
    out = run_example("batch_analytics.py")
    assert "answered 100.0%" in out
    assert "dropped" in out
